// Fault-injection campaign — what the verification leg of the flow is for.
//
// The paper's pipeline does not just emit a polynomial: it checks the
// implementation against a golden model built from the recovered P(x).
// This CLI drives the campaign's fault passes (src/obf/fault.cpp) through
// the same scenario driver as examples/obfuscated_recovery.cpp: a control
// scenario (clean multiplier, must recover) plus fault scenarios
// (stuck-at pins / flipped cells, must diagnose or recover, never crash),
// all through the batch scheduler, all in the shared JSONL schema.
//
//   fault_injection [--family NAME] [--m N] [--fault stuckat|flip|both]
//                   [--count N] [--seed N] [--threads N]
//                   [--out report.jsonl] [--quiet] [--help]
//
// Exit code 0 when the control recovers the true P(x) and every fault
// scenario completes (diagnosed or recovered); 1 otherwise; 2 on usage
// errors.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "obf/campaign.hpp"
#include "obf/passes.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"
#include "util/options.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: fault_injection [options]\n"
     << "\n"
     << "  --family NAME   mastrovito|montgomery|karatsuba|shiftadd\n"
     << "                  (default mastrovito)\n"
     << "  --m N           field width (default 8)\n"
     << "  --fault KIND    stuckat, flip, or both (default both)\n"
     << "  --count N       faults injected per scenario (default 1)\n"
     << "  --seed N        fault-site seed (default 1)\n"
     << "  --threads N     flow worker threads (default: hardware)\n"
     << "  --out FILE      write one JSONL record per scenario\n"
     << "  --quiet         suppress the human-readable summary\n"
     << "  --help          print this message and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gfre;

  std::string family = "mastrovito";
  unsigned m = 8;
  std::string fault = "both";
  unsigned count = 1;
  std::uint64_t seed = 1;
  obf::CampaignOptions campaign;
  campaign.threads = static_cast<unsigned>(configured_threads());
  std::string out_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--family" && i + 1 < argc) {
      family = argv[++i];
    } else if (arg == "--m" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value.empty() || value[0] == '-') {
        std::cerr << "--m wants a positive integer\n";
        usage(std::cerr);
        return 2;
      }
      const unsigned long width = std::stoul(value);
      if (width < 2 || width > 1024) {
        std::cerr << "--m wants 2..1024\n";
        usage(std::cerr);
        return 2;
      }
      m = static_cast<unsigned>(width);
    } else if (arg == "--fault" && i + 1 < argc) {
      fault = argv[++i];
      if (fault != "stuckat" && fault != "flip" && fault != "both") {
        std::cerr << "--fault wants stuckat, flip or both\n";
        usage(std::cerr);
        return 2;
      }
    } else if (arg == "--count" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value.empty() || value[0] == '-') {
        std::cerr << "--count wants a positive integer\n";
        usage(std::cerr);
        return 2;
      }
      const unsigned long n = std::stoul(value);
      if (n == 0 || n > 1024) {
        std::cerr << "--count wants 1..1024\n";
        usage(std::cerr);
        return 2;
      }
      count = static_cast<unsigned>(n);
    } else if (arg == "--seed" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value.empty() || value[0] == '-') {
        std::cerr << "--seed wants a non-negative integer\n";
        usage(std::cerr);
        return 2;
      }
      seed = std::stoull(value);
    } else if (arg == "--threads" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value.empty() || value[0] == '-') {
        std::cerr << "--threads wants a positive integer\n";
        usage(std::cerr);
        return 2;
      }
      const unsigned long threads = std::stoul(value);
      if (threads == 0 || threads > 4096) {
        std::cerr << "--threads wants 1..4096\n";
        usage(std::cerr);
        return 2;
      }
      campaign.threads = static_cast<unsigned>(threads);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  // Control first (the clean twin the scheduler dedups against), then one
  // scenario per requested fault kind.
  std::vector<obf::Scenario> scenarios;
  obf::Scenario control;
  control.family = family;
  control.m = m;
  control.seed = seed;
  control.key_mode = obf::KeyMode::None;
  scenarios.push_back(control);
  const auto add_fault = [&](obf::PassKind kind) {
    obf::Scenario scenario = control;
    scenario.passes = {obf::PassSpec{kind, count}};
    scenarios.push_back(scenario);
  };
  if (fault == "stuckat" || fault == "both")
    add_fault(obf::PassKind::FaultStuckAt);
  if (fault == "flip" || fault == "both") add_fault(obf::PassKind::FaultFlip);

  try {
    const obf::CampaignReport report = obf::run_campaign(scenarios, campaign);

    bool all_met = true;
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
      const obf::ScenarioOutcome& outcome = report.outcomes[i];
      const bool is_control = i == 0;
      // Control must recover; fault scenarios must complete either way —
      // a diagnosed fault and a masked (still-correct) fault both honor
      // the recover-or-diagnose contract.
      const bool met = is_control ? outcome.recovered
                                  : (outcome.ok || !outcome.diagnosis.empty());
      all_met = all_met && met;
      if (!quiet) {
        std::printf("=== %s ===\n", outcome.name.c_str());
        if (outcome.ok) {
          std::printf("recovered P(x) = %s (%s)\n",
                      outcome.recovered_p.to_string().c_str(),
                      outcome.recovered ? "true field"
                                        : "NOT the true field");
        } else {
          std::printf("diagnosed: %s\n", outcome.diagnosis.c_str());
        }
        std::printf("%s\n\n", met ? "contract MET" : "contract VIOLATED");
      }
    }
    if (!out_path.empty()) {
      JsonlWriter writer(out_path);
      for (const obf::ScenarioOutcome& outcome : report.outcomes)
        writer.write(obf::outcome_json(outcome));
      writer.close();
      if (!writer.ok()) {
        std::cerr << "error: failed writing " << out_path << "\n";
        return 2;
      }
    }
    if (!quiet)
      std::printf("%zu scenarios, %.2fs wall: %s\n", report.outcomes.size(),
                  report.wall_seconds,
                  all_met ? "all contracts met" : "CONTRACT VIOLATIONS");
    return all_met ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
