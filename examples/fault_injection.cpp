// Fault-injection demo — what the verification leg of the flow is for.
//
// The paper's pipeline does not just emit a polynomial: it checks the
// implementation against a golden model built from the recovered P(x).
// This example corrupts a correct GF(2^8) multiplier in four different
// ways and shows the diagnosis each corruption produces:
//   1. a partial-product AND flipped to OR   -> non-bilinear ANF
//   2. a reduction XOR flipped to XNOR       -> constant term, non-bilinear
//   3. one reduction tap moved to another bit-> inconsistent rows
//   4. the correct circuit                   -> SUCCESS
#include <iostream>

#include "core/flow.hpp"
#include "gen/mastrovito.hpp"
#include "gf2m/field.hpp"

namespace {

using namespace gfre;

/// Rebuilds the netlist applying `mutate` to each gate (type, inputs).
template <typename MutateFn>
nl::Netlist rebuild_with(const nl::Netlist& netlist, MutateFn&& mutate) {
  nl::Netlist out(netlist.name() + "_mutated");
  std::vector<nl::Var> map(netlist.num_vars());
  for (nl::Var v : netlist.inputs()) {
    map[v] = out.add_input(netlist.var_name(v));
  }
  std::size_t index = 0;
  for (std::size_t g : netlist.topological_order()) {
    const nl::Gate& gate = netlist.gate(g);
    std::vector<nl::Var> inputs;
    for (nl::Var in : gate.inputs) inputs.push_back(map[in]);
    nl::CellType type = gate.type;
    mutate(index, gate, type, inputs);
    map[gate.output] =
        out.add_gate(type, std::move(inputs), netlist.var_name(gate.output));
    ++index;
  }
  for (nl::Var v : netlist.outputs()) out.mark_output(map[v]);
  return out;
}

void run_case(const std::string& label, const nl::Netlist& netlist) {
  std::cout << "=== " << label << " ===\n";
  const auto report = core::reverse_engineer(netlist);
  std::cout << report.summary() << "\n";
}

}  // namespace

int main() {
  const gf2m::Field field(gf2::Poly{8, 4, 3, 1, 0});  // the AES field
  const auto good = gen::generate_mastrovito(field);
  std::cout << "Base design: " << good.name() << " over "
            << field.to_string() << ", " << good.num_equations()
            << " equations\n\n";

  // 1. Partial-product AND -> OR.
  const auto fault_and = rebuild_with(
      good, [&](std::size_t, const nl::Gate& gate, nl::CellType& type,
                std::vector<nl::Var>&) {
        if (type == nl::CellType::And &&
            good.var_name(gate.output) == "pp_3_4") {
          type = nl::CellType::Or;
        }
      });
  run_case("fault 1: partial product pp_3_4 AND -> OR", fault_and);

  // 2. A reduction XOR -> XNOR (injects a constant 1).
  bool flipped = false;
  const auto fault_xnor = rebuild_with(
      good, [&](std::size_t, const nl::Gate&, nl::CellType& type,
                std::vector<nl::Var>&) {
        if (!flipped && type == nl::CellType::Xor) {
          type = nl::CellType::Xnor;
          flipped = true;
        }
      });
  run_case("fault 2: first XOR -> XNOR", fault_xnor);

  // 3. Swap the inputs of the last XOR with a stale signal: emulate a
  //    mis-routed reduction tap by replacing one input of the final output
  //    XOR with a different convolution sum.
  const auto order = good.topological_order();
  std::size_t last_xor = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (good.gate(order[i]).type == nl::CellType::Xor) last_xor = i;
  }
  const auto fault_route = rebuild_with(
      good, [&](std::size_t index, const nl::Gate&, nl::CellType&,
                std::vector<nl::Var>& inputs) {
        if (index == last_xor && inputs.size() >= 2 && inputs[0] != inputs[1]) {
          inputs[1] = inputs[0];  // duplicate tap: drops a term mod 2
        }
      });
  run_case("fault 3: mis-routed reduction tap on the last XOR", fault_route);

  // 4. Control: the untouched design.
  run_case("control: unmodified multiplier", good);

  const auto control = core::reverse_engineer(good);
  return control.success ? 0 : 1;
}
