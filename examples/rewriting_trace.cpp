// Figures 2 & 3 — the paper's worked example: a 2-bit GF(2^2) multiplier
// with P(x) = x^2+x+1, rewritten output-by-output with the per-iteration
// trace printed (the paper's Figure 3 table), followed by Example 2's
// Algorithm-2 recovery of P(x).
#include <iostream>
#include <sstream>

#include "core/flow.hpp"
#include "core/poly_extract.hpp"
#include "core/rewriter.hpp"
#include "netlist/io_eqn.hpp"

namespace {

/// The exact circuit of the paper's Figure 2 (gates G0..G6).
gfre::nl::Netlist figure2() {
  using namespace gfre::nl;
  Netlist n("paper_figure2");
  const auto a0 = n.add_input("a0");
  const auto a1 = n.add_input("a1");
  const auto b0 = n.add_input("b0");
  const auto b1 = n.add_input("b1");
  const auto s2 = n.add_gate(CellType::And, {a1, b1}, "s2");  // G6
  const auto s0 = n.add_gate(CellType::And, {a0, b0}, "s0");  // G5
  const auto p0 = n.add_gate(CellType::And, {a1, b0}, "p0");  // G4
  const auto p1 = n.add_gate(CellType::And, {a0, b1}, "p1");  // G3
  const auto s1 = n.add_gate(CellType::Xor, {p0, p1}, "s1");  // G2
  const auto z1 = n.add_gate(CellType::Xor, {s1, s2}, "z1");  // G1
  const auto z0 = n.add_gate(CellType::Xor, {s0, s2}, "z0");  // G0
  n.mark_output(z0);
  n.mark_output(z1);
  return n;
}

}  // namespace

int main() {
  using namespace gfre;
  const auto netlist = figure2();

  std::cout << "Paper Figure 2: 2-bit multiplier over GF(2^2), "
            << "P(x) = x^2+x+1\n\n";
  std::cout << nl::write_eqn(netlist) << "\n";

  // Figure 3: backward rewriting of each output bit, with the trace of
  // every substitution step.  Theorem 2 lets the two rewrites run
  // independently ("z0 and z1 are rewritten in two threads").
  for (const char* out_name : {"z0", "z1"}) {
    std::cout << "--- backward rewriting of " << out_name
              << " (Algorithm 1) ---\n";
    std::ostringstream trace;
    core::RewriteOptions options;
    options.trace = &trace;
    core::RewriteStats stats;
    const auto anf = core::extract_output_anf(
        netlist, *netlist.find_var(out_name), options, &stats);
    std::cout << trace.str();
    std::cout << out_name << " = "
              << anf.to_string(
                     [&](anf::Var v) { return netlist.var_name(v); })
              << "   (" << stats.substitutions << " substitutions, "
              << stats.cancellations << " mod-2 cancellations)\n\n";
  }

  // Example 2: Algorithm 2 recovers P(x) = x^2+x+1 because P_2 = {a1*b1}
  // appears in both z0 and z1.
  const auto report = core::reverse_engineer(netlist);
  std::cout << "--- Algorithm 2 (Example 2) ---\n";
  const auto ports = nl::multiplier_ports(netlist);
  const auto p_m = core::product_set(ports, 2);
  std::cout << "P_m (first out-field product set): "
            << p_m[0].to_string(
                   [&](anf::Var v) { return netlist.var_name(v); })
            << "\n";
  std::cout << report.summary() << "\n";

  const bool ok =
      report.success && report.recovery.p == gf2::Poly{2, 1, 0};
  std::cout << (ok ? "matches the paper's Example 2: P(x) = x^2+x+1\n"
                   : "MISMATCH with the paper's example!\n");
  return ok ? 0 : 1;
}
