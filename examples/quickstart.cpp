// Quickstart: reverse engineer the irreducible polynomial of a GF(2^8)
// multiplier (the AES field) and verify it against the golden model.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/example_quickstart
#include <iostream>

#include "core/flow.hpp"
#include "gen/mastrovito.hpp"
#include "gf2m/field.hpp"
#include "util/options.hpp"

int main() {
  using namespace gfre;

  // 1. Construct the field GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
  const gf2::Poly aes{8, 4, 3, 1, 0};
  const gf2m::Field field(aes);
  std::cout << "Field: " << field.to_string() << "\n";

  // 2. Generate a flattened gate-level Mastrovito multiplier.  In a real
  //    reverse-engineering setting this netlist would come from
  //    nl::read_eqn_file / read_blif_file / read_verilog_file instead.
  const nl::Netlist netlist = gen::generate_mastrovito(field);
  std::cout << "Netlist: " << netlist.num_equations() << " equations, depth "
            << netlist.depth() << "\n\n";

  // 3. Run the reverse-engineering flow: parallel backward rewriting
  //    (Algorithm 1 + Theorem 2), P(x) recovery (Algorithm 2 + Theorem 3),
  //    reduction-matrix validation, and the golden-model check.
  core::FlowOptions options;
  options.threads = static_cast<unsigned>(configured_threads());
  const core::FlowReport report = core::reverse_engineer(netlist, options);

  std::cout << report.summary() << "\n";
  return report.success && report.recovery.p == aes ? 0 : 1;
}
