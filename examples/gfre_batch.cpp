// Batch reverse-engineering driver — the serving entry point for whole
// verification workloads:
//
//   gfre_batch --jobs <manifest> [options]
//
// The manifest lists one netlist per line with optional per-job overrides
// (see core/batch.hpp):
//
//   # path                     per-job options
//   rtl/mastrovito_m8.eqn
//   rtl/montgomery_m16.blif    strategy=indexed
//   drops/unknown.v            infer=1 max_terms=2000000
//
// The driver STREAMS the manifest through a long-lived
// core::BatchScheduler: each line is submitted the moment it is parsed
// (extraction of the first job overlaps reading the rest — a 100k-line
// manifest never materializes as a job vector), per-job completion
// callbacks print progress as results land, and the per-job futures are
// collected in submission order for the --out JSONL report.  Duplicate
// submissions are served from the content-hash cache or attach to the
// in-flight extraction.
//
// Options: see usage() below (or run `gfre_batch --help`) — that listing
// is the single source of truth, and the CI docs job keeps it in sync
// with README.md's flag table.
//
// Exit code 0 iff every job succeeded.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/report_json.hpp"
#include "core/result_cache.hpp"
#include "core/scheduler.hpp"
#include "gf2poly/gf2_poly.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: gfre_batch --jobs <manifest> [--threads N]\n"
     << "                  [--strategy packed|indexed|naive]\n"
     << "                  [--ports a,b,z] [--max-terms N]\n"
     << "                  [--library cells.lib]\n"
     << "                  [--queue-cap N] [--deadline-ms N]\n"
     << "                  [--admission block|reject]\n"
     << "                  [--no-verify] [--no-cache]\n"
     << "                  [--cache DIR] [--cache-prune BYTES]\n"
     << "                  [--cache-cap BYTES] [--cache-negative-ttl SECS]\n"
     << "                  [--out report.jsonl] [--quiet] [--help]\n"
     << "\n"
     << "  --jobs FILE        job manifest (required): one netlist per\n"
     << "                     line with optional key=value overrides\n"
     << "                     (name=, ports=a,b,z, strategy=, infer=,\n"
     << "                     verify=, permute=, max_terms=, library=,\n"
     << "                     deadline_ms=, priority=high|normal|low)\n"
     << "  --threads N        shared pool width (default: hardware)\n"
     << "  --strategy NAME    default backend: packed|indexed|naive\n"
     << "  --ports a,b,z      default operand/result port base names\n"
     << "  --max-terms N      default per-bit term budget (0 = unlimited)\n"
     << "  --library FILE     default cell library (.lib subset) resolving\n"
     << "                     non-builtin cells during parsing; per-line\n"
     << "                     library= overrides\n"
     << "  --queue-cap N      bound on admitted-but-unresolved jobs\n"
     << "                     (0 = unbounded); submission backpressures\n"
     << "                     at the cap per --admission\n"
     << "  --deadline-ms N    default per-job wall-clock budget in ms\n"
     << "                     (0 = none); per-line deadline_ms= overrides\n"
     << "  --admission MODE   at a full queue: 'block' the stream until a\n"
     << "                     job resolves (default) or 'reject' the\n"
     << "                     submission immediately\n"
     << "  --no-verify        skip golden-model comparison by default\n"
     << "  --no-cache         disable content-hash memoization\n"
     << "  --cache DIR        persistent cross-run result cache keyed by\n"
     << "                     SHA-256 content hash (created if absent)\n"
     << "  --cache-prune N    after the run, evict oldest cache entries\n"
     << "                     down to N bytes total (0 empties the\n"
     << "                     cache); requires --cache\n"
     << "  --cache-cap N      enforce an N-byte cache budget at store\n"
     << "                     time (auto-prune); requires --cache\n"
     << "  --cache-negative-ttl N  expire cached parse/port-error\n"
     << "                     diagnoses older than N seconds, so a file\n"
     << "                     fixed in place gets re-tried (0 = keep\n"
     << "                     forever, the default); requires --cache\n"
     << "  --out FILE         write per-job results as JSON lines\n"
     << "  --quiet            suppress per-job lines (summary only)\n"
     << "  --help             print this message and exit\n";
}

/// Progress line for one completed job; runs on scheduler worker threads
/// under a caller-held mutex.
void print_result(const gfre::core::BatchJobResult& result) {
  if (result.rejected) {
    std::printf("  [REJECTED] %-40s %s\n", result.name.c_str(),
                result.error.c_str());
  } else if (result.deadline_exceeded) {
    // Queued expiry carries the diagnosis in `error`; a mid-extraction
    // soft abort carries it in the report.
    std::printf("  [DEADLINE] %-40s %s\n", result.name.c_str(),
                !result.error.empty()
                    ? result.error.c_str()
                    : result.report.recovery.diagnosis.c_str());
  } else if (result.cancelled) {
    std::printf("  [CANCELLED] %-40s\n", result.name.c_str());
  } else if (!result.error.empty()) {
    std::printf("  [LOAD-ERROR] %-40s %s\n", result.name.c_str(),
                result.error.c_str());
  } else if (result.ok) {
    std::printf("  [ok%s] %-40s GF(2^%u) P(x)=%s\n",
                result.cache_hit ? ",cached" : "", result.name.c_str(),
                result.report.m,
                result.report.recovery.p.to_paper_string().c_str());
  } else {
    std::printf("  [FAILED%s] %-40s %s\n", result.cache_hit ? ",cached" : "",
                result.name.c_str(),
                result.report.recovery.diagnosis.c_str());
  }
}

// SIGINT/SIGTERM request an orderly wind-down: stop submitting, cancel
// what has not started, keep the summary.  sig_atomic_t + a polling wait
// is the whole mechanism — nothing async-signal-unsafe runs in the
// handler.
volatile std::sig_atomic_t g_signal = 0;

extern "C" void on_interrupt(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  using namespace gfre;

  std::string manifest;
  std::string out_path;
  std::string cache_dir;
  std::optional<std::uint64_t> cache_prune;
  std::uint64_t cache_cap = 0;
  std::uint64_t cache_negative_ttl = 0;
  std::uint64_t default_deadline_ms = 0;
  bool admission_reject = false;
  bool quiet = false;
  bool no_cache = false;
  core::BatchOptions batch_options;
  batch_options.threads = static_cast<unsigned>(configured_threads());
  core::FlowOptions defaults;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--jobs" && i + 1 < argc) {
        manifest = argv[++i];
      } else if (arg == "--threads" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          // stoul wraps "-1" to ~4 billion workers.
          std::cerr << "--threads wants a positive integer\n";
          usage(std::cerr);
          return 2;
        }
        const unsigned long threads = std::stoul(value);
        if (threads == 0 || threads > 4096) {
          std::cerr << "--threads wants 1..4096\n";
          usage(std::cerr);
          return 2;
        }
        batch_options.threads = static_cast<unsigned>(threads);
      } else if (arg == "--strategy" && i + 1 < argc) {
        const auto strategy = core::strategy_from_name(argv[++i]);
        if (!strategy.has_value()) {
          std::cerr << "unknown strategy '" << argv[i] << "'\n";
          usage(std::cerr);
          return 2;
        }
        defaults.strategy = *strategy;
      } else if (arg == "--ports" && i + 1 < argc) {
        const std::string spec = argv[++i];
        const auto c1 = spec.find(',');
        const auto c2 = spec.find(',', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos ||
            spec.find(',', c2 + 1) != std::string::npos) {
          usage(std::cerr);
          return 2;
        }
        defaults.a_base = spec.substr(0, c1);
        defaults.b_base = spec.substr(c1 + 1, c2 - c1 - 1);
        defaults.z_base = spec.substr(c2 + 1);
      } else if (arg == "--max-terms" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          // stoull silently wraps negatives to huge budgets.
          std::cerr << "--max-terms wants a non-negative integer\n";
          usage(std::cerr);
          return 2;
        }
        defaults.max_terms = std::stoull(value);
      } else if (arg == "--library" && i + 1 < argc) {
        defaults.library = argv[++i];
      } else if (arg == "--queue-cap" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          std::cerr << "--queue-cap wants a non-negative integer\n";
          usage(std::cerr);
          return 2;
        }
        batch_options.max_queued = std::stoull(value);
      } else if (arg == "--deadline-ms" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          std::cerr << "--deadline-ms wants a non-negative integer\n";
          usage(std::cerr);
          return 2;
        }
        default_deadline_ms = std::stoull(value);
      } else if (arg == "--admission" && i + 1 < argc) {
        const std::string mode = argv[++i];
        if (mode == "block") {
          admission_reject = false;
        } else if (mode == "reject") {
          admission_reject = true;
        } else {
          std::cerr << "--admission wants 'block' or 'reject'\n";
          usage(std::cerr);
          return 2;
        }
      } else if (arg == "--no-verify") {
        defaults.verify_with_golden = false;
      } else if (arg == "--no-cache") {
        no_cache = true;
        batch_options.memoize = false;
      } else if (arg == "--cache" && i + 1 < argc) {
        cache_dir = argv[++i];
      } else if (arg == "--cache-prune" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          std::cerr << "--cache-prune wants a non-negative byte count\n";
          usage(std::cerr);
          return 2;
        }
        cache_prune = std::stoull(value);
      } else if (arg == "--cache-cap" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          std::cerr << "--cache-cap wants a positive byte count\n";
          usage(std::cerr);
          return 2;
        }
        cache_cap = std::stoull(value);
      } else if (arg == "--cache-negative-ttl" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          std::cerr << "--cache-negative-ttl wants a non-negative second "
                       "count\n";
          usage(std::cerr);
          return 2;
        }
        cache_negative_ttl = std::stoull(value);
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help") {
        usage(std::cout);
        return 0;
      } else {
        usage(std::cerr);
        return 2;
      }
    }
  } catch (const std::exception& e) {
    // std::stoul/std::stoull reject non-numeric or overflowing values.
    std::cerr << "bad numeric argument: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }
  if (manifest.empty() || batch_options.threads == 0) {
    usage(std::cerr);
    return 2;
  }
  // The disk layer sits behind the in-memory memo; silently attaching it
  // while memoization is off would promise hits that can never happen.
  if (!cache_dir.empty() && no_cache) {
    std::cerr << "--cache requires memoization; drop --no-cache\n";
    return 2;
  }
  if (cache_prune.has_value() && cache_dir.empty()) {
    std::cerr << "--cache-prune needs --cache DIR\n";
    return 2;
  }
  if (cache_cap != 0 && cache_dir.empty()) {
    std::cerr << "--cache-cap needs --cache DIR\n";
    return 2;
  }
  if (cache_negative_ttl != 0 && cache_dir.empty()) {
    std::cerr << "--cache-negative-ttl needs --cache DIR\n";
    return 2;
  }
  if (admission_reject && batch_options.max_queued == 0) {
    std::cerr << "--admission reject needs --queue-cap N\n";
    return 2;
  }

  try {
    std::ifstream in(manifest);
    if (!in) throw Error("cannot open manifest '" + manifest + "'");
    const std::string base =
        std::filesystem::path(manifest).parent_path().string();
    if (!cache_dir.empty()) {
      batch_options.result_cache = std::make_shared<core::ResultCache>(
          cache_dir, cache_cap, cache_negative_ttl);
    }
    std::printf("gfre_batch: streaming '%s' onto %u shared workers "
                "(memo %s%s%s)\n",
                manifest.c_str(), batch_options.threads,
                batch_options.memoize ? "on" : "off",
                cache_dir.empty() ? "" : ", disk cache ",
                cache_dir.c_str());

    Timer clock;
    core::BatchScheduler scheduler(batch_options);
    // A Ctrl-C (or a supervisor's SIGTERM) mid-run used to kill the
    // process outright: no drain, no summaries, futures abandoned.  Now
    // it stops the stream, cancels everything not yet started via
    // drain_for(0), and still reports what DID run.
    std::signal(SIGINT, on_interrupt);
    std::signal(SIGTERM, on_interrupt);
    std::mutex print_mu;
    const auto on_complete = [&print_mu](const core::BatchJobResult& r) {
      std::lock_guard<std::mutex> lock(print_mu);
      print_result(r);
    };

    // Submit each job the moment its line parses — extraction of early
    // jobs overlaps manifest I/O, and nothing holds the whole job list.
    // A bad line stops the stream but must NOT discard the work already
    // in flight: everything submitted still drains into the report below
    // (the old parse-everything-first driver simply exited; a streaming
    // driver may be hours into a huge manifest when the typo surfaces).
    std::vector<std::future<core::BatchJobResult>> pending;
    std::string manifest_error;
    std::string line;
    int lineno = 0;
    while (g_signal == 0 && std::getline(in, line)) {
      ++lineno;
      std::optional<core::BatchJob> job;
      try {
        job = core::parse_manifest_line(line, lineno, manifest, base,
                                        defaults);
      } catch (const Error& e) {
        manifest_error = e.what();
        std::fprintf(stderr, "manifest error (submission stops, %zu "
                     "submitted jobs still complete): %s\n",
                     pending.size(), e.what());
        break;
      }
      if (!job.has_value()) continue;
      if (job->deadline_ms == 0) job->deadline_ms = default_deadline_ms;
      const auto callback =
          quiet ? core::BatchScheduler::Callback{} : on_complete;
      // Reject mode resolves over-cap submissions immediately (the future
      // is already fulfilled), so the stream never stalls; block mode
      // backpressures the manifest read itself.
      auto submission =
          admission_reject ? scheduler.try_submit(std::move(*job), callback)
                           : scheduler.submit(std::move(*job), callback);
      pending.push_back(std::move(submission.result));
    }
    if (pending.empty() && !manifest_error.empty()) return 2;
    if (pending.empty() && g_signal == 0) {
      std::cerr << "manifest '" << manifest << "' lists no jobs\n";
      return 2;
    }

    // Interruptible drain: wait in slices so a signal that lands while
    // jobs are in flight is honored within ~200 ms instead of after the
    // last extraction.  On interrupt, drain_for(0) immediately cancels
    // every job that has not started and waits only for the running
    // remainder — the report below then shows real results for finished
    // work and `cancelled` lines for the rest.
    while (g_signal == 0 &&
           !scheduler.wait_idle_for(std::chrono::milliseconds(200))) {
    }
    const int interrupted = g_signal;
    if (interrupted != 0) {
      std::fprintf(stderr,
                   "gfre_batch: interrupted by %s — cancelling queued "
                   "jobs, finishing in-flight extractions\n",
                   interrupted == SIGINT ? "SIGINT" : "SIGTERM");
      scheduler.drain_for(std::chrono::milliseconds(0));
    }
    const core::BatchStats stats = scheduler.stats();
    const double wall = clock.seconds();

    bool all_ok = true;
    bool report_written = true;
    std::size_t report_lines = 0;
    {
      // Futures resolve in completion order but are collected in
      // submission order, so the JSONL report matches the manifest.
      std::optional<JsonlWriter> writer;
      if (!out_path.empty()) writer.emplace(out_path);
      for (auto& future : pending) {
        const core::BatchJobResult result = future.get();
        all_ok = all_ok && result.ok;
        if (writer.has_value()) writer->write(core::result_json_line(result));
      }
      if (writer.has_value()) {
        writer->close();
        report_written = writer->ok();
        report_lines = writer->lines_written();
      }
    }
    if (!out_path.empty()) {
      std::printf("wrote %zu result lines to %s%s\n", report_lines,
                  out_path.c_str(), report_written ? "" : " (WRITE ERROR)");
    }

    std::printf(
        "batch: streamed %zu jobs in %.3f s (%.1f jobs/s) — %zu ok, "
        "%zu failed, %zu load errors, %zu cache hits, %zu cones "
        "(%zu cross-circuit steals)\n",
        stats.jobs, wall,
        wall > 0 ? static_cast<double>(stats.jobs) / wall : 0.0,
        stats.succeeded, stats.failed, stats.load_errors, stats.cache_hits,
        stats.cones_extracted, stats.cone_steals);
    // The admission-control CI smoke greps this line for exact
    // rejected/deadline-exceeded counts.
    std::printf("admission: queue peak %zu, %zu rejected, %zu "
                "deadline-exceeded, %zu memo evictions\n",
                stats.queue_peak, stats.rejected, stats.deadline_exceeded,
                stats.memo_evictions);
    if (batch_options.result_cache) {
      // The warm-run CI leg greps this line: an unchanged manifest's
      // second run must show every job as a disk hit and zero misses.
      std::printf("disk cache: %zu disk hits, %zu disk misses, %zu stores "
                  "(%s)\n",
                  stats.disk_hits, stats.disk_misses, stats.disk_stores,
                  batch_options.result_cache->dir().c_str());
      if (cache_prune.has_value()) {
        const auto pruned = batch_options.result_cache->prune(*cache_prune);
        std::printf("cache prune: removed %zu entries (%llu bytes), kept "
                    "%zu (%llu bytes <= budget %llu)\n",
                    pruned.entries_removed,
                    static_cast<unsigned long long>(pruned.bytes_removed),
                    pruned.entries_kept,
                    static_cast<unsigned long long>(pruned.bytes_kept),
                    static_cast<unsigned long long>(*cache_prune));
      }
    }
    // A truncated --out report or an unparseable manifest is a tool
    // failure even when every submitted job succeeded — downstream
    // pipelines consume that file / assume full manifest coverage.
    // An interrupt outranks both: the caller must be able to tell a run
    // it killed (128+signal, the shell convention) from one that failed
    // on its own.
    if (interrupted != 0) return 128 + interrupted;
    if (!report_written || !manifest_error.empty()) return 2;
    return all_ok ? 0 : 1;
  } catch (const gfre::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
