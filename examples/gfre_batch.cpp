// Batch reverse-engineering driver — the serving entry point for whole
// verification workloads:
//
//   gfre_batch --jobs <manifest> [options]
//
// The manifest lists one netlist per line with optional per-job overrides
// (see core/batch.hpp):
//
//   # path                     per-job options
//   rtl/mastrovito_m8.eqn
//   rtl/montgomery_m16.blif    strategy=indexed
//   drops/unknown.v            infer=1 max_terms=2000000
//
// All jobs execute over ONE shared thread pool at cone granularity
// (output-bit tasks from different circuits interleave), duplicate
// submissions are served from the content-hash cache, and every job's
// outcome is written as one JSON line with --out.
//
// Options:
//   --jobs FILE        job manifest (required)
//   --threads N        shared pool width (default: hardware)
//   --strategy NAME    default rewriting backend: packed|indexed|naive
//   --ports a,b,z      default operand/result port base names
//   --max-terms N      default per-bit term budget (0 = unlimited)
//   --no-verify        skip golden-model comparison by default
//   --no-cache         disable content-hash memoization
//   --out FILE         write per-job results as JSON lines
//   --quiet            suppress per-job lines (summary only)
//
// Exit code 0 iff every job succeeded.
#include <cstdio>
#include <iostream>
#include <string>

#include "core/batch.hpp"
#include "gf2poly/gf2_poly.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"
#include "util/options.hpp"

namespace {

void usage() {
  std::cerr << "usage: gfre_batch --jobs <manifest> [--threads N]\n"
            << "                  [--strategy packed|indexed|naive]\n"
            << "                  [--ports a,b,z] [--max-terms N]\n"
            << "                  [--no-verify] [--no-cache]\n"
            << "                  [--out report.jsonl] [--quiet]\n";
}

gfre::JsonLine result_line(const gfre::core::BatchJobResult& result) {
  gfre::JsonLine line;
  line.add("name", result.name);
  if (!result.path.empty()) line.add("path", result.path);
  line.add("ok", result.ok);
  line.add("cache_hit", result.cache_hit);
  if (!result.error.empty()) {
    line.add("error", result.error);
    return line;
  }
  const auto& report = result.report;
  line.add("m", report.m);
  line.add("equations", report.equations);
  line.add("circuit_class", gfre::core::to_string(report.recovery.circuit_class));
  if (report.m != 0) {
    line.add("p", report.recovery.p.to_paper_string());
    line.add("p_irreducible", report.recovery.p_is_irreducible);
  }
  if (!report.recovery.diagnosis.empty()) {
    line.add("diagnosis", report.recovery.diagnosis);
  }
  line.add("scrambled_outputs", report.output_permutation.has_value());
  line.add("verification", report.verification.detail);
  line.add("extract_seconds", report.extraction.wall_seconds);
  line.add("completed_seconds", result.seconds);
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gfre;

  std::string manifest;
  std::string out_path;
  bool quiet = false;
  core::BatchOptions batch_options;
  batch_options.threads = static_cast<unsigned>(configured_threads());
  core::FlowOptions defaults;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--jobs" && i + 1 < argc) {
        manifest = argv[++i];
      } else if (arg == "--threads" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          // stoul wraps "-1" to ~4 billion workers.
          std::cerr << "--threads wants a positive integer\n";
          usage();
          return 2;
        }
        const unsigned long threads = std::stoul(value);
        if (threads == 0 || threads > 4096) {
          std::cerr << "--threads wants 1..4096\n";
          usage();
          return 2;
        }
        batch_options.threads = static_cast<unsigned>(threads);
      } else if (arg == "--strategy" && i + 1 < argc) {
        const auto strategy = core::strategy_from_name(argv[++i]);
        if (!strategy.has_value()) {
          std::cerr << "unknown strategy '" << argv[i] << "'\n";
          usage();
          return 2;
        }
        defaults.strategy = *strategy;
      } else if (arg == "--ports" && i + 1 < argc) {
        const std::string spec = argv[++i];
        const auto c1 = spec.find(',');
        const auto c2 = spec.find(',', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos) {
          usage();
          return 2;
        }
        defaults.a_base = spec.substr(0, c1);
        defaults.b_base = spec.substr(c1 + 1, c2 - c1 - 1);
        defaults.z_base = spec.substr(c2 + 1);
      } else if (arg == "--max-terms" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          // stoull silently wraps negatives to huge budgets.
          std::cerr << "--max-terms wants a non-negative integer\n";
          usage();
          return 2;
        }
        defaults.max_terms = std::stoull(value);
      } else if (arg == "--no-verify") {
        defaults.verify_with_golden = false;
      } else if (arg == "--no-cache") {
        batch_options.memoize = false;
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        usage();
        return 2;
      }
    }
  } catch (const std::exception& e) {
    // std::stoul/std::stoull reject non-numeric or overflowing values.
    std::cerr << "bad numeric argument: " << e.what() << "\n";
    usage();
    return 2;
  }
  if (manifest.empty() || batch_options.threads == 0) {
    usage();
    return 2;
  }

  try {
    const auto jobs = core::parse_manifest(manifest, defaults);
    if (jobs.empty()) {
      std::cerr << "manifest '" << manifest << "' lists no jobs\n";
      return 2;
    }
    std::printf("gfre_batch: %zu jobs on %u shared workers (cache %s)\n",
                jobs.size(), batch_options.threads,
                batch_options.memoize ? "on" : "off");

    const auto batch = core::run_batch(jobs, batch_options);

    if (!quiet) {
      for (const auto& result : batch.results) {
        if (!result.error.empty()) {
          std::printf("  [LOAD-ERROR] %-40s %s\n", result.name.c_str(),
                      result.error.c_str());
        } else if (result.ok) {
          std::printf("  [ok%s] %-40s GF(2^%u) P(x)=%s\n",
                      result.cache_hit ? ",cached" : "",
                      result.name.c_str(), result.report.m,
                      result.report.recovery.p.to_paper_string().c_str());
        } else {
          std::printf("  [FAILED%s] %-40s %s\n",
                      result.cache_hit ? ",cached" : "",
                      result.name.c_str(),
                      result.report.recovery.diagnosis.c_str());
        }
      }
    }

    bool report_written = true;
    if (!out_path.empty()) {
      JsonlWriter writer(out_path);
      for (const auto& result : batch.results) {
        writer.write(result_line(result));
      }
      writer.close();
      report_written = writer.ok();
      std::printf("wrote %zu result lines to %s%s\n", writer.lines_written(),
                  out_path.c_str(), report_written ? "" : " (WRITE ERROR)");
    }

    const auto& stats = batch.stats;
    std::printf(
        "batch: %zu jobs in %.3f s (%.1f jobs/s) — %zu ok, %zu failed, "
        "%zu load errors, %zu cache hits, %zu cones (%zu cross-circuit "
        "steals)\n",
        stats.jobs, batch.wall_seconds,
        batch.wall_seconds > 0 ? static_cast<double>(stats.jobs) /
                                     batch.wall_seconds
                               : 0.0,
        stats.succeeded, stats.failed, stats.load_errors, stats.cache_hits,
        stats.cones_extracted, stats.cone_steals);
    // A truncated --out report is a tool failure even when every job
    // succeeded — downstream pipelines consume that file.
    if (!report_written) return 2;
    return batch.all_ok() ? 0 : 1;
  } catch (const gfre::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
