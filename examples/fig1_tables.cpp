// Figure 1 — two GF(2^4) multiplications, one per irreducible polynomial.
//
// Prints the paper's Figure 1 in full: the partial-product parallelogram,
// the two reduction tables (P1 = x^4+x^3+1 and P2 = x^4+x+1), the explicit
// output-bit expressions from Section II-C, and the XOR-count comparison
// from Section II-D — then cross-checks every expression against the
// ANFs extracted from actual generated netlists.
#include <iostream>

#include "core/parallel_extract.hpp"
#include "core/verify.hpp"
#include "gen/mastrovito.hpp"
#include "gf2m/field.hpp"

namespace {

using namespace gfre;

void print_parallelogram() {
  std::cout <<
      "Partial products (s_k = sum of the k-th anti-diagonal):\n"
      "              a3    a2    a1    a0\n"
      "              b3    b2    b1    b0\n"
      "            -----------------------\n"
      "            a3b0  a2b0  a1b0  a0b0\n"
      "      a3b1  a2b1  a1b1  a0b1\n"
      "    a3b2  a2b2  a1b2  a0b2\n"
      "  a3b3  a2b3  a1b3  a0b3\n"
      "  ----------------------------------\n"
      "    s6    s5    s4    s3    s2    s1    s0\n\n";
}

void print_field(const gf2m::Field& field) {
  const unsigned m = field.m();
  std::cout << "P(x) = " << field.modulus().to_string() << ":\n";
  // Reduction table rows s_m .. s_{2m-2} under columns z_{m-1} .. z_0.
  std::cout << "      ";
  for (unsigned i = m; i-- > 0;) std::cout << " z" << i << "  ";
  std::cout << "\n";
  for (unsigned k = 0; k <= 2 * m - 2; ++k) {
    std::cout << "  s" << k << ": ";
    for (unsigned i = m; i-- > 0;) {
      bool present;
      if (k < m) {
        present = (k == i);
      } else {
        present = field.reduction_rows()[k - m].coeff(i);
      }
      std::cout << (present ? (" s" + std::to_string(k) + (k > 9 ? " " : "  "))
                            : " .   ").substr(0, 5);
    }
    std::cout << "\n";
  }
  std::cout << "  reduction XOR count: " << field.reduction_xor_count()
            << "\n\n";
}

void print_extracted_expressions(const gf2m::Field& field) {
  const auto netlist = gen::generate_mastrovito(field);
  const auto ports = nl::multiplier_ports(netlist);
  const auto extraction = core::extract_all_outputs(netlist, 2);
  const auto golden = core::golden_anfs(field, ports);
  std::cout << "Extracted output-bit expressions ("
            << field.modulus().to_string() << "):\n";
  for (unsigned i = 0; i < field.m(); ++i) {
    std::cout << "  z" << i << " = "
              << extraction.anfs[i].to_string(
                     [&](anf::Var v) { return netlist.var_name(v); })
              << "\n";
    if (extraction.anfs[i] != golden[i]) {
      std::cout << "  ^^ MISMATCH vs golden model!\n";
    }
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const gf2m::Field p1(gf2::Poly{4, 3, 0});
  const gf2m::Field p2(gf2::Poly{4, 1, 0});

  std::cout << "Paper Figure 1: two GF(2^4) multiplications\n\n";
  print_parallelogram();
  print_field(p1);
  print_field(p2);

  std::cout << "Section II-D: number of XORs in the reduction is "
            << p1.reduction_xor_count() << " for P1 and "
            << p2.reduction_xor_count() << " for P2 (paper: 9 and 6)\n\n";

  print_extracted_expressions(p2);
  print_extracted_expressions(p1);

  return (p1.reduction_xor_count() == 9 && p2.reduction_xor_count() == 6)
             ? 0
             : 1;
}
