// Architecture survey — the Table IV experiment as a reusable tool.
//
// For a chosen field size (default: the paper's GF(2^233)), builds one
// Mastrovito multiplier per candidate irreducible polynomial and reports
// implementation cost (XOR count, depth) next to reverse-engineering cost
// (extraction runtime) — the correlation the paper discusses in
// Section IV.  For non-233 sizes the candidate set is synthesized from the
// trinomial/pentanomial search (low/high trinomial, low/spread
// pentanomial).
//
//   arch_survey [m]
#include <cstdlib>
#include <iostream>

#include "core/flow.hpp"
#include "gen/mastrovito.hpp"
#include "gf2m/field.hpp"
#include "gf2poly/catalog.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gfre;

  unsigned m = 233;
  if (argc > 1) m = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10));

  std::vector<gf2::CatalogEntry> candidates;
  if (m == 233) {
    candidates = gf2::architecture_polynomials_233();
  } else {
    candidates = gf2::contrasting_polynomials(m);
    if (candidates.empty()) {
      std::cerr << "no irreducible tri/pentanomial candidates for m=" << m
                << "\n";
      return 2;
    }
  }

  std::cout << "Surveying " << candidates.size()
            << " irreducible polynomials for GF(2^" << m << ")\n\n";

  TextTable table({"name", "P(x)", "terms", "reduction XORs", "#eqns",
                   "depth", "extract(s)", "recovered"});
  bool all_ok = true;
  for (const auto& entry : candidates) {
    const gf2m::Field field(entry.p);
    const auto netlist = gen::generate_mastrovito(field);
    core::FlowOptions options;
    options.threads = static_cast<unsigned>(configured_threads());
    const auto report = core::reverse_engineer(netlist, options);
    const bool ok = report.success && report.recovery.p == entry.p;
    all_ok &= ok;
    table.add_row({entry.name, entry.p.to_paper_string(),
                   std::to_string(entry.p.weight()),
                   fmt_thousands(field.reduction_xor_count()),
                   fmt_thousands(netlist.num_equations()),
                   std::to_string(netlist.depth()),
                   fmt_double(report.extraction.wall_seconds, 3),
                   ok ? "yes" : "NO"});
    std::cout << "  done " << entry.name << "\n";
  }
  std::cout << "\n" << table.render("Architecture survey") << "\n";
  std::cout << "The extraction cost tracks the reduction XOR count: "
               "polynomials with middle terms near the top of the field "
               "(spread pentanomials) make both the circuit and its "
               "reverse engineering more expensive.\n";
  return all_ok ? 0 : 1;
}
