// Command-line reverse-engineering tool — the deliverable a user would
// actually run on an unknown netlist:
//
//   reverse_engineer [options] <netlist.{eqn,blif,v}>
//   reverse_engineer --demo           (generate + analyze a sample)
//
// Options:
//   --threads N        extraction threads (default: hardware)
//   --ports a,b,z      operand/result port base names (default a,b,z)
//   --strategy NAME    rewriting backend: packed (default), indexed, naive
//   --naive            shorthand for --strategy naive
//   --library FILE     cell library (.lib subset) resolving non-builtin cells
//   --no-verify        skip the golden-model comparison
//   --trace BIT        print the Algorithm-1 trace of one output bit
//
// Exit code 0 iff a GF(2^m) multiplier was recognized, its P(x) is
// irreducible, and all checks passed.
#include <cstring>
#include <iostream>
#include <string>

#include "core/batch.hpp"
#include "core/flow.hpp"
#include "core/rewriter.hpp"
#include "gen/mastrovito.hpp"
#include "gf2m/field.hpp"
#include "gf2poly/irreducible.hpp"
#include "util/error.hpp"
#include "util/options.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: reverse_engineer [--threads N] [--ports a,b,z]\n"
      << "                        [--strategy packed|indexed|naive]\n"
      << "                        [--library cells.lib]\n"
      << "                        [--no-verify] [--trace BIT]\n"
      << "                        <netlist.eqn|netlist.blif|netlist.v>\n"
      << "       reverse_engineer --demo\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gfre;

  std::string path;
  core::FlowOptions options;
  options.threads = static_cast<unsigned>(configured_threads());
  bool demo = false;
  long trace_bit = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--naive") {
      options.strategy = core::RewriteStrategy::NaiveScan;
    } else if (arg == "--strategy" && i + 1 < argc) {
      const auto strategy = core::strategy_from_name(argv[++i]);
      if (!strategy.has_value()) {
        std::cerr << "unknown strategy '" << argv[i] << "'\n";
        usage();
        return 2;
      }
      options.strategy = *strategy;
    } else if (arg == "--no-verify") {
      options.verify_with_golden = false;
    } else if (arg == "--library" && i + 1 < argc) {
      options.library = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_bit = std::stol(argv[++i]);
    } else if (arg == "--ports" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const auto c1 = spec.find(',');
      const auto c2 = spec.find(',', c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos) {
        usage();
        return 2;
      }
      options.a_base = spec.substr(0, c1);
      options.b_base = spec.substr(c1 + 1, c2 - c1 - 1);
      options.z_base = spec.substr(c2 + 1);
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      path = arg;
    }
  }

  try {
    nl::Netlist netlist("demo");
    if (demo) {
      // A realistic demo: the NIST K-233 field, flattened Mastrovito.
      const gf2m::Field field(gf2::Poly{233, 74, 0});
      std::cout << "demo mode: generating a flattened Mastrovito multiplier "
                << "over " << field.to_string() << "\n";
      netlist = gen::generate_mastrovito(field);
    } else if (path.empty()) {
      usage();
      return 2;
    } else {
      netlist = core::load_netlist_file(path, options.library);
      std::cout << "loaded '" << path << "': " << netlist.num_equations()
                << " equations, " << netlist.inputs().size() << " inputs, "
                << netlist.outputs().size() << " outputs\n";
    }

    if (trace_bit >= 0) {
      const auto v = netlist.find_var(options.z_base +
                                      std::to_string(trace_bit));
      if (!v.has_value()) {
        std::cerr << "no output net " << options.z_base << trace_bit << "\n";
        return 2;
      }
      core::RewriteOptions rewrite_options;
      rewrite_options.strategy = options.strategy;
      rewrite_options.trace = &std::cout;
      std::cout << "--- Algorithm 1 trace of bit " << trace_bit << " ---\n";
      (void)core::extract_output_anf(netlist, *v, rewrite_options);
      std::cout << "\n";
    }

    const auto report = core::reverse_engineer(netlist, options);
    std::cout << report.summary();
    return report.success ? 0 : 1;
  } catch (const gfre::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
