// Obfuscated-circuit recovery — one campaign scenario as a CLI.
//
// Generates the clean multiplier, applies an obfuscation pass stack
// (src/obf/), derives the attacked netlist per the key mode, and runs the
// full reverse-engineering flow through the campaign driver (batch
// scheduler + content-hash cache — the same path the bench and the test
// wall use).  The outcome is printed and optionally written as one JSONL
// record in the shared campaign schema.
//
// Exit code 0 when the outcome matches the scenario's contract:
//   correct key / no key on a semantics-preserving stack => recovered;
//   wrong key => NOT recovered AND corruption proven by simulation;
//   free (unknown) key => NOT recovered, diagnosed without crashing;
//   fault stacks (stuckat/flip) => recover-or-diagnose (any completed
//   run).  1 when the contract is violated, 2 on usage errors.
//
// --emit-obf / --emit-key freeze the obfuscated netlist (.eqn) and its
// correct key to disk — how the data/obf/ corpus fixtures were made.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "netlist/io_eqn.hpp"
#include "obf/campaign.hpp"
#include "obf/passes.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"
#include "util/options.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: obfuscated_recovery [options]\n"
     << "\n"
     << "  --family NAME      mastrovito|montgomery|karatsuba|shiftadd\n"
     << "                     (default mastrovito)\n"
     << "  --m N              field width (default 16)\n"
     << "  --pass STACK       '+'-separated obfuscation passes, each\n"
     << "                     optionally ':N' strength: keygate, pxmix,\n"
     << "                     rewrite, stuckat, flip (default keygate)\n"
     << "  --strength N       strength for passes without an explicit\n"
     << "                     ':N' (default 2; 0 = identity)\n"
     << "  --key MODE         correct (de-obfuscate, default), wrong\n"
     << "                     (complement key), free (key inputs left\n"
     << "                     unknown), or an explicit 0/1 bit string\n"
     << "  --seed N           obfuscation seed (default 1)\n"
     << "  --threads N        flow worker threads (default: hardware)\n"
     << "  --max-terms N      per-bit term budget (default 2000000)\n"
     << "  --out FILE         write the scenario as one JSONL record\n"
     << "  --emit-obf FILE    write the obfuscated netlist as .eqn\n"
     << "  --emit-key FILE    write the correct key as a 0/1 line\n"
     << "  --quiet            suppress the human-readable summary\n"
     << "  --help             print this message and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gfre;

  obf::Scenario scenario;
  scenario.family = "mastrovito";
  scenario.m = 16;
  scenario.seed = 1;
  scenario.key_mode = obf::KeyMode::Correct;
  std::string pass_text = "keygate";
  unsigned default_strength = 2;
  obf::CampaignOptions campaign;
  campaign.threads = static_cast<unsigned>(configured_threads());
  std::string out_path, emit_obf, emit_key;
  bool quiet = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--family" && i + 1 < argc) {
        scenario.family = argv[++i];
      } else if (arg == "--m" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          std::cerr << "--m wants a positive integer\n";
          usage(std::cerr);
          return 2;
        }
        const unsigned long m = std::stoul(value);
        if (m < 2 || m > 1024) {
          std::cerr << "--m wants 2..1024\n";
          usage(std::cerr);
          return 2;
        }
        scenario.m = static_cast<unsigned>(m);
      } else if (arg == "--pass" && i + 1 < argc) {
        pass_text = argv[++i];
      } else if (arg == "--strength" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          std::cerr << "--strength wants a non-negative integer\n";
          usage(std::cerr);
          return 2;
        }
        default_strength = static_cast<unsigned>(std::stoul(value));
      } else if (arg == "--key" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (const auto mode = obf::key_mode_from_name(value)) {
          scenario.key_mode = *mode;
        } else {
          scenario.explicit_key = obf::parse_key(value);  // throws on junk
        }
      } else if (arg == "--seed" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          std::cerr << "--seed wants a non-negative integer\n";
          usage(std::cerr);
          return 2;
        }
        scenario.seed = std::stoull(value);
      } else if (arg == "--threads" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          std::cerr << "--threads wants a positive integer\n";
          usage(std::cerr);
          return 2;
        }
        const unsigned long threads = std::stoul(value);
        if (threads == 0 || threads > 4096) {
          std::cerr << "--threads wants 1..4096\n";
          usage(std::cerr);
          return 2;
        }
        campaign.threads = static_cast<unsigned>(threads);
      } else if (arg == "--max-terms" && i + 1 < argc) {
        const std::string value = argv[++i];
        if (value.empty() || value[0] == '-') {
          std::cerr << "--max-terms wants a non-negative integer\n";
          usage(std::cerr);
          return 2;
        }
        campaign.max_terms = std::stoull(value);
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--emit-obf" && i + 1 < argc) {
        emit_obf = argv[++i];
      } else if (arg == "--emit-key" && i + 1 < argc) {
        emit_key = argv[++i];
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help") {
        usage(std::cout);
        return 0;
      } else {
        std::cerr << "unknown argument '" << arg << "'\n";
        usage(std::cerr);
        return 2;
      }
    }
    scenario.passes = obf::parse_pass_stack(pass_text, default_strength);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }

  try {
    const obf::PreparedScenario prepared = obf::prepare_scenario(scenario);
    if (!emit_obf.empty()) {
      nl::write_eqn_file(prepared.obf.netlist, emit_obf);
      if (!quiet) std::printf("wrote %s\n", emit_obf.c_str());
    }
    if (!emit_key.empty()) {
      obf::write_key_file(prepared.obf.key, emit_key);
      if (!quiet) std::printf("wrote %s\n", emit_key.c_str());
    }

    const obf::CampaignReport report = obf::run_campaign({scenario}, campaign);
    const obf::ScenarioOutcome& outcome = report.outcomes.at(0);

    if (!quiet) {
      std::printf("scenario:   %s\n", outcome.name.c_str());
      std::printf("field:      GF(2^%u), P(x) = %s\n", outcome.m,
                  outcome.truth.to_string().c_str());
      std::printf("pass stack: %s   key: %s (%zu bits)\n",
                  outcome.pass.empty() ? "clean" : outcome.pass.c_str(),
                  outcome.key_mode.c_str(), outcome.key_bits);
      std::printf("equations:  clean %zu -> obfuscated %zu\n",
                  outcome.clean_equations, outcome.obf_equations);
      if (outcome.corrupts)
        std::printf("wrong key:  %s\n",
                    *outcome.corrupts ? "corrupts outputs (simulation)"
                                      : "NO CORRUPTION DETECTED");
      if (outcome.ok) {
        std::printf("recovered:  %s (%s)\n",
                    outcome.recovered_p.to_string().c_str(),
                    outcome.recovered ? "matches the true field"
                                      : "DOES NOT match the true field");
      } else {
        std::printf("diagnosed:  %s\n", outcome.diagnosis.c_str());
      }
      std::printf(
          "cost:       %.3fs extraction, peak terms %zu (%.2fx of clean)\n",
          outcome.seconds, outcome.peak_terms, outcome.blowup);
    }
    if (!out_path.empty()) {
      JsonlWriter writer(out_path);
      writer.write(obf::outcome_json(outcome));
      writer.close();
      if (!writer.ok()) {
        std::cerr << "error: failed writing " << out_path << "\n";
        return 2;
      }
    }

    // Scenario contract (see file header).
    bool preserving = true;
    for (const obf::PassSpec& spec : scenario.passes)
      preserving = preserving &&
                   (obf::semantics_preserving(spec.kind) || spec.strength == 0);
    bool contract_met;
    if (scenario.explicit_key) {
      const bool is_correct = *scenario.explicit_key == prepared.obf.key;
      contract_met = !preserving || outcome.recovered == is_correct;
    } else if (!preserving) {
      contract_met = outcome.ok || !outcome.diagnosis.empty();
    } else if (outcome.key_bits > 0 &&
               (scenario.key_mode == obf::KeyMode::Wrong ||
                scenario.key_mode == obf::KeyMode::Free)) {
      contract_met = !outcome.recovered;
      if (scenario.key_mode == obf::KeyMode::Wrong)
        contract_met = contract_met && outcome.corrupts.value_or(false);
    } else {
      contract_met = outcome.recovered;
    }
    if (!quiet)
      std::printf("contract:   %s\n", contract_met ? "MET" : "VIOLATED");
    return contract_met ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
