// Obfuscated-netlist recovery — the extensions working together.
//
// A hostile or merely unhelpful netlist rarely arrives with clean a/b/z
// port names and in-order output bits.  This example:
//   1. builds a GF(2^16) multiplier with opaque port names (u*/v*/y*),
//   2. scrambles the output bit order with a fixed permutation,
//   3. tech-maps it to a NAND/NOR/AOI-flavored cell library,
// then runs the flow with port inference and permutation recovery enabled
// and shows the exact P(x) coming back out.  A squarer is analyzed the
// same way at the end (linear-circuit extension).
#include <iostream>

#include "core/flow.hpp"
#include "core/parallel_extract.hpp"
#include "core/squarer.hpp"
#include "gen/mastrovito.hpp"
#include "gen/squarer.hpp"
#include "gf2m/field.hpp"
#include "opt/passes.hpp"

namespace {

using namespace gfre;

/// Rebuilds `netlist` with output *names* permuted: net that was z_i is
/// renamed to z_{perm[i]} (bus bit scrambling).
nl::Netlist scramble_outputs(const nl::Netlist& netlist,
                             const std::vector<unsigned>& perm,
                             const std::string& z_base) {
  nl::Netlist out(netlist.name() + "_scrambled");
  std::vector<nl::Var> map(netlist.num_vars());
  for (nl::Var v : netlist.inputs()) {
    map[v] = out.add_input(netlist.var_name(v));
  }
  // Output nets get their permuted names; everything else keeps its own.
  std::vector<std::string> rename(netlist.num_vars());
  for (unsigned i = 0; i < perm.size(); ++i) {
    rename[netlist.outputs()[i]] = z_base + std::to_string(perm[i]);
    out.reserve_name(rename[netlist.outputs()[i]]);
  }
  for (std::size_t g : netlist.topological_order()) {
    const nl::Gate& gate = netlist.gate(g);
    std::vector<nl::Var> inputs;
    for (nl::Var in : gate.inputs) inputs.push_back(map[in]);
    const std::string name = rename[gate.output];
    map[gate.output] = out.add_gate(gate.type, std::move(inputs), name);
  }
  // Outputs marked in *name index* order, i.e. declared order is the
  // scrambled order.
  for (unsigned i = 0; i < perm.size(); ++i) {
    out.mark_output(*out.find_var(z_base + std::to_string(i)));
  }
  return out;
}

}  // namespace

int main() {
  const gf2::Poly p{16, 5, 3, 1, 0};
  const gf2m::Field field(p);

  // 1-2. Opaque port names + scrambled output order.
  gen::MastrovitoOptions gen_options;
  gen_options.a_base = "u";
  gen_options.b_base = "v";
  gen_options.z_base = "y";
  auto netlist = gen::generate_mastrovito(field, gen_options);
  std::vector<unsigned> perm(field.m());
  for (unsigned i = 0; i < field.m(); ++i) {
    perm[i] = (7 * i + 3) % field.m();  // 7 coprime to 16: a real shuffle
  }
  netlist = scramble_outputs(netlist, perm, "y");

  // 3. Map onto an AOI-flavored library.
  opt::SynthesisOptions syn;
  syn.run_tech_map = true;
  netlist = opt::synthesize(netlist, syn);

  std::cout << "obfuscated netlist: " << netlist.num_equations()
            << " equations, ports u*/v*/y*, output bits scrambled by "
               "i -> (7i+3) mod 16, NAND/NOR/INV+XOR mapped\n\n";

  core::FlowOptions options;
  options.threads = 2;
  options.infer_ports = true;          // no port names given!
  options.try_output_permutation = true;
  const auto report = core::reverse_engineer(netlist, options);
  std::cout << report.summary() << "\n";

  const bool multiplier_ok = report.success && report.recovery.p == p &&
                             report.output_permutation.has_value();

  // Squarer recovery (linear-circuit extension).
  std::cout << "--- squarer over the same field ---\n";
  const auto squarer = gen::generate_squarer(field);
  const auto a_port = *nl::find_word_port(squarer, "a");
  const auto extraction = core::extract_all_outputs(squarer, 2);
  const auto squarer_recovery =
      core::recover_squarer(extraction.anfs, a_port);
  std::cout << "squarer netlist: " << squarer.num_equations()
            << " equations (pure XOR network)\n";
  if (squarer_recovery.recognized) {
    std::cout << "recognized Z = A^2 mod P with P(x) = "
              << squarer_recovery.p.to_string() << "\n";
  } else {
    std::cout << "squarer NOT recognized: " << squarer_recovery.diagnosis
              << "\n";
  }

  const bool ok = multiplier_ok && squarer_recovery.recognized &&
                  squarer_recovery.p == p;
  std::cout << "\n" << (ok ? "all recoveries exact" : "FAILURE") << "\n";
  return ok ? 0 : 1;
}
