// Netlist exporter — generates benchmark circuits for external tools.
//
// Writes a multiplier netlist in all three supported formats (.eqn, .blif,
// structural .v), optionally synthesized/tech-mapped first.  This is how a
// user would produce inputs for ABC, Yosys or the paper's own tool chain,
// and how the regression corpus under test was created.
//
//   export_netlists [m] [outdir]
//     m       field size (default 16; uses the paper polynomial when the
//             width is in the catalog, else the NIST-convention default)
//     outdir  output directory (default ".")
//
//   export_netlists --frontend-fixtures [m] [outdir] [cells.lib]
//     Regenerates the frozen frontend fixtures: a cell-mapped Mastrovito
//     multiplier rewritten onto the complex cells of the given library
//     (default data/cells_basic.lib), written both flat
//     (mastrovito_hier_m<m>_flat.eqn) and as hierarchical structural
//     Verilog (mastrovito_hier_m<m>.v + `include'd _cells.vh).  The two
//     forms parse into bit-identical netlists — tests/test_frontend.cpp
//     and the CI frontend smoke diff their flow reports.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "frontend/cell_library.hpp"
#include "frontend/emit_hier.hpp"
#include "gen/karatsuba.hpp"
#include "gen/mastrovito.hpp"
#include "gen/montgomery_gate.hpp"
#include "gen/shift_add.hpp"
#include "gf2m/field.hpp"
#include "gf2poly/catalog.hpp"
#include "gf2poly/irreducible.hpp"
#include "netlist/io_blif.hpp"
#include "netlist/io_eqn.hpp"
#include "netlist/io_verilog.hpp"
#include "opt/passes.hpp"

namespace {

/// Rewrites AND2/XOR2 gates onto the complex-cell repertoire
/// (AOI/OAI/MAJ3/MUX plus tie cells) without changing function or
/// topological order — the fixture generator's way of making a netlist
/// that genuinely needs a cell library to parse.  Deterministic: the k-th
/// AND2 (or XOR2) always picks the same form.
gfre::nl::Netlist complexify(const gfre::nl::Netlist& src) {
  using gfre::nl::CellType;
  using gfre::nl::Var;
  gfre::nl::Netlist out(src.name() + "_cells");
  std::vector<Var> map(src.num_vars());
  for (Var v : src.inputs()) map[v] = out.add_input(src.var_name(v));
  const Var tie0 = out.add_gate(CellType::Const0, {}, "tie0");
  const Var tie1 = out.add_gate(CellType::Const1, {}, "tie1");
  std::size_t and_k = 0, xor_k = 0, helper = 0;
  const auto fresh = [&] { return "cx" + std::to_string(helper++); };
  for (const gfre::nl::Gate& gate : src.gates()) {
    std::vector<Var> in;
    in.reserve(gate.inputs.size());
    for (Var v : gate.inputs) in.push_back(map[v]);
    const std::string name = src.var_name(gate.output);
    Var mapped;
    if (gate.type == CellType::And && in.size() == 2) {
      switch (and_k++ % 5) {
        case 0:  // a&b = !AOI21(a, b, 0)
          mapped = out.add_gate(
              CellType::Inv,
              {out.add_gate(CellType::Aoi21, {in[0], in[1], tie0}, fresh())},
              name);
          break;
        case 1:  // a&b = !OAI21(a, 0, b)  (= !!((a|0) & b))
          mapped = out.add_gate(
              CellType::Inv,
              {out.add_gate(CellType::Oai21, {in[0], tie0, in[1]}, fresh())},
              name);
          break;
        case 2:  // a&b = MAJ3(a, b, 0)
          mapped = out.add_gate(CellType::Maj3, {in[0], in[1], tie0}, name);
          break;
        case 3:  // a&b = !AOI22(a, b, 0, 1)
          mapped = out.add_gate(CellType::Inv,
                                {out.add_gate(CellType::Aoi22,
                                              {in[0], in[1], tie0, tie1},
                                              fresh())},
                                name);
          break;
        default:  // a&b = !OAI22(a, 0, b, 0)
          mapped = out.add_gate(CellType::Inv,
                                {out.add_gate(CellType::Oai22,
                                              {in[0], tie0, in[1], tie0},
                                              fresh())},
                                name);
          break;
      }
    } else if (gate.type == CellType::Xor && in.size() == 2) {
      switch (xor_k++ % 3) {
        case 0:  // a^b = MUX(a, b, !b)
          mapped = out.add_gate(
              CellType::Mux,
              {in[0], in[1],
               out.add_gate(CellType::Inv, {in[1]}, fresh())},
              name);
          break;
        case 1:  // a^b = XNOR(a, !b)
          mapped = out.add_gate(
              CellType::Xnor,
              {in[0], out.add_gate(CellType::Inv, {in[1]}, fresh())}, name);
          break;
        default:
          mapped = out.add_gate(gate.type, std::move(in), name);
          break;
      }
    } else {
      mapped = out.add_gate(gate.type, std::move(in), name);
    }
    map[gate.output] = mapped;
  }
  for (Var v : src.outputs()) out.mark_output(map[v]);
  return out;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  os << text;
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
}

int write_frontend_fixtures(unsigned m, const std::string& outdir,
                            const std::string& library_path) {
  using namespace gfre;
  const gf2::Poly p = gf2::has_paper_polynomial(m)
                          ? gf2::paper_polynomial(m).p
                          : gf2::default_irreducible(m);
  const gf2m::Field field(p);
  std::cout << "field: " << field.to_string() << "\n";

  const nl::Netlist flat = complexify(gen::generate_mastrovito(field));
  const std::string stem =
      outdir + "/mastrovito_hier_m" + std::to_string(m);
  nl::write_eqn_file(flat, stem + "_flat.eqn");
  std::cout << "wrote " << stem << "_flat.eqn  (" << flat.num_equations()
            << " equations)\n";

  frontend::HierEmitOptions options;
  options.chunks = 4;
  options.top_name = "mastrovito_hier_m" + std::to_string(m);
  options.include_file =
      "mastrovito_hier_m" + std::to_string(m) + "_cells.vh";
  options.library = std::make_shared<const frontend::CellLibrary>(
      frontend::load_cell_library_file(library_path));
  const frontend::HierEmitResult emitted =
      frontend::emit_hier_verilog(flat, options);
  write_text_file(stem + ".v", emitted.top);
  write_text_file(stem + "_cells.vh", emitted.included);
  std::cout << "wrote " << stem << ".v + " << stem << "_cells.vh  (library "
            << library_path << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gfre;

  unsigned m = 16;
  std::string outdir = ".";
  if (argc > 1 && std::string(argv[1]) == "--frontend-fixtures") {
    std::string library = "data/cells_basic.lib";
    if (argc > 2)
      m = static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));
    if (argc > 3) outdir = argv[3];
    if (argc > 4) library = argv[4];
    return write_frontend_fixtures(m, outdir, library);
  }
  if (argc > 1) m = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10));
  if (argc > 2) outdir = argv[2];

  const gf2::Poly p = gf2::has_paper_polynomial(m)
                          ? gf2::paper_polynomial(m).p
                          : gf2::default_irreducible(m);
  const gf2m::Field field(p);
  std::cout << "field: " << field.to_string() << "\n";

  struct Job {
    std::string name;
    nl::Netlist netlist;
  };
  std::vector<Job> jobs;
  jobs.push_back({"mastrovito", gen::generate_mastrovito(field)});
  {
    gen::MastrovitoOptions options;
    options.style = gen::MastrovitoOptions::Style::Matrix;
    jobs.push_back({"mastrovito_matrix",
                    gen::generate_mastrovito(field, options)});
  }
  jobs.push_back({"montgomery", gen::generate_montgomery(field)});
  jobs.push_back({"karatsuba", gen::generate_karatsuba(field)});
  jobs.push_back({"shiftadd", gen::generate_shift_add(field)});
  jobs.push_back({"mastrovito_syn",
                  opt::synthesize(gen::generate_mastrovito(field))});
  {
    opt::SynthesisOptions options;
    options.run_tech_map = true;
    jobs.push_back(
        {"mastrovito_mapped",
         opt::synthesize(gen::generate_mastrovito(field), options)});
  }

  for (const auto& job : jobs) {
    const std::string base =
        outdir + "/" + job.name + "_m" + std::to_string(m);
    nl::write_eqn_file(job.netlist, base + ".eqn");
    nl::write_blif_file(job.netlist, base + ".blif");
    nl::write_verilog_file(job.netlist, base + ".v");
    std::cout << "wrote " << base << ".{eqn,blif,v}  ("
              << job.netlist.num_equations() << " equations)\n";
  }
  std::cout << "\nanalyze any of them with:\n  reverse_engineer <file>\n";
  return 0;
}
