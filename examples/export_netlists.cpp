// Netlist exporter — generates benchmark circuits for external tools.
//
// Writes a multiplier netlist in all three supported formats (.eqn, .blif,
// structural .v), optionally synthesized/tech-mapped first.  This is how a
// user would produce inputs for ABC, Yosys or the paper's own tool chain,
// and how the regression corpus under test was created.
//
//   export_netlists [m] [outdir]
//     m       field size (default 16; uses the paper polynomial when the
//             width is in the catalog, else the NIST-convention default)
//     outdir  output directory (default ".")
#include <cstdlib>
#include <iostream>

#include "gen/karatsuba.hpp"
#include "gen/mastrovito.hpp"
#include "gen/montgomery_gate.hpp"
#include "gen/shift_add.hpp"
#include "gf2m/field.hpp"
#include "gf2poly/catalog.hpp"
#include "gf2poly/irreducible.hpp"
#include "netlist/io_blif.hpp"
#include "netlist/io_eqn.hpp"
#include "netlist/io_verilog.hpp"
#include "opt/passes.hpp"

int main(int argc, char** argv) {
  using namespace gfre;

  unsigned m = 16;
  std::string outdir = ".";
  if (argc > 1) m = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10));
  if (argc > 2) outdir = argv[2];

  const gf2::Poly p = gf2::has_paper_polynomial(m)
                          ? gf2::paper_polynomial(m).p
                          : gf2::default_irreducible(m);
  const gf2m::Field field(p);
  std::cout << "field: " << field.to_string() << "\n";

  struct Job {
    std::string name;
    nl::Netlist netlist;
  };
  std::vector<Job> jobs;
  jobs.push_back({"mastrovito", gen::generate_mastrovito(field)});
  {
    gen::MastrovitoOptions options;
    options.style = gen::MastrovitoOptions::Style::Matrix;
    jobs.push_back({"mastrovito_matrix",
                    gen::generate_mastrovito(field, options)});
  }
  jobs.push_back({"montgomery", gen::generate_montgomery(field)});
  jobs.push_back({"karatsuba", gen::generate_karatsuba(field)});
  jobs.push_back({"shiftadd", gen::generate_shift_add(field)});
  jobs.push_back({"mastrovito_syn",
                  opt::synthesize(gen::generate_mastrovito(field))});
  {
    opt::SynthesisOptions options;
    options.run_tech_map = true;
    jobs.push_back(
        {"mastrovito_mapped",
         opt::synthesize(gen::generate_mastrovito(field), options)});
  }

  for (const auto& job : jobs) {
    const std::string base =
        outdir + "/" + job.name + "_m" + std::to_string(m);
    nl::write_eqn_file(job.netlist, base + ".eqn");
    nl::write_blif_file(job.netlist, base + ".blif");
    nl::write_verilog_file(job.netlist, base + ".v");
    std::cout << "wrote " << base << ".{eqn,blif,v}  ("
              << job.netlist.num_equations() << " equations)\n";
  }
  std::cout << "\nanalyze any of them with:\n  reverse_engineer <file>\n";
  return 0;
}
