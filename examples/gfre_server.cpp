// gfre_server — the multi-process extraction daemon.
//
//   gfre_server --socket /tmp/gfre.sock --workers 4 --cache /var/cache/gfre
//
// Listens on a UNIX-domain socket (and optionally TCP on loopback) for
// the line-delimited JSON protocol in docs/PROTOCOL.md, and fans
// submitted jobs across forked worker processes — each a private
// BatchScheduler sharing ONE on-disk result cache.  A worker crash
// requeues its in-flight jobs (bounded retries, then a diagnosed
// `worker_failed`); SIGTERM/SIGINT drains the fleet and exits cleanly.
//
// examples/gfre_client.cpp is the matching manifest streamer; its JSONL
// output is diffable against a gfre_batch run of the same manifest.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "serve/server.hpp"
#include "util/error.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: gfre_server --socket PATH [--tcp PORT] [--workers N]\n"
     << "                   [--worker-threads N] [--queue-cap N]\n"
     << "                   [--admission block|reject] [--retries N]\n"
     << "                   [--no-respawn] [--cache DIR]\n"
     << "                   [--cache-cap BYTES] [--cache-negative-ttl SECS]\n"
     << "                   [--drain-grace-ms MS] [--quiet] [--help]\n"
     << "\n"
     << "  --socket PATH      UNIX-domain listening socket (required);\n"
     << "                     a stale socket file is replaced, a live\n"
     << "                     server on it is a startup error\n"
     << "  --tcp PORT         also listen on 127.0.0.1:PORT\n"
     << "  --workers N        forked worker processes (default 2)\n"
     << "  --worker-threads N extraction threads per worker (default 1)\n"
     << "  --queue-cap N      per-worker bound on dispatched-but-\n"
     << "                     unresolved jobs (0 = unbounded); the\n"
     << "                     admission decision at a full fleet follows\n"
     << "                     --admission\n"
     << "  --admission MODE   at a full fleet: 'block' the submitting\n"
     << "                     connection (default) or 'reject' the job\n"
     << "                     immediately with a diagnosed result\n"
     << "  --retries N        re-dispatches per job after worker deaths\n"
     << "                     before it resolves as worker_failed\n"
     << "                     (default 2)\n"
     << "  --no-respawn       do not fork replacements for dead workers\n"
     << "  --cache DIR        shared persistent result cache for the\n"
     << "                     whole fleet (created if absent)\n"
     << "  --cache-cap N      per-worker store-time byte budget on the\n"
     << "                     shared cache; requires --cache\n"
     << "  --cache-negative-ttl N  expire cached error diagnoses older\n"
     << "                     than N seconds; requires --cache\n"
     << "  --drain-grace-ms N wall-clock budget for draining on SIGTERM\n"
     << "                     and at worker EOF (default 30000)\n"
     << "  --quiet            suppress the startup banner\n"
     << "  --help             print this message and exit\n";
}

// SIGTERM/SIGINT must reach the poll loop without touching anything
// async-signal-unsafe: one byte down the server's stop pipe is the whole
// handshake.
int g_stop_fd = -1;

extern "C" void on_term(int) {
  if (g_stop_fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(g_stop_fd, &byte, 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gfre;

  serve::ServerOptions options;
  options.coordinator.workers = 2;
  options.coordinator.threads_per_worker = 1;
  bool quiet = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto want_value = [&](const char* flag) -> std::string {
        if (i + 1 >= argc) {
          std::cerr << flag << " wants a value\n";
          usage(std::cerr);
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--socket") {
        options.socket_path = want_value("--socket");
      } else if (arg == "--tcp") {
        const unsigned long port = std::stoul(want_value("--tcp"));
        if (port == 0 || port > 65535) {
          std::cerr << "--tcp wants a port in 1..65535\n";
          return 2;
        }
        options.tcp_port = static_cast<unsigned short>(port);
      } else if (arg == "--workers") {
        const unsigned long n = std::stoul(want_value("--workers"));
        if (n == 0 || n > 256) {
          std::cerr << "--workers wants 1..256\n";
          return 2;
        }
        options.coordinator.workers = static_cast<unsigned>(n);
      } else if (arg == "--worker-threads") {
        const unsigned long n = std::stoul(want_value("--worker-threads"));
        if (n == 0 || n > 4096) {
          std::cerr << "--worker-threads wants 1..4096\n";
          return 2;
        }
        options.coordinator.threads_per_worker = static_cast<unsigned>(n);
      } else if (arg == "--queue-cap") {
        options.coordinator.worker_queue_cap =
            std::stoull(want_value("--queue-cap"));
      } else if (arg == "--admission") {
        const std::string mode = want_value("--admission");
        if (mode == "block") {
          options.admission_reject = false;
        } else if (mode == "reject") {
          options.admission_reject = true;
        } else {
          std::cerr << "--admission wants 'block' or 'reject'\n";
          return 2;
        }
      } else if (arg == "--retries") {
        options.coordinator.max_retries =
            static_cast<unsigned>(std::stoul(want_value("--retries")));
      } else if (arg == "--no-respawn") {
        options.coordinator.respawn = false;
      } else if (arg == "--cache") {
        options.coordinator.worker.cache_dir = want_value("--cache");
      } else if (arg == "--cache-cap") {
        options.coordinator.worker.cache_cap_bytes =
            std::stoull(want_value("--cache-cap"));
      } else if (arg == "--cache-negative-ttl") {
        options.coordinator.worker.cache_negative_ttl_seconds =
            std::stoull(want_value("--cache-negative-ttl"));
      } else if (arg == "--drain-grace-ms") {
        const auto ms = std::stoull(want_value("--drain-grace-ms"));
        options.shutdown_grace = std::chrono::milliseconds(ms);
        options.coordinator.worker.drain_grace_ms = ms;
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help") {
        usage(std::cout);
        return 0;
      } else {
        usage(std::cerr);
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "bad numeric argument: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }
  if (options.socket_path.empty()) {
    usage(std::cerr);
    return 2;
  }
  if ((options.coordinator.worker.cache_cap_bytes != 0 ||
       options.coordinator.worker.cache_negative_ttl_seconds != 0) &&
      options.coordinator.worker.cache_dir.empty()) {
    std::cerr << "--cache-cap/--cache-negative-ttl need --cache DIR\n";
    return 2;
  }
  if (options.admission_reject &&
      options.coordinator.worker_queue_cap == 0) {
    std::cerr << "--admission reject needs --queue-cap N\n";
    return 2;
  }

  try {
    serve::Server server(options);
    g_stop_fd = server.stop_fd();
    std::signal(SIGTERM, on_term);
    std::signal(SIGINT, on_term);

    if (!quiet) {
      std::printf("gfre_server: listening on %s%s%s\n",
                  options.socket_path.c_str(),
                  options.tcp_port != 0 ? " and 127.0.0.1:" : "",
                  options.tcp_port != 0
                      ? std::to_string(options.tcp_port).c_str()
                      : "");
      // The CI smoke greps these lines to pick a victim pid mid-run.
      const auto pids = server.coordinator().worker_pids();
      for (std::size_t k = 0; k < pids.size(); ++k)
        std::printf("worker %zu: pid %d\n", k,
                    static_cast<int>(pids[k]));
      std::fflush(stdout);
    }

    server.run();  // returns after a stop byte + fleet drain

    const serve::CoordinatorStats stats = server.coordinator().stats();
    std::printf(
        "gfre_server: drained — %zu submitted, %zu resolved, %zu "
        "rejected, %zu worker deaths, %zu respawns, %zu requeues, %zu "
        "worker_failed\n",
        stats.submitted, stats.resolved, stats.rejected,
        stats.worker_deaths, stats.respawns, stats.requeues,
        stats.worker_failed);
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
