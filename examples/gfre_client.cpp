// gfre_client — streams a gfre_batch manifest to a running gfre_server.
//
//   gfre_client --socket /tmp/gfre.sock --jobs manifest.txt --out report.jsonl
//
// The manifest grammar is exactly gfre_batch's (core::parse_manifest_line
// parses it here, client-side, so relative netlist paths resolve against
// the manifest's directory before they cross the wire).  Results stream
// back as the fleet resolves them; the JSONL report is written in
// manifest order from the verbatim report lines the workers rendered —
// byte-identical fields to a local gfre_batch run of the same manifest,
// volatile timing fields aside.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "serve/wire.hpp"
#include "serve/worker.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"
#include "util/options.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: gfre_client (--socket PATH | --tcp PORT)\n"
     << "                   [--jobs manifest] [--out report.jsonl]\n"
     << "                   [--strategy packed|indexed|naive]\n"
     << "                   [--ports a,b,z] [--max-terms N]\n"
     << "                   [--library cells.lib]\n"
     << "                   [--deadline-ms N] [--no-verify]\n"
     << "                   [--stats] [--drain] [--ping]\n"
     << "                   [--quiet] [--help]\n"
     << "\n"
     << "  --socket PATH      connect to a gfre_server UNIX socket\n"
     << "  --tcp PORT         connect to 127.0.0.1:PORT instead\n"
     << "  --jobs FILE        manifest to stream (gfre_batch grammar);\n"
     << "                     relative paths resolve against the\n"
     << "                     manifest's directory, client-side\n"
     << "  --out FILE         write per-job results as JSON lines, in\n"
     << "                     manifest order (the workers' verbatim\n"
     << "                     report lines — diffable vs gfre_batch)\n"
     << "  --strategy NAME    default backend for jobs without one\n"
     << "  --ports a,b,z      default operand/result port base names\n"
     << "  --max-terms N      default per-bit term budget (0 = unlimited)\n"
     << "  --library FILE     default cell library; resolved server-side,\n"
     << "                     so pass a path the workers can read\n"
     << "  --deadline-ms N    default per-job wall-clock budget in ms\n"
     << "  --no-verify        skip golden-model comparison by default\n"
     << "  --stats            after the jobs (if any), print the server's\n"
     << "                     aggregated worker scheduler counters\n"
     << "  --drain            after the jobs (if any), wait for the\n"
     << "                     server to fully drain\n"
     << "  --ping             just check the server is answering\n"
     << "  --quiet            suppress per-job progress lines\n"
     << "  --help             print this message and exit\n";
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw gfre::Error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw gfre::Error("socket(): " + std::string(strerror(errno)));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = strerror(errno);
    ::close(fd);
    throw gfre::Error("cannot connect to " + path + ": " + why);
  }
  return fd;
}

int connect_tcp(unsigned short port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw gfre::Error("socket(): " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = strerror(errno);
    ::close(fd);
    throw gfre::Error("cannot connect to 127.0.0.1:" + std::to_string(port) +
                      ": " + why);
  }
  return fd;
}

/// Everything the reader thread decodes, keyed for the main thread.
struct Session {
  std::mutex mu;
  std::condition_variable cv;
  /// Ack order IS submission order on one connection, so the k-th
  /// `submitted` event maps server id -> manifest index k.
  std::map<std::uint64_t, std::size_t> id_to_index;
  std::size_t acks = 0;
  /// Result events that arrived before their ack (possible for
  /// rejections, whose callback fires inside submit) wait here.
  std::map<std::uint64_t, gfre::serve::WireObject> early_results;
  std::vector<std::optional<gfre::serve::WireObject>> results;
  std::optional<gfre::serve::WireObject> stats_reply;
  bool drained = false;
  bool pong = false;
  bool closed = false;

  void place_result(std::uint64_t id, gfre::serve::WireObject msg) {
    auto it = id_to_index.find(id);
    if (it == id_to_index.end()) {
      early_results.emplace(id, std::move(msg));
      return;
    }
    if (it->second >= results.size()) results.resize(it->second + 1);
    results[it->second] = std::move(msg);
  }
};

void reader_loop(int fd, Session& session) {
  gfre::serve::FdLineReader reader(fd);
  while (auto line = reader.read_line()) {
    if (line->empty()) continue;
    try {
      gfre::serve::WireObject msg = gfre::serve::parse_wire_object(*line);
      const std::string event =
          gfre::serve::require_string(msg, "event");
      std::lock_guard<std::mutex> lock(session.mu);
      if (event == "submitted") {
        const std::uint64_t id = gfre::serve::get_u64(msg, "id");
        session.id_to_index.emplace(id, session.acks++);
        auto early = session.early_results.find(id);
        if (early != session.early_results.end()) {
          session.place_result(id, std::move(early->second));
          session.early_results.erase(early);
        }
      } else if (event == "result") {
        // The id must be read BEFORE the same call moves `msg` — argument
        // evaluation order is unspecified, and gcc builds the by-value
        // parameter (emptying the map) first.
        const std::uint64_t result_id = gfre::serve::get_u64(msg, "id");
        session.place_result(result_id, std::move(msg));
      } else if (event == "stats") {
        session.stats_reply = std::move(msg);
      } else if (event == "drained") {
        session.drained = true;
      } else if (event == "pong") {
        session.pong = true;
      } else if (event == "error") {
        std::fprintf(stderr, "server error: %s\n",
                     gfre::serve::get_string(msg, "message").c_str());
      }
      session.cv.notify_all();
    } catch (const gfre::Error& e) {
      std::fprintf(stderr, "bad server message: %s\n", e.what());
    }
  }
  std::lock_guard<std::mutex> lock(session.mu);
  session.closed = true;
  session.cv.notify_all();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gfre;

  std::string socket_path;
  unsigned short tcp_port = 0;
  std::string manifest;
  std::string out_path;
  bool want_stats = false;
  bool want_drain = false;
  bool want_ping = false;
  bool quiet = false;
  std::uint64_t default_deadline_ms = 0;
  core::FlowOptions defaults;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--socket" && i + 1 < argc) {
        socket_path = argv[++i];
      } else if (arg == "--tcp" && i + 1 < argc) {
        const unsigned long port = std::stoul(argv[++i]);
        if (port == 0 || port > 65535) {
          std::cerr << "--tcp wants a port in 1..65535\n";
          return 2;
        }
        tcp_port = static_cast<unsigned short>(port);
      } else if (arg == "--jobs" && i + 1 < argc) {
        manifest = argv[++i];
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--strategy" && i + 1 < argc) {
        const auto strategy = core::strategy_from_name(argv[++i]);
        if (!strategy.has_value()) {
          std::cerr << "unknown strategy '" << argv[i] << "'\n";
          return 2;
        }
        defaults.strategy = *strategy;
      } else if (arg == "--ports" && i + 1 < argc) {
        const std::string spec = argv[++i];
        const auto c1 = spec.find(',');
        const auto c2 = spec.find(',', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos ||
            spec.find(',', c2 + 1) != std::string::npos) {
          usage(std::cerr);
          return 2;
        }
        defaults.a_base = spec.substr(0, c1);
        defaults.b_base = spec.substr(c1 + 1, c2 - c1 - 1);
        defaults.z_base = spec.substr(c2 + 1);
      } else if (arg == "--max-terms" && i + 1 < argc) {
        defaults.max_terms = std::stoull(argv[++i]);
      } else if (arg == "--library" && i + 1 < argc) {
        defaults.library = argv[++i];
      } else if (arg == "--deadline-ms" && i + 1 < argc) {
        default_deadline_ms = std::stoull(argv[++i]);
      } else if (arg == "--no-verify") {
        defaults.verify_with_golden = false;
      } else if (arg == "--stats") {
        want_stats = true;
      } else if (arg == "--drain") {
        want_drain = true;
      } else if (arg == "--ping") {
        want_ping = true;
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help") {
        usage(std::cout);
        return 0;
      } else {
        usage(std::cerr);
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "bad numeric argument: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }
  if (socket_path.empty() == (tcp_port == 0)) {
    std::cerr << "pick exactly one of --socket PATH / --tcp PORT\n";
    usage(std::cerr);
    return 2;
  }
  if (manifest.empty() && !want_stats && !want_drain && !want_ping) {
    std::cerr << "nothing to do: give --jobs, --stats, --drain or --ping\n";
    usage(std::cerr);
    return 2;
  }

  try {
    std::signal(SIGPIPE, SIG_IGN);
    const int fd = socket_path.empty() ? connect_tcp(tcp_port)
                                       : connect_unix(socket_path);
    Session session;
    // RAII so the reader joins on EVERY exit path — including exceptions
    // thrown below (a joinable thread's destructor is std::terminate).
    struct ReaderGuard {
      int fd;
      std::thread thread;
      ~ReaderGuard() {
        ::shutdown(fd, SHUT_RDWR);
        thread.join();
        ::close(fd);
      }
    } reader{fd, std::thread([fd, &session] { reader_loop(fd, session); })};
    const auto finish = [](int code) { return code; };
    const auto wait_or_eof = [&](auto predicate) {
      std::unique_lock<std::mutex> lock(session.mu);
      session.cv.wait(lock, [&] { return session.closed || predicate(); });
      return !session.closed || predicate();
    };

    if (want_ping) {
      serve::write_line(fd, R"({"op": "ping"})");
      if (!wait_or_eof([&] { return session.pong; })) {
        std::cerr << "server closed the connection without a pong\n";
        return finish(2);
      }
      if (!quiet) std::printf("pong\n");
      if (manifest.empty() && !want_stats && !want_drain) return finish(0);
    }

    std::size_t submitted = 0;
    std::vector<std::string> names;
    if (!manifest.empty()) {
      std::ifstream in(manifest);
      if (!in) throw Error("cannot open manifest '" + manifest + "'");
      const std::string base =
          std::filesystem::path(manifest).parent_path().string();
      std::string line;
      int lineno = 0;
      while (std::getline(in, line)) {
        ++lineno;
        auto job =
            core::parse_manifest_line(line, lineno, manifest, base, defaults);
        if (!job.has_value()) continue;
        if (job->deadline_ms == 0) job->deadline_ms = default_deadline_ms;
        if (job->name.empty()) job->name = job->path;
        names.push_back(job->name);
        // The id field here is a client-side ordinal; the server assigns
        // the real id and returns it in the `submitted` ack.
        if (!serve::write_line(
                fd, serve::submit_message(submitted + 1, *job))) {
          throw Error("connection lost while submitting");
        }
        ++submitted;
      }
      if (submitted == 0) throw Error("manifest lists no jobs");

      if (!wait_or_eof([&] {
            if (session.acks < submitted) return false;
            std::size_t resolved = 0;
            for (std::size_t i = 0; i < session.results.size(); ++i)
              resolved += session.results[i].has_value();
            return resolved >= submitted;
          })) {
        std::cerr << "server closed the connection mid-run ("
                  << submitted << " submitted)\n";
        return finish(2);
      }
    }

    if (want_drain) {
      serve::write_line(fd, R"({"op": "drain"})");
      if (!wait_or_eof([&] { return session.drained; })) return finish(2);
      if (!quiet) std::printf("server drained\n");
    }
    if (want_stats) {
      serve::write_line(fd, R"({"op": "stats"})");
      if (!wait_or_eof([&] { return session.stats_reply.has_value(); }))
        return finish(2);
      std::lock_guard<std::mutex> lock(session.mu);
      const serve::WireObject& stats = *session.stats_reply;
      // One line, grep-friendly — the CI warm-run check reads these.
      std::printf("server stats: %llu jobs, %llu succeeded, %llu disk "
                  "hits, %llu disk misses, %llu stores, %llu cones "
                  "extracted (%llu workers reporting)\n",
                  static_cast<unsigned long long>(
                      serve::get_u64(stats, "jobs")),
                  static_cast<unsigned long long>(
                      serve::get_u64(stats, "succeeded")),
                  static_cast<unsigned long long>(
                      serve::get_u64(stats, "disk_hits")),
                  static_cast<unsigned long long>(
                      serve::get_u64(stats, "disk_misses")),
                  static_cast<unsigned long long>(
                      serve::get_u64(stats, "disk_stores")),
                  static_cast<unsigned long long>(
                      serve::get_u64(stats, "cones_extracted")),
                  static_cast<unsigned long long>(
                      serve::get_u64(stats, "workers_reporting")));
    }

    bool all_ok = true;
    if (submitted != 0) {
      std::lock_guard<std::mutex> lock(session.mu);
      std::optional<JsonlWriter> writer;
      if (!out_path.empty()) writer.emplace(out_path);
      std::size_t ok = 0, failed = 0, worker_failed = 0, cache_hits = 0;
      for (std::size_t i = 0; i < submitted; ++i) {
        const serve::WireObject& result = *session.results[i];
        const bool job_ok = serve::get_bool(result, "ok");
        const std::string line = serve::require_string(result, "line");
        all_ok = all_ok && job_ok;
        ok += job_ok;
        failed += !job_ok;
        worker_failed += line.find("\"worker_failed") != std::string::npos;
        cache_hits += serve::get_bool(result, "cache_hit");
        if (!quiet)
          std::printf("  [%s] %-40s (worker %llu, attempt %llu)\n",
                      job_ok ? "ok" : "FAILED", names[i].c_str(),
                      static_cast<unsigned long long>(
                          serve::get_u64(result, "worker")),
                      static_cast<unsigned long long>(
                          serve::get_u64(result, "attempts")));
        if (writer.has_value()) writer->write_raw(line);
      }
      bool report_written = true;
      if (writer.has_value()) {
        writer->close();
        report_written = writer->ok();
        std::printf("wrote %zu result lines to %s%s\n",
                    writer->lines_written(), out_path.c_str(),
                    report_written ? "" : " (WRITE ERROR)");
      }
      std::printf("client: %zu jobs via server — %zu ok, %zu failed "
                  "(%zu worker_failed), %zu cache hits\n",
                  submitted, ok, failed, worker_failed, cache_hits);
      if (!report_written) return finish(2);
    }
    return finish(all_ok ? 0 : 1);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
