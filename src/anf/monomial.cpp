#include "anf/monomial.hpp"

#include <algorithm>

namespace gfre::anf {

namespace {
// 64-bit mix (splitmix64 finalizer) — order-sensitive accumulation over the
// sorted variable list gives a high-quality, platform-stable hash.
inline std::size_t mix(std::size_t h, std::uint64_t v) {
  std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Monomial Monomial::from_vars(std::vector<Var> vars) {
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  Monomial m;
  m.vars_ = std::move(vars);
  m.rehash();
  return m;
}

bool Monomial::contains(Var v) const {
  return std::binary_search(vars_.begin(), vars_.end(), v);
}

Monomial Monomial::times(const Monomial& other) const {
  if (other.is_one()) return *this;
  if (is_one()) return other;
  Monomial out;
  out.vars_.reserve(vars_.size() + other.vars_.size());
  std::set_union(vars_.begin(), vars_.end(), other.vars_.begin(),
                 other.vars_.end(), std::back_inserter(out.vars_));
  out.rehash();
  return out;
}

Monomial Monomial::times(Var v) const {
  if (contains(v)) return *this;
  Monomial out;
  out.vars_.reserve(vars_.size() + 1);
  const auto pos = std::lower_bound(vars_.begin(), vars_.end(), v);
  out.vars_.insert(out.vars_.end(), vars_.begin(), pos);
  out.vars_.push_back(v);
  out.vars_.insert(out.vars_.end(), pos, vars_.end());
  out.rehash();
  return out;
}

Monomial Monomial::without(Var v) const {
  if (!contains(v)) return *this;
  Monomial out;
  out.vars_.reserve(vars_.size() - 1);
  for (Var u : vars_) {
    if (u != v) out.vars_.push_back(u);
  }
  out.rehash();
  return out;
}

bool Monomial::operator<(const Monomial& rhs) const {
  if (vars_.size() != rhs.vars_.size()) {
    return vars_.size() < rhs.vars_.size();
  }
  return std::lexicographical_compare(vars_.begin(), vars_.end(),
                                      rhs.vars_.begin(), rhs.vars_.end());
}

void Monomial::rehash() {
  std::size_t h = kEmptyHash;
  for (Var v : vars_) h = mix(h, v);
  hash_ = h;
}

}  // namespace gfre::anf
