// Word-level SIMD kernel layer for the packed ANF engine.
//
// The packed engine's inner loops are word operations over fixed-size
// monomial payloads: 16-byte control-tag probes of the flat table,
// equality of 1..13-word monomials, OR-merge (monomial product over an
// idempotent variable set), XOR-merge and popcount degree checks.  This
// header exposes them as leaf kernels behind a function-pointer table so
// one binary carries a portable scalar implementation plus AVX2 and
// AVX-512 variants (compiled via gcc/clang `target` attributes — no
// ISA-specific compile flags leak into other translation units) and picks
// the widest one the host CPU supports at runtime.
//
// Every variant is bit-identical by contract: the engine's results never
// depend on the selected level, which is what lets GFRE_SIMD=scalar force
// the fallback for differential testing without perturbing FlowReports.
//
// Level selection is deliberately *not* part of core::RewriteOptions /
// FlowOptions: it cannot change any result, so it must not change result
// cache keys either.  It is a process-global: the GFRE_SIMD environment
// variable (scalar|avx2|avx512) clamps the detected level at startup, and
// set_level() overrides it at runtime (benches and the differential test
// suite use this).  Engines snapshot the level at construction.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gfre::anf::simd {

/// Instruction-set tiers, ordered.  Scalar routes the packed engine to the
/// portable open-addressed implementation; Avx2/Avx512 route it to the
/// tag-group kernel engine with the matching kernel table.
enum class Level : int {
  Scalar = 0,
  Avx2 = 1,
  Avx512 = 2,
};

const char* to_string(Level level);

/// Widest level this binary + CPU can execute (CPUID-based, cached).
Level detect_level();

/// The level new ConeEngines will use: detect_level() clamped by the
/// GFRE_SIMD environment variable and any set_level() override.
Level active_level();

/// Runtime override (clamped to detect_level()).  Returns the level that
/// actually became active.  Thread-safe; engines already constructed are
/// unaffected.
Level set_level(Level level);

/// The word-level kernels.  `n` counts 64-bit words.  Tag groups are 16
/// bytes; match functions return a 16-bit mask (bit i set <=> byte i
/// matched).
struct Kernels {
  /// Bytes of tags[0..15] equal to `tag`.
  std::uint16_t (*match_tags16)(const std::uint8_t* tags, std::uint8_t tag);
  /// Bytes of tags[0..15] with the high bit set (empty or tombstone).
  std::uint16_t (*match_free16)(const std::uint8_t* tags);
  /// The fused probe the engine's hot loop uses — one call per group:
  /// bits [15:0] bytes equal to `tag`, bits [31:16] bytes equal to 0xFF
  /// (empty), bits [47:32] bytes with the high bit set (empty|tombstone).
  std::uint64_t (*probe_group)(const std::uint8_t* tags, std::uint8_t tag);
  /// a[0..n) == b[0..n).
  bool (*eq_words)(const std::uint64_t* a, const std::uint64_t* b,
                   std::size_t n);
  /// dst = a | b, wordwise (monomial product: idempotent slot-set union).
  void (*or_words)(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n);
  /// dst = a ^ b, wordwise (mod-2 merge).
  void (*xor_words)(std::uint64_t* dst, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t n);
  /// Total set bits of w[0..n) (bitset-monomial degree).
  std::size_t (*popcount_words)(const std::uint64_t* w, std::size_t n);
};

/// Kernel table for a level, or nullptr when that level is not compiled
/// into this binary or not executable on this CPU.  The Scalar table is
/// always available.
const Kernels* kernels_for_level(Level level);

}  // namespace gfre::anf::simd
