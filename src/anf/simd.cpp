#include "anf/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string>

// The x86 variants are compiled through gcc/clang `target` attributes so
// this translation unit (and the rest of the library) builds with plain
// baseline flags; only the attributed function bodies contain AVX
// instructions, and they are only ever called after a CPUID check.
#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define GFRE_X86_KERNELS 1
#include <immintrin.h>
#else
#define GFRE_X86_KERNELS 0
#endif

namespace gfre::anf::simd {

const char* to_string(Level level) {
  switch (level) {
    case Level::Scalar: return "scalar";
    case Level::Avx2: return "avx2";
    case Level::Avx512: return "avx512";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Portable scalar kernels — the reference semantics every variant must match.
// ---------------------------------------------------------------------------

namespace {

std::uint16_t scalar_match_tags16(const std::uint8_t* tags, std::uint8_t tag) {
  std::uint16_t mask = 0;
  for (unsigned i = 0; i < 16; ++i) {
    mask = static_cast<std::uint16_t>(mask |
                                      (static_cast<std::uint16_t>(tags[i] == tag)
                                       << i));
  }
  return mask;
}

std::uint16_t scalar_match_free16(const std::uint8_t* tags) {
  std::uint16_t mask = 0;
  for (unsigned i = 0; i < 16; ++i) {
    mask = static_cast<std::uint16_t>(
        mask | (static_cast<std::uint16_t>((tags[i] & 0x80u) != 0) << i));
  }
  return mask;
}

std::uint64_t scalar_probe_group(const std::uint8_t* tags, std::uint8_t tag) {
  std::uint64_t match = 0, empty = 0, free_ = 0;
  for (unsigned i = 0; i < 16; ++i) {
    match |= static_cast<std::uint64_t>(tags[i] == tag) << i;
    empty |= static_cast<std::uint64_t>(tags[i] == 0xFFu) << i;
    free_ |= static_cast<std::uint64_t>((tags[i] & 0x80u) != 0) << i;
  }
  return match | (empty << 16) | (free_ << 32);
}

bool scalar_eq_words(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) {
  std::uint64_t diff = 0;
  for (std::size_t i = 0; i < n; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void scalar_or_words(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
}

void scalar_xor_words(std::uint64_t* dst, const std::uint64_t* a,
                      const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] ^ b[i];
}

std::size_t scalar_popcount_words(const std::uint64_t* w, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(w[i]));
  }
  return total;
}

constexpr Kernels kScalarKernels{
    scalar_match_tags16, scalar_match_free16,  scalar_probe_group,
    scalar_eq_words,     scalar_or_words,      scalar_xor_words,
    scalar_popcount_words,
};

#if GFRE_X86_KERNELS

// ---------------------------------------------------------------------------
// AVX2 tier (Haswell+): 128-bit tag probes, 256-bit word kernels, hardware
// popcount.
// ---------------------------------------------------------------------------

__attribute__((target("avx2")))
std::uint16_t avx2_match_tags16(const std::uint8_t* tags, std::uint8_t tag) {
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  const __m128i eq = _mm_cmpeq_epi8(group, _mm_set1_epi8(static_cast<char>(tag)));
  return static_cast<std::uint16_t>(_mm_movemask_epi8(eq));
}

__attribute__((target("avx2")))
std::uint16_t avx2_match_free16(const std::uint8_t* tags) {
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  return static_cast<std::uint16_t>(_mm_movemask_epi8(group));
}

__attribute__((target("avx2")))
std::uint64_t avx2_probe_group(const std::uint8_t* tags, std::uint8_t tag) {
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  const std::uint64_t match = static_cast<std::uint32_t>(_mm_movemask_epi8(
      _mm_cmpeq_epi8(group, _mm_set1_epi8(static_cast<char>(tag)))));
  const std::uint64_t empty = static_cast<std::uint32_t>(_mm_movemask_epi8(
      _mm_cmpeq_epi8(group, _mm_set1_epi8(static_cast<char>(0xFF)))));
  const std::uint64_t free_ =
      static_cast<std::uint32_t>(_mm_movemask_epi8(group));
  return match | (empty << 16) | (free_ << 32);
}

__attribute__((target("avx2")))
bool avx2_eq_words(const std::uint64_t* a, const std::uint64_t* b,
                   std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_or_si256(acc, _mm256_xor_si256(va, vb));
  }
  std::uint64_t tail = 0;
  for (; i < n; ++i) tail |= a[i] ^ b[i];
  return _mm256_testz_si256(acc, acc) != 0 && tail == 0;
}

__attribute__((target("avx2")))
void avx2_or_words(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

__attribute__((target("avx2")))
void avx2_xor_words(std::uint64_t* dst, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] ^ b[i];
}

__attribute__((target("popcnt")))
std::size_t avx2_popcount_words(const std::uint64_t* w, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(w[i]));
  }
  return static_cast<std::size_t>(total);
}

constexpr Kernels kAvx2Kernels{
    avx2_match_tags16, avx2_match_free16, avx2_probe_group,
    avx2_eq_words,     avx2_or_words,     avx2_xor_words,
    avx2_popcount_words,
};

// ---------------------------------------------------------------------------
// AVX-512 tier (F+BW+VL+DQ — the Skylake-SP baseline, no VPOPCNTDQ
// dependency): mask-register tag probes, 512-bit word kernels with masked
// tails.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f,avx512bw,avx512vl,avx512dq")))
std::uint16_t avx512_match_tags16(const std::uint8_t* tags, std::uint8_t tag) {
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  return static_cast<std::uint16_t>(
      _mm_cmpeq_epi8_mask(group, _mm_set1_epi8(static_cast<char>(tag))));
}

__attribute__((target("avx512f,avx512bw,avx512vl,avx512dq")))
std::uint16_t avx512_match_free16(const std::uint8_t* tags) {
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  return static_cast<std::uint16_t>(
      _mm_movepi8_mask(group));  // sign bit per byte
}

__attribute__((target("avx512f,avx512bw,avx512vl,avx512dq")))
std::uint64_t avx512_probe_group(const std::uint8_t* tags, std::uint8_t tag) {
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  const std::uint64_t match = static_cast<std::uint16_t>(
      _mm_cmpeq_epi8_mask(group, _mm_set1_epi8(static_cast<char>(tag))));
  const std::uint64_t empty = static_cast<std::uint16_t>(
      _mm_cmpeq_epi8_mask(group, _mm_set1_epi8(static_cast<char>(0xFF))));
  const std::uint64_t free_ =
      static_cast<std::uint16_t>(_mm_movepi8_mask(group));
  return match | (empty << 16) | (free_ << 32);
}

__attribute__((target("avx512f,avx512bw,avx512vl,avx512dq")))
bool avx512_eq_words(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    if (_mm512_cmpneq_epi64_mask(va, vb) != 0) return false;
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(tail, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(tail, b + i);
    if (_mm512_cmpneq_epi64_mask(va, vb) != 0) return false;
  }
  return true;
}

__attribute__((target("avx512f,avx512bw,avx512vl,avx512dq")))
void avx512_or_words(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, _mm512_or_si512(_mm512_loadu_si512(a + i),
                                                 _mm512_loadu_si512(b + i)));
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i v = _mm512_or_si512(_mm512_maskz_loadu_epi64(tail, a + i),
                                      _mm512_maskz_loadu_epi64(tail, b + i));
    _mm512_mask_storeu_epi64(dst + i, tail, v);
  }
}

__attribute__((target("avx512f,avx512bw,avx512vl,avx512dq")))
void avx512_xor_words(std::uint64_t* dst, const std::uint64_t* a,
                      const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                                  _mm512_loadu_si512(b + i)));
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i v = _mm512_xor_si512(_mm512_maskz_loadu_epi64(tail, a + i),
                                       _mm512_maskz_loadu_epi64(tail, b + i));
    _mm512_mask_storeu_epi64(dst + i, tail, v);
  }
}

__attribute__((target("popcnt")))
std::size_t avx512_popcount_words(const std::uint64_t* w, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(w[i]));
  }
  return static_cast<std::size_t>(total);
}

constexpr Kernels kAvx512Kernels{
    avx512_match_tags16, avx512_match_free16, avx512_probe_group,
    avx512_eq_words,     avx512_or_words,     avx512_xor_words,
    avx512_popcount_words,
};

#endif  // GFRE_X86_KERNELS

// ---------------------------------------------------------------------------
// Detection + level selection
// ---------------------------------------------------------------------------

Level detect_level_uncached() {
#if GFRE_X86_KERNELS
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("popcnt")) {
    return Level::Avx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
    return Level::Avx2;
  }
#endif
  return Level::Scalar;
}

/// GFRE_SIMD: "scalar" | "avx2" | "avx512" (clamped to what runs here);
/// anything else (including unset) means "use the detected level".
Level env_clamped_level(Level detected) {
  const char* env = std::getenv("GFRE_SIMD");
  if (env == nullptr || *env == '\0') return detected;
  const std::string value(env);
  Level wanted = detected;
  if (value == "scalar") wanted = Level::Scalar;
  else if (value == "avx2") wanted = Level::Avx2;
  else if (value == "avx512") wanted = Level::Avx512;
  return wanted < detected ? wanted : detected;
}

std::atomic<int>& active_level_storage() {
  static std::atomic<int> level{
      static_cast<int>(env_clamped_level(detect_level_uncached()))};
  return level;
}

}  // namespace

Level detect_level() {
  static const Level detected = detect_level_uncached();
  return detected;
}

Level active_level() {
  return static_cast<Level>(
      active_level_storage().load(std::memory_order_relaxed));
}

Level set_level(Level level) {
  const Level clamped = level < detect_level() ? level : detect_level();
  active_level_storage().store(static_cast<int>(clamped),
                               std::memory_order_relaxed);
  return clamped;
}

const Kernels* kernels_for_level(Level level) {
  switch (level) {
    case Level::Scalar:
      return &kScalarKernels;
#if GFRE_X86_KERNELS
    case Level::Avx2:
      return detect_level() >= Level::Avx2 ? &kAvx2Kernels : nullptr;
    case Level::Avx512:
      return detect_level() >= Level::Avx512 ? &kAvx512Kernels : nullptr;
#else
    case Level::Avx2:
    case Level::Avx512:
      return nullptr;
#endif
  }
  return nullptr;
}

}  // namespace gfre::anf::simd
