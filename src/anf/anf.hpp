// Algebraic normal form (positive-polarity Reed-Muller) polynomials:
// multilinear polynomials over GF(2) in Boolean variables.
//
// This is the expression domain of Algorithm 1: a polynomial is a *set* of
// monomials, and addition toggles set membership — which implements the
// "remove monomials with even coefficient" simplification (lines 7-11 of
// Algorithm 1) structurally, with no coefficient bookkeeping.  Because the
// ANF of a Boolean function is unique, extracted expressions are canonical:
// two netlists implement the same function iff their extracted ANFs are
// identical sets (this is what makes Algorithm 2's membership test and the
// golden-model comparison sound).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "anf/monomial.hpp"

namespace gfre::anf {

/// A multilinear polynomial over GF(2) (XOR of AND-monomials).
class Anf {
 public:
  using MonomialSet = std::unordered_set<Monomial, MonomialHash>;

  /// The zero polynomial.
  Anf() = default;

  static Anf zero() { return Anf(); }
  static Anf one();
  static Anf var(Var v);
  static Anf from_monomials(std::vector<Monomial> monomials);

  bool is_zero() const { return monomials_.empty(); }
  bool is_one() const;

  /// Number of monomials.
  std::size_t size() const { return monomials_.size(); }

  /// Reserves hash capacity for n monomials — bulk construction
  /// (operator+=, operator*, from_monomials, engine conversions) calls
  /// this to avoid incremental rehashing.
  void reserve(std::size_t n) { monomials_.reserve(n); }

  /// Adds m (mod 2): inserts if absent, cancels if present.
  /// Returns true if the monomial is present after the toggle.
  bool toggle(const Monomial& m);

  bool contains(const Monomial& m) const {
    return monomials_.count(m) != 0;
  }

  const MonomialSet& monomials() const { return monomials_; }

  Anf& operator+=(const Anf& rhs);
  Anf operator+(const Anf& rhs) const;

  /// Full polynomial product with idempotent variables (x*x = x) and mod-2
  /// coefficient cancellation.
  Anf operator*(const Anf& rhs) const;

  /// Product with a single monomial.
  Anf times(const Monomial& m) const;

  bool operator==(const Anf& rhs) const { return monomials_ == rhs.monomials_; }
  bool operator!=(const Anf& rhs) const { return !(*this == rhs); }

  /// Reference substitution: replaces variable v by expression e everywhere
  /// (v must not occur in e).  This is the naive whole-polynomial scan; the
  /// core rewriter supersedes it with an occurrence-indexed version, and the
  /// ablation bench compares the two.
  void substitute(Var v, const Anf& e);

  /// True if variable v occurs in any monomial (linear scan).
  bool mentions(Var v) const;

  /// All distinct variables, ascending.
  std::vector<Var> variables() const;

  /// Highest monomial degree (0 for constants/zero).
  unsigned degree() const;

  /// Evaluates under an assignment callback.
  bool eval(const std::function<bool(Var)>& assignment) const;

  /// Monomials in canonical (graded-lex) order — deterministic iteration
  /// for printing, hashing and comparison dumps.
  std::vector<Monomial> sorted_monomials() const;

  /// Renders like "a0*b0+a1*b1+1" with a variable-name callback.
  std::string to_string(
      const std::function<std::string(Var)>& name) const;

  /// ANF of an arbitrary Boolean function given as a truth table over the
  /// listed inputs (truth_table[i] is the output for input valuation i,
  /// with inputs[0] the least significant selector bit).  Computed by the
  /// XOR Möbius transform.  This is how every cell — including AOI/OAI
  /// complex gates — gets its algebraic model (Eq. 1 generalized).
  static Anf from_truth_table(const std::vector<Var>& inputs,
                              const std::vector<bool>& truth_table);

 private:
  MonomialSet monomials_;
};

}  // namespace gfre::anf
