// Packed cone-local ANF engine — the cache-friendly backend of Algorithm 1.
//
// Backward rewriting only ever manipulates variables inside one output
// bit's fanin cone (Theorem 2), so the engine works in a *cone-local* id
// space: the rewriter densely remaps cone variables to slots 0..k-1 and
// this engine packs each monomial as a fixed-width bitset over those slots
// (one, two, four or eight 64-bit words chosen per cone), with a sorted
// inline-array spill representation for cones wider than 512 variables —
// wide enough for the NIST binary-curve multipliers (m=163..571), whose
// Montgomery cones reach hundreds of thousands of variables.  Monomials
// live in an open-addressed flat hash table with in-place mod-2 toggling —
// no per-monomial heap allocation, no node-based buckets — and the
// variable -> occurrence index stores small (entry id, generation)
// handles instead of monomial copies, so a gate substitution touches only
// the monomials that actually mention the substituted variable.
//
// Two implementations sit behind ConeEngine, selected per cone by
// anf::simd::active_level():
//   scalar   the portable linear-probing engine (no intrinsics) — also
//            the differential baseline forced by GFRE_SIMD=scalar;
//   kernel   a 16-byte control-tag table (SwissTable-style group probes)
//            whose word loops run through the anf/simd.hpp kernel layer
//            (AVX2 / AVX-512 picked at runtime) and whose tables, buckets
//            and scratch all live in a per-thread anf::MonotonicArena —
//            zero steady-state heap allocations per cone.
// Both produce bit-identical polynomials and statistics; the level is a
// pure speed knob and deliberately not part of any result-cache key.
//
// The engine is representation-agnostic to its caller: core/rewriter.cpp
// feeds it slot-space substitution steps and converts the final polynomial
// back to the canonical anf::Anf, so Algorithm 2, verification and
// printing are untouched.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "anf/simd.hpp"

namespace gfre::anf::packed {

/// Cone-local variable id.  The rewriter guarantees slots are dense in
/// [0, num_slots) with num_slots <= kMaxSlots.
using Slot = std::uint32_t;

/// A monomial in slot space: strictly ascending slot list (empty = 1).
using SlotMono = std::vector<Slot>;

/// Monomial representation picked per cone from its variable count.
enum class RepKind {
  Bits64,   ///< one 64-bit word   (cone <= 64 variables)
  Bits128,  ///< two words         (cone <= 128 variables)
  Bits256,  ///< four words        (cone <= 256 variables)
  Bits512,  ///< eight words       (cone <= 512 variables)
  Sparse,   ///< sorted inline slot array — the wide-cone spill path
};

const char* to_string(RepKind kind);

/// Largest cone the engine can host.  Slots are 32-bit; the cap exists to
/// bound the dense per-slot occurrence index, and comfortably covers the
/// widest NIST-size cones observed (Montgomery m=571 ~ 5.8e5 variables).
inline constexpr std::size_t kMaxSlots = std::size_t{1} << 22;

/// Maximum monomial degree the sparse spill representation holds inline.
/// Exceeding it raises Overflow; the caller falls back to the legacy
/// engine for that cone.
inline constexpr unsigned kSparseMaxDegree = 25;

/// Width selection: smallest fixed-width bitset that covers the cone,
/// else the sparse spill path.
RepKind rep_for_cone(std::size_t cone_vars);

/// Raised when a cone exceeds the engine's packing limits (too many cone
/// variables for the slot space, or a monomial too wide for the sparse
/// representation).  Callers treat it as "use the legacy backend".
struct Overflow : std::runtime_error {
  explicit Overflow(const std::string& what) : std::runtime_error(what) {}
};

/// A gate's ANF in slot space: terms stored back to back in one flat
/// buffer, so building the per-gate expression costs zero allocations in
/// steady state (callers keep one TermList and clear() it per gate).
class TermList {
 public:
  void clear() {
    slots_.clear();
    ends_.clear();
  }

  /// Opens a new term; an immediately closed term is the constant 1.
  void begin_term() { open_ = slots_.size(); }
  void push_slot(Slot s) { slots_.push_back(s); }
  /// Closes the open term, canonicalizing it (sorted, idempotent slots
  /// deduplicated).  Terms of <= 2 slots — the overwhelming majority, as
  /// generated netlists are dominated by 2-input cells — take an inline
  /// compare/swap instead of the generic sort+unique.
  void end_term() {
    const std::size_t n = slots_.size() - open_;
    if (n <= 2) {
      if (n == 2) {
        Slot& a = slots_[open_];
        Slot& b = slots_[open_ + 1];
        if (a > b) {
          std::swap(a, b);
        } else if (a == b) {
          slots_.pop_back();  // idempotent: x*x = x
        }
      }
      ends_.push_back(static_cast<std::uint32_t>(slots_.size()));
      return;
    }
    std::sort(slots_.begin() + static_cast<std::ptrdiff_t>(open_),
              slots_.end());
    slots_.erase(std::unique(slots_.begin() +
                                 static_cast<std::ptrdiff_t>(open_),
                             slots_.end()),
                 slots_.end());
    ends_.push_back(static_cast<std::uint32_t>(slots_.size()));
  }

  /// Convenience: appends a whole term at once.
  void add_term(const SlotMono& mono) {
    begin_term();
    for (Slot s : mono) push_slot(s);
    end_term();
  }

  std::size_t term_count() const { return ends_.size(); }
  const Slot* term_begin(std::size_t i) const {
    return slots_.data() + (i == 0 ? 0 : ends_[i - 1]);
  }
  const Slot* term_end(std::size_t i) const { return slots_.data() + ends_[i]; }

 private:
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> ends_;
  std::size_t open_ = 0;
};

/// One cone's polynomial F under backward rewriting.  Starts as the single
/// monomial {root}; substitute() applies one gate of Algorithm 1.
class ConeEngine {
 public:
  /// num_slots must cover every slot ever passed in (<= kMaxSlots, else
  /// Overflow).  root is F's initial monomial.  The SIMD level is
  /// snapshotted from anf::simd::active_level() here.
  ConeEngine(std::size_t num_slots, Slot root);
  ~ConeEngine();
  ConeEngine(ConeEngine&&) noexcept;
  ConeEngine& operator=(ConeEngine&&) noexcept;

  RepKind rep() const;

  /// The kernel level this engine was constructed with (Scalar = the
  /// portable fallback implementation).
  simd::Level level() const;

  /// Number of live monomials currently mentioning `var` (compacts the
  /// occurrence bucket as a side effect).  O(bucket length).
  std::size_t occurrence_count(Slot var);

  /// Algorithm 1, line 5: removes every monomial containing `var` and
  /// toggles (monomial \ var) * term for each term of the gate's ANF.
  /// `var` must never reappear in a later step — reverse topological
  /// order guarantees this.
  void substitute(Slot var, const TermList& terms);

  /// Live monomial count |F|.
  std::size_t size() const;
  /// Mod-2 cancellations performed by substitute() so far.
  std::size_t cancellations() const;
  /// Max |F| observed after any substitution (and at construction).
  std::size_t peak_terms() const;

  /// Snapshot of F as sorted slot lists (monomial order unspecified).
  std::vector<SlotMono> monomials() const;

  struct Impl;
  /// Impls normally live placement-constructed in the per-thread engine
  /// scratch (so constructing an engine allocates nothing); the deleter
  /// distinguishes that from the heap-allocated fallback.
  struct ImplDeleter {
    void operator()(Impl* impl) const noexcept;
  };

 private:
  std::unique_ptr<Impl, ImplDeleter> impl_;
};

}  // namespace gfre::anf::packed
