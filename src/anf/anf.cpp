#include "anf/anf.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gfre::anf {

Anf Anf::one() {
  Anf a;
  a.toggle(Monomial());
  return a;
}

Anf Anf::var(Var v) {
  Anf a;
  a.toggle(Monomial(v));
  return a;
}

Anf Anf::from_monomials(std::vector<Monomial> monomials) {
  Anf a;
  a.reserve(monomials.size());
  for (auto& m : monomials) a.toggle(m);
  return a;
}

bool Anf::is_one() const {
  return monomials_.size() == 1 && monomials_.begin()->is_one();
}

bool Anf::toggle(const Monomial& m) {
  auto it = monomials_.find(m);
  if (it != monomials_.end()) {
    monomials_.erase(it);
    return false;
  }
  monomials_.insert(m);
  return true;
}

Anf& Anf::operator+=(const Anf& rhs) {
  reserve(size() + rhs.size());
  for (const auto& m : rhs.monomials_) toggle(m);
  return *this;
}

Anf Anf::operator+(const Anf& rhs) const {
  Anf out = *this;
  out += rhs;
  return out;
}

Anf Anf::operator*(const Anf& rhs) const {
  Anf out;
  // The full product is an upper bound (mod-2 cancellation only shrinks
  // it); cap the reservation so degenerate huge products stay sane.
  out.reserve(std::min<std::size_t>(size() * rhs.size(),
                                    std::size_t{1} << 20));
  for (const auto& a : monomials_) {
    for (const auto& b : rhs.monomials_) {
      out.toggle(a.times(b));
    }
  }
  return out;
}

Anf Anf::times(const Monomial& m) const {
  Anf out;
  for (const auto& a : monomials_) out.toggle(a.times(m));
  return out;
}

void Anf::substitute(Var v, const Anf& e) {
  GFRE_ASSERT(!e.mentions(v), "substitution expression mentions its own lhs");
  std::vector<Monomial> hits;
  for (const auto& m : monomials_) {
    if (m.contains(v)) hits.push_back(m);
  }
  for (const auto& m : hits) {
    monomials_.erase(m);
    const Monomial rest = m.without(v);
    for (const auto& t : e.monomials_) {
      toggle(rest.times(t));
    }
  }
}

bool Anf::mentions(Var v) const {
  for (const auto& m : monomials_) {
    if (m.contains(v)) return true;
  }
  return false;
}

std::vector<Var> Anf::variables() const {
  std::vector<Var> vars;
  for (const auto& m : monomials_) {
    vars.insert(vars.end(), m.vars().begin(), m.vars().end());
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

unsigned Anf::degree() const {
  unsigned deg = 0;
  for (const auto& m : monomials_) deg = std::max(deg, m.degree());
  return deg;
}

bool Anf::eval(const std::function<bool(Var)>& assignment) const {
  bool acc = false;
  for (const auto& m : monomials_) {
    bool term = true;
    for (Var v : m.vars()) {
      if (!assignment(v)) {
        term = false;
        break;
      }
    }
    acc ^= term;
  }
  return acc;
}

std::vector<Monomial> Anf::sorted_monomials() const {
  std::vector<Monomial> out(monomials_.begin(), monomials_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::string Anf::to_string(
    const std::function<std::string(Var)>& name) const {
  if (is_zero()) return "0";
  std::string out;
  bool first = true;
  for (const auto& m : sorted_monomials()) {
    if (!first) out += "+";
    first = false;
    out += m.to_string(name);
  }
  return out;
}

Anf Anf::from_truth_table(const std::vector<Var>& inputs,
                          const std::vector<bool>& truth_table) {
  const std::size_t n = inputs.size();
  GFRE_ASSERT(n <= 20, "truth table too wide: " << n << " inputs");
  GFRE_ASSERT(truth_table.size() == (std::size_t{1} << n),
              "truth table size " << truth_table.size() << " != 2^" << n);
  // In-place XOR Möbius transform: coeffs[S] = XOR of f(T) over T subset S.
  std::vector<bool> coeffs = truth_table;
  for (std::size_t bit = 0; bit < n; ++bit) {
    const std::size_t stride = std::size_t{1} << bit;
    for (std::size_t s = 0; s < coeffs.size(); ++s) {
      if (s & stride) {
        coeffs[s] = coeffs[s] != coeffs[s ^ stride];
      }
    }
  }
  Anf out;
  for (std::size_t s = 0; s < coeffs.size(); ++s) {
    if (!coeffs[s]) continue;
    std::vector<Var> vars;
    for (std::size_t bit = 0; bit < n; ++bit) {
      if (s & (std::size_t{1} << bit)) vars.push_back(inputs[bit]);
    }
    out.toggle(Monomial::from_vars(std::move(vars)));
  }
  return out;
}

}  // namespace gfre::anf
