// Monomials of the multilinear GF(2) algebra.
//
// Every signal in the paper's algebraic model (Eq. 1) is a Boolean variable,
// so monomials are multilinear (x^2 = x): a monomial is just a set of
// variables, stored sorted for O(log d) membership and cheap hashing, with
// the empty set denoting the constant 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gfre::anf {

/// Variable identifier; the netlist layer assigns and names these.
using Var = std::uint32_t;

/// Immutable multilinear monomial: a sorted set of variables.
/// The empty monomial is the constant 1.
class Monomial {
 public:
  /// The constant 1.
  Monomial() : hash_(kEmptyHash) {}

  /// Single variable.
  explicit Monomial(Var v) : vars_{v} { rehash(); }

  /// Builds from an arbitrary variable list: sorts and removes duplicates
  /// (variables are idempotent, so aab == ab).
  static Monomial from_vars(std::vector<Var> vars);

  const std::vector<Var>& vars() const { return vars_; }
  bool is_one() const { return vars_.empty(); }
  unsigned degree() const { return static_cast<unsigned>(vars_.size()); }

  /// Binary-search membership.
  bool contains(Var v) const;

  /// Product with another monomial (set union).
  Monomial times(const Monomial& other) const;

  /// Product with a single variable.
  Monomial times(Var v) const;

  /// This monomial with variable v removed (no-op if absent).
  Monomial without(Var v) const;

  bool operator==(const Monomial& rhs) const {
    return hash_ == rhs.hash_ && vars_ == rhs.vars_;
  }
  bool operator!=(const Monomial& rhs) const { return !(*this == rhs); }

  /// Graded lexicographic order — gives deterministic printing and
  /// canonical serialized ANFs.
  bool operator<(const Monomial& rhs) const;

  std::size_t hash() const { return hash_; }

  /// Renders like "a0*b1" given a variable-name callback.
  template <typename NameFn>
  std::string to_string(NameFn&& name) const {
    if (is_one()) return "1";
    std::string out;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      if (i != 0) out += "*";
      out += name(vars_[i]);
    }
    return out;
  }

 private:
  static constexpr std::size_t kEmptyHash = 0x9e3779b97f4a7c15ull;

  void rehash();

  std::vector<Var> vars_;
  std::size_t hash_ = kEmptyHash;
};

struct MonomialHash {
  std::size_t operator()(const Monomial& m) const { return m.hash(); }
};

}  // namespace gfre::anf
