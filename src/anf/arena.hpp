// Monotonic per-cone arena — the allocation backbone of the vectorized
// packed engine.
//
// Backward rewriting has a textbook arena lifetime: every table, bucket
// and scratch buffer a cone's extraction touches dies together when the
// cone finishes.  MonotonicArena is a chunked bump allocator exploiting
// that: allocate() is a pointer increment, nothing is ever freed
// individually, and reset() rewinds to the first chunk while *keeping*
// the chunk chain — so the second cone on a thread reuses the first
// cone's memory and performs zero steady-state heap allocations (the
// acceptance property tests/test_simd_kernels.cpp asserts).
//
// ArenaVector<T> is the minimal growable array over an arena for
// trivially-copyable T: grow abandons the old block (monotonic arenas
// don't reclaim) and memcpys into a doubled one.  Waste is bounded by
// the usual 2x geometric argument and vanishes at the next reset().
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

namespace gfre::anf {

class MonotonicArena {
 public:
  static constexpr std::size_t kDefaultFirstChunk = std::size_t{1} << 16;

  explicit MonotonicArena(std::size_t first_chunk_bytes = kDefaultFirstChunk)
      : next_chunk_bytes_(first_chunk_bytes < kMinChunk ? kMinChunk
                                                        : first_chunk_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  ~MonotonicArena() {
    Chunk* c = head_;
    while (c != nullptr) {
      Chunk* next = c->next;
      ::operator delete(static_cast<void*>(c));
      c = next;
    }
  }

  /// Bump-allocates `bytes` aligned to `align` (a power of two).  Never
  /// returns null; grows the chunk chain on exhaustion.
  void* allocate(std::size_t bytes, std::size_t align) {
    std::uintptr_t p = reinterpret_cast<std::uintptr_t>(ptr_);
    p = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    if (p + bytes > reinterpret_cast<std::uintptr_t>(end_)) {
      refill(bytes + align);
      p = reinterpret_cast<std::uintptr_t>(ptr_);
      p = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    }
    ptr_ = reinterpret_cast<char*>(p + bytes);
    return reinterpret_cast<void*>(p);
  }

  template <typename T>
  T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destroyed element-wise");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to the start of the chain, keeping every chunk for reuse.
  void reset() {
    current_ = head_;
    if (current_ != nullptr) {
      ptr_ = current_->data();
      end_ = ptr_ + current_->size;
    } else {
      ptr_ = end_ = nullptr;
    }
  }

  /// Total bytes held in chunks (the steady-state footprint).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk* c = head_; c != nullptr; c = c->next) total += c->size;
    return total;
  }

  std::size_t chunk_count() const {
    std::size_t n = 0;
    for (const Chunk* c = head_; c != nullptr; c = c->next) ++n;
    return n;
  }

 private:
  static constexpr std::size_t kMinChunk = 4096;

  struct alignas(std::max_align_t) Chunk {
    Chunk* next;
    std::size_t size;  // payload bytes after the header
    char* data() { return reinterpret_cast<char*>(this + 1); }
  };

  /// Moves to a chunk with at least `needed` payload bytes: first tries
  /// the already-owned tail of the chain (post-reset reuse), then mints a
  /// geometrically larger chunk and splices it in right after current_
  /// (the skipped-over remainder of the chain stays owned for later).
  void refill(std::size_t needed) {
    Chunk* next = current_ != nullptr ? current_->next : head_;
    if (next != nullptr && next->size >= needed) {
      current_ = next;
    } else {
      std::size_t payload = next_chunk_bytes_;
      if (payload < needed) payload = needed;
      next_chunk_bytes_ = payload * 2;
      void* raw = ::operator new(sizeof(Chunk) + payload);
      Chunk* fresh = static_cast<Chunk*>(raw);
      fresh->size = payload;
      if (current_ != nullptr) {
        fresh->next = current_->next;
        current_->next = fresh;
      } else {
        fresh->next = head_;
        head_ = fresh;
      }
      current_ = fresh;
    }
    ptr_ = current_->data();
    end_ = ptr_ + current_->size;
  }

  Chunk* head_ = nullptr;
  Chunk* current_ = nullptr;
  char* ptr_ = nullptr;
  char* end_ = nullptr;
  std::size_t next_chunk_bytes_;
};

/// Growable array over a MonotonicArena for trivially-copyable elements.
/// clear() is O(1) (no destructors by construction); grow memcpys into a
/// doubled arena block and abandons the old one until the next reset().
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  ArenaVector() = default;
  explicit ArenaVector(MonotonicArena& arena) : arena_(&arena) {}

  void attach(MonotonicArena& arena) {
    arena_ = &arena;
    data_ = nullptr;
    size_ = cap_ = 0;
  }

  void push_back(const T& value) {
    if (size_ == cap_) grow(size_ + 1);
    data_[size_++] = value;
  }

  T& emplace_back() {
    if (size_ == cap_) grow(size_ + 1);
    data_[size_] = T{};
    return data_[size_++];
  }

  void pop_back() { --size_; }
  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void grow(std::size_t need) {
    std::size_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    if (new_cap < need) new_cap = need;
    T* fresh = arena_->allocate_array<T>(new_cap);
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    cap_ = new_cap;
  }

  MonotonicArena* arena_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace gfre::anf
