#include "anf/packed.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <string>

#include "util/error.hpp"

namespace gfre::anf::packed {

const char* to_string(RepKind kind) {
  switch (kind) {
    case RepKind::Bits64: return "bits64";
    case RepKind::Bits128: return "bits128";
    case RepKind::Bits256: return "bits256";
    case RepKind::Sparse: return "sparse";
  }
  return "?";
}

RepKind rep_for_cone(std::size_t cone_vars) {
  if (cone_vars <= 64) return RepKind::Bits64;
  if (cone_vars <= 128) return RepKind::Bits128;
  if (cone_vars <= 256) return RepKind::Bits256;
  return RepKind::Sparse;
}

namespace {

inline std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 29;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 32;
  return h;
}

/// Fixed-width bitset monomial: bit s set <=> slot s in the monomial.
template <unsigned W>
struct BitsRep {
  static constexpr RepKind kKind = W == 1   ? RepKind::Bits64
                                   : W == 2 ? RepKind::Bits128
                                            : RepKind::Bits256;
  std::array<std::uint64_t, W> w{};

  bool operator==(const BitsRep&) const = default;

  static BitsRep from_range(const Slot* begin, const Slot* end) {
    BitsRep r;
    for (const Slot* s = begin; s != end; ++s) r.w[*s >> 6] |= 1ull << (*s & 63);
    return r;
  }

  std::uint64_t hash() const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (unsigned i = 0; i < W; ++i) h = mix64(h ^ w[i]);
    return h;
  }

  void clear(Slot s) { w[s >> 6] &= ~(1ull << (s & 63)); }

  /// Monomial product (variables are idempotent): set union = word OR.
  BitsRep united(const BitsRep& other) const {
    BitsRep r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = w[i] | other.w[i];
    return r;
  }

  template <typename Fn>
  void for_each_slot(Fn&& fn) const {
    for (unsigned i = 0; i < W; ++i) {
      std::uint64_t bits = w[i];
      while (bits != 0) {
        fn(static_cast<Slot>(64 * i + std::countr_zero(bits)));
        bits &= bits - 1;
      }
    }
  }
};

/// Wide-cone spill representation: a sorted inline array of u16 slots.
/// Covers any cone up to kMaxSlots; degree is capped at kSparseMaxDegree
/// (Overflow past that — the caller falls back to the legacy engine).
struct SparseRep {
  static constexpr RepKind kKind = RepKind::Sparse;
  // Invariant: v[0..deg) sorted ascending, v[deg..] zeroed (so the
  // defaulted operator== compares whole values).
  std::uint16_t deg = 0;
  std::array<Slot, kSparseMaxDegree> v{};

  bool operator==(const SparseRep&) const = default;

  /// Requires [begin, end) sorted ascending without duplicates.
  static SparseRep from_range(const Slot* begin, const Slot* end) {
    const auto n = static_cast<std::size_t>(end - begin);
    if (n > kSparseMaxDegree) {
      throw Overflow("monomial degree " + std::to_string(n) +
                     " exceeds the sparse packing cap");
    }
    SparseRep r;
    r.deg = static_cast<std::uint16_t>(n);
    std::copy(begin, end, r.v.begin());
    return r;
  }

  std::uint64_t hash() const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ deg;
    for (unsigned i = 0; i < deg; ++i) h = mix64(h ^ v[i]);
    return h;
  }

  void clear(Slot s) {
    for (unsigned i = 0; i < deg; ++i) {
      if (v[i] != s) continue;
      for (unsigned j = i + 1; j < deg; ++j) v[j - 1] = v[j];
      v[--deg] = 0;
      return;
    }
  }

  SparseRep united(const SparseRep& other) const {
    SparseRep r;
    unsigned i = 0, j = 0, n = 0;
    while (i < deg || j < other.deg) {
      Slot next;
      if (j >= other.deg || (i < deg && v[i] <= other.v[j])) {
        next = v[i];
        if (j < other.deg && other.v[j] == next) ++j;  // idempotent: x*x = x
        ++i;
      } else {
        next = other.v[j++];
      }
      if (n == kSparseMaxDegree) {
        throw Overflow("monomial union exceeds the sparse packing cap");
      }
      r.v[n++] = next;
    }
    r.deg = static_cast<std::uint16_t>(n);
    return r;
  }

  template <typename Fn>
  void for_each_slot(Fn&& fn) const {
    for (unsigned i = 0; i < deg; ++i) fn(v[i]);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Open-addressed term table + occurrence index, shared across representations
// ---------------------------------------------------------------------------

struct ConeEngine::Impl {
  virtual ~Impl() = default;
  virtual RepKind rep() const = 0;
  virtual std::size_t occurrence_count(Slot var) = 0;
  virtual void substitute(Slot var, const TermList& terms) = 0;
  virtual std::size_t size() const = 0;
  virtual std::size_t cancellations() const = 0;
  virtual std::size_t peak_terms() const = 0;
  virtual std::vector<SlotMono> monomials() const = 0;
};

namespace {

template <typename Rep>
class EngineImpl final : public ConeEngine::Impl {
 public:
  EngineImpl(std::size_t num_slots, Slot root) : occ_(num_slots) {
    table_.assign(kMinTable, kEmpty);
    toggle(Rep::from_range(&root, &root + 1));
    cancellations_ = 0;  // the seed insert can never cancel
    peak_ = live_;
  }

  RepKind rep() const override { return Rep::kKind; }

  std::size_t occurrence_count(Slot var) override {
    collect_hits(var);
    return hits_.size();
  }

  void substitute(Slot var, const TermList& terms) override {
    // Reuses the hit set stashed by an immediately preceding
    // occurrence_count(var) — the driver's prepare/substitute pairing —
    // so the bucket is walked once per gate.  The stash can only go stale
    // through toggles, which happen exclusively below (and invalidate it).
    if (!hits_valid_ || hits_var_ != var) collect_hits(var);
    hits_valid_ = false;
    // `var` never reappears after this step (reverse topological order),
    // so the whole bucket can be retired.
    std::vector<OccRef>().swap(occ_[var]);

    packed_terms_.clear();
    for (std::size_t t = 0; t < terms.term_count(); ++t) {
      packed_terms_.push_back(
          Rep::from_range(terms.term_begin(t), terms.term_end(t)));
    }

    for (const Rep& hit : hits_) {
      erase_known(hit);
      Rep rest = hit;
      rest.clear(var);
      for (const Rep& term : packed_terms_) toggle(rest.united(term));
    }
    peak_ = std::max(peak_, live_);
  }

  std::size_t size() const override { return live_; }
  std::size_t cancellations() const override { return cancellations_; }
  std::size_t peak_terms() const override { return peak_; }

  std::vector<SlotMono> monomials() const override {
    std::vector<SlotMono> out;
    out.reserve(live_);
    for (const Entry& e : entries_) {
      if ((e.gen & 1u) == 0) continue;  // odd generation = live
      SlotMono mono;
      e.mono.for_each_slot([&](Slot s) { mono.push_back(s); });
      out.push_back(std::move(mono));
    }
    return out;
  }

 private:
  struct Entry {
    Rep mono{};
    // Liveness is the generation's parity (odd = live); a stale occurrence
    // handle is detected by generation mismatch, so a recycled entry id
    // never aliases an old handle.
    std::uint32_t gen = 0;
  };
  struct OccRef {
    std::uint32_t id;
    std::uint32_t gen;
  };

  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::uint32_t kTombstone = 0xfffffffeu;
  static constexpr std::size_t kMinTable = 64;

  /// Adds mono mod 2: inserts if absent, cancels if present.
  void toggle(const Rep& mono) {
    maybe_grow();
    const std::size_t mask = table_.size() - 1;
    std::size_t i = mono.hash() & mask;
    std::size_t first_tombstone = table_.size();
    for (;; i = (i + 1) & mask) {
      const std::uint32_t s = table_[i];
      if (s == kEmpty) {
        insert(mono, first_tombstone < table_.size() ? first_tombstone : i,
               first_tombstone >= table_.size());
        return;
      }
      if (s == kTombstone) {
        if (first_tombstone == table_.size()) first_tombstone = i;
        continue;
      }
      if (entries_[s].mono == mono) {
        ++entries_[s].gen;  // live -> dead; stale handles stop matching
        free_.push_back(s);
        table_[i] = kTombstone;
        --live_;
        ++cancellations_;
        return;
      }
    }
  }

  /// Removes a monomial known to be live (a substitution hit) without
  /// counting it as a mod-2 cancellation.
  void erase_known(const Rep& mono) {
    const std::size_t mask = table_.size() - 1;
    std::size_t i = mono.hash() & mask;
    for (;; i = (i + 1) & mask) {
      const std::uint32_t s = table_[i];
      GFRE_ASSERT(s != kEmpty, "packed engine: erasing absent monomial");
      if (s == kTombstone || !(entries_[s].mono == mono)) continue;
      ++entries_[s].gen;
      free_.push_back(s);
      table_[i] = kTombstone;
      --live_;
      return;
    }
  }

  void insert(const Rep& mono, std::size_t table_index, bool fresh_slot) {
    std::uint32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else {
      id = static_cast<std::uint32_t>(entries_.size());
      entries_.emplace_back();
    }
    Entry& e = entries_[id];
    e.mono = mono;
    ++e.gen;  // dead -> live
    table_[table_index] = id;
    if (fresh_slot) ++used_;
    ++live_;
    mono.for_each_slot([&](Slot s) { occ_[s].push_back(OccRef{id, e.gen}); });
  }

  /// Validates the bucket's handles, stashing live monomials as packed
  /// copies in hits_ and compacting the bucket in place.
  void collect_hits(Slot var) {
    auto& bucket = occ_[var];
    hits_.clear();
    std::size_t out = 0;
    for (const OccRef& ref : bucket) {
      if (entries_[ref.id].gen != ref.gen) continue;  // stale handle
      hits_.push_back(entries_[ref.id].mono);
      bucket[out++] = ref;
    }
    bucket.resize(out);
    hits_var_ = var;
    hits_valid_ = true;
  }

  void maybe_grow() {
    if ((used_ + 1) * 8 < table_.size() * 7) return;
    // Grow for the live set; if tombstones dominate, this rehash at the
    // same power of two just sweeps them out.
    std::size_t target = std::bit_ceil(std::max(kMinTable, live_ * 4));
    table_.assign(target, kEmpty);
    used_ = live_;
    const std::size_t mask = table_.size() - 1;
    for (std::uint32_t id = 0; id < entries_.size(); ++id) {
      if ((entries_[id].gen & 1u) == 0) continue;
      std::size_t i = entries_[id].mono.hash() & mask;
      while (table_[i] != kEmpty) i = (i + 1) & mask;
      table_[i] = id;
    }
  }

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> table_;  // power-of-2 open addressing
  std::size_t live_ = 0;
  std::size_t used_ = 0;  // live + tombstones
  std::vector<std::vector<OccRef>> occ_;  // per-slot occurrence handles
  std::size_t cancellations_ = 0;
  std::size_t peak_ = 0;
  // Per-substitution scratch, reused to avoid churn.  hits_ doubles as
  // the occurrence_count -> substitute stash (guarded by hits_var_).
  std::vector<Rep> hits_;
  Slot hits_var_ = 0;
  bool hits_valid_ = false;
  std::vector<Rep> packed_terms_;
};

}  // namespace

ConeEngine::ConeEngine(std::size_t num_slots, Slot root) {
  if (num_slots > kMaxSlots) {
    throw Overflow("cone has " + std::to_string(num_slots) +
                   " variables, beyond 16-bit slot space");
  }
  switch (rep_for_cone(num_slots)) {
    case RepKind::Bits64:
      impl_ = std::make_unique<EngineImpl<BitsRep<1>>>(num_slots, root);
      break;
    case RepKind::Bits128:
      impl_ = std::make_unique<EngineImpl<BitsRep<2>>>(num_slots, root);
      break;
    case RepKind::Bits256:
      impl_ = std::make_unique<EngineImpl<BitsRep<4>>>(num_slots, root);
      break;
    case RepKind::Sparse:
      impl_ = std::make_unique<EngineImpl<SparseRep>>(num_slots, root);
      break;
  }
}

ConeEngine::~ConeEngine() = default;
ConeEngine::ConeEngine(ConeEngine&&) noexcept = default;
ConeEngine& ConeEngine::operator=(ConeEngine&&) noexcept = default;

RepKind ConeEngine::rep() const { return impl_->rep(); }
std::size_t ConeEngine::occurrence_count(Slot var) {
  return impl_->occurrence_count(var);
}
void ConeEngine::substitute(Slot var, const TermList& terms) {
  impl_->substitute(var, terms);
}
std::size_t ConeEngine::size() const { return impl_->size(); }
std::size_t ConeEngine::cancellations() const { return impl_->cancellations(); }
std::size_t ConeEngine::peak_terms() const { return impl_->peak_terms(); }
std::vector<SlotMono> ConeEngine::monomials() const {
  return impl_->monomials();
}

}  // namespace gfre::anf::packed
