#include "anf/packed.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <string>

#include "anf/arena.hpp"
#include "anf/simd.hpp"
#include "util/error.hpp"

namespace gfre::anf::packed {

const char* to_string(RepKind kind) {
  switch (kind) {
    case RepKind::Bits64: return "bits64";
    case RepKind::Bits128: return "bits128";
    case RepKind::Bits256: return "bits256";
    case RepKind::Bits512: return "bits512";
    case RepKind::Sparse: return "sparse";
  }
  return "?";
}

RepKind rep_for_cone(std::size_t cone_vars) {
  if (cone_vars <= 64) return RepKind::Bits64;
  if (cone_vars <= 128) return RepKind::Bits128;
  if (cone_vars <= 256) return RepKind::Bits256;
  if (cone_vars <= 512) return RepKind::Bits512;
  return RepKind::Sparse;
}

namespace {

inline std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 29;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 32;
  return h;
}

/// Fixed-width bitset monomial: bit s set <=> slot s in the monomial.
template <unsigned W>
struct BitsRep {
  static constexpr RepKind kKind = W == 1   ? RepKind::Bits64
                                   : W == 2 ? RepKind::Bits128
                                   : W == 4 ? RepKind::Bits256
                                            : RepKind::Bits512;
  static constexpr unsigned kWords = W;
  std::array<std::uint64_t, W> w{};

  bool operator==(const BitsRep&) const = default;

  static BitsRep from_range(const Slot* begin, const Slot* end) {
    BitsRep r;
    for (const Slot* s = begin; s != end; ++s) r.w[*s >> 6] |= 1ull << (*s & 63);
    return r;
  }

  std::uint64_t hash() const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (unsigned i = 0; i < W; ++i) h = mix64(h ^ w[i]);
    return h;
  }

  void clear(Slot s) { w[s >> 6] &= ~(1ull << (s & 63)); }

  /// Monomial product (variables are idempotent): set union = word OR.
  BitsRep united(const BitsRep& other) const {
    BitsRep r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = w[i] | other.w[i];
    return r;
  }

  template <typename Fn>
  void for_each_slot(Fn&& fn) const {
    for (unsigned i = 0; i < W; ++i) {
      std::uint64_t bits = w[i];
      while (bits != 0) {
        fn(static_cast<Slot>(64 * i + std::countr_zero(bits)));
        bits &= bits - 1;
      }
    }
  }
};

/// Wide-cone spill representation: a sorted inline array of 32-bit slots,
/// stored as packed 64-bit words (halfword 0 is the degree, halfwords
/// 1..kSparseMaxDegree the slots) so equality and hashing are straight
/// word-kernel operations.  Covers any cone up to kMaxSlots; degree is
/// capped at kSparseMaxDegree (Overflow past that — the caller falls back
/// to the legacy engine).
struct SparseRep {
  static constexpr RepKind kKind = RepKind::Sparse;
  static constexpr unsigned kWords = (kSparseMaxDegree + 2) / 2;
  // Invariant: halfwords [1, deg] sorted ascending, halfwords past deg
  // zeroed (so the defaulted operator== compares whole values).
  std::array<std::uint64_t, kWords> w{};

  bool operator==(const SparseRep&) const = default;

  std::uint32_t deg() const { return static_cast<std::uint32_t>(w[0]); }

  std::uint32_t slot_at(unsigned i) const {  // i in [0, deg)
    const unsigned h = i + 1;
    return static_cast<std::uint32_t>(w[h >> 1] >> ((h & 1u) * 32));
  }

  void set_slot(unsigned i, std::uint32_t s) {
    const unsigned h = i + 1;
    const unsigned shift = (h & 1u) * 32;
    w[h >> 1] = (w[h >> 1] & ~(0xffffffffull << shift)) |
                (static_cast<std::uint64_t>(s) << shift);
  }

  void set_deg(std::uint32_t d) {
    w[0] = (w[0] & ~0xffffffffull) | d;
  }

  /// Requires [begin, end) sorted ascending without duplicates.
  static SparseRep from_range(const Slot* begin, const Slot* end) {
    const auto n = static_cast<std::size_t>(end - begin);
    if (n > kSparseMaxDegree) {
      throw Overflow("monomial degree " + std::to_string(n) +
                     " exceeds the sparse packing cap");
    }
    SparseRep r;
    r.set_deg(static_cast<std::uint32_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      r.set_slot(static_cast<unsigned>(i), begin[i]);
    }
    return r;
  }

  std::uint64_t hash() const {
    // Halfwords past deg are zero by invariant, so hashing the used-word
    // prefix keeps equal values hashing equally.
    const unsigned words = (deg() + 2) / 2;
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (unsigned i = 0; i < words; ++i) h = mix64(h ^ w[i]);
    return h;
  }

  void clear(Slot s) {
    const unsigned d = deg();
    for (unsigned i = 0; i < d; ++i) {
      if (slot_at(i) != s) continue;
      for (unsigned j = i + 1; j < d; ++j) set_slot(j - 1, slot_at(j));
      set_slot(d - 1, 0);
      set_deg(d - 1);
      return;
    }
  }

  SparseRep united(const SparseRep& other) const {
    SparseRep r;
    const unsigned da = deg(), db = other.deg();
    unsigned i = 0, j = 0, n = 0;
    while (i < da || j < db) {
      std::uint32_t next;
      if (j >= db || (i < da && slot_at(i) <= other.slot_at(j))) {
        next = slot_at(i);
        if (j < db && other.slot_at(j) == next) ++j;  // idempotent: x*x = x
        ++i;
      } else {
        next = other.slot_at(j++);
      }
      if (n == kSparseMaxDegree) {
        throw Overflow("monomial union exceeds the sparse packing cap");
      }
      r.set_slot(n++, next);
    }
    r.set_deg(n);
    return r;
  }

  template <typename Fn>
  void for_each_slot(Fn&& fn) const {
    const unsigned d = deg();
    for (unsigned i = 0; i < d; ++i) fn(static_cast<Slot>(slot_at(i)));
  }
};

// Kernel-routed representation helpers (the scalar engine uses the
// member-function forms directly and never touches a kernel table).

template <unsigned W>
inline bool rep_eq(const BitsRep<W>& a, const BitsRep<W>& b,
                   const simd::Kernels& k) {
  if constexpr (W == 1) {
    (void)k;
    return a.w[0] == b.w[0];
  } else {
    return k.eq_words(a.w.data(), b.w.data(), W);
  }
}

inline bool rep_eq(const SparseRep& a, const SparseRep& b,
                   const simd::Kernels& k) {
  if (a.w[0] != b.w[0]) return false;  // degree + first slot fast reject
  // Equal w[0] means equal degrees, and halfwords past deg are zero by
  // invariant — comparing the used-word prefix suffices (typical cone
  // monomials have degree <= 3, i.e. two words instead of thirteen).
  return k.eq_words(a.w.data(), b.w.data(), (a.deg() + 2) / 2);
}

template <unsigned W>
inline void rep_united(BitsRep<W>& dst, const BitsRep<W>& a,
                       const BitsRep<W>& b, const simd::Kernels& k) {
  if constexpr (W == 1) {
    (void)k;
    dst.w[0] = a.w[0] | b.w[0];
  } else {
    k.or_words(dst.w.data(), a.w.data(), b.w.data(), W);
  }
}

// The kernel engine works prefix-dirty on SparseRep: a monomial's used
// words (halfwords 0..deg, plus one zeroed trailing halfword when deg is
// even) are always canonical, but words past them may hold stale content
// from a recycled entry or a reused scratch value.  Every consumer inside
// the engine is degree-bounded — rep_eq and rep_hash read the used-word
// prefix, for_each_slot reads deg slots — so the stale tail is never
// observed, and toggles stop paying a 13-word zero plus a 13-word copy
// for degree-3 monomials.  The scalar engine keeps SparseRep's
// fully-zeroed invariant (defaulted operator==, whole-value hash); these
// helpers are for the kernel engine only.

/// Sorted-merge union a ∪ b into dst's prefix (dst must alias neither).
inline void rep_united(SparseRep& dst, const SparseRep& a, const SparseRep& b,
                       const simd::Kernels&) {
  const unsigned da = a.deg(), db = b.deg();
  unsigned i = 0, j = 0, n = 0;
  while (i < da || j < db) {
    std::uint32_t next;
    if (j >= db || (i < da && a.slot_at(i) <= b.slot_at(j))) {
      next = a.slot_at(i);
      if (j < db && b.slot_at(j) == next) ++j;  // idempotent: x*x = x
      ++i;
    } else {
      next = b.slot_at(j++);
    }
    if (n == kSparseMaxDegree) {
      throw Overflow("monomial union exceeds the sparse packing cap");
    }
    dst.set_slot(n++, next);
  }
  dst.set_deg(n);
  // Even degree leaves the covering word's high halfword unused: zero it
  // so prefix-wide equality and hashing stay content-independent.
  if ((n & 1u) == 0) dst.w[n >> 1] &= 0xffffffffull;
}

template <unsigned W>
inline std::size_t rep_degree(const BitsRep<W>& r, const simd::Kernels& k) {
  return k.popcount_words(r.w.data(), W);
}

inline std::size_t rep_degree(const SparseRep& r, const simd::Kernels&) {
  return r.deg();
}

/// Entry assignment for the kernel engine's tables (prefix-only for
/// SparseRep, see the prefix-dirty note above rep_united).
template <unsigned W>
inline void rep_assign(BitsRep<W>& dst, const BitsRep<W>& src) {
  dst = src;
}

inline void rep_assign(SparseRep& dst, const SparseRep& src) {
  const unsigned words = (src.deg() + 2) / 2;
  for (unsigned i = 0; i < words; ++i) dst.w[i] = src.w[i];
}

template <unsigned W>
inline std::uint64_t rep_hash(const BitsRep<W>& r) {
  return r.hash();
}

/// Table-layout hash for the kernel engine.  Layout does not affect set
/// semantics (same toggles, same cancellations, same monomials), so this
/// need not match SparseRep::hash: one avalanche over the two words that
/// cover every degree <= 3 monomial — the overwhelming cone traffic —
/// replaces the serial per-word mixing chain.
inline std::uint64_t rep_hash(const SparseRep& r) {
  const unsigned words = (r.deg() + 2) / 2;
  if (words == 1) return mix64(r.w[0]);
  if (words == 2) return mix64(r.w[0] ^ (r.w[1] * 0x9e3779b97f4a7c15ull));
  return r.hash();
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine interface + per-thread scratch
// ---------------------------------------------------------------------------

struct ConeEngine::Impl {
  virtual ~Impl() = default;
  virtual RepKind rep() const = 0;
  virtual simd::Level level() const = 0;
  virtual std::size_t occurrence_count(Slot var) = 0;
  virtual void substitute(Slot var, const TermList& terms) = 0;
  virtual std::size_t size() const = 0;
  virtual std::size_t cancellations() const = 0;
  virtual std::size_t peak_terms() const = 0;
  virtual std::vector<SlotMono> monomials() const = 0;

  /// True when this impl was placement-constructed in the per-thread
  /// scratch buffer (ImplDeleter then runs the destructor only).
  bool placed_ = false;
};

namespace {

/// A slot's occurrence bucket in the kernel engine: packed (id, gen)
/// handles in arena memory.  Trivial by design — the per-thread bucket
/// directory persists across cones and is revalidated by epoch, so a
/// stale Bucket is simply overwritten, never destroyed.
struct Bucket {
  std::uint64_t* refs;
  std::uint32_t size;
  std::uint32_t cap;
};

constexpr std::size_t kImplStorageBytes = 768;

/// Per-thread engine scratch: the cone arena plus the epoch-validated
/// occurrence-bucket directory and the impl placement buffer.  One cone
/// engine leases it at a time (in_use); a nested engine — which the
/// rewriter never creates, but tests may — falls back to a private
/// heap-allocated scratch.
struct EngineScratch {
  MonotonicArena arena;
  std::vector<Bucket> occ;
  std::vector<std::uint32_t> occ_epoch;
  std::uint32_t epoch = 0;
  bool in_use = false;
  alignas(64) unsigned char impl_storage[kImplStorageBytes];

  std::uint32_t next_epoch() {
    if (++epoch == 0) {  // wrap: invalidate everything explicitly
      std::fill(occ_epoch.begin(), occ_epoch.end(), 0u);
      epoch = 1;
    }
    return epoch;
  }

  void ensure_slots(std::size_t n) {
    if (occ.size() < n) {
      occ.resize(n, Bucket{nullptr, 0, 0});
      occ_epoch.resize(n, 0u);
    }
  }
};

EngineScratch& thread_scratch() {
  thread_local EngineScratch scratch;
  return scratch;
}

// ---------------------------------------------------------------------------
// Scalar engine: portable linear-probing flat table (the differential
// baseline — GFRE_SIMD=scalar routes every cone here).
// ---------------------------------------------------------------------------

template <typename Rep>
class EngineImpl final : public ConeEngine::Impl {
 public:
  EngineImpl(std::size_t num_slots, Slot root) : occ_(num_slots) {
    table_.assign(kMinTable, kEmpty);
    toggle(Rep::from_range(&root, &root + 1));
    cancellations_ = 0;  // the seed insert can never cancel
    peak_ = live_;
  }

  RepKind rep() const override { return Rep::kKind; }
  simd::Level level() const override { return simd::Level::Scalar; }

  std::size_t occurrence_count(Slot var) override {
    collect_hits(var);
    return hits_.size();
  }

  void substitute(Slot var, const TermList& terms) override {
    // Reuses the hit set stashed by an immediately preceding
    // occurrence_count(var) — the driver's prepare/substitute pairing —
    // so the bucket is walked once per gate.  The stash can only go stale
    // through toggles, which happen exclusively below (and invalidate it).
    if (!hits_valid_ || hits_var_ != var) collect_hits(var);
    hits_valid_ = false;
    // `var` never reappears after this step (reverse topological order),
    // so the whole bucket can be retired.
    std::vector<OccRef>().swap(occ_[var]);

    packed_terms_.clear();
    for (std::size_t t = 0; t < terms.term_count(); ++t) {
      packed_terms_.push_back(
          Rep::from_range(terms.term_begin(t), terms.term_end(t)));
    }

    for (const Rep& hit : hits_) {
      erase_known(hit);
      Rep rest = hit;
      rest.clear(var);
      for (const Rep& term : packed_terms_) toggle(rest.united(term));
    }
    peak_ = std::max(peak_, live_);
  }

  std::size_t size() const override { return live_; }
  std::size_t cancellations() const override { return cancellations_; }
  std::size_t peak_terms() const override { return peak_; }

  std::vector<SlotMono> monomials() const override {
    std::vector<SlotMono> out;
    out.reserve(live_);
    for (const Entry& e : entries_) {
      if ((e.gen & 1u) == 0) continue;  // odd generation = live
      SlotMono mono;
      e.mono.for_each_slot([&](Slot s) { mono.push_back(s); });
      out.push_back(std::move(mono));
    }
    return out;
  }

 private:
  struct Entry {
    Rep mono{};
    // Liveness is the generation's parity (odd = live); a stale occurrence
    // handle is detected by generation mismatch, so a recycled entry id
    // never aliases an old handle.
    std::uint32_t gen = 0;
  };
  struct OccRef {
    std::uint32_t id;
    std::uint32_t gen;
  };

  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::uint32_t kTombstone = 0xfffffffeu;
  static constexpr std::size_t kMinTable = 64;

  /// Adds mono mod 2: inserts if absent, cancels if present.
  void toggle(const Rep& mono) {
    maybe_grow();
    const std::size_t mask = table_.size() - 1;
    std::size_t i = mono.hash() & mask;
    std::size_t first_tombstone = table_.size();
    for (;; i = (i + 1) & mask) {
      const std::uint32_t s = table_[i];
      if (s == kEmpty) {
        insert(mono, first_tombstone < table_.size() ? first_tombstone : i,
               first_tombstone >= table_.size());
        return;
      }
      if (s == kTombstone) {
        if (first_tombstone == table_.size()) first_tombstone = i;
        continue;
      }
      if (entries_[s].mono == mono) {
        ++entries_[s].gen;  // live -> dead; stale handles stop matching
        free_.push_back(s);
        table_[i] = kTombstone;
        --live_;
        ++cancellations_;
        return;
      }
    }
  }

  /// Removes a monomial known to be live (a substitution hit) without
  /// counting it as a mod-2 cancellation.
  void erase_known(const Rep& mono) {
    const std::size_t mask = table_.size() - 1;
    std::size_t i = mono.hash() & mask;
    for (;; i = (i + 1) & mask) {
      const std::uint32_t s = table_[i];
      GFRE_ASSERT(s != kEmpty, "packed engine: erasing absent monomial");
      if (s == kTombstone || !(entries_[s].mono == mono)) continue;
      ++entries_[s].gen;
      free_.push_back(s);
      table_[i] = kTombstone;
      --live_;
      return;
    }
  }

  void insert(const Rep& mono, std::size_t table_index, bool fresh_slot) {
    std::uint32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else {
      id = static_cast<std::uint32_t>(entries_.size());
      entries_.emplace_back();
    }
    Entry& e = entries_[id];
    e.mono = mono;
    ++e.gen;  // dead -> live
    table_[table_index] = id;
    if (fresh_slot) ++used_;
    ++live_;
    mono.for_each_slot([&](Slot s) { occ_[s].push_back(OccRef{id, e.gen}); });
  }

  /// Validates the bucket's handles, stashing live monomials as packed
  /// copies in hits_ and compacting the bucket in place.
  void collect_hits(Slot var) {
    auto& bucket = occ_[var];
    hits_.clear();
    std::size_t out = 0;
    for (const OccRef& ref : bucket) {
      if (entries_[ref.id].gen != ref.gen) continue;  // stale handle
      hits_.push_back(entries_[ref.id].mono);
      bucket[out++] = ref;
    }
    bucket.resize(out);
    hits_var_ = var;
    hits_valid_ = true;
  }

  void maybe_grow() {
    if ((used_ + 1) * 8 < table_.size() * 7) return;
    // Grow for the live set; if tombstones dominate, this rehash at the
    // same power of two just sweeps them out.
    std::size_t target = std::bit_ceil(std::max(kMinTable, live_ * 4));
    table_.assign(target, kEmpty);
    used_ = live_;
    const std::size_t mask = table_.size() - 1;
    for (std::uint32_t id = 0; id < entries_.size(); ++id) {
      if ((entries_[id].gen & 1u) == 0) continue;
      std::size_t i = entries_[id].mono.hash() & mask;
      while (table_[i] != kEmpty) i = (i + 1) & mask;
      table_[i] = id;
    }
  }

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> table_;  // power-of-2 open addressing
  std::size_t live_ = 0;
  std::size_t used_ = 0;  // live + tombstones
  std::vector<std::vector<OccRef>> occ_;  // per-slot occurrence handles
  std::size_t cancellations_ = 0;
  std::size_t peak_ = 0;
  // Per-substitution scratch, reused to avoid churn.  hits_ doubles as
  // the occurrence_count -> substitute stash (guarded by hits_var_).
  std::vector<Rep> hits_;
  Slot hits_var_ = 0;
  bool hits_valid_ = false;
  std::vector<Rep> packed_terms_;
};

// ---------------------------------------------------------------------------
// Kernel engine: 16-byte control-tag groups (SwissTable-style) probed and
// compared through the anf/simd.hpp kernel table, with every table, bucket
// and scratch buffer bump-allocated from the per-thread cone arena.
//
// Identical set semantics to the scalar engine — same toggles, same
// cancellation accounting, same occurrence-stash protocol — so reports are
// bit-identical whichever implementation a cone ran on.  What changes is
// the constant factor: a probe touches a 16-byte tag group first (one
// cache line covers four groups) and only dereferences entries whose
// 7-bit tag matched, and cone teardown/retirement is a pointer rewind.
// ---------------------------------------------------------------------------

template <typename Rep>
class KernelEngine final : public ConeEngine::Impl {
 public:
  KernelEngine(std::size_t num_slots, Slot root, const simd::Kernels& k,
               simd::Level lvl, EngineScratch* scratch, bool owns_scratch)
      : k_(k), level_(lvl), scratch_(scratch), owns_scratch_(owns_scratch) {
    scratch_->ensure_slots(num_slots);
    epoch_ = scratch_->next_epoch();
    scratch_->arena.reset();
    entries_.attach(scratch_->arena);
    free_.attach(scratch_->arena);
    hit_ids_.attach(scratch_->arena);
    packed_terms_.attach(scratch_->arena);
    init_table(kMinTableSlots);
    toggle(Rep::from_range(&root, &root + 1));
    cancellations_ = 0;
    peak_ = live_;
  }

  ~KernelEngine() override {
    if (owns_scratch_) {
      delete scratch_;
    } else {
      scratch_->in_use = false;
    }
  }

  RepKind rep() const override { return Rep::kKind; }
  simd::Level level() const override { return level_; }

  std::size_t occurrence_count(Slot var) override {
    // Most queried vars never entered F (the driver probes every cone
    // gate): an empty bucket answers without touching the hits stash.
    if (live_bucket(var).size == 0) {
      hits_valid_ = false;
      return 0;
    }
    collect_hits(var);
    return hit_ids_.size();
  }

  void substitute(Slot var, const TermList& terms) override {
    if (!hits_valid_ || hits_var_ != var) collect_hits(var);
    hits_valid_ = false;
    // `var` never reappears (reverse topological order): retire the
    // bucket — the arena reclaims its memory at the next cone.
    live_bucket(var) = Bucket{nullptr, 0, 0};

    packed_terms_.clear();
    for (std::size_t t = 0; t < terms.term_count(); ++t) {
      packed_terms_.push_back(
          Rep::from_range(terms.term_begin(t), terms.term_end(t)));
    }

    // Hits are stashed as entry ids, not monomial copies: pending hits
    // stay live until their own turn (products never contain `var`, so
    // toggles below can neither cancel a pending hit nor recycle its
    // entry), and each is copied out exactly once, right before its kill.
    // Kills go by id — entries carry their table position, so no probe is
    // needed (and none counts as a mod-2 cancellation).
    Rep rest;
    Rep product;
    for (std::size_t h = 0; h < hit_ids_.size(); ++h) {
      const std::uint32_t id = hit_ids_[h];
      rep_assign(rest, entries_[id].mono);
      kill(id);
      rest.clear(var);
      for (const Rep& term : packed_terms_) {
        rep_united(product, rest, term, k_);
        toggle(product);
      }
    }
    peak_ = std::max(peak_, live_);
  }

  std::size_t size() const override { return live_; }
  std::size_t cancellations() const override { return cancellations_; }
  std::size_t peak_terms() const override { return peak_; }

  std::vector<SlotMono> monomials() const override {
    std::vector<SlotMono> out;
    out.reserve(live_);
    for (std::size_t id = 0; id < entries_.size(); ++id) {
      const Entry& e = entries_[id];
      if ((e.gen & 1u) == 0) continue;  // odd generation = live
      SlotMono mono;
      mono.reserve(rep_degree(e.mono, k_));
      e.mono.for_each_slot([&](Slot s) { mono.push_back(s); });
      out.push_back(std::move(mono));
    }
    return out;
  }

 private:
  struct Entry {
    Rep mono{};
    std::uint32_t gen = 0;  // parity: odd = live (see scalar engine)
    std::uint32_t pos = 0;  // table slot holding this entry (valid while live)
  };

  static constexpr std::uint8_t kEmptyTag = 0xFF;
  static constexpr std::uint8_t kTombTag = 0xFE;
  static constexpr std::size_t kMinTableSlots = 64;  // 4 groups
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  static std::uint8_t tag_of(std::uint64_t hash) {
    return static_cast<std::uint8_t>(hash >> 57);  // top 7 bits: 0..127
  }

  void init_table(std::size_t slots) {
    groups_ = slots / 16;
    tags_ = scratch_->arena.allocate_array<std::uint8_t>(slots);
    idx_ = scratch_->arena.allocate_array<std::uint32_t>(slots);
    std::memset(tags_, kEmptyTag, slots);
    used_ = 0;
  }

  Bucket& live_bucket(Slot s) {
    if (scratch_->occ_epoch[s] != epoch_) {
      scratch_->occ_epoch[s] = epoch_;
      scratch_->occ[s] = Bucket{nullptr, 0, 0};
    }
    return scratch_->occ[s];
  }

  void bucket_push(Slot s, std::uint64_t ref) {
    Bucket& b = live_bucket(s);
    if (b.size == b.cap) {
      const std::uint32_t cap = b.cap == 0 ? 4 : b.cap * 2;
      auto* refs = scratch_->arena.allocate_array<std::uint64_t>(cap);
      if (b.size != 0) {
        std::memcpy(refs, b.refs, std::size_t{b.size} * sizeof(std::uint64_t));
      }
      b.refs = refs;
      b.cap = cap;
    }
    b.refs[b.size++] = ref;
  }

  /// Adds mono mod 2: inserts if absent, cancels if present.  One fused
  /// probe_group call per group yields the tag-match, empty and free masks
  /// together (a third of the indirect calls of probing them separately).
  void toggle(const Rep& mono) {
    maybe_grow();
    const std::uint64_t h = rep_hash(mono);
    const std::uint8_t tag = tag_of(h);
    const std::size_t gmask = groups_ - 1;
    std::size_t g = h & gmask;
    std::size_t first_free = kNone;
    for (;; g = (g + 1) & gmask) {
      const std::uint8_t* gt = tags_ + g * 16;
      const std::uint64_t probe = k_.probe_group(gt, tag);
      std::uint32_t match = static_cast<std::uint32_t>(probe & 0xFFFFu);
      while (match != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(match));
        match &= match - 1;
        const std::size_t pos = g * 16 + b;
        const std::uint32_t id = idx_[pos];
        if (rep_eq(entries_[id].mono, mono, k_)) {
          kill(id);
          ++cancellations_;
          return;
        }
      }
      if (first_free == kNone) {
        const std::uint32_t free_mask =
            static_cast<std::uint32_t>((probe >> 32) & 0xFFFFu);
        if (free_mask != 0) {
          first_free =
              g * 16 + static_cast<unsigned>(std::countr_zero(free_mask));
        }
      }
      if ((probe & 0xFFFF0000u) != 0) {  // group has an empty slot: absent
        do_insert(mono, tag, first_free);
        return;
      }
    }
  }

  /// Removes a live entry in O(1) via its stored table position.  Used both
  /// for mod-2 cancellation (toggle) and for retiring substitution hits —
  /// the latter never probes at all.
  void kill(std::uint32_t id) {
    Entry& e = entries_[id];
    ++e.gen;  // live -> dead; stale handles stop matching
    free_.push_back(id);
    tags_[e.pos] = kTombTag;
    --live_;
  }

  void do_insert(const Rep& mono, std::uint8_t tag, std::size_t pos) {
    std::uint32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else {
      entries_.emplace_back();
      id = static_cast<std::uint32_t>(entries_.size() - 1);
    }
    Entry& e = entries_[id];
    rep_assign(e.mono, mono);
    ++e.gen;  // dead -> live
    e.pos = static_cast<std::uint32_t>(pos);
    if (tags_[pos] == kEmptyTag) ++used_;
    tags_[pos] = tag;
    idx_[pos] = id;
    ++live_;
    const std::uint64_t ref = (static_cast<std::uint64_t>(id) << 32) | e.gen;
    mono.for_each_slot([&](Slot s) { bucket_push(s, ref); });
  }

  /// Validates the bucket's handles, stashing live entry ids in hit_ids_
  /// (no monomial copies — substitute() reads each entry once, at its
  /// kill) and compacting the bucket in place.
  void collect_hits(Slot var) {
    Bucket& bucket = live_bucket(var);
    hit_ids_.clear();
    std::uint32_t out = 0;
    for (std::uint32_t i = 0; i < bucket.size; ++i) {
      const std::uint64_t ref = bucket.refs[i];
      const auto id = static_cast<std::uint32_t>(ref >> 32);
      const auto gen = static_cast<std::uint32_t>(ref);
      if (entries_[id].gen != gen) continue;  // stale handle
      hit_ids_.push_back(id);
      bucket.refs[out++] = ref;
    }
    bucket.size = out;
    hits_var_ = var;
    hits_valid_ = true;
  }

  void maybe_grow() {
    if ((used_ + 1) * 8 < groups_ * 16 * 7) return;
    // Grow for the live set; if tombstones dominate, a rehash at the same
    // power of two just sweeps them out.  Old table memory is abandoned
    // to the arena (reclaimed wholesale at the next cone).
    const std::size_t target =
        std::bit_ceil(std::max(kMinTableSlots, live_ * 4));
    init_table(target);
    used_ = live_;
    const std::size_t gmask = groups_ - 1;
    for (std::size_t id = 0; id < entries_.size(); ++id) {
      if ((entries_[id].gen & 1u) == 0) continue;
      const std::uint64_t h = rep_hash(entries_[id].mono);
      for (std::size_t g = h & gmask;; g = (g + 1) & gmask) {
        const std::uint32_t empty = k_.match_tags16(tags_ + g * 16, kEmptyTag);
        if (empty == 0) continue;
        const std::size_t pos =
            g * 16 + static_cast<unsigned>(std::countr_zero(empty));
        tags_[pos] = tag_of(h);
        idx_[pos] = static_cast<std::uint32_t>(id);
        entries_[id].pos = static_cast<std::uint32_t>(pos);
        break;
      }
    }
  }

  const simd::Kernels k_;  // by value: one indirection per kernel call
  const simd::Level level_;
  EngineScratch* scratch_;
  const bool owns_scratch_;
  std::uint32_t epoch_ = 0;

  std::uint8_t* tags_ = nullptr;   // groups_ * 16 control bytes
  std::uint32_t* idx_ = nullptr;   // parallel entry ids
  std::size_t groups_ = 0;

  ArenaVector<Entry> entries_;
  ArenaVector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::size_t used_ = 0;  // non-empty table slots (live + tombstones)
  std::size_t cancellations_ = 0;
  std::size_t peak_ = 0;
  ArenaVector<std::uint32_t> hit_ids_;
  Slot hits_var_ = 0;
  bool hits_valid_ = false;
  ArenaVector<Rep> packed_terms_;
};

template <typename Rep>
ConeEngine::Impl* make_impl(std::size_t num_slots, Slot root,
                            const simd::Kernels* kernels, simd::Level lvl) {
  if (kernels == nullptr) {
    return new EngineImpl<Rep>(num_slots, root);
  }
  static_assert(sizeof(KernelEngine<Rep>) <= kImplStorageBytes);
  EngineScratch& ts = thread_scratch();
  if (!ts.in_use) {
    ts.in_use = true;
    try {
      auto* impl = new (static_cast<void*>(ts.impl_storage))
          KernelEngine<Rep>(num_slots, root, *kernels, lvl, &ts, false);
      impl->placed_ = true;
      return impl;
    } catch (...) {
      ts.in_use = false;
      throw;
    }
  }
  // Nested engine on this thread: rare (the rewriter never does it), so a
  // private heap scratch is fine.
  auto scratch = std::make_unique<EngineScratch>();
  auto* impl =
      new KernelEngine<Rep>(num_slots, root, *kernels, lvl, scratch.get(),
                            /*owns_scratch=*/true);
  scratch.release();  // now owned by the impl
  return impl;
}

}  // namespace

void ConeEngine::ImplDeleter::operator()(Impl* impl) const noexcept {
  if (impl == nullptr) return;
  if (impl->placed_) {
    impl->~Impl();  // storage belongs to the thread scratch
  } else {
    delete impl;
  }
}

ConeEngine::ConeEngine(std::size_t num_slots, Slot root) {
  if (num_slots > kMaxSlots) {
    throw Overflow("cone has " + std::to_string(num_slots) +
                   " variables, beyond the packed slot space");
  }
  const simd::Level lvl = simd::active_level();
  const simd::Kernels* kernels =
      lvl == simd::Level::Scalar ? nullptr : simd::kernels_for_level(lvl);
  switch (rep_for_cone(num_slots)) {
    case RepKind::Bits64:
      impl_.reset(make_impl<BitsRep<1>>(num_slots, root, kernels, lvl));
      break;
    case RepKind::Bits128:
      impl_.reset(make_impl<BitsRep<2>>(num_slots, root, kernels, lvl));
      break;
    case RepKind::Bits256:
      impl_.reset(make_impl<BitsRep<4>>(num_slots, root, kernels, lvl));
      break;
    case RepKind::Bits512:
      impl_.reset(make_impl<BitsRep<8>>(num_slots, root, kernels, lvl));
      break;
    case RepKind::Sparse:
      impl_.reset(make_impl<SparseRep>(num_slots, root, kernels, lvl));
      break;
  }
}

ConeEngine::~ConeEngine() = default;
ConeEngine::ConeEngine(ConeEngine&&) noexcept = default;
ConeEngine& ConeEngine::operator=(ConeEngine&&) noexcept = default;

RepKind ConeEngine::rep() const { return impl_->rep(); }
simd::Level ConeEngine::level() const { return impl_->level(); }
std::size_t ConeEngine::occurrence_count(Slot var) {
  return impl_->occurrence_count(var);
}
void ConeEngine::substitute(Slot var, const TermList& terms) {
  impl_->substitute(var, terms);
}
std::size_t ConeEngine::size() const { return impl_->size(); }
std::size_t ConeEngine::cancellations() const { return impl_->cancellations(); }
std::size_t ConeEngine::peak_terms() const { return impl_->peak_terms(); }
std::vector<SlotMono> ConeEngine::monomials() const {
  return impl_->monomials();
}

}  // namespace gfre::anf::packed
