// Shared lexing/diagnostics substrate for every netlist frontend.
//
// The three dialect parsers (.eqn, BLIF, Verilog) and the cell-library
// reader all sit on the primitives here, so source bookkeeping is written
// exactly once:
//  - Loc (file/line/column) and fail_at() -> ParseError with full position
//  - CRLF and trailing-whitespace transparency
//  - comment stripping: '#' line comments, '//' line comments and
//    '/* ... */' block comments, selected per dialect but implemented once
//  - escaped Verilog identifiers ("\foo[0] ": backslash to whitespace)
//  - `include expansion with cycle detection (token lexer only)
//
// Two access shapes are provided: LineScanner for the line-oriented
// dialects (.eqn, BLIF) and Lexer for the token-oriented ones (Verilog,
// cell libraries).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace gfre::frontend {

/// A source position.  `column` is 1-based; 0 means line-granular.
struct Loc {
  std::string file = "<input>";
  int line = 1;
  int column = 0;
};

/// Throws ParseError carrying the position.
[[noreturn]] void fail_at(const Loc& loc, const std::string& msg);

// ---------------------------------------------------------------------------
// LineScanner: logical lines for .eqn / BLIF
// ---------------------------------------------------------------------------

/// Comment/continuation policy for a line-oriented dialect.
struct LineSyntax {
  bool hash_comments = true;        ///< '#' to end of line
  bool slash_comments = false;      ///< '//' to end of line
  bool block_comments = false;      ///< '/* ... */' (may span lines)
  bool backslash_continuation = false;  ///< trailing '\' joins lines
};

/// One logical line: comments stripped, CR/trailing whitespace removed,
/// continuations joined.  `line` is the physical line the logical line
/// started on.
struct LogicalLine {
  std::string text;
  int line = 0;
};

/// Splits text into logical lines under a dialect's LineSyntax.  Blank
/// (post-strip) lines are skipped.
class LineScanner {
 public:
  LineScanner(std::string_view text, std::string file, LineSyntax syntax);

  /// Next non-empty logical line, or nullopt at end of input.
  /// Throws ParseError on an unterminated block comment.
  std::optional<LogicalLine> next();

  const std::string& file() const { return file_; }

 private:
  std::string_view text_;
  std::string file_;
  LineSyntax syntax_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool in_block_comment_ = false;
  int block_comment_line_ = 0;
};

// ---------------------------------------------------------------------------
// Lexer: tokens for Verilog / cell libraries
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind {
    Ident,   ///< identifier or keyword (text holds the name)
    Number,  ///< integer literal; value/width filled in
    String,  ///< double-quoted string (text holds the unquoted content)
    Punct,   ///< single punctuation character in text[0]
    End,     ///< end of input
  };

  Kind kind = Kind::End;
  std::string text;
  std::uint64_t value = 0;  ///< Number: numeric value
  unsigned width = 0;       ///< Number: declared width (0 = unsized)
  bool escaped = false;     ///< Ident: came from a '\' escaped identifier
  Loc loc;

  bool is_punct(char c) const {
    return kind == Kind::Punct && text.size() == 1 && text[0] == c;
  }
  bool is_ident(std::string_view s) const {
    return kind == Kind::Ident && text == s;
  }
};

/// Resolves an `include target.  Returns the file's text, and fills
/// `resolved` with the canonical path used for cycle detection.  Returns
/// nullopt when the file cannot be found/read.
using IncludeResolver = std::function<std::optional<std::string>(
    const std::string& target, const Loc& site, std::string* resolved)>;

/// Filesystem resolver: `target` relative to the including file's
/// directory (absolute paths pass through).
IncludeResolver filesystem_include_resolver();

/// Token policy knobs per dialect.
struct LexSyntax {
  bool slash_comments = true;   ///< '//' and '/* */'
  bool hash_comments = false;   ///< '#' to end of line
  bool verilog_numbers = false; ///< sized literals: 4'b1010, 8'hff, 1'd1
  bool escaped_idents = false;  ///< '\name ' escaped identifiers
  bool directives = false;      ///< backtick directives (`include)
};

/// Streaming tokenizer with position tracking and (optionally) `include
/// expansion.  Include cycles and unreadable files are diagnosed with the
/// location of the `include directive.
class Lexer {
 public:
  Lexer(std::string text, std::string file, LexSyntax syntax,
        IncludeResolver resolver = nullptr);

  /// The current token (initially the first one).
  const Token& peek() const { return tok_; }

  /// Advances and returns the previous token.
  Token next();

  // -- Convenience expect/accept helpers ---------------------------------
  Token expect_ident(const char* what);
  Token expect_punct(char c);
  bool accept_punct(char c);
  bool accept_ident(std::string_view s);

  [[noreturn]] void fail(const std::string& msg) const { fail_at(tok_.loc, msg); }

 private:
  struct Frame {
    std::string text;
    std::string file;
    std::string resolved;  ///< canonical path (cycle detection key)
    std::size_t pos = 0;
    int line = 1;
    int col = 1;
  };

  Frame& top() { return frames_.back(); }
  bool frame_eof() const { return frames_.back().pos >= frames_.back().text.size(); }
  char cur() const { return frames_.back().text[frames_.back().pos]; }
  void advance();
  void skip_trivia();          ///< whitespace, comments, frame pops
  void handle_directive();     ///< backtick directives (`include ...)
  Token lex_token();           ///< one token from the current frame
  Loc here() const;

  LexSyntax syntax_;
  IncludeResolver resolver_;
  std::vector<Frame> frames_;
  Token tok_;
};

}  // namespace gfre::frontend
