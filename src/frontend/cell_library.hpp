// Standard-cell library descriptions: the bridge from foundry-mapped
// netlists to the ANF engine's cell set.
//
// A library is a Liberty-flavored text file defining, per cell, its input
// pins and one output pin with a boolean function:
//
//   /* comments */
//   library (gfre_cells) {
//     cell (AOI22) {
//       pin (a1) { direction : input; }
//       pin (a2) { direction : input; }
//       pin (b1) { direction : input; }
//       pin (b2) { direction : input; }
//       pin (y)  { direction : output; function : "!((a1 & a2) | (b1 & b2))"; }
//     }
//   }
//
// The function grammar: pin names, 0/1 constants, ! or ~ (not), & (and),
// | (or), ^ (xor), ?: (mux), parentheses, and calls to previously usable
// cells — "XNOR2(XOR2(a, b), c)" — which are inlined at load time with
// recursion detection.  Unknown attributes (area, timing, ...) are
// skipped, so trimmed-down fragments of real .lib files load.
//
// After parsing, each cell is matched against the builtin CellType set by
// truth table (opt/lib_cells.cpp): AOI22 above becomes a single Aoi22
// gate; a cell with no builtin equivalent is expanded structurally when
// instantiated.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "frontend/source.hpp"
#include "netlist/cell.hpp"

namespace gfre::frontend {

/// Boolean function AST over a cell's input pins.
struct BoolExpr {
  enum class Kind { Const0, Const1, Ref, Not, And, Or, Xor, Mux };

  Kind kind = Kind::Const0;
  unsigned pin = 0;                ///< Ref: input-pin index
  std::vector<BoolExpr> operands;  ///< Not: 1; And/Or/Xor: 2; Mux: s,d0,d1

  static BoolExpr constant(bool one) {
    BoolExpr e;
    e.kind = one ? Kind::Const1 : Kind::Const0;
    return e;
  }
};

/// Evaluates `expr` with `values[i]` as the value of pin i.
bool eval_bool_expr(const BoolExpr& expr, const std::vector<bool>& values);

/// One library cell: named input pins (declaration order defines the
/// positional pin order) and a single-output boolean function.
struct LibCell {
  std::string name;
  std::vector<std::string> inputs;  ///< input pin names, in order
  std::string output;               ///< output pin name
  BoolExpr function;                ///< over input-pin indices
  /// Builtin cell with the identical truth table, when one exists — the
  /// single-gate fast path.  Filled by opt::match_builtin_cell at load.
  std::optional<nl::CellType> builtin;

  int find_input(const std::string& pin) const;
};

class CellLibrary {
 public:
  explicit CellLibrary(std::string name = "") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<LibCell>& cells() const { return cells_; }
  std::size_t size() const { return cells_.size(); }

  /// Case-sensitive lookup; nullptr when absent.
  const LibCell* find(const std::string& cell_name) const;

  /// Appends a cell; throws InvalidArgument on duplicate names.
  void add(LibCell cell);

 private:
  std::string name_;
  std::vector<LibCell> cells_;
};

/// Parses library text; `filename` is used in diagnostics.  Cell function
/// calls are inlined and every cell is truth-table matched against the
/// builtin set.
CellLibrary parse_cell_library(const std::string& text,
                               const std::string& filename = "<library>");

/// Reads and parses a library file; throws gfre::Error when unreadable.
CellLibrary load_cell_library_file(const std::string& path);

}  // namespace gfre::frontend
