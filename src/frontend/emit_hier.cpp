#include "frontend/emit_hier.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "netlist/io_verilog.hpp"
#include "util/error.hpp"

namespace gfre::frontend {

namespace {

using nl::CellType;
using nl::Gate;
using nl::Netlist;
using nl::Var;

/// Verilog gate primitive for the cell type, or nullptr when none exists.
const char* primitive_name(CellType type) {
  switch (type) {
    case CellType::Buf:
      return "buf";
    case CellType::Inv:
      return "not";
    case CellType::And:
      return "and";
    case CellType::Nand:
      return "nand";
    case CellType::Or:
      return "or";
    case CellType::Nor:
      return "nor";
    case CellType::Xor:
      return "xor";
    case CellType::Xnor:
      return "xnor";
    default:
      return nullptr;
  }
}

/// A maximal run of port names "<base>0", "<base>1", ... in declaration
/// order, collapsible into a vector port.
struct PortGroup {
  std::string base;
  std::vector<Var> bits;  // bits[i] is "<base><i>"
  bool vector = false;
};

bool split_trailing_index(const std::string& name, std::string& base,
                          std::size_t& index) {
  std::size_t pos = name.size();
  while (pos > 0 && std::isdigit(static_cast<unsigned char>(name[pos - 1])))
    --pos;
  if (pos == name.size() || pos == 0) return false;
  base = name.substr(0, pos);
  index = 0;
  for (std::size_t i = pos; i < name.size(); ++i)
    index = index * 10 + static_cast<std::size_t>(name[i] - '0');
  return true;
}

/// Groups `vars` into vector runs; a group is a vector only when its names
/// are "<base>0".."<base>k" contiguously in order with k >= 1.
std::vector<PortGroup> group_ports(const Netlist& netlist,
                                   const std::vector<Var>& vars) {
  std::vector<PortGroup> groups;
  for (Var v : vars) {
    std::string base;
    std::size_t index = 0;
    const std::string& name = netlist.var_name(v);
    if (split_trailing_index(name, base, index) && !groups.empty() &&
        groups.back().vector && groups.back().base == base &&
        index == groups.back().bits.size()) {
      groups.back().bits.push_back(v);
      continue;
    }
    PortGroup group;
    if (split_trailing_index(name, base, index) && index == 0) {
      group.base = base;
      group.vector = true;
    } else {
      group.base = name;
      group.vector = false;
    }
    group.bits.push_back(v);
    groups.push_back(std::move(group));
  }
  // A "vector" of one bit is just a scalar with a 0 suffix; keep its name.
  for (PortGroup& group : groups) {
    if (group.vector && group.bits.size() < 2) {
      group.vector = false;
      group.base = netlist.var_name(group.bits[0]);
    }
  }
  return groups;
}

class HierEmitter {
 public:
  HierEmitter(const Netlist& netlist, const HierEmitOptions& options)
      : netlist_(netlist), options_(options) {
    top_name_ = options.top_name.empty() ? netlist.name() + "_hier"
                                         : options.top_name;
    order_ = netlist.topological_order();
    const std::size_t n = std::max<std::size_t>(order_.size(), 1);
    chunks_ = std::clamp<std::size_t>(options.chunks, 1, n);
    for (Var v : netlist.inputs()) primary_inputs_.insert(v);
    for (Var v : netlist.outputs()) primary_outputs_.insert(v);
    if (options.library) {
      for (const LibCell& cell : options.library->cells()) {
        if (!cell.builtin) continue;
        cell_for_type_.emplace(
            std::make_pair(*cell.builtin, cell.inputs.size()), &cell);
      }
    }
  }

  HierEmitResult run() {
    in_groups_ = group_ports(netlist_, netlist_.inputs());
    out_groups_ = group_ports(netlist_, netlist_.outputs());
    plan_chunks();

    std::ostringstream modules;
    for (std::size_t c = 0; c < chunks_; ++c) emit_chunk_module(modules, c);

    std::ostringstream top;
    top << "// " << top_name_ << " — hierarchical emission, " << chunks_
        << " submodules over " << order_.size() << " gates\n";
    if (!options_.include_file.empty())
      top << "`include \"" << options_.include_file << "\"\n";
    else
      top << modules.str();
    emit_top(top);

    HierEmitResult result;
    result.top = top.str();
    if (!options_.include_file.empty()) result.included = modules.str();
    return result;
  }

 private:
  struct Chunk {
    std::vector<std::size_t> gates;   // indices into order_
    std::vector<Var> inputs;          // external nets, first-use order
    std::vector<Var> outputs;         // defined here, used later / primary
    std::unordered_set<Var> defined;  // gate outputs in this chunk
  };

  void plan_chunks() {
    chunk_list_.resize(chunks_);
    const std::size_t total = order_.size();
    for (std::size_t c = 0; c < chunks_; ++c) {
      const std::size_t begin = total * c / chunks_;
      const std::size_t end = total * (c + 1) / chunks_;
      for (std::size_t i = begin; i < end; ++i)
        chunk_list_[c].gates.push_back(i);
    }
    for (std::size_t c = 0; c < chunks_; ++c) {
      for (std::size_t i : chunk_list_[c].gates)
        chunk_list_[c].defined.insert(netlist_.gate(order_[i]).output);
    }
    // Latest chunk reading each net (topological order guarantees reads
    // never precede the defining chunk).
    std::unordered_map<Var, std::size_t> last_use;
    for (std::size_t c = 0; c < chunks_; ++c) {
      for (std::size_t i : chunk_list_[c].gates)
        for (Var in : netlist_.gate(order_[i]).inputs) last_use[in] = c;
    }
    for (std::size_t c = 0; c < chunks_; ++c) {
      Chunk& chunk = chunk_list_[c];
      std::unordered_set<Var> seen_inputs;
      for (std::size_t i : chunk.gates) {
        const Gate& gate = netlist_.gate(order_[i]);
        for (Var in : gate.inputs) {
          if (chunk.defined.count(in) || seen_inputs.count(in)) continue;
          seen_inputs.insert(in);
          chunk.inputs.push_back(in);
        }
      }
      for (std::size_t i : chunk.gates) {
        const Var out = netlist_.gate(order_[i]).output;
        const auto it = last_use.find(out);
        if (primary_outputs_.count(out) ||
            (it != last_use.end() && it->second != c))
          chunk.outputs.push_back(out);
      }
    }
  }

  std::string chunk_name(std::size_t c) const {
    return top_name_ + "_part" + std::to_string(c);
  }

  const std::string& flat_name(Var v) const { return netlist_.var_name(v); }

  /// The net expression for `v` inside the top module: a vector bit-select
  /// when the primary port was vectorized, else the flat name.
  std::string top_net(Var v) const {
    auto it = top_bit_.find(v);
    if (it != top_bit_.end())
      return it->second.first + "[" + std::to_string(it->second.second) + "]";
    return nl::verilog_ident(flat_name(v));
  }

  void emit_chunk_module(std::ostream& out, std::size_t c) {
    const Chunk& chunk = chunk_list_[c];
    out << "module " << chunk_name(c) << " (";
    bool first = true;
    for (Var v : chunk.inputs) {
      out << (first ? "" : ", ") << nl::verilog_ident(flat_name(v));
      first = false;
    }
    for (Var v : chunk.outputs) {
      out << (first ? "" : ", ") << nl::verilog_ident(flat_name(v));
      first = false;
    }
    out << ");\n";
    for (Var v : chunk.inputs)
      out << "  input " << nl::verilog_ident(flat_name(v)) << ";\n";
    for (Var v : chunk.outputs)
      out << "  output " << nl::verilog_ident(flat_name(v)) << ";\n";
    for (std::size_t i : chunk.gates) {
      const Var v = netlist_.gate(order_[i]).output;
      if (std::find(chunk.outputs.begin(), chunk.outputs.end(), v) ==
          chunk.outputs.end())
        out << "  wire " << nl::verilog_ident(flat_name(v)) << ";\n";
    }
    std::size_t inst = 0;
    for (std::size_t i : chunk.gates)
      emit_gate(out, netlist_.gate(order_[i]), inst++);
    out << "endmodule\n\n";
  }

  void emit_gate(std::ostream& out, const Gate& gate, std::size_t inst) {
    auto name = [&](Var v) { return nl::verilog_ident(flat_name(v)); };
    // Library cell instance when the library names this exact function.
    auto it = cell_for_type_.find({gate.type, gate.inputs.size()});
    if (it != cell_for_type_.end()) {
      const LibCell& cell = *it->second;
      out << "  " << cell.name << " g" << inst << " (";
      for (std::size_t i = 0; i < gate.inputs.size(); ++i)
        out << (i ? ", " : "") << "." << cell.inputs[i] << "("
            << name(gate.inputs[i]) << ")";
      out << (gate.inputs.empty() ? "" : ", ") << "." << cell.output << "("
          << name(gate.output) << "));\n";
      return;
    }
    if (const char* prim = primitive_name(gate.type)) {
      out << "  " << prim << " g" << inst << " (" << name(gate.output);
      for (Var in : gate.inputs) out << ", " << name(in);
      out << ");\n";
      return;
    }
    // Assign fallback.  Single-gate-preserving for MUX (ternary); the
    // complex cells expand structurally, so emissions needing bit-identity
    // must supply a library covering them.
    out << "  assign " << name(gate.output) << " = "
        << assign_expr(gate, name) << ";\n";
  }

  static std::string assign_expr(const Gate& gate,
                                 const std::function<std::string(Var)>& name) {
    auto n = [&](std::size_t i) { return name(gate.inputs[i]); };
    switch (gate.type) {
      case CellType::Const0:
        return "1'b0";
      case CellType::Const1:
        return "1'b1";
      case CellType::Mux:
        // Mux(s, d0, d1) == s ? d1 : d0.
        return n(0) + " ? " + n(2) + " : " + n(1);
      case CellType::Aoi21:
        return "~((" + n(0) + " & " + n(1) + ") | " + n(2) + ")";
      case CellType::Oai21:
        return "~((" + n(0) + " | " + n(1) + ") & " + n(2) + ")";
      case CellType::Aoi22:
        return "~((" + n(0) + " & " + n(1) + ") | (" + n(2) + " & " + n(3) +
               "))";
      case CellType::Oai22:
        return "~((" + n(0) + " | " + n(1) + ") & (" + n(2) + " | " + n(3) +
               "))";
      case CellType::Maj3:
        return "(" + n(0) + " & " + n(1) + ") | (" + n(0) + " & " + n(2) +
               ") | (" + n(1) + " & " + n(2) + ")";
      default:
        GFRE_ASSERT(false, "cell type has no assign form");
        return "";
    }
  }

  void emit_top(std::ostream& out) {
    // Vector ports only when every primary port collapses cleanly and, for
    // the parameterized form, all widths agree.
    bool vectors = true;
    std::size_t width = 0;
    bool uniform = true;
    auto inspect = [&](const std::vector<PortGroup>& groups) {
      for (const PortGroup& group : groups) {
        if (!group.vector) {
          vectors = false;
          continue;
        }
        if (width == 0) width = group.bits.size();
        if (group.bits.size() != width) uniform = false;
      }
    };
    inspect(in_groups_);
    inspect(out_groups_);
    const bool use_param = options_.use_parameter && vectors && uniform;

    top_bit_.clear();
    auto register_bits = [&](const std::vector<PortGroup>& groups) {
      for (const PortGroup& group : groups) {
        if (!group.vector) continue;
        for (std::size_t i = 0; i < group.bits.size(); ++i)
          top_bit_.emplace(group.bits[i], std::make_pair(group.base, i));
      }
    };
    register_bits(in_groups_);
    register_bits(out_groups_);

    out << "module " << top_name_;
    if (use_param) out << " #(parameter M = " << width << ")";
    out << " (";
    bool first = true;
    auto port_list = [&](const std::vector<PortGroup>& groups) {
      for (const PortGroup& group : groups) {
        out << (first ? "" : ", ")
            << (group.vector ? group.base : nl::verilog_ident(group.base));
        first = false;
      }
    };
    port_list(in_groups_);
    port_list(out_groups_);
    out << ");\n";

    auto range = [&](const PortGroup& group) {
      if (!group.vector) return std::string();
      if (use_param) return std::string(" [M-1:0]");
      return " [" + std::to_string(group.bits.size() - 1) + ":0]";
    };
    for (const PortGroup& group : in_groups_)
      out << "  input" << range(group) << " "
          << (group.vector ? group.base : nl::verilog_ident(group.base))
          << ";\n";
    for (const PortGroup& group : out_groups_)
      out << "  output" << range(group) << " "
          << (group.vector ? group.base : nl::verilog_ident(group.base))
          << ";\n";

    // Wires for every chunk output that is not a primary output.
    for (const Chunk& chunk : chunk_list_)
      for (Var v : chunk.outputs)
        if (!primary_outputs_.count(v))
          out << "  wire " << nl::verilog_ident(flat_name(v)) << ";\n";

    for (std::size_t c = 0; c < chunks_; ++c) {
      const Chunk& chunk = chunk_list_[c];
      out << "  " << chunk_name(c) << " u" << c << " (";
      bool first_conn = true;
      auto connect = [&](Var v) {
        out << (first_conn ? "" : ", ") << "."
            << nl::verilog_ident(flat_name(v)) << "(" << top_net(v) << ")";
        first_conn = false;
      };
      for (Var v : chunk.inputs) connect(v);
      for (Var v : chunk.outputs) connect(v);
      out << ");\n";
    }
    out << "endmodule\n";
  }

  const Netlist& netlist_;
  const HierEmitOptions& options_;
  std::string top_name_;
  std::vector<std::size_t> order_;
  std::size_t chunks_ = 1;
  std::vector<Chunk> chunk_list_;
  std::unordered_set<Var> primary_inputs_;
  std::unordered_set<Var> primary_outputs_;
  std::vector<PortGroup> in_groups_;
  std::vector<PortGroup> out_groups_;
  std::unordered_map<Var, std::pair<std::string, std::size_t>> top_bit_;
  std::map<std::pair<CellType, std::size_t>, const LibCell*> cell_for_type_;
};

}  // namespace

HierEmitResult emit_hier_verilog(const Netlist& netlist,
                                 const HierEmitOptions& options) {
  return HierEmitter(netlist, options).run();
}

}  // namespace gfre::frontend
