// The unified netlist frontend: one entry point from bytes to Netlist.
//
// Dispatch is by content, not file extension: sniff_format() inspects the
// first meaningful token (comments and whitespace skipped), so a BLIF
// file named circuit.txt — or bytes arriving over the serving tier's wire
// protocol — parse the same as a well-named file.  Unrecognizable bytes
// are a diagnosed `unknown_format` parse error, never a crash.
//
// Every dialect parser is reachable through the Frontend interface and
// shares the frontend/source.hpp lexing substrate, so CRLF handling,
// comment stripping and file:line:column diagnostics behave identically
// across .eqn, BLIF and Verilog.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "frontend/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace gfre::frontend {

enum class Format { Eqn, Blif, Verilog, Unknown };

const char* format_name(Format format);

/// Determines the dialect from the first non-comment token of `bytes`.
Format sniff_format(std::string_view bytes);

/// Cross-dialect parse options.
struct FrontendOptions {
  /// Standard-cell definitions for instantiated (Verilog) or referenced
  /// (.eqn operator) cell types outside the builtin set.  May be null.
  std::shared_ptr<const CellLibrary> library;
  /// Verilog only: top module override.  Empty = the single module, or
  /// the unique uninstantiated one in a multi-module file.
  std::string top;
};

/// One dialect parser.
class Frontend {
 public:
  virtual ~Frontend() = default;
  virtual Format format() const = 0;
  virtual nl::Netlist parse(const std::string& text,
                            const std::string& filename,
                            const FrontendOptions& options) const = 0;
};

/// The registered parser for a dialect; throws InvalidArgument for
/// Format::Unknown.
const Frontend& frontend_for(Format format);

/// Sniffs and parses.  Throws ParseError with an `unknown_format`
/// diagnosis when the bytes match no dialect.
nl::Netlist parse_netlist(const std::string& text, const std::string& filename,
                          const FrontendOptions& options = {});

}  // namespace gfre::frontend
