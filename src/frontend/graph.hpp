// Name-level netlist construction shared by every frontend.
//
// Parsers collect abstract nodes — "net <output> is computed from nets
// <args> by <emit>" — in source order, plus declared inputs and outputs.
// build() then instantiates a Netlist by depth-first dependency traversal,
// so statements may appear in any order and every structural diagnostic
// (undefined net, double definition, combinational cycle, driven input,
// undriven output) is produced by one implementation with the source
// location of the offending statement.
//
// The traversal visits nodes in insertion order and resolves each node's
// args first, which means a file whose statements are already in
// topological order instantiates gates exactly in file order — the
// property the hierarchical-vs-flat differential tests lean on.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "frontend/source.hpp"
#include "netlist/netlist.hpp"

namespace gfre::frontend {

/// Emits the gate(s) computing one node.  `args` are the resolved nets for
/// the node's argument names, in order.  The callback must create a net
/// named exactly the node's output name (the builder reserves the name
/// beforehand and asserts afterwards).  It may create auxiliary
/// auto-named gates.
using EmitFn =
    std::function<void(nl::Netlist&, const std::vector<nl::Var>& args)>;

class GraphBuilder {
 public:
  GraphBuilder(std::string model_name, std::string file);

  /// Declares a primary input (declaration order = Var id order).
  void add_input(const std::string& name, const Loc& loc);

  /// Declares a primary output (order significant).
  void add_output(const std::string& name, const Loc& loc);

  /// Adds a combinational node driving `output` from `args`.
  void add_node(std::string output, std::vector<std::string> args,
                const Loc& loc, EmitFn emit);

  /// True when `name` is a declared input or an added node output.
  bool defines(const std::string& name) const;

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Instantiates the netlist; throws ParseError on structural problems.
  nl::Netlist build();

 private:
  struct Node {
    std::string output;
    std::vector<std::string> args;
    Loc loc;
    EmitFn emit;
    unsigned char state = 0;  // 0 unvisited, 1 visiting, 2 done
  };

  void instantiate(nl::Netlist& netlist, std::size_t idx);

  std::string model_name_;
  std::string file_;
  std::vector<std::pair<std::string, Loc>> inputs_;
  std::vector<std::pair<std::string, Loc>> outputs_;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, std::size_t> node_by_output_;
  std::unordered_map<std::string, Loc> input_locs_;
};

}  // namespace gfre::frontend
