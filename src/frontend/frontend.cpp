#include "frontend/frontend.hpp"

#include <cctype>

#include "netlist/io_blif.hpp"
#include "netlist/io_eqn.hpp"
#include "netlist/io_verilog.hpp"
#include "util/error.hpp"

namespace gfre::frontend {

const char* format_name(Format format) {
  switch (format) {
    case Format::Eqn:
      return "eqn";
    case Format::Blif:
      return "blif";
    case Format::Verilog:
      return "verilog";
    case Format::Unknown:
      return "unknown";
  }
  return "unknown";
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$' ||
         c == '[' || c == ']' || c == '.';
}

/// Advances past whitespace and every comment style any dialect accepts
/// ('#' and '//' to end of line, '/* */' blocks).  Comments don't decide
/// the format — the first real token does.
std::size_t skip_trivia(std::string_view bytes, std::size_t pos) {
  while (pos < bytes.size()) {
    const char c = bytes[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '#') {
      while (pos < bytes.size() && bytes[pos] != '\n') ++pos;
      continue;
    }
    if (c == '/' && pos + 1 < bytes.size()) {
      if (bytes[pos + 1] == '/') {
        while (pos < bytes.size() && bytes[pos] != '\n') ++pos;
        continue;
      }
      if (bytes[pos + 1] == '*') {
        pos += 2;
        while (pos + 1 < bytes.size() &&
               !(bytes[pos] == '*' && bytes[pos + 1] == '/'))
          ++pos;
        pos = (pos + 1 < bytes.size()) ? pos + 2 : bytes.size();
        continue;
      }
    }
    break;
  }
  return pos;
}

}  // namespace

Format sniff_format(std::string_view bytes) {
  std::size_t pos = skip_trivia(bytes, 0);
  if (pos >= bytes.size()) return Format::Unknown;
  const char c = bytes[pos];
  // BLIF is the only dialect whose statements lead with a dot directive.
  if (c == '.') return Format::Blif;
  // Compiler directives (`include, `define) and escaped identifiers only
  // exist in Verilog.
  if (c == '`' || c == '\\') return Format::Verilog;
  if (!ident_start(c)) return Format::Unknown;
  std::size_t end = pos;
  while (end < bytes.size() && ident_char(bytes[end])) ++end;
  const std::string_view word = bytes.substr(pos, end - pos);
  if (word == "module" || word == "macromodule") return Format::Verilog;
  if (word == "model" || word == "input" || word == "output")
    return Format::Eqn;
  // A bare equation ("s0 = AND(a, b);") is legal leading .eqn content.
  pos = skip_trivia(bytes, end);
  if (pos < bytes.size() && bytes[pos] == '=') return Format::Eqn;
  return Format::Unknown;
}

namespace {

class EqnFrontend final : public Frontend {
 public:
  Format format() const override { return Format::Eqn; }
  nl::Netlist parse(const std::string& text, const std::string& filename,
                    const FrontendOptions& options) const override {
    return nl::read_eqn(text, filename, options);
  }
};

class BlifFrontend final : public Frontend {
 public:
  Format format() const override { return Format::Blif; }
  nl::Netlist parse(const std::string& text, const std::string& filename,
                    const FrontendOptions& options) const override {
    (void)options;  // BLIF covers never reference library cells.
    return nl::read_blif(text, filename);
  }
};

class VerilogFrontend final : public Frontend {
 public:
  Format format() const override { return Format::Verilog; }
  nl::Netlist parse(const std::string& text, const std::string& filename,
                    const FrontendOptions& options) const override {
    return nl::read_verilog(text, filename, options);
  }
};

}  // namespace

const Frontend& frontend_for(Format format) {
  static const EqnFrontend eqn;
  static const BlifFrontend blif;
  static const VerilogFrontend verilog;
  switch (format) {
    case Format::Eqn:
      return eqn;
    case Format::Blif:
      return blif;
    case Format::Verilog:
      return verilog;
    case Format::Unknown:
      break;
  }
  throw InvalidArgument("no frontend for unknown format");
}

nl::Netlist parse_netlist(const std::string& text, const std::string& filename,
                          const FrontendOptions& options) {
  const Format format = sniff_format(text);
  if (format == Format::Unknown) {
    throw ParseError(
        filename, 1,
        "unknown_format: content matches no supported dialect (expected "
        ".eqn equations, BLIF directives, or a Verilog module)");
  }
  return frontend_for(format).parse(text, filename, options);
}

}  // namespace gfre::frontend
