#include "frontend/cell_library.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "opt/passes.hpp"
#include "util/error.hpp"

namespace gfre::frontend {

bool eval_bool_expr(const BoolExpr& expr, const std::vector<bool>& values) {
  switch (expr.kind) {
    case BoolExpr::Kind::Const0: return false;
    case BoolExpr::Kind::Const1: return true;
    case BoolExpr::Kind::Ref:
      GFRE_ASSERT(expr.pin < values.size(), "pin index out of range");
      return values[expr.pin];
    case BoolExpr::Kind::Not:
      return !eval_bool_expr(expr.operands[0], values);
    case BoolExpr::Kind::And:
      return eval_bool_expr(expr.operands[0], values) &&
             eval_bool_expr(expr.operands[1], values);
    case BoolExpr::Kind::Or:
      return eval_bool_expr(expr.operands[0], values) ||
             eval_bool_expr(expr.operands[1], values);
    case BoolExpr::Kind::Xor:
      return eval_bool_expr(expr.operands[0], values) !=
             eval_bool_expr(expr.operands[1], values);
    case BoolExpr::Kind::Mux:
      return eval_bool_expr(expr.operands[0], values)
                 ? eval_bool_expr(expr.operands[2], values)
                 : eval_bool_expr(expr.operands[1], values);
  }
  return false;
}

int LibCell::find_input(const std::string& pin) const {
  for (std::size_t i = 0; i < inputs.size(); ++i)
    if (inputs[i] == pin) return static_cast<int>(i);
  return -1;
}

const LibCell* CellLibrary::find(const std::string& cell_name) const {
  for (const LibCell& c : cells_)
    if (c.name == cell_name) return &c;
  return nullptr;
}

void CellLibrary::add(LibCell cell) {
  if (find(cell.name))
    throw InvalidArgument("cell library already defines '" + cell.name + "'");
  cells_.push_back(std::move(cell));
}

namespace {

// ---------------------------------------------------------------------------
// Function expression parsing
//
// Parsed in two stages: a named AST (pins and cell calls by name) built
// from the attribute string, then resolution — calls inlined with cycle
// detection, pin names bound to indices.
// ---------------------------------------------------------------------------

struct NamedExpr {
  enum class Kind { Const0, Const1, Ref, Not, And, Or, Xor, Mux, Call };
  Kind kind = Kind::Const0;
  std::string name;  ///< Ref: pin name; Call: cell name
  std::vector<NamedExpr> operands;
  Loc loc;
};

class FunctionParser {
 public:
  FunctionParser(const std::string& text, const Loc& site)
      : lexer_(text, site.file, LexSyntax{}), site_(site) {
    // The function string lives inside an attribute on `site_`'s line; the
    // inner lexer restarts line numbering, so diagnostics are pinned to
    // the attribute's own location instead.
  }

  NamedExpr parse() {
    NamedExpr e = ternary();
    if (lexer_.peek().kind != Token::Kind::End)
      fail("unexpected '" + lexer_.peek().text + "' in cell function");
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const { fail_at(site_, msg); }

  NamedExpr ternary() {
    NamedExpr cond = or_expr();
    if (!lexer_.accept_punct('?')) return cond;
    NamedExpr d1 = ternary();
    if (!lexer_.accept_punct(':')) fail("expected ':' in cell function");
    NamedExpr d0 = ternary();
    NamedExpr e;
    e.kind = NamedExpr::Kind::Mux;
    e.operands = {std::move(cond), std::move(d0), std::move(d1)};
    return e;
  }

  NamedExpr or_expr() {
    NamedExpr e = xor_expr();
    while (lexer_.accept_punct('|') || lexer_.accept_punct('+')) {
      NamedExpr rhs = xor_expr();
      NamedExpr joined;
      joined.kind = NamedExpr::Kind::Or;
      joined.operands = {std::move(e), std::move(rhs)};
      e = std::move(joined);
    }
    return e;
  }

  NamedExpr xor_expr() {
    NamedExpr e = and_expr();
    while (lexer_.accept_punct('^')) {
      NamedExpr rhs = and_expr();
      NamedExpr joined;
      joined.kind = NamedExpr::Kind::Xor;
      joined.operands = {std::move(e), std::move(rhs)};
      e = std::move(joined);
    }
    return e;
  }

  NamedExpr and_expr() {
    NamedExpr e = unary();
    while (lexer_.accept_punct('&') || lexer_.accept_punct('*')) {
      NamedExpr rhs = unary();
      NamedExpr joined;
      joined.kind = NamedExpr::Kind::And;
      joined.operands = {std::move(e), std::move(rhs)};
      e = std::move(joined);
    }
    return e;
  }

  NamedExpr unary() {
    if (lexer_.accept_punct('!') || lexer_.accept_punct('~')) {
      NamedExpr e;
      e.kind = NamedExpr::Kind::Not;
      e.operands = {unary()};
      return e;
    }
    return primary();
  }

  NamedExpr primary() {
    const Token& t = lexer_.peek();
    if (t.is_punct('(')) {
      lexer_.next();
      NamedExpr e = ternary();
      if (!lexer_.accept_punct(')')) fail("expected ')' in cell function");
      return e;
    }
    if (t.kind == Token::Kind::Number) {
      Token num = lexer_.next();
      if (num.value > 1) fail("only 0/1 constants allowed in cell functions");
      NamedExpr e;
      e.kind = num.value ? NamedExpr::Kind::Const1 : NamedExpr::Kind::Const0;
      return e;
    }
    if (t.kind == Token::Kind::Ident) {
      Token id = lexer_.next();
      NamedExpr e;
      e.loc = site_;
      if (lexer_.accept_punct('(')) {
        e.kind = NamedExpr::Kind::Call;
        e.name = id.text;
        if (!lexer_.accept_punct(')')) {
          for (;;) {
            e.operands.push_back(ternary());
            if (lexer_.accept_punct(')')) break;
            if (!lexer_.accept_punct(','))
              fail("expected ',' or ')' in cell call");
          }
        }
        return e;
      }
      e.kind = NamedExpr::Kind::Ref;
      e.name = id.text;
      return e;
    }
    fail("expected a pin, constant or '(' in cell function, got '" + t.text +
         "'");
  }

  mutable Lexer lexer_;
  Loc site_;
};

/// Per-cell parse state before resolution.
struct RawCell {
  LibCell cell;          ///< function not yet filled
  NamedExpr function;    ///< named form
  Loc loc;
  bool resolved = false;
  bool resolving = false;
};

class Resolver {
 public:
  explicit Resolver(std::vector<RawCell>& raw) : raw_(raw) {
    for (std::size_t i = 0; i < raw.size(); ++i)
      index_.emplace(raw[i].cell.name, i);
  }

  void resolve_all() {
    for (RawCell& rc : raw_) resolve(rc);
  }

 private:
  void resolve(RawCell& rc) {
    if (rc.resolved) return;
    if (rc.resolving)
      fail_at(rc.loc, "recursive cell definition '" + rc.cell.name + "'");
    rc.resolving = true;
    rc.cell.function = bind(rc.function, rc);
    rc.resolving = false;
    rc.resolved = true;
  }

  BoolExpr bind(const NamedExpr& e, RawCell& context) {
    BoolExpr out;
    switch (e.kind) {
      case NamedExpr::Kind::Const0:
        out.kind = BoolExpr::Kind::Const0;
        return out;
      case NamedExpr::Kind::Const1:
        out.kind = BoolExpr::Kind::Const1;
        return out;
      case NamedExpr::Kind::Ref: {
        int pin = context.cell.find_input(e.name);
        if (pin < 0)
          fail_at(context.loc, "cell '" + context.cell.name +
                                   "' function references unknown pin '" +
                                   e.name + "'");
        out.kind = BoolExpr::Kind::Ref;
        out.pin = static_cast<unsigned>(pin);
        return out;
      }
      case NamedExpr::Kind::Not:
        out.kind = BoolExpr::Kind::Not;
        out.operands = {bind(e.operands[0], context)};
        return out;
      case NamedExpr::Kind::And:
      case NamedExpr::Kind::Or:
      case NamedExpr::Kind::Xor:
        out.kind = e.kind == NamedExpr::Kind::And  ? BoolExpr::Kind::And
                   : e.kind == NamedExpr::Kind::Or ? BoolExpr::Kind::Or
                                                   : BoolExpr::Kind::Xor;
        out.operands = {bind(e.operands[0], context),
                        bind(e.operands[1], context)};
        return out;
      case NamedExpr::Kind::Mux:
        out.kind = BoolExpr::Kind::Mux;
        out.operands = {bind(e.operands[0], context),
                        bind(e.operands[1], context),
                        bind(e.operands[2], context)};
        return out;
      case NamedExpr::Kind::Call: {
        auto it = index_.find(e.name);
        if (it == index_.end())
          fail_at(context.loc, "cell '" + context.cell.name +
                                   "' function calls unknown cell '" + e.name +
                                   "'");
        RawCell& callee = raw_[it->second];
        if (callee.resolving || &callee == &context)
          fail_at(context.loc, "recursive cell definition '" +
                                   context.cell.name + "' (via '" + e.name +
                                   "')");
        resolve(callee);
        if (callee.cell.inputs.size() != e.operands.size())
          fail_at(context.loc,
                  "cell call '" + e.name + "' expects " +
                      std::to_string(callee.cell.inputs.size()) +
                      " arguments, got " + std::to_string(e.operands.size()));
        std::vector<BoolExpr> actuals;
        actuals.reserve(e.operands.size());
        for (const NamedExpr& op : e.operands)
          actuals.push_back(bind(op, context));
        return substitute(callee.cell.function, actuals);
      }
    }
    return out;
  }

  /// Replaces each Ref pin i in `body` with actuals[i].
  static BoolExpr substitute(const BoolExpr& body,
                             const std::vector<BoolExpr>& actuals) {
    if (body.kind == BoolExpr::Kind::Ref) return actuals[body.pin];
    BoolExpr out;
    out.kind = body.kind;
    out.pin = body.pin;
    out.operands.reserve(body.operands.size());
    for (const BoolExpr& op : body.operands)
      out.operands.push_back(substitute(op, actuals));
    return out;
  }

  std::vector<RawCell>& raw_;
  std::unordered_map<std::string, std::size_t> index_;
};

// ---------------------------------------------------------------------------
// Library file parsing (Liberty-flavored group/attribute syntax)
// ---------------------------------------------------------------------------

class LibraryParser {
 public:
  LibraryParser(const std::string& text, const std::string& filename)
      : lexer_(text, filename, LexSyntax{.slash_comments = true}) {}

  CellLibrary parse() {
    Token kw = lexer_.expect_ident("'library'");
    if (kw.text != "library") fail_at(kw.loc, "expected 'library ( name )'");
    lexer_.expect_punct('(');
    Token name = lexer_.expect_ident("library name");
    lexer_.expect_punct(')');
    lexer_.expect_punct('{');
    std::vector<RawCell> raw;
    std::unordered_set<std::string> names;
    while (!lexer_.accept_punct('}')) {
      Token item = lexer_.expect_ident("'cell' or '}'");
      if (item.text == "cell") {
        RawCell rc = parse_cell(item.loc);
        if (!names.insert(rc.cell.name).second)
          fail_at(rc.loc, "cell '" + rc.cell.name + "' defined twice");
        raw.push_back(std::move(rc));
      } else {
        skip_group_or_attribute(item);
      }
    }
    if (lexer_.peek().kind != Token::Kind::End)
      fail_at(lexer_.peek().loc, "trailing text after library group");
    Resolver(raw).resolve_all();
    CellLibrary lib(name.text);
    for (RawCell& rc : raw) {
      rc.cell.builtin = opt::match_builtin_cell(rc.cell);
      lib.add(std::move(rc.cell));
    }
    return lib;
  }

 private:
  RawCell parse_cell(const Loc& loc) {
    lexer_.expect_punct('(');
    Token name = lexer_.expect_ident("cell name");
    lexer_.expect_punct(')');
    lexer_.expect_punct('{');
    RawCell rc;
    rc.cell.name = name.text;
    rc.loc = name.loc;
    bool have_function = false;
    while (!lexer_.accept_punct('}')) {
      Token item = lexer_.expect_ident("'pin' or '}'");
      if (item.text != "pin") {
        skip_group_or_attribute(item);
        continue;
      }
      lexer_.expect_punct('(');
      Token pin = lexer_.expect_ident("pin name");
      lexer_.expect_punct(')');
      lexer_.expect_punct('{');
      bool is_output = false;
      bool have_direction = false;
      std::optional<std::string> function;
      Loc function_loc;
      while (!lexer_.accept_punct('}')) {
        Token attr = lexer_.expect_ident("pin attribute");
        lexer_.expect_punct(':');
        if (attr.text == "direction") {
          Token dir = lexer_.expect_ident("pin direction");
          if (dir.text == "output") is_output = true;
          else if (dir.text == "input") is_output = false;
          else fail_at(dir.loc, "pin direction must be input or output");
          have_direction = true;
        } else if (attr.text == "function") {
          const Token& v = lexer_.peek();
          if (v.kind != Token::Kind::String)
            fail_at(v.loc, "function attribute must be a quoted string");
          function = v.text;
          function_loc = v.loc;
          lexer_.next();
        } else {
          skip_attribute_value();
        }
        lexer_.expect_punct(';');
      }
      if (!have_direction)
        fail_at(pin.loc, "pin '" + pin.text + "' has no direction");
      if (is_output) {
        if (have_function)
          fail_at(pin.loc,
                  "cell '" + rc.cell.name + "' has multiple output pins");
        if (!function)
          fail_at(pin.loc, "output pin '" + pin.text + "' has no function");
        rc.cell.output = pin.text;
        rc.function = FunctionParser(*function, function_loc).parse();
        have_function = true;
      } else {
        if (rc.cell.find_input(pin.text) >= 0)
          fail_at(pin.loc, "pin '" + pin.text + "' declared twice");
        rc.cell.inputs.push_back(pin.text);
      }
    }
    if (!have_function)
      fail_at(loc, "cell '" + rc.cell.name + "' has no output pin");
    if (rc.cell.inputs.size() > 10)
      fail_at(loc, "cell '" + rc.cell.name + "' has too many input pins");
    return rc;
  }

  /// Skips an unrecognized `name : value ;` attribute or `name (...) {...}`
  /// group so real .lib fragments (area, timing) load.
  void skip_group_or_attribute(const Token& name) {
    if (lexer_.accept_punct(':')) {
      skip_attribute_value();
      lexer_.expect_punct(';');
      return;
    }
    if (lexer_.peek().is_punct('(')) {
      int depth = 0;
      do {
        const Token& t = lexer_.peek();
        if (t.kind == Token::Kind::End)
          fail_at(name.loc, "unterminated group");
        if (t.is_punct('(')) ++depth;
        if (t.is_punct(')')) --depth;
        lexer_.next();
      } while (depth > 0);
      if (lexer_.accept_punct(';')) return;
      if (!lexer_.peek().is_punct('{'))
        fail_at(name.loc, "expected '{' or ';' after group header");
    }
    if (lexer_.accept_punct('{')) {
      int depth = 1;
      while (depth > 0) {
        const Token& t = lexer_.peek();
        if (t.kind == Token::Kind::End)
          fail_at(name.loc, "unterminated group");
        if (t.is_punct('{')) ++depth;
        if (t.is_punct('}')) --depth;
        lexer_.next();
      }
      return;
    }
    fail_at(name.loc, "expected attribute or group after '" + name.text + "'");
  }

  void skip_attribute_value() {
    const Token& t = lexer_.peek();
    if (t.kind == Token::Kind::End || t.is_punct(';'))
      fail_at(t.loc, "missing attribute value");
    while (!lexer_.peek().is_punct(';') &&
           lexer_.peek().kind != Token::Kind::End)
      lexer_.next();
  }

  Lexer lexer_;
};

}  // namespace

CellLibrary parse_cell_library(const std::string& text,
                               const std::string& filename) {
  return LibraryParser(text, filename).parse();
}

CellLibrary load_cell_library_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open cell library '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_cell_library(ss.str(), path);
}

}  // namespace gfre::frontend
