#include "frontend/source.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace gfre::frontend {

void fail_at(const Loc& loc, const std::string& msg) {
  if (loc.column > 0) throw ParseError(loc.file, loc.line, loc.column, msg);
  throw ParseError(loc.file, loc.line, msg);
}

// ---------------------------------------------------------------------------
// LineScanner
// ---------------------------------------------------------------------------

LineScanner::LineScanner(std::string_view text, std::string file,
                         LineSyntax syntax)
    : text_(text), file_(std::move(file)), syntax_(syntax) {}

namespace {

void rstrip(std::string& s) {
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.pop_back();
}

}  // namespace

std::optional<LogicalLine> LineScanner::next() {
  while (pos_ < text_.size() || in_block_comment_) {
    if (in_block_comment_ && pos_ >= text_.size()) break;
    std::string out;
    const int start_line = line_;
    bool more = true;   // keep appending physical lines (continuation)
    while (more) {
      more = false;
      // One physical line into `out`, honoring comments.
      while (pos_ < text_.size() && text_[pos_] != '\n') {
        char c = text_[pos_];
        if (in_block_comment_) {
          if (c == '*' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
            in_block_comment_ = false;
            pos_ += 2;
            continue;
          }
          ++pos_;
          continue;
        }
        if (syntax_.hash_comments && c == '#') {
          while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
          break;
        }
        if (syntax_.slash_comments && c == '/' && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] == '/') {
          while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
          break;
        }
        if (syntax_.block_comments && c == '/' && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] == '*') {
          in_block_comment_ = true;
          block_comment_line_ = line_;
          pos_ += 2;
          continue;
        }
        out += c;
        ++pos_;
      }
      if (pos_ < text_.size()) {  // consume the '\n'
        ++pos_;
        ++line_;
      }
      rstrip(out);
      if (syntax_.backslash_continuation && !out.empty() &&
          out.back() == '\\' && (pos_ < text_.size() || in_block_comment_)) {
        out.pop_back();
        rstrip(out);
        out += ' ';
        more = true;
      } else if (syntax_.backslash_continuation && !out.empty() &&
                 out.back() == '\\') {
        out.pop_back();  // trailing continuation at EOF: drop it
        rstrip(out);
      }
      if (more && pos_ >= text_.size() && !in_block_comment_) more = false;
    }
    // Strip leading whitespace.
    std::size_t first = out.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    return LogicalLine{out.substr(first), start_line};
  }
  if (in_block_comment_)
    throw ParseError(file_, block_comment_line_,
                     "unterminated block comment");
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

IncludeResolver filesystem_include_resolver() {
  return [](const std::string& target, const Loc& site,
            std::string* resolved) -> std::optional<std::string> {
    namespace fs = std::filesystem;
    fs::path p(target);
    if (p.is_relative()) {
      fs::path base = fs::path(site.file).parent_path();
      p = base / p;
    }
    std::error_code ec;
    fs::path canon = fs::weakly_canonical(p, ec);
    *resolved = ec ? p.string() : canon.string();
    std::ifstream in(p, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
}

Lexer::Lexer(std::string text, std::string file, LexSyntax syntax,
             IncludeResolver resolver)
    : syntax_(syntax), resolver_(std::move(resolver)) {
  Frame f;
  f.text = std::move(text);
  f.file = std::move(file);
  f.resolved = f.file;
  frames_.push_back(std::move(f));
  tok_ = lex_token();
}

Loc Lexer::here() const {
  const Frame& f = frames_.back();
  return Loc{f.file, f.line, f.col};
}

void Lexer::advance() {
  Frame& f = top();
  if (f.pos >= f.text.size()) return;
  if (f.text[f.pos] == '\n') {
    ++f.line;
    f.col = 1;
  } else {
    ++f.col;
  }
  ++f.pos;
}

void Lexer::skip_trivia() {
  for (;;) {
    if (frame_eof()) {
      if (frames_.size() > 1) {
        frames_.pop_back();
        continue;
      }
      return;
    }
    char c = cur();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (syntax_.hash_comments && c == '#') {
      while (!frame_eof() && cur() != '\n') advance();
      continue;
    }
    if (syntax_.slash_comments && c == '/' && top().pos + 1 < top().text.size()) {
      char n = top().text[top().pos + 1];
      if (n == '/') {
        while (!frame_eof() && cur() != '\n') advance();
        continue;
      }
      if (n == '*') {
        Loc open = here();
        advance();
        advance();
        bool closed = false;
        while (!frame_eof()) {
          if (cur() == '*' && top().pos + 1 < top().text.size() &&
              top().text[top().pos + 1] == '/') {
            advance();
            advance();
            closed = true;
            break;
          }
          advance();
        }
        if (!closed) fail_at(open, "unterminated block comment");
        continue;
      }
    }
    if (syntax_.directives && c == '`') {
      handle_directive();
      continue;
    }
    return;
  }
}

void Lexer::handle_directive() {
  Loc site = here();
  advance();  // backtick
  std::string name;
  while (!frame_eof() && (std::isalnum(static_cast<unsigned char>(cur())) ||
                          cur() == '_'))
    name += cur(), advance();
  if (name != "include")
    fail_at(site, "unsupported compiler directive '`" + name + "'");
  // Expect a quoted filename.
  while (!frame_eof() && (cur() == ' ' || cur() == '\t')) advance();
  if (frame_eof() || cur() != '"')
    fail_at(site, "`include expects a quoted filename");
  advance();
  std::string target;
  while (!frame_eof() && cur() != '"' && cur() != '\n')
    target += cur(), advance();
  if (frame_eof() || cur() != '"')
    fail_at(site, "unterminated `include filename");
  advance();
  if (!resolver_)
    fail_at(site, "`include is not available in this context");
  if (frames_.size() >= 16)
    fail_at(site, "`include nesting too deep (limit 16)");
  std::string resolved;
  auto text = resolver_(target, site, &resolved);
  if (!text)
    fail_at(site, "cannot open `include file \"" + target + "\"");
  for (const Frame& f : frames_)
    if (f.resolved == resolved)
      fail_at(site, "`include cycle through \"" + target + "\"");
  Frame f;
  f.text = std::move(*text);
  f.file = resolved;
  f.resolved = std::move(resolved);
  frames_.push_back(std::move(f));
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$' ||
         c == '.';
}

}  // namespace

Token Lexer::lex_token() {
  skip_trivia();
  Token t;
  t.loc = here();
  if (frame_eof()) {
    t.kind = Token::Kind::End;
    t.text = "<end of input>";
    return t;
  }
  char c = cur();
  if (syntax_.escaped_idents && c == '\\') {
    advance();
    std::string name;
    while (!frame_eof() && cur() != ' ' && cur() != '\t' && cur() != '\r' &&
           cur() != '\n')
      name += cur(), advance();
    if (name.empty()) fail_at(t.loc, "empty escaped identifier");
    t.kind = Token::Kind::Ident;
    t.text = std::move(name);
    t.escaped = true;
    return t;
  }
  if (ident_start(c)) {
    std::string name;
    while (!frame_eof() && ident_char(cur())) name += cur(), advance();
    t.kind = Token::Kind::Ident;
    t.text = std::move(name);
    return t;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string digits;
    while (!frame_eof() && std::isdigit(static_cast<unsigned char>(cur())))
      digits += cur(), advance();
    std::uint64_t value = 0;
    for (char d : digits) value = value * 10 + static_cast<unsigned>(d - '0');
    t.kind = Token::Kind::Number;
    t.text = digits;
    t.value = value;
    t.width = 0;
    if (syntax_.verilog_numbers && !frame_eof() && cur() == '\'') {
      // Sized literal: <width>'<base><digits>
      advance();
      if (frame_eof()) fail_at(t.loc, "truncated sized literal");
      char base = static_cast<char>(
          std::tolower(static_cast<unsigned char>(cur())));
      advance();
      unsigned radix = 0;
      if (base == 'b') radix = 2;
      else if (base == 'o') radix = 8;
      else if (base == 'd') radix = 10;
      else if (base == 'h') radix = 16;
      else fail_at(t.loc, std::string("bad literal base '") + base + "'");
      std::string body;
      std::uint64_t v = 0;
      while (!frame_eof() &&
             (std::isalnum(static_cast<unsigned char>(cur())) || cur() == '_')) {
        char d = static_cast<char>(
            std::tolower(static_cast<unsigned char>(cur())));
        advance();
        if (d == '_') continue;
        unsigned digit;
        if (d >= '0' && d <= '9') digit = static_cast<unsigned>(d - '0');
        else if (d >= 'a' && d <= 'f') digit = static_cast<unsigned>(d - 'a') + 10;
        else fail_at(t.loc, std::string("bad digit '") + d + "' in literal");
        if (digit >= radix)
          fail_at(t.loc, std::string("digit '") + d + "' out of range for base");
        v = v * radix + digit;
        body += d;
      }
      if (body.empty()) fail_at(t.loc, "sized literal has no digits");
      t.width = static_cast<unsigned>(value);
      if (t.width == 0 || t.width > 64)
        fail_at(t.loc, "unsupported literal width " + digits);
      t.value = v;
      t.text = digits + "'" + base + body;
    }
    return t;
  }
  if (c == '"') {
    advance();
    std::string s;
    while (!frame_eof() && cur() != '"' && cur() != '\n') s += cur(), advance();
    if (frame_eof() || cur() != '"') fail_at(t.loc, "unterminated string");
    advance();
    t.kind = Token::Kind::String;
    t.text = std::move(s);
    return t;
  }
  t.kind = Token::Kind::Punct;
  t.text = std::string(1, c);
  advance();
  return t;
}

Token Lexer::next() {
  Token prev = tok_;
  tok_ = lex_token();
  return prev;
}

Token Lexer::expect_ident(const char* what) {
  if (tok_.kind != Token::Kind::Ident)
    fail(std::string("expected ") + what + ", got '" + tok_.text + "'");
  return next();
}

Token Lexer::expect_punct(char c) {
  if (!tok_.is_punct(c))
    fail(std::string("expected '") + c + "', got '" + tok_.text + "'");
  return next();
}

bool Lexer::accept_punct(char c) {
  if (!tok_.is_punct(c)) return false;
  next();
  return true;
}

bool Lexer::accept_ident(std::string_view s) {
  if (!tok_.is_ident(s)) return false;
  next();
  return true;
}

}  // namespace gfre::frontend
