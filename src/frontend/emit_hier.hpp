// Hierarchical Verilog emission: re-expresses a flat netlist as a
// multi-module design for the frontend's differential tests and frozen
// fixtures.
//
// The gate list (in topological order) is split into `chunks` contiguous
// chunks, each becoming a submodule instantiated in order by the top
// module.  Because the flattening elaborator creates gates in instance
// order and aliases port bindings instead of inserting buffers, parsing
// the emitted hierarchy recreates the gates of the source netlist in
// exactly its topological order — FlowReports over both are bit-identical.
//
// Options exercise the rest of the frontend surface: vector top ports
// (optionally sized by a `parameter M`), chunk modules moved into a
// `include file, and gate emission as cell-library instances instead of
// primitives/assigns.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "frontend/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace gfre::frontend {

struct HierEmitOptions {
  /// Number of submodules the gate list is split into (clamped to the
  /// gate count; at least 1).
  std::size_t chunks = 4;
  /// Top module name; empty = "<netlist name>_hier".
  std::string top_name;
  /// When set, chunk modules are emitted into `included` and the top file
  /// references them via `include "<include_file>".
  std::string include_file;
  /// Size vector top ports with `parameter M = <width>` instead of a
  /// literal range (requires all vector port groups to share one width).
  bool use_parameter = false;
  /// When set, a gate whose type+arity matches a library cell's builtin is
  /// emitted as an instance of that cell.
  std::shared_ptr<const CellLibrary> library;
};

struct HierEmitResult {
  std::string top;       ///< the top-level file
  std::string included;  ///< chunk modules when include_file is set, else ""
};

/// Emits `netlist` as a hierarchical structural Verilog design.
HierEmitResult emit_hier_verilog(const nl::Netlist& netlist,
                                 const HierEmitOptions& options = {});

}  // namespace gfre::frontend
