#include "frontend/graph.hpp"

#include "util/error.hpp"

namespace gfre::frontend {

GraphBuilder::GraphBuilder(std::string model_name, std::string file)
    : model_name_(std::move(model_name)), file_(std::move(file)) {}

void GraphBuilder::add_input(const std::string& name, const Loc& loc) {
  if (input_locs_.count(name))
    fail_at(loc, "input '" + name + "' declared twice");
  if (node_by_output_.count(name))
    fail_at(loc, "input '" + name + "' is also driven");
  inputs_.emplace_back(name, loc);
  input_locs_.emplace(name, loc);
}

void GraphBuilder::add_output(const std::string& name, const Loc& loc) {
  outputs_.emplace_back(name, loc);
}

void GraphBuilder::add_node(std::string output, std::vector<std::string> args,
                            const Loc& loc, EmitFn emit) {
  if (node_by_output_.count(output))
    fail_at(loc, "net '" + output + "' defined twice");
  if (input_locs_.count(output))
    fail_at(loc, "input '" + output + "' is also driven");
  Node node;
  node.output = std::move(output);
  node.args = std::move(args);
  node.loc = loc;
  node.emit = std::move(emit);
  node_by_output_.emplace(node.output, nodes_.size());
  nodes_.push_back(std::move(node));
}

bool GraphBuilder::defines(const std::string& name) const {
  return node_by_output_.count(name) || input_locs_.count(name);
}

void GraphBuilder::instantiate(nl::Netlist& netlist, std::size_t root) {
  if (nodes_[root].state == 2) return;
  // Iterative DFS: frame = (node index, next argument to resolve).  Deep
  // XOR chains in crypto-scale netlists overflow the call stack otherwise.
  struct Frame {
    std::size_t node;
    std::size_t next_arg;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  nodes_[root].state = 1;
  while (!stack.empty()) {
    Frame& fr = stack.back();
    Node& node = nodes_[fr.node];
    bool descended = false;
    while (fr.next_arg < node.args.size()) {
      const std::string& arg = node.args[fr.next_arg];
      ++fr.next_arg;
      if (netlist.find_var(arg) && !node_by_output_.count(arg)) continue;
      auto it = node_by_output_.find(arg);
      if (it == node_by_output_.end()) {
        if (input_locs_.count(arg)) continue;  // inputs pre-created
        fail_at(node.loc, "undefined net '" + arg + "'");
      }
      Node& dep = nodes_[it->second];
      if (dep.state == 2) continue;
      if (dep.state == 1)
        fail_at(node.loc, "combinational cycle through '" + arg + "'");
      dep.state = 1;
      stack.push_back({it->second, 0});
      descended = true;
      break;
    }
    if (descended) continue;
    // All args resolved: emit this node's gates.
    std::vector<nl::Var> args;
    args.reserve(node.args.size());
    for (const std::string& arg : node.args) {
      auto v = netlist.find_var(arg);
      if (!v) fail_at(node.loc, "undefined net '" + arg + "'");
      args.push_back(*v);
    }
    node.emit(netlist, args);
    GFRE_ASSERT(netlist.find_var(node.output).has_value(),
                "frontend node for '" << node.output
                                      << "' did not create its net");
    node.state = 2;
    stack.pop_back();
  }
}

nl::Netlist GraphBuilder::build() {
  nl::Netlist netlist(model_name_);
  // Reserve every node output so auto-generated helper names never take a
  // declared one, regardless of instantiation order.
  for (const Node& node : nodes_) netlist.reserve_name(node.output);
  for (const auto& [name, loc] : inputs_) netlist.add_input(name);
  for (std::size_t i = 0; i < nodes_.size(); ++i) instantiate(netlist, i);
  for (const auto& [name, loc] : outputs_) {
    auto v = netlist.find_var(name);
    if (!v) fail_at(loc, "undriven output '" + name + "'");
    netlist.mark_output(*v);
  }
  netlist.validate();
  return netlist;
}

}  // namespace gfre::frontend
