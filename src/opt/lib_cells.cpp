// Cell-library techmapping: semantic matching of library cells onto the
// builtin cell set, and structural expansion for everything else.
#include <array>
#include <span>
#include <vector>

#include "frontend/cell_library.hpp"
#include "netlist/cell.hpp"
#include "opt/passes.hpp"
#include "util/error.hpp"

namespace gfre::opt {

std::optional<nl::CellType> match_builtin_cell(const frontend::LibCell& cell) {
  const std::size_t n = cell.inputs.size();
  if (n > 8) return std::nullopt;
  // The cell's truth table, LSB-first over pin values.
  const std::size_t rows = std::size_t{1} << n;
  std::vector<bool> table(rows);
  std::vector<bool> values(n);
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t i = 0; i < n; ++i) values[i] = (row >> i) & 1;
    table[row] = frontend::eval_bool_expr(cell.function, values);
  }
  std::array<bool, 8> pins{};
  for (nl::CellType type : nl::all_cell_types()) {
    if (!nl::arity_ok(type, n)) continue;
    bool match = true;
    for (std::size_t row = 0; row < rows && match; ++row) {
      for (std::size_t i = 0; i < n; ++i) pins[i] = (row >> i) & 1;
      match = nl::eval_cell(type, std::span<const bool>(pins.data(), n)) ==
              table[row];
    }
    if (match) return type;
  }
  return std::nullopt;
}

namespace {

/// Emits gates computing `expr` (a resolved BoolExpr over pin indices)
/// and returns the name of the net holding the result.  `sink` names the
/// root gate `output`; inner gates are auto-named.
std::string emit_expr(const frontend::BoolExpr& expr,
                      const std::vector<std::string>& actuals,
                      const std::string& output, const EmitGateFn& emit) {
  using Kind = frontend::BoolExpr::Kind;
  auto sub = [&](const frontend::BoolExpr& e) {
    return emit_expr(e, actuals, "", emit);
  };
  switch (expr.kind) {
    case Kind::Const0:
      return emit(nl::CellType::Const0, {}, output);
    case Kind::Const1:
      return emit(nl::CellType::Const1, {}, output);
    case Kind::Ref: {
      const std::string& net = actuals[expr.pin];
      // A bare pin reference still needs a gate when it must drive a
      // specific output net.
      if (output.empty()) return net;
      return emit(nl::CellType::Buf, {net}, output);
    }
    case Kind::Not: {
      // Collapse !(x) over a bare ref into a single INV.
      return emit(nl::CellType::Inv, {sub(expr.operands[0])}, output);
    }
    case Kind::And:
      return emit(nl::CellType::And,
                  {sub(expr.operands[0]), sub(expr.operands[1])}, output);
    case Kind::Or:
      return emit(nl::CellType::Or,
                  {sub(expr.operands[0]), sub(expr.operands[1])}, output);
    case Kind::Xor:
      return emit(nl::CellType::Xor,
                  {sub(expr.operands[0]), sub(expr.operands[1])}, output);
    case Kind::Mux:
      return emit(nl::CellType::Mux,
                  {sub(expr.operands[0]), sub(expr.operands[1]),
                   sub(expr.operands[2])},
                  output);
  }
  GFRE_ASSERT(false, "unreachable BoolExpr kind");
  return output;
}

}  // namespace

std::string expand_cell_function(const frontend::LibCell& cell,
                                 const std::vector<std::string>& actuals,
                                 const std::string& output,
                                 const EmitGateFn& emit) {
  GFRE_ASSERT(actuals.size() == cell.inputs.size(),
              "cell '" << cell.name << "' expansion arity mismatch");
  return emit_expr(cell.function, actuals, output, emit);
}

}  // namespace gfre::opt
