// AOI/OAI complex-cell fusion.
#include <algorithm>
#include <optional>

#include "opt/passes.hpp"
#include "opt/rebuild.hpp"
#include "util/error.hpp"

namespace gfre::opt {

using nl::CellType;
using nl::Var;

namespace {

struct AndOrLeaf {
  // Either a plain net or a 2-input AND/OR whose operands are a, b.
  bool is_pair = false;
  Var net = 0;  // when !is_pair
  Var a = 0, b = 0;
};

}  // namespace

nl::Netlist map_aoi(const nl::Netlist& netlist) {
  // Fanout counting (gate uses + POs): an inner AND/OR may be fused only if
  // this consumer is its sole use.
  std::vector<unsigned> fanout(netlist.num_vars(), 0);
  for (const nl::Gate& gate : netlist.gates()) {
    for (Var in : gate.inputs) ++fanout[in];
  }
  for (Var out : netlist.outputs()) ++fanout[out];

  std::vector<bool> fused(netlist.num_gates(), false);

  // Resolve a net to a fusable 2-input inner gate of the wanted type.
  const auto inner = [&](Var net, CellType want) -> std::optional<nl::Gate> {
    const auto drv = netlist.driver(net);
    if (!drv.has_value()) return std::nullopt;
    const nl::Gate& gate = netlist.gate(*drv);
    if (gate.type != want || gate.inputs.size() != 2) return std::nullopt;
    if (fanout[net] != 1) return std::nullopt;
    return gate;
  };

  // Decide, per outer gate, the fused replacement (recorded by source gate
  // index so the rebuild loop can apply it).
  struct Fusion {
    CellType cell;
    std::vector<Var> inputs;  // source nets
    std::vector<std::size_t> absorbed_gates;
  };
  std::vector<std::optional<Fusion>> fusion(netlist.num_gates());

  for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
    const nl::Gate& gate = netlist.gate(g);
    // Normalize the outer inverting form: NOR(x,y) ~ INV(OR(x,y)),
    // NAND(x,y) ~ INV(AND(x,y)).
    CellType outer = gate.type;
    std::vector<Var> operands = gate.inputs;
    std::vector<std::size_t> absorbed;
    if (outer == CellType::Inv) {
      const auto drv = netlist.driver(gate.inputs[0]);
      if (!drv.has_value() || fanout[gate.inputs[0]] != 1) continue;
      const nl::Gate& inner_gate = netlist.gate(*drv);
      if (inner_gate.type == CellType::Or && inner_gate.inputs.size() == 2) {
        outer = CellType::Nor;
      } else if (inner_gate.type == CellType::And &&
                 inner_gate.inputs.size() == 2) {
        outer = CellType::Nand;
      } else {
        continue;
      }
      operands = inner_gate.inputs;
      absorbed.push_back(*drv);
    }
    if ((outer != CellType::Nor && outer != CellType::Nand) ||
        operands.size() != 2) {
      continue;
    }
    const CellType inner_type =
        (outer == CellType::Nor) ? CellType::And : CellType::Or;

    const auto lhs = inner(operands[0], inner_type);
    const auto rhs = inner(operands[1], inner_type);
    Fusion f;
    if (lhs && rhs) {
      f.cell = (outer == CellType::Nor) ? CellType::Aoi22 : CellType::Oai22;
      f.inputs = {lhs->inputs[0], lhs->inputs[1], rhs->inputs[0],
                  rhs->inputs[1]};
      f.absorbed_gates = absorbed;
      f.absorbed_gates.push_back(*netlist.driver(operands[0]));
      f.absorbed_gates.push_back(*netlist.driver(operands[1]));
    } else if (lhs || rhs) {
      const auto& pair = lhs ? *lhs : *rhs;
      const Var other = lhs ? operands[1] : operands[0];
      f.cell = (outer == CellType::Nor) ? CellType::Aoi21 : CellType::Oai21;
      f.inputs = {pair.inputs[0], pair.inputs[1], other};
      f.absorbed_gates = absorbed;
      f.absorbed_gates.push_back(*netlist.driver(lhs ? operands[0]
                                                     : operands[1]));
    } else {
      continue;
    }
    fusion[g] = std::move(f);
  }

  // Mark gates absorbed by an accepted fusion.  A gate may appear in only
  // one fusion because of the fanout == 1 requirement.
  for (const auto& f : fusion) {
    if (!f) continue;
    for (std::size_t a : f->absorbed_gates) fused[a] = true;
  }

  Rebuild rebuild(netlist);
  for (std::size_t g : netlist.topological_order()) {
    const nl::Gate& gate = netlist.gate(g);
    if (fused[g]) {
      // Its consumer re-expresses it; nothing to emit.  (The consumer reads
      // the *original* operand nets, never this output.)
      continue;
    }
    if (fusion[g]) {
      const Fusion& f = *fusion[g];
      std::vector<Sig> inputs;
      inputs.reserve(f.inputs.size());
      for (Var in : f.inputs) inputs.push_back(rebuild.at(in));
      rebuild.set(gate.output,
                  emit_gate(rebuild.out(), f.cell, inputs,
                            carry_name(netlist, gate.output)));
      continue;
    }
    rebuild.set(gate.output,
                emit_gate(rebuild.out(), gate.type, rebuild.map_inputs(gate),
                          carry_name(netlist, gate.output)));
  }
  return rebuild.finish();
}

}  // namespace gfre::opt
