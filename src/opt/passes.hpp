// Netlist optimization passes — the "ABC synthesis" substrate.
//
// The paper's Table III circuits are "optimized and mapped using synthesis
// tool ABC".  We reproduce that input class with our own passes:
//
//   constant_propagate  — fold constants, drop BUFs, collapse INV pairs
//   structural_hash     — common-subexpression elimination (strash/CSE)
//   rebalance_xor       — collapse XOR networks, cancel duplicate leaves
//                         mod 2, rebuild balanced trees
//   share_xor_pairs     — fast_extract-style common XOR divisor sharing
//                         across output cones
//   map_aoi             — fuse NOR(AND..)/NAND(OR..) into AOI/OAI cells
//   tech_map            — map onto {NAND, NOR, INV, (XOR)} standard cells
//
// `synthesize` chains them into the Table III optimization pipeline.
// Every pass is semantics-preserving (checked by simulation in the tests).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "frontend/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace gfre::opt {

/// Constant folding + BUF/INV-pair cleanup, followed by a dead-gate sweep.
nl::Netlist constant_propagate(const nl::Netlist& netlist);

/// Removes gates outside the fanin cones of the primary outputs.
nl::Netlist sweep_dead(const nl::Netlist& netlist);

/// Structural hashing: identical (cell, operand-set) gates are merged.
nl::Netlist structural_hash(const nl::Netlist& netlist);

/// Collapses single-fanout XOR networks into leaf sets, cancels duplicated
/// leaves (x ^ x = 0), and rebuilds balanced XOR trees.
nl::Netlist rebalance_xor(const nl::Netlist& netlist);

/// Greedy common-pair extraction over XOR leaf sets (the core move of
/// ABC's `fx`): while some leaf pair occurs in >= 2 gate leaf-sets,
/// extract it as a shared XOR gate.  `max_rounds` bounds the greedy loop.
nl::Netlist share_xor_pairs(const nl::Netlist& netlist,
                            unsigned max_rounds = 1u << 20);

/// Fuses inverting AND/OR stacks into complex cells:
///   NOR(AND(a,b), c)          -> AOI21(a, b, c)
///   NOR(AND(a,b), AND(c,d))   -> AOI22(a, b, c, d)
///   NAND(OR(a,b), c)          -> OAI21(a, b, c)
///   NAND(OR(a,b), OR(c,d))    -> OAI22(a, b, c, d)
///   INV(OR/AND ...) forms of the same patterns.
nl::Netlist map_aoi(const nl::Netlist& netlist);

struct TechMapOptions {
  /// Keep XOR/XNOR cells (standard-cell flow).  When false, XORs are
  /// decomposed into the 4-NAND network (pure NAND-library flow).
  bool keep_xor = true;
};

/// Technology mapping onto {NAND2, NOR2, INV} (+XOR2 when keep_xor).
nl::Netlist tech_map(const nl::Netlist& netlist,
                     const TechMapOptions& options = {});

struct SynthesisOptions {
  bool run_share = true;
  bool run_map_aoi = true;
  bool run_tech_map = false;  // Table III keeps XOR cells, no NAND mapping
  TechMapOptions tech_map;
};

/// The Table III pipeline: const-prop, strash, XOR rebalancing + sharing,
/// AOI fusion, optional tech mapping, final cleanup.
nl::Netlist synthesize(const nl::Netlist& netlist,
                       const SynthesisOptions& options = {});

// ---------------------------------------------------------------------------
// Cell-library techmapping (lib_cells.cpp): resolving instantiated
// standard cells — described by a frontend::CellLibrary — into the
// builtin cell set the rewriting engine understands.
// ---------------------------------------------------------------------------

/// Truth-table matches a library cell's function against the builtin
/// CellType set (pin order preserved).  AOI22/OAI21/MUX2/XNOR3-style
/// cells land on single gates this way regardless of how their .lib
/// function was written.  Returns nullopt when no builtin of that arity
/// has the identical table (or the cell has > 8 pins).
std::optional<nl::CellType> match_builtin_cell(const frontend::LibCell& cell);

/// Structural fallback for cells with no builtin equivalent: emits a gate
/// subgraph computing `cell`'s function over the actual input names.
/// `emit` creates one gate — (type, input net names, output net name;
/// empty = auto) — and returns the name of the net it drove.  The
/// returned name drives the instance's output.  Purely name-level so the
/// frontends can route it through their own graph builders.
using EmitGateFn = std::function<std::string(
    nl::CellType, std::vector<std::string> inputs, std::string output)>;
std::string expand_cell_function(const frontend::LibCell& cell,
                                 const std::vector<std::string>& actuals,
                                 const std::string& output,
                                 const EmitGateFn& emit);

}  // namespace gfre::opt
