#include "opt/rebuild.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gfre::opt {

using gen::materialize;
using gen::sig_and;
using gen::sig_not;
using gen::sig_or;
using gen::sig_xor;
using nl::CellType;
using nl::Var;

Rebuild::Rebuild(const nl::Netlist& source)
    : source_(&source),
      out_(source.name()),
      map_(source.num_vars()),
      known_(source.num_vars(), false) {
  // Output names must survive the rebuild: keep auto names away from them.
  for (Var v : source.outputs()) {
    out_.reserve_name(source.var_name(v));
  }
  for (Var v : source.inputs()) {
    map_[v] = Sig::wire(out_.add_input(source.var_name(v)));
    known_[v] = true;
  }
}

const Sig& Rebuild::at(Var old_net) const {
  GFRE_ASSERT(old_net < map_.size() && known_[old_net],
              "pass read net '" << source_->var_name(old_net)
                                << "' before defining it");
  return map_[old_net];
}

void Rebuild::set(Var old_net, Sig replacement) {
  GFRE_ASSERT(old_net < map_.size(), "bad net id");
  map_[old_net] = replacement;
  known_[old_net] = true;
}

std::vector<Sig> Rebuild::map_inputs(const nl::Gate& gate) const {
  std::vector<Sig> result;
  result.reserve(gate.inputs.size());
  for (Var in : gate.inputs) result.push_back(at(in));
  return result;
}

nl::Netlist Rebuild::finish() {
  for (Var out : source_->outputs()) {
    const Sig& sig = at(out);
    const std::string& want = source_->var_name(out);
    if (sig.is_net() && out_.var_name(sig.net) == want) {
      out_.mark_output(sig.net);
    } else {
      out_.mark_output(materialize(out_, sig, want));
    }
  }
  out_.validate();
  return std::move(out_);
}

namespace {

/// Keeps operands whose per-net multiplicity is odd (XOR idempotence) and
/// counts constant ones.
void xor_normalize(std::vector<Sig>& nets, bool& invert) {
  std::vector<Var> vars;
  for (const Sig& s : nets) {
    if (s.is_one()) invert = !invert;
    if (s.is_net()) vars.push_back(s.net);
  }
  std::sort(vars.begin(), vars.end());
  std::vector<Sig> kept;
  for (std::size_t i = 0; i < vars.size();) {
    std::size_t j = i;
    while (j < vars.size() && vars[j] == vars[i]) ++j;
    if ((j - i) % 2 == 1) kept.push_back(Sig::wire(vars[i]));
    i = j;
  }
  nets = std::move(kept);
}

}  // namespace

Sig emit_gate(nl::Netlist& netlist, CellType type,
              const std::vector<Sig>& inputs, const std::string& name) {
  // Constant cells fold to constant signals outright.
  if (type == CellType::Const0) return Sig::zero();
  if (type == CellType::Const1) return Sig::one();

  const bool all_nets =
      std::all_of(inputs.begin(), inputs.end(),
                  [](const Sig& s) { return s.is_net(); });

  // Variadic gates get duplicate-operand normalization even when all inputs
  // are nets; everything else re-emits verbatim in the all-net case.
  if (all_nets) {
    switch (type) {
      case CellType::And:
      case CellType::Nand:
      case CellType::Or:
      case CellType::Nor: {
        std::vector<Var> vars;
        for (const Sig& s : inputs) vars.push_back(s.net);
        std::sort(vars.begin(), vars.end());
        vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
        if (vars.size() >= 2) {
          return Sig::wire(netlist.add_gate(type, vars, name));
        }
        // Single distinct operand: AND/OR degenerate to BUF, NAND/NOR to INV.
        const bool inverting =
            (type == CellType::Nand || type == CellType::Nor);
        return Sig::wire(netlist.add_gate(
            inverting ? CellType::Inv : CellType::Buf, {vars[0]}, name));
      }
      case CellType::Xor:
      case CellType::Xnor: {
        bool invert = (type == CellType::Xnor);
        std::vector<Sig> nets = inputs;
        xor_normalize(nets, invert);
        if (nets.size() >= 2 && !invert) {
          std::vector<Var> vars;
          for (const Sig& s : nets) vars.push_back(s.net);
          return Sig::wire(netlist.add_gate(CellType::Xor, vars, name));
        }
        if (nets.size() >= 2 && invert) {
          std::vector<Var> vars;
          for (const Sig& s : nets) vars.push_back(s.net);
          return Sig::wire(netlist.add_gate(CellType::Xnor, vars, name));
        }
        if (nets.size() == 1) {
          return Sig::wire(netlist.add_gate(
              invert ? CellType::Inv : CellType::Buf, {nets[0].net}, name));
        }
        return Sig::constant(invert);
      }
      default: {
        std::vector<Var> vars;
        for (const Sig& s : inputs) vars.push_back(s.net);
        return Sig::wire(netlist.add_gate(type, vars, name));
      }
    }
  }

  // Some input is constant: fold through the cell function using the
  // signal algebra (names are dropped — downstream logic shrinks anyway).
  auto s_and_all = [&](bool invert) {
    Sig acc = Sig::one();
    for (const Sig& s : inputs) acc = sig_and(netlist, acc, s);
    return invert ? sig_not(netlist, acc) : acc;
  };
  auto s_or_all = [&](bool invert) {
    Sig acc = Sig::zero();
    for (const Sig& s : inputs) acc = sig_or(netlist, acc, s);
    return invert ? sig_not(netlist, acc) : acc;
  };
  auto s_xor_all = [&](bool invert) {
    Sig acc = Sig::zero();
    for (const Sig& s : inputs) acc = sig_xor(netlist, acc, s);
    return invert ? sig_not(netlist, acc) : acc;
  };

  switch (type) {
    case CellType::Const0: return Sig::zero();
    case CellType::Const1: return Sig::one();
    case CellType::Buf: return inputs[0];
    case CellType::Inv: return sig_not(netlist, inputs[0]);
    case CellType::And: return s_and_all(false);
    case CellType::Nand: return s_and_all(true);
    case CellType::Or: return s_or_all(false);
    case CellType::Nor: return s_or_all(true);
    case CellType::Xor: return s_xor_all(false);
    case CellType::Xnor: return s_xor_all(true);
    case CellType::Mux: {
      const Sig& s = inputs[0];
      const Sig& d0 = inputs[1];
      const Sig& d1 = inputs[2];
      const Sig ns = sig_not(netlist, s);
      return sig_or(netlist, sig_and(netlist, ns, d0),
                    sig_and(netlist, s, d1));
    }
    case CellType::Aoi21:
      return sig_not(netlist,
                     sig_or(netlist, sig_and(netlist, inputs[0], inputs[1]),
                            inputs[2]));
    case CellType::Oai21:
      return sig_not(netlist,
                     sig_and(netlist, sig_or(netlist, inputs[0], inputs[1]),
                             inputs[2]));
    case CellType::Aoi22:
      return sig_not(
          netlist,
          sig_or(netlist, sig_and(netlist, inputs[0], inputs[1]),
                 sig_and(netlist, inputs[2], inputs[3])));
    case CellType::Oai22:
      return sig_not(
          netlist,
          sig_and(netlist, sig_or(netlist, inputs[0], inputs[1]),
                  sig_or(netlist, inputs[2], inputs[3])));
    case CellType::Maj3: {
      const Sig ab = sig_and(netlist, inputs[0], inputs[1]);
      const Sig ac = sig_and(netlist, inputs[0], inputs[2]);
      const Sig bc = sig_and(netlist, inputs[1], inputs[2]);
      return sig_or(netlist, sig_or(netlist, ab, ac), bc);
    }
  }
  throw InvalidArgument("unknown cell type");
}

}  // namespace gfre::opt
