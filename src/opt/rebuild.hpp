// Shared machinery for netlist-to-netlist optimization passes.
//
// Netlists are append-only, so every pass rebuilds: it walks the source in
// topological order, decides a replacement signal for each gate output, and
// a Rebuild object tracks the old-net -> new-signal mapping (constants
// included) and re-marks primary outputs under their original names.
#pragma once

#include "gen/signal.hpp"
#include "netlist/netlist.hpp"

namespace gfre::opt {

using gen::Sig;

/// Old-netlist -> new-netlist mapping helper.
class Rebuild {
 public:
  /// Copies the primary inputs of `source` into a fresh netlist.
  explicit Rebuild(const nl::Netlist& source);

  nl::Netlist& out() { return out_; }

  /// Replacement signal for an old net (inputs are pre-seeded; gate outputs
  /// must have been set by the pass before being read).
  const Sig& at(nl::Var old_net) const;

  /// Records the replacement for an old gate output.
  void set(nl::Var old_net, Sig replacement);

  /// Maps the old gate's input list.
  std::vector<Sig> map_inputs(const nl::Gate& gate) const;

  /// Re-marks primary outputs (preserving names) and returns the rebuilt
  /// netlist.  The Rebuild object is left empty.
  nl::Netlist finish();

 private:
  const nl::Netlist* source_;
  nl::Netlist out_;
  std::vector<Sig> map_;
  std::vector<bool> known_;
};

/// Re-emits a gate verbatim (no optimization) given mapped input signals;
/// constant inputs are folded through the cell function where possible.
/// `name` suggests the output net name ("" = auto).
Sig emit_gate(nl::Netlist& netlist, nl::CellType type,
              const std::vector<Sig>& inputs, const std::string& name);

/// The source gate's name if it is safe to carry into a rebuilt netlist
/// ("" for auto-generated "n<id>" names, which would collide).
std::string carry_name(const nl::Netlist& source, nl::Var old_net);

}  // namespace gfre::opt
