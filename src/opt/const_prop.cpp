#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "opt/passes.hpp"
#include "opt/rebuild.hpp"
#include "util/error.hpp"

namespace gfre::opt {

using nl::CellType;
using nl::Var;

namespace {

/// Auto-generated names ("n123") must not be carried into the rebuilt
/// netlist — they would collide with the new netlist's own counters.
bool is_auto_name(const std::string& name) {
  if (name.size() < 2 || name[0] != 'n') return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
  }
  return true;
}

}  // namespace

std::string carry_name(const nl::Netlist& source, Var old_net) {
  const std::string& name = source.var_name(old_net);
  return is_auto_name(name) ? std::string() : name;
}

nl::Netlist sweep_dead(const nl::Netlist& netlist) {
  // Mark gates in the union of output cones.
  std::vector<bool> live(netlist.num_gates(), false);
  std::vector<Var> work(netlist.outputs().begin(), netlist.outputs().end());
  while (!work.empty()) {
    const Var v = work.back();
    work.pop_back();
    const auto drv = netlist.driver(v);
    if (!drv.has_value() || live[*drv]) continue;
    live[*drv] = true;
    for (Var in : netlist.gate(*drv).inputs) work.push_back(in);
  }
  Rebuild rebuild(netlist);
  for (std::size_t g : netlist.topological_order()) {
    if (!live[g]) continue;
    const nl::Gate& gate = netlist.gate(g);
    rebuild.set(gate.output,
                emit_gate(rebuild.out(), gate.type, rebuild.map_inputs(gate),
                          carry_name(netlist, gate.output)));
  }
  return rebuild.finish();
}

nl::Netlist constant_propagate_once(const nl::Netlist& netlist) {
  Rebuild rebuild(netlist);
  // inv_of[new_net] = source net it inverts, for INV-pair collapsing.
  std::unordered_map<Var, Var> inv_of;

  for (std::size_t g : netlist.topological_order()) {
    const nl::Gate& gate = netlist.gate(g);
    const std::vector<Sig> inputs = rebuild.map_inputs(gate);

    if (gate.type == CellType::Buf) {
      rebuild.set(gate.output, inputs[0]);
      continue;
    }
    if (gate.type == CellType::Inv && inputs[0].is_net()) {
      const auto it = inv_of.find(inputs[0].net);
      if (it != inv_of.end()) {
        // Either INV(INV(x)) = x, or a second inverter of the same net.
        rebuild.set(gate.output, Sig::wire(it->second));
        continue;
      }
      const Sig out = emit_gate(rebuild.out(), CellType::Inv, inputs,
                                carry_name(netlist, gate.output));
      if (out.is_net()) {
        inv_of.emplace(out.net, inputs[0].net);
        inv_of.emplace(inputs[0].net, out.net);
      }
      rebuild.set(gate.output, out);
      continue;
    }
    rebuild.set(gate.output,
                emit_gate(rebuild.out(), gate.type, inputs,
                          carry_name(netlist, gate.output)));
  }
  return rebuild.finish();
}

nl::Netlist constant_propagate(const nl::Netlist& netlist) {
  return sweep_dead(constant_propagate_once(netlist));
}

nl::Netlist structural_hash(const nl::Netlist& netlist) {
  Rebuild rebuild(netlist);
  std::unordered_map<std::string, Var> seen;

  const auto canonical_key = [](CellType type, std::vector<Var> ins) {
    switch (type) {
      case CellType::And:
      case CellType::Or:
      case CellType::Xor:
      case CellType::Xnor:
      case CellType::Nand:
      case CellType::Nor:
      case CellType::Maj3:
        std::sort(ins.begin(), ins.end());
        break;
      case CellType::Aoi21:
      case CellType::Oai21:
        // (a, b) commute; c is positional.
        if (ins[0] > ins[1]) std::swap(ins[0], ins[1]);
        break;
      case CellType::Aoi22:
      case CellType::Oai22:
        if (ins[0] > ins[1]) std::swap(ins[0], ins[1]);
        if (ins[2] > ins[3]) std::swap(ins[2], ins[3]);
        if (ins[0] > ins[2] || (ins[0] == ins[2] && ins[1] > ins[3])) {
          std::swap(ins[0], ins[2]);
          std::swap(ins[1], ins[3]);
        }
        break;
      default:
        break;
    }
    std::string key = cell_name(type);
    for (Var v : ins) {
      key += ':';
      key += std::to_string(v);
    }
    return key;
  };

  for (std::size_t g : netlist.topological_order()) {
    const nl::Gate& gate = netlist.gate(g);
    const std::vector<Sig> inputs = rebuild.map_inputs(gate);
    const bool all_nets =
        std::all_of(inputs.begin(), inputs.end(),
                    [](const Sig& s) { return s.is_net(); });
    if (!all_nets || gate.type == CellType::Buf) {
      rebuild.set(gate.output,
                  emit_gate(rebuild.out(), gate.type, inputs,
                            carry_name(netlist, gate.output)));
      continue;
    }
    std::vector<Var> ins;
    for (const Sig& s : inputs) ins.push_back(s.net);
    const std::string key = canonical_key(gate.type, ins);
    const auto it = seen.find(key);
    if (it != seen.end()) {
      rebuild.set(gate.output, Sig::wire(it->second));
      continue;
    }
    const Sig out = emit_gate(rebuild.out(), gate.type, inputs,
                              carry_name(netlist, gate.output));
    if (out.is_net()) seen.emplace(key, out.net);
    rebuild.set(gate.output, out);
  }
  return rebuild.finish();
}

}  // namespace gfre::opt
