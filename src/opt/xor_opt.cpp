// XOR-network optimizations: rebalancing and common-pair sharing.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "opt/passes.hpp"
#include "opt/rebuild.hpp"
#include "util/error.hpp"

namespace gfre::opt {

using gen::sig_xor_tree;
using gen::XorShape;
using nl::CellType;
using nl::Var;

namespace {

bool is_xorish(CellType type) {
  return type == CellType::Xor || type == CellType::Xnor;
}

/// Fanout of every net: gate-input uses plus primary-output uses.
std::vector<unsigned> fanout_counts(const nl::Netlist& netlist) {
  std::vector<unsigned> fanout(netlist.num_vars(), 0);
  for (const nl::Gate& gate : netlist.gates()) {
    for (Var in : gate.inputs) ++fanout[in];
  }
  for (Var out : netlist.outputs()) ++fanout[out];
  return fanout;
}

/// An XOR cluster rooted at an XOR-ish gate: the parity-reduced set of
/// non-absorbable leaf nets plus an inversion flag.
struct Cluster {
  std::size_t root_gate;
  std::vector<Var> leaves;  // source nets, parity-reduced (odd occurrences)
  bool invert = false;
};

/// Identifies clusters: a root is an XOR-ish gate whose output is a PO or
/// feeds a non-XOR gate or has fanout > 1.  Fanout-1 XOR-ish gates feeding
/// a root are absorbed into its leaf multiset.
std::vector<Cluster> find_clusters(const nl::Netlist& netlist,
                                   const std::vector<unsigned>& fanout,
                                   std::vector<bool>& absorbed) {
  absorbed.assign(netlist.num_gates(), false);
  std::vector<bool> is_po(netlist.num_vars(), false);
  for (Var out : netlist.outputs()) is_po[out] = true;

  // A gate can be absorbed iff it is XOR-ish, fanout exactly 1, not a PO,
  // and its single consumer is XOR-ish.
  std::vector<unsigned> consumer_xorish(netlist.num_vars(), 0);
  for (const nl::Gate& gate : netlist.gates()) {
    if (!is_xorish(gate.type)) continue;
    for (Var in : gate.inputs) ++consumer_xorish[in];
  }

  const auto absorbable = [&](Var net) {
    const auto drv = netlist.driver(net);
    if (!drv.has_value()) return false;
    if (!is_xorish(netlist.gate(*drv).type)) return false;
    return fanout[net] == 1 && !is_po[net] && consumer_xorish[net] == 1;
  };

  std::vector<Cluster> clusters;
  for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
    const nl::Gate& gate = netlist.gate(g);
    if (!is_xorish(gate.type)) continue;
    if (absorbable(gate.output)) continue;  // interior node of some cluster

    Cluster cluster;
    cluster.root_gate = g;
    std::map<Var, unsigned> multiplicity;
    bool invert = false;
    std::vector<std::size_t> work{g};
    while (!work.empty()) {
      const std::size_t current = work.back();
      work.pop_back();
      const nl::Gate& node = netlist.gate(current);
      if (node.type == CellType::Xnor) invert = !invert;
      for (Var in : node.inputs) {
        if (absorbable(in)) {
          const auto drv = netlist.driver(in);
          absorbed[*drv] = true;
          work.push_back(*drv);
        } else {
          ++multiplicity[in];
        }
      }
    }
    for (const auto& [net, count] : multiplicity) {
      if (count % 2 == 1) cluster.leaves.push_back(net);
    }
    cluster.invert = invert;
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

}  // namespace

nl::Netlist rebalance_xor(const nl::Netlist& netlist) {
  const auto fanout = fanout_counts(netlist);
  std::vector<bool> absorbed;
  const auto clusters = find_clusters(netlist, fanout, absorbed);

  std::unordered_map<std::size_t, const Cluster*> cluster_by_root;
  for (const auto& cluster : clusters) {
    cluster_by_root.emplace(cluster.root_gate, &cluster);
  }

  Rebuild rebuild(netlist);
  for (std::size_t g : netlist.topological_order()) {
    if (absorbed[g]) continue;  // folded into a root's leaf set
    const nl::Gate& gate = netlist.gate(g);
    const auto it = cluster_by_root.find(g);
    if (it == cluster_by_root.end()) {
      rebuild.set(gate.output,
                  emit_gate(rebuild.out(), gate.type, rebuild.map_inputs(gate),
                            carry_name(netlist, gate.output)));
      continue;
    }
    const Cluster& cluster = *it->second;
    std::vector<Sig> leaves;
    leaves.reserve(cluster.leaves.size() + 1);
    for (Var leaf : cluster.leaves) leaves.push_back(rebuild.at(leaf));
    if (cluster.invert) leaves.push_back(Sig::one());
    // Rebuilt roots get fresh auto names; Rebuild::finish() re-buffers any
    // primary output whose driving net lost its name.
    rebuild.set(gate.output, sig_xor_tree(rebuild.out(), std::move(leaves),
                                          XorShape::Balanced));
  }
  return rebuild.finish();
}

nl::Netlist share_xor_pairs(const nl::Netlist& netlist, unsigned max_rounds) {
  const auto fanout = fanout_counts(netlist);
  std::vector<bool> absorbed;
  auto clusters = find_clusters(netlist, fanout, absorbed);

  // Abstract sharing domain: node ids are source nets; virtual nodes (the
  // extracted shared XOR pairs) get fresh ids above num_vars().
  using Node = std::uint64_t;
  Node next_virtual = netlist.num_vars();
  struct Virtual {
    Node lhs;
    Node rhs;
  };
  std::unordered_map<Node, Virtual> virtuals;

  std::vector<std::vector<Node>> sets;
  sets.reserve(clusters.size());
  for (const auto& cluster : clusters) {
    sets.emplace_back(cluster.leaves.begin(), cluster.leaves.end());
  }

  const auto pair_key = [](Node a, Node b) {
    if (a > b) std::swap(a, b);
    return (static_cast<unsigned __int128>(a) << 64) | b;
  };
  struct KeyHash {
    std::size_t operator()(unsigned __int128 k) const {
      // libstdc++'s hash<uint64_t> is the identity; mix properly or the
      // pair-count map degenerates to collision chains on large netlists.
      auto mix = [](std::uint64_t z) {
        z += 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
      };
      return mix(static_cast<std::uint64_t>(k)) ^
             (mix(static_cast<std::uint64_t>(k >> 64)) << 1);
    }
  };

  // Batched greedy: each round counts all co-occurring pairs once, then
  // extracts every profitable pair (count >= 2), most frequent first.
  // Rounds repeat until no pair is shared — O(log) rounds in practice
  // instead of one recount per extracted pair, which matters for the
  // Table III problem sizes (hundreds of thousands of leaves).
  for (unsigned round = 0; round < max_rounds; ++round) {
    std::unordered_map<unsigned __int128, unsigned, KeyHash> pair_count;
    for (const auto& set : sets) {
      for (std::size_t i = 0; i < set.size(); ++i) {
        for (std::size_t j = i + 1; j < set.size(); ++j) {
          ++pair_count[pair_key(set[i], set[j])];
        }
      }
    }
    std::vector<std::pair<unsigned __int128, unsigned>> candidates;
    for (const auto& [key, count] : pair_count) {
      if (count >= 2) candidates.emplace_back(key, count);
    }
    if (candidates.empty()) break;
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& lhs, const auto& rhs) {
                if (lhs.second != rhs.second) return lhs.second > rhs.second;
                return lhs.first < rhs.first;  // deterministic tie-break
              });

    bool extracted_any = false;
    for (const auto& [key, count] : candidates) {
      const Node a = static_cast<std::uint64_t>(key >> 64);
      const Node b = static_cast<std::uint64_t>(key);
      // Collect the sets that still contain both operands (earlier
      // extractions this round may have consumed them).
      std::vector<std::size_t> holders;
      for (std::size_t s = 0; s < sets.size(); ++s) {
        const auto& set = sets[s];
        if (std::find(set.begin(), set.end(), a) != set.end() &&
            std::find(set.begin(), set.end(), b) != set.end()) {
          holders.push_back(s);
        }
      }
      if (holders.size() < 2) continue;  // no longer profitable
      const Node v = next_virtual++;
      virtuals.emplace(v, Virtual{a, b});
      for (std::size_t s : holders) {
        auto& set = sets[s];
        set.erase(std::find(set.begin(), set.end(), a));
        set.erase(std::find(set.begin(), set.end(), b));
        set.push_back(v);
      }
      extracted_any = true;
    }
    if (!extracted_any) break;
  }

  // Rebuild: materialize virtual nodes on demand, then cluster roots.
  Rebuild rebuild(netlist);
  std::unordered_map<Node, Sig> virtual_sig;
  std::function<Sig(Node)> node_sig = [&](Node node) -> Sig {
    if (node < netlist.num_vars()) {
      return rebuild.at(static_cast<Var>(node));
    }
    const auto cached = virtual_sig.find(node);
    if (cached != virtual_sig.end()) return cached->second;
    const Virtual& v = virtuals.at(node);
    const Sig out = gen::sig_xor(rebuild.out(), node_sig(v.lhs),
                                 node_sig(v.rhs));
    virtual_sig.emplace(node, out);
    return out;
  };

  std::unordered_map<std::size_t, std::size_t> cluster_by_root;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    cluster_by_root.emplace(clusters[c].root_gate, c);
  }

  for (std::size_t g : netlist.topological_order()) {
    if (absorbed[g]) continue;
    const nl::Gate& gate = netlist.gate(g);
    const auto it = cluster_by_root.find(g);
    if (it == cluster_by_root.end()) {
      rebuild.set(gate.output,
                  emit_gate(rebuild.out(), gate.type, rebuild.map_inputs(gate),
                            carry_name(netlist, gate.output)));
      continue;
    }
    std::vector<Sig> leaves;
    for (Node node : sets[it->second]) leaves.push_back(node_sig(node));
    if (clusters[it->second].invert) leaves.push_back(Sig::one());
    rebuild.set(gate.output, sig_xor_tree(rebuild.out(), std::move(leaves),
                                          XorShape::Balanced));
  }
  return rebuild.finish();
}

}  // namespace gfre::opt
