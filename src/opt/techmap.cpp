// Technology mapping onto a {NAND2, NOR2, INV (+XOR2)} standard-cell set.
#include <unordered_map>

#include "opt/passes.hpp"
#include "opt/rebuild.hpp"
#include "util/error.hpp"

namespace gfre::opt {

using nl::CellType;
using nl::Var;

namespace {

/// Local cell builder with INV-pair elimination and constant folding.
class CellKit {
 public:
  explicit CellKit(nl::Netlist& netlist) : netlist_(&netlist) {}

  Sig inv(const Sig& x) {
    if (x.is_zero()) return Sig::one();
    if (x.is_one()) return Sig::zero();
    const auto it = inv_of_.find(x.net);
    if (it != inv_of_.end()) return Sig::wire(it->second);
    const Var out = netlist_->add_gate(CellType::Inv, {x.net});
    inv_of_.emplace(x.net, out);
    inv_of_.emplace(out, x.net);
    return Sig::wire(out);
  }

  Sig nand2(const Sig& x, const Sig& y) {
    if (x.is_zero() || y.is_zero()) return Sig::one();
    if (x.is_one()) return inv(y);
    if (y.is_one()) return inv(x);
    if (x.same_net_as(y)) return inv(x);
    return Sig::wire(netlist_->add_gate(CellType::Nand, {x.net, y.net}));
  }

  Sig nor2(const Sig& x, const Sig& y) {
    if (x.is_one() || y.is_one()) return Sig::zero();
    if (x.is_zero()) return inv(y);
    if (y.is_zero()) return inv(x);
    if (x.same_net_as(y)) return inv(x);
    return Sig::wire(netlist_->add_gate(CellType::Nor, {x.net, y.net}));
  }

  Sig and2(const Sig& x, const Sig& y) { return inv(nand2(x, y)); }
  Sig or2(const Sig& x, const Sig& y) { return inv(nor2(x, y)); }

  Sig xor2(const Sig& x, const Sig& y, bool keep_xor) {
    if (x.same_net_as(y)) return Sig::zero();
    if (x.is_zero()) return y;
    if (y.is_zero()) return x;
    if (x.is_one()) return inv(y);
    if (y.is_one()) return inv(x);
    if (keep_xor) {
      return Sig::wire(netlist_->add_gate(CellType::Xor, {x.net, y.net}));
    }
    // 4-NAND decomposition: n = NAND(a,b); XOR = NAND(NAND(a,n), NAND(b,n)).
    const Sig n = nand2(x, y);
    return nand2(nand2(x, n), nand2(y, n));
  }

 private:
  nl::Netlist* netlist_;
  std::unordered_map<Var, Var> inv_of_;
};

}  // namespace

nl::Netlist tech_map(const nl::Netlist& netlist,
                     const TechMapOptions& options) {
  Rebuild rebuild(netlist);
  CellKit kit(rebuild.out());

  const auto reduce = [&](const std::vector<Sig>& inputs, auto&& binary,
                          Sig unit) {
    Sig acc = unit;
    bool first = true;
    for (const Sig& s : inputs) {
      if (first) {
        acc = s;
        first = false;
      } else {
        acc = binary(acc, s);
      }
    }
    return acc;
  };

  for (std::size_t g : netlist.topological_order()) {
    const nl::Gate& gate = netlist.gate(g);
    const std::vector<Sig> in = rebuild.map_inputs(gate);
    Sig out;
    switch (gate.type) {
      case CellType::Const0: out = Sig::zero(); break;
      case CellType::Const1: out = Sig::one(); break;
      case CellType::Buf: out = in[0]; break;
      case CellType::Inv: out = kit.inv(in[0]); break;
      case CellType::And:
        out = reduce(in, [&](Sig a, Sig b) { return kit.and2(a, b); },
                     Sig::one());
        break;
      case CellType::Nand:
        out = kit.inv(reduce(
            in, [&](Sig a, Sig b) { return kit.and2(a, b); }, Sig::one()));
        break;
      case CellType::Or:
        out = reduce(in, [&](Sig a, Sig b) { return kit.or2(a, b); },
                     Sig::zero());
        break;
      case CellType::Nor:
        out = kit.inv(reduce(
            in, [&](Sig a, Sig b) { return kit.or2(a, b); }, Sig::zero()));
        break;
      case CellType::Xor:
        out = reduce(in,
                     [&](Sig a, Sig b) {
                       return kit.xor2(a, b, options.keep_xor);
                     },
                     Sig::zero());
        break;
      case CellType::Xnor:
        out = kit.inv(reduce(in,
                             [&](Sig a, Sig b) {
                               return kit.xor2(a, b, options.keep_xor);
                             },
                             Sig::zero()));
        break;
      case CellType::Mux: {
        // s?d1:d0 = NAND(NAND(s, d1), NAND(~s, d0))
        const Sig ns = kit.inv(in[0]);
        out = kit.nand2(kit.nand2(in[0], in[2]), kit.nand2(ns, in[1]));
        break;
      }
      case CellType::Aoi21:
        out = kit.nor2(kit.and2(in[0], in[1]), in[2]);
        break;
      case CellType::Oai21:
        out = kit.nand2(kit.or2(in[0], in[1]), in[2]);
        break;
      case CellType::Aoi22:
        out = kit.nor2(kit.and2(in[0], in[1]), kit.and2(in[2], in[3]));
        break;
      case CellType::Oai22:
        out = kit.nand2(kit.or2(in[0], in[1]), kit.or2(in[2], in[3]));
        break;
      case CellType::Maj3: {
        // maj(a,b,c) = ab | ac | bc = !(!(ab) & !(ac) & !(bc))
        const Sig nab = kit.nand2(in[0], in[1]);
        const Sig nac = kit.nand2(in[0], in[2]);
        const Sig nbc = kit.nand2(in[1], in[2]);
        out = kit.inv(kit.and2(kit.and2(nab, nac), nbc));
        break;
      }
    }
    rebuild.set(gate.output, out);
  }
  return rebuild.finish();
}

nl::Netlist synthesize(const nl::Netlist& netlist,
                       const SynthesisOptions& options) {
  nl::Netlist current = constant_propagate(netlist);
  current = structural_hash(current);
  current = rebalance_xor(current);
  if (options.run_share) {
    current = share_xor_pairs(current);
  }
  current = structural_hash(current);
  if (options.run_map_aoi) {
    current = map_aoi(current);
  }
  if (options.run_tech_map) {
    current = tech_map(current, options.tech_map);
  }
  current = constant_propagate(current);
  current = structural_hash(current);
  return current;
}

}  // namespace gfre::opt
