#include "gen/signal.hpp"

#include <deque>

#include "util/error.hpp"

namespace gfre::gen {

using nl::CellType;
using nl::Var;

Sig sig_and(nl::Netlist& netlist, const Sig& x, const Sig& y) {
  if (x.is_zero() || y.is_zero()) return Sig::zero();
  if (x.is_one()) return y;
  if (y.is_one()) return x;
  if (x.same_net_as(y)) return x;  // idempotent
  return Sig::wire(netlist.add_gate(CellType::And, {x.net, y.net}));
}

Sig sig_xor(nl::Netlist& netlist, const Sig& x, const Sig& y) {
  if (x.same_net_as(y)) return Sig::zero();
  if (x.is_zero()) return y;
  if (y.is_zero()) return x;
  if (x.is_one() && y.is_one()) return Sig::zero();
  if (x.is_one()) return Sig::wire(netlist.add_gate(CellType::Inv, {y.net}));
  if (y.is_one()) return Sig::wire(netlist.add_gate(CellType::Inv, {x.net}));
  return Sig::wire(netlist.add_gate(CellType::Xor, {x.net, y.net}));
}

Sig sig_or(nl::Netlist& netlist, const Sig& x, const Sig& y) {
  if (x.is_one() || y.is_one()) return Sig::one();
  if (x.is_zero()) return y;
  if (y.is_zero()) return x;
  if (x.same_net_as(y)) return x;
  return Sig::wire(netlist.add_gate(CellType::Or, {x.net, y.net}));
}

Sig sig_not(nl::Netlist& netlist, const Sig& x) {
  if (x.is_zero()) return Sig::one();
  if (x.is_one()) return Sig::zero();
  return Sig::wire(netlist.add_gate(CellType::Inv, {x.net}));
}

Sig sig_xor_tree(nl::Netlist& netlist, std::vector<Sig> operands,
                 XorShape shape) {
  // Fold constants first: zeros vanish; ones pair off, a leftover inverts
  // the final result.
  bool invert = false;
  std::deque<Sig> nets;
  for (const Sig& s : operands) {
    if (s.is_zero()) continue;
    if (s.is_one()) {
      invert = !invert;
    } else {
      nets.push_back(s);
    }
  }

  Sig acc;
  if (nets.empty()) {
    acc = Sig::zero();
  } else if (shape == XorShape::Chain) {
    acc = nets.front();
    nets.pop_front();
    while (!nets.empty()) {
      acc = sig_xor(netlist, acc, nets.front());
      nets.pop_front();
    }
  } else {
    // Balanced: repeatedly pair the two oldest operands (Huffman-like on
    // equal weights gives a log-depth tree).
    while (nets.size() > 1) {
      Sig a = nets.front();
      nets.pop_front();
      Sig b = nets.front();
      nets.pop_front();
      nets.push_back(sig_xor(netlist, a, b));
    }
    acc = nets.front();
  }

  if (invert) acc = sig_xor(netlist, acc, Sig::one());
  return acc;
}

Var materialize(nl::Netlist& netlist, const Sig& sig,
                const std::string& name) {
  switch (sig.kind) {
    case Sig::Kind::Zero:
      return netlist.add_gate(CellType::Const0, {}, name);
    case Sig::Kind::One:
      return netlist.add_gate(CellType::Const1, {}, name);
    case Sig::Kind::Net:
      return netlist.add_gate(CellType::Buf, {sig.net}, name);
  }
  throw InvalidArgument("bad signal kind");
}

}  // namespace gfre::gen
