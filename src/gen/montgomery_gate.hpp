// Gate-level Montgomery multiplier generator.
//
// Unrolls the bit-serial Montgomery product
//     MontPro(A, B) = A * B * x^(-m) mod P(x)
// into a flattened combinational netlist (m rounds of conditional adds and
// a divide-by-x), with no block boundaries — the Table II circuits.
//
// Two top-level functions:
//  * Composed (default): Z = MontPro(MontPro(A, B), R^2) = A*B mod P.
//    This is a *true* GF multiplier built the Montgomery way, which is what
//    lets the paper claim P(x) extraction "regardless of the GF algorithm":
//    the end-to-end function is the same as Mastrovito's.
//  * Raw: Z = A*B*x^(-m) mod P.  Algorithm 2's P_m placement no longer
//    applies directly; core recovers P(x) from these with the extended
//    reduction-matrix analysis.
#pragma once

#include "gen/signal.hpp"
#include "gf2m/field.hpp"
#include "netlist/netlist.hpp"

namespace gfre::gen {

struct MontgomeryOptions {
  /// false: composed A*B mod P; true: raw A*B*x^(-m) mod P.
  bool raw = false;
  XorShape xor_shape = XorShape::Balanced;
  std::string a_base = "a";
  std::string b_base = "b";
  std::string z_base = "z";
};

/// Generates a flattened Montgomery multiplier over the field.
nl::Netlist generate_montgomery(const gf2m::Field& field,
                                const MontgomeryOptions& options = {});

}  // namespace gfre::gen
