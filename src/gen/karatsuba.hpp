// Gate-level Karatsuba GF(2^m) multiplier generator.
//
// Large-field multipliers (ECC sizes like the paper's m = 233..571) are
// often built as a Karatsuba polynomial multiplication followed by the
// modular reduction, because Karatsuba trades AND gates for XOR gates:
// sub-products are computed once and *shared* between result positions,
// giving a recursive, heavily-shared, deep structure completely unlike
// Mastrovito's flat product array — a demanding instance of the paper's
// claim that extraction works "regardless of the GF(2^m) algorithm used".
#pragma once

#include "gen/signal.hpp"
#include "gf2m/field.hpp"
#include "netlist/netlist.hpp"

namespace gfre::gen {

struct KaratsubaOptions {
  /// Operand width at which recursion falls back to schoolbook.
  unsigned threshold = 4;
  XorShape xor_shape = XorShape::Balanced;
  std::string a_base = "a";
  std::string b_base = "b";
  std::string z_base = "z";
};

/// Generates a flattened Karatsuba multiplier (Z = A*B mod P).
nl::Netlist generate_karatsuba(const gf2m::Field& field,
                               const KaratsubaOptions& options = {});

}  // namespace gfre::gen
