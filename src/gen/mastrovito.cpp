#include "gen/mastrovito.hpp"

#include "util/error.hpp"

namespace gfre::gen {

using nl::CellType;
using nl::Netlist;
using nl::Var;

namespace {

struct Operands {
  std::vector<Var> a;
  std::vector<Var> b;
};

Operands declare_operands(Netlist& netlist, unsigned m,
                          const MastrovitoOptions& options) {
  Operands ops;
  for (unsigned i = 0; i < m; ++i) {
    ops.a.push_back(netlist.add_input(options.a_base + std::to_string(i)));
  }
  for (unsigned i = 0; i < m; ++i) {
    ops.b.push_back(netlist.add_input(options.b_base + std::to_string(i)));
  }
  return ops;
}

void generate_product_then_reduce(Netlist& netlist, const gf2m::Field& field,
                                  const Operands& ops,
                                  const MastrovitoOptions& options) {
  const unsigned m = field.m();
  // Partial products pp_i_j = a_i & b_j (named so traces read like Fig. 1).
  std::vector<std::vector<Sig>> pp(m, std::vector<Sig>(m));
  for (unsigned i = 0; i < m; ++i) {
    for (unsigned j = 0; j < m; ++j) {
      pp[i][j] = Sig::wire(
          netlist.add_gate(CellType::And, {ops.a[i], ops.b[j]},
                           "pp_" + std::to_string(i) + "_" +
                               std::to_string(j)));
    }
  }
  // Convolution sums s_k = XOR{pp_i_j : i+j == k}, k in [0, 2m-2].
  std::vector<Sig> s(2 * m - 1);
  for (unsigned k = 0; k <= 2 * m - 2; ++k) {
    std::vector<Sig> terms;
    const unsigned i_begin = (k >= m) ? (k - m + 1) : 0u;
    const unsigned i_end = std::min(k, m - 1);
    for (unsigned i = i_begin; i <= i_end; ++i) {
      terms.push_back(pp[i][k - i]);
    }
    s[k] = sig_xor_tree(netlist, std::move(terms), options.xor_shape);
  }
  // Reduction: z_i = s_i XOR {s_k : k >= m and (x^k mod P) has term x^i}.
  const auto& rows = field.reduction_rows();
  for (unsigned i = 0; i < m; ++i) {
    std::vector<Sig> terms{s[i]};
    for (unsigned k = m; k <= 2 * m - 2; ++k) {
      if (rows[k - m].coeff(i)) terms.push_back(s[k]);
    }
    const Sig z = sig_xor_tree(netlist, std::move(terms), options.xor_shape);
    netlist.mark_output(
        materialize(netlist, z, options.z_base + std::to_string(i)));
  }
}

void generate_matrix_form(Netlist& netlist, const gf2m::Field& field,
                          const Operands& ops,
                          const MastrovitoOptions& options) {
  const unsigned m = field.m();
  const auto& rows = field.reduction_rows();
  // Mastrovito matrix entry M[i][j] = XOR of the a-bits feeding output i
  // through operand bit b_j:
  //   a_{i-j}                 when j <= i (the in-field diagonal), plus
  //   a_{k-j} for every k >= m with j <= k <= m-1+j and (x^k mod P)|x^i.
  for (unsigned i = 0; i < m; ++i) {
    std::vector<Sig> row_terms;
    for (unsigned j = 0; j < m; ++j) {
      std::vector<Sig> entry;
      if (j <= i) entry.push_back(Sig::wire(ops.a[i - j]));
      for (unsigned k = m; k <= 2 * m - 2; ++k) {
        if (k < j || k - j > m - 1) continue;
        if (rows[k - m].coeff(i)) entry.push_back(Sig::wire(ops.a[k - j]));
      }
      Sig m_ij = sig_xor_tree(netlist, std::move(entry), options.xor_shape);
      row_terms.push_back(sig_and(netlist, m_ij, Sig::wire(ops.b[j])));
    }
    const Sig z =
        sig_xor_tree(netlist, std::move(row_terms), options.xor_shape);
    netlist.mark_output(
        materialize(netlist, z, options.z_base + std::to_string(i)));
  }
}

}  // namespace

Netlist generate_mastrovito(const gf2m::Field& field,
                            const MastrovitoOptions& options) {
  const unsigned m = field.m();
  Netlist netlist("mastrovito_m" + std::to_string(m));
  const Operands ops = declare_operands(netlist, m, options);
  switch (options.style) {
    case MastrovitoOptions::Style::ProductThenReduce:
      generate_product_then_reduce(netlist, field, ops, options);
      break;
    case MastrovitoOptions::Style::Matrix:
      netlist.set_name("mastrovito_matrix_m" + std::to_string(m));
      generate_matrix_form(netlist, field, ops, options);
      break;
  }
  netlist.validate();
  return netlist;
}

}  // namespace gfre::gen
