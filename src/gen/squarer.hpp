// Gate-level GF(2^m) squarer generator.
//
// Squaring is linear over GF(2): (sum a_i x^i)^2 = sum a_i x^(2i), so
// Z = A^2 mod P is a pure XOR network — no partial products at all.
// Squarers are as common as multipliers in ECC datapaths (point doubling,
// inversion chains), and their P(x) is recoverable from the linear
// coefficient matrix (see core/squarer.hpp), which extends the paper's
// method to a circuit class it does not cover.
#pragma once

#include "gen/signal.hpp"
#include "gf2m/field.hpp"
#include "netlist/netlist.hpp"

namespace gfre::gen {

struct SquarerOptions {
  XorShape xor_shape = XorShape::Balanced;
  std::string a_base = "a";
  std::string z_base = "z";
};

/// Generates a flattened squarer: inputs a0..a{m-1}, outputs
/// z0..z{m-1} with Z = A^2 mod P(x).
nl::Netlist generate_squarer(const gf2m::Field& field,
                             const SquarerOptions& options = {});

}  // namespace gfre::gen
