#include "gen/karatsuba.hpp"

#include "util/error.hpp"

namespace gfre::gen {

using nl::Netlist;
using nl::Var;

namespace {

/// Schoolbook polynomial product of two signal vectors (any lengths);
/// result has size |a| + |b| - 1.
std::vector<Sig> schoolbook(Netlist& netlist, const std::vector<Sig>& a,
                            const std::vector<Sig>& b, XorShape shape) {
  std::vector<std::vector<Sig>> columns(a.size() + b.size() - 1);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      columns[i + j].push_back(sig_and(netlist, a[i], b[j]));
    }
  }
  std::vector<Sig> out;
  out.reserve(columns.size());
  for (auto& column : columns) {
    out.push_back(sig_xor_tree(netlist, std::move(column), shape));
  }
  return out;
}

/// Karatsuba polynomial product; both operands must be the same length n
/// (the splitter pads as needed).
std::vector<Sig> karatsuba(Netlist& netlist, const std::vector<Sig>& a,
                           const std::vector<Sig>& b,
                           const KaratsubaOptions& options) {
  const std::size_t n = a.size();
  GFRE_ASSERT(b.size() == n, "karatsuba operands must match");
  if (n <= options.threshold) {
    return schoolbook(netlist, a, b, options.xor_shape);
  }
  const std::size_t h = n / 2;        // low-half width
  const std::size_t hi = n - h;       // high-half width (>= h)

  const std::vector<Sig> a0(a.begin(), a.begin() + h);
  const std::vector<Sig> a1(a.begin() + h, a.end());
  const std::vector<Sig> b0(b.begin(), b.begin() + h);
  const std::vector<Sig> b1(b.begin() + h, b.end());

  // Sums of halves, padded to the high-half width.
  std::vector<Sig> as(hi, Sig::zero());
  std::vector<Sig> bs(hi, Sig::zero());
  for (std::size_t i = 0; i < hi; ++i) {
    as[i] = (i < h) ? sig_xor(netlist, a0[i], a1[i]) : a1[i];
    bs[i] = (i < h) ? sig_xor(netlist, b0[i], b1[i]) : b1[i];
  }

  const auto p0 = karatsuba(netlist, a0, b0, options);   // 2h-1
  const auto p2 = karatsuba(netlist, a1, b1, options);   // 2hi-1
  const auto p1 = karatsuba(netlist, as, bs, options);   // 2hi-1

  // result = p0 + x^h * (p1 + p0 + p2) + x^(2h) * p2  (char 2: + == -).
  std::vector<Sig> result(2 * n - 1, Sig::zero());
  for (std::size_t i = 0; i < p0.size(); ++i) {
    result[i] = sig_xor(netlist, result[i], p0[i]);
  }
  for (std::size_t i = 0; i < p1.size(); ++i) {
    Sig mid = p1[i];
    if (i < p0.size()) mid = sig_xor(netlist, mid, p0[i]);
    if (i < p2.size()) mid = sig_xor(netlist, mid, p2[i]);
    result[h + i] = sig_xor(netlist, result[h + i], mid);
  }
  for (std::size_t i = 0; i < p2.size(); ++i) {
    result[2 * h + i] = sig_xor(netlist, result[2 * h + i], p2[i]);
  }
  return result;
}

}  // namespace

Netlist generate_karatsuba(const gf2m::Field& field,
                           const KaratsubaOptions& options) {
  GFRE_ASSERT(options.threshold >= 1, "threshold must be positive");
  const unsigned m = field.m();
  Netlist netlist("karatsuba_m" + std::to_string(m));

  std::vector<Sig> a, b;
  for (unsigned i = 0; i < m; ++i) {
    a.push_back(
        Sig::wire(netlist.add_input(options.a_base + std::to_string(i))));
  }
  for (unsigned i = 0; i < m; ++i) {
    b.push_back(
        Sig::wire(netlist.add_input(options.b_base + std::to_string(i))));
  }

  // Double-width polynomial product, then the standard reduction network.
  const std::vector<Sig> s = karatsuba(netlist, a, b, options);
  GFRE_ASSERT(s.size() == 2 * std::size_t{m} - 1, "product width");

  const auto& rows = field.reduction_rows();
  for (unsigned i = 0; i < m; ++i) {
    std::vector<Sig> terms{s[i]};
    for (unsigned k = m; k <= 2 * m - 2; ++k) {
      if (rows[k - m].coeff(i)) terms.push_back(s[k]);
    }
    const Sig z = sig_xor_tree(netlist, std::move(terms), options.xor_shape);
    netlist.mark_output(
        materialize(netlist, z, options.z_base + std::to_string(i)));
  }
  netlist.validate();
  return netlist;
}

}  // namespace gfre::gen
