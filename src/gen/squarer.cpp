#include "gen/squarer.hpp"

#include "util/error.hpp"

namespace gfre::gen {

using nl::Netlist;
using nl::Var;

Netlist generate_squarer(const gf2m::Field& field,
                         const SquarerOptions& options) {
  const unsigned m = field.m();
  Netlist netlist("squarer_m" + std::to_string(m));

  std::vector<Var> a;
  for (unsigned i = 0; i < m; ++i) {
    a.push_back(netlist.add_input(options.a_base + std::to_string(i)));
  }

  // z_i = XOR of { a_k : (x^(2k) mod P) has term x^i }.
  for (unsigned i = 0; i < m; ++i) {
    std::vector<Sig> terms;
    for (unsigned k = 0; k < m; ++k) {
      bool present;
      if (2 * k < m) {
        present = (2 * k == i);
      } else {
        present = field.reduction_rows()[2 * k - m].coeff(i);
      }
      if (present) terms.push_back(Sig::wire(a[k]));
    }
    const Sig z = sig_xor_tree(netlist, std::move(terms), options.xor_shape);
    netlist.mark_output(
        materialize(netlist, z, options.z_base + std::to_string(i)));
  }
  netlist.validate();
  return netlist;
}

}  // namespace gfre::gen
