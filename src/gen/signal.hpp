// Constant-folding signal helpers for the multiplier generators.
//
// Generators work over `Sig` values — either a net or a known constant —
// so that constant operands (e.g. the R^2 word of a Montgomery stage, or
// reduction rows with zero entries) fold away instead of emitting dead
// gates, exactly like the paper's generator-produced netlists.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace gfre::gen {

/// A symbolic bit: constant 0/1 or a netlist net.
struct Sig {
  enum class Kind { Zero, One, Net };
  Kind kind = Kind::Zero;
  nl::Var net = 0;

  static Sig zero() { return {Kind::Zero, 0}; }
  static Sig one() { return {Kind::One, 0}; }
  static Sig wire(nl::Var v) { return {Kind::Net, v}; }
  static Sig constant(bool b) { return b ? one() : zero(); }

  bool is_zero() const { return kind == Kind::Zero; }
  bool is_one() const { return kind == Kind::One; }
  bool is_net() const { return kind == Kind::Net; }

  bool same_net_as(const Sig& other) const {
    return is_net() && other.is_net() && net == other.net;
  }
};

/// Emits (or folds) x & y.
Sig sig_and(nl::Netlist& netlist, const Sig& x, const Sig& y);

/// Emits (or folds) x ^ y.  xor(x, x) folds to 0 structurally, which is
/// what clears bit 0 in the unrolled Montgomery rounds.
Sig sig_xor(nl::Netlist& netlist, const Sig& x, const Sig& y);

/// Emits (or folds) x | y.
Sig sig_or(nl::Netlist& netlist, const Sig& x, const Sig& y);

/// Emits (or folds) ~x.
Sig sig_not(nl::Netlist& netlist, const Sig& x);

/// XOR-tree shape: Chain mirrors naive generator output; Balanced mirrors
/// depth-optimized generator output.
enum class XorShape { Chain, Balanced };

/// XOR of an operand list with the requested tree shape (folds constants
/// and empty lists).
Sig sig_xor_tree(nl::Netlist& netlist, std::vector<Sig> operands,
                 XorShape shape);

/// Materializes a Sig as a named net: BUF for nets, CONST0/1 for constants.
/// Used to give primary outputs their z<i> names.
nl::Var materialize(nl::Netlist& netlist, const Sig& sig,
                    const std::string& name);

}  // namespace gfre::gen
