#include "gen/montgomery_gate.hpp"

#include "gf2m/montgomery.hpp"
#include "util/error.hpp"

namespace gfre::gen {

using nl::CellType;
using nl::Netlist;
using nl::Var;

namespace {

/// One unrolled bit-serial MontPro block: returns A*B*x^(-m) as signals.
/// Operands may contain constant signals (used for the R^2 stage), which
/// fold into wires/omissions.
std::vector<Sig> mont_pro_block(Netlist& netlist, const gf2m::Field& field,
                                const std::vector<Sig>& a,
                                const std::vector<Sig>& b) {
  const unsigned m = field.m();
  GFRE_ASSERT(a.size() == m && b.size() == m, "MontPro operand width");
  std::vector<Sig> z(m, Sig::zero());
  for (unsigned round = 0; round < m; ++round) {
    // Z += a_round * B
    for (unsigned j = 0; j < m; ++j) {
      const Sig product = sig_and(netlist, a[round], b[j]);
      z[j] = sig_xor(netlist, z[j], product);
    }
    // Clear bit 0 with a conditional add of P: Z += z0 * P.
    const Sig t0 = z[0];
    for (unsigned j = 0; j < m; ++j) {
      if (field.modulus().coeff(j)) {
        z[j] = sig_xor(netlist, z[j], t0);
      }
    }
    // At this point z[0] folded to 0 (t0 xor t0); divide by x.
    GFRE_ASSERT(z[0].is_zero(), "Montgomery round failed to clear bit 0");
    for (unsigned j = 0; j + 1 < m; ++j) z[j] = z[j + 1];
    // x^(m-1) gets P's top coefficient contribution only via p_m = 1, which
    // the shift models by feeding t0 * x^m... p_m term: Z += t0 * x^m then
    // shift brings it to position m-1.
    z[m - 1] = t0;
  }
  return z;
}

}  // namespace

Netlist generate_montgomery(const gf2m::Field& field,
                            const MontgomeryOptions& options) {
  const unsigned m = field.m();
  Netlist netlist((options.raw ? "montgomery_raw_m" : "montgomery_m") +
                  std::to_string(m));

  std::vector<Sig> a, b;
  for (unsigned i = 0; i < m; ++i) {
    a.push_back(
        Sig::wire(netlist.add_input(options.a_base + std::to_string(i))));
  }
  for (unsigned i = 0; i < m; ++i) {
    b.push_back(
        Sig::wire(netlist.add_input(options.b_base + std::to_string(i))));
  }

  std::vector<Sig> z = mont_pro_block(netlist, field, a, b);

  if (!options.raw) {
    // Second stage against the constant R^2 = x^(2m) mod P recovers the
    // plain product: MontPro(A*B*x^-m, R^2) = A*B mod P.
    const gf2m::Montgomery montgomery(field);
    const gf2::Poly& r2 = montgomery.r_squared();
    std::vector<Sig> r2_bits;
    for (unsigned i = 0; i < m; ++i) {
      r2_bits.push_back(Sig::constant(r2.coeff(i)));
    }
    z = mont_pro_block(netlist, field, z, r2_bits);
  }

  for (unsigned i = 0; i < m; ++i) {
    netlist.mark_output(
        materialize(netlist, z[i], options.z_base + std::to_string(i)));
  }
  netlist.validate();
  return netlist;
}

}  // namespace gfre::gen
