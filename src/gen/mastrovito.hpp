// Gate-level Mastrovito multiplier generator.
//
// Produces the flattened GF(2^m) multiplier netlists of Tables I, III and
// IV.  Two structural styles are supported:
//
//  * ProductThenReduce — the textbook structure from the paper's Figure 1:
//    partial products pp_i_j = a_i & b_j, convolution sums s_k, then a
//    reduction network z_i = s_i XOR {s_k : k >= m, (x^k mod P) has x^i}.
//    This is the structure in which the paper's Theorem 3 placement of s_m
//    is visually evident.
//
//  * Matrix — the classic Mastrovito product-matrix form z = M(a) * b:
//    each matrix entry is an XOR of a-bits, then an AND row with b and a
//    final XOR tree.  Functionally identical, structurally very different,
//    which exercises the claim that extraction is implementation-agnostic.
#pragma once

#include "gen/signal.hpp"
#include "gf2m/field.hpp"
#include "netlist/netlist.hpp"

namespace gfre::gen {

struct MastrovitoOptions {
  enum class Style { ProductThenReduce, Matrix };
  Style style = Style::ProductThenReduce;
  XorShape xor_shape = XorShape::Balanced;
  std::string a_base = "a";
  std::string b_base = "b";
  std::string z_base = "z";
};

/// Generates a flattened Mastrovito multiplier for the field.  The netlist
/// has inputs a0..a{m-1}, b0..b{m-1} and outputs z0..z{m-1} with
/// Z = A*B mod P(x).
nl::Netlist generate_mastrovito(const gf2m::Field& field,
                                const MastrovitoOptions& options = {});

}  // namespace gfre::gen
