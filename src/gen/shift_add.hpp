// Gate-level shift-and-add (interleaved-reduction / LFSR-style) multiplier.
//
// A third structural family for robustness experiments: the reduction is
// interleaved with accumulation instead of applied to a full double-width
// product —
//     Z = 0;  for i = m-1 .. 0:  Z = (Z * x mod P) + a_i * B
// The function is still A*B mod P, so extraction must recover the same
// P(x) despite a completely different gate topology (no s_k signals exist
// anywhere in this netlist).
#pragma once

#include "gen/signal.hpp"
#include "gf2m/field.hpp"
#include "netlist/netlist.hpp"

namespace gfre::gen {

struct ShiftAddOptions {
  XorShape xor_shape = XorShape::Balanced;
  std::string a_base = "a";
  std::string b_base = "b";
  std::string z_base = "z";
};

/// Generates a flattened shift-and-add multiplier (Z = A*B mod P).
nl::Netlist generate_shift_add(const gf2m::Field& field,
                               const ShiftAddOptions& options = {});

}  // namespace gfre::gen
