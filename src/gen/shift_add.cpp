#include "gen/shift_add.hpp"

#include "util/error.hpp"

namespace gfre::gen {

using nl::Netlist;

Netlist generate_shift_add(const gf2m::Field& field,
                           const ShiftAddOptions& options) {
  const unsigned m = field.m();
  Netlist netlist("shiftadd_m" + std::to_string(m));

  std::vector<Sig> a, b;
  for (unsigned i = 0; i < m; ++i) {
    a.push_back(
        Sig::wire(netlist.add_input(options.a_base + std::to_string(i))));
  }
  for (unsigned i = 0; i < m; ++i) {
    b.push_back(
        Sig::wire(netlist.add_input(options.b_base + std::to_string(i))));
  }

  std::vector<Sig> z(m, Sig::zero());
  for (unsigned round = 0; round < m; ++round) {
    const unsigned i = m - 1 - round;  // process a from the top bit down
    if (round != 0) {
      // Z = Z * x mod P: shift up; the spilled top bit folds back through
      // P's low terms (x^m mod P = P - x^m).
      const Sig top = z[m - 1];
      for (unsigned j = m - 1; j > 0; --j) z[j] = z[j - 1];
      z[0] = Sig::zero();
      if (!top.is_zero()) {
        for (unsigned j = 0; j < m; ++j) {
          if (field.modulus().coeff(j)) z[j] = sig_xor(netlist, z[j], top);
        }
      }
    }
    // Z += a_i * B
    for (unsigned j = 0; j < m; ++j) {
      z[j] = sig_xor(netlist, z[j], sig_and(netlist, a[i], b[j]));
    }
  }

  for (unsigned i = 0; i < m; ++i) {
    netlist.mark_output(
        materialize(netlist, z[i], options.z_base + std::to_string(i)));
  }
  netlist.validate();
  return netlist;
}

}  // namespace gfre::gen
