// Internal entry points of the individual obfuscation passes.  Shared by
// the pass implementation files; apply_pass (passes.cpp) dispatches here
// after handling strength 0 and deriving the Prng.
#pragma once

#include "obf/passes.hpp"
#include "util/prng.hpp"

namespace gfre::obf::detail {

/// key_gates.cpp — XOR/XNOR key-gate insertion (strength >= 1).
ObfuscationResult key_gate_pass(const nl::Netlist& netlist, unsigned strength,
                                const PassOptions& options, Prng& rng);

/// px_mix.cpp — decoy-polynomial reduction mixing (strength >= 1).
/// `decoy_used` receives the decoy actually chosen (zero when the pass
/// degenerated to the identity, e.g. < 2 outputs).
nl::Netlist px_mix_pass(const nl::Netlist& netlist, unsigned strength,
                        const PassOptions& options, Prng& rng,
                        gf2::Poly* decoy_used);

/// rewrite.cpp — structural rewriting via opt/ passes + seeded
/// duplication stacks (strength >= 1).
nl::Netlist rewrite_pass(const nl::Netlist& netlist, unsigned strength,
                         Prng& rng);

/// fault.cpp — stuck-at / cell-flip fault injection (strength >= 1).
nl::Netlist fault_pass(const nl::Netlist& netlist, PassKind kind,
                       unsigned strength, Prng& rng);

}  // namespace gfre::obf::detail
