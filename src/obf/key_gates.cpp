// Key-gate insertion and key application (logic-locking attack surface).
//
// Insertion rebuilds the netlist in topological order; a selected gate's
// output net X is renamed X__pre<i> and the original name X is taken by a
// new key gate XOR(X__pre<i>, k<i>) (or XNOR, seeded polarity).  Because
// add_gate requires operands to exist, creation order is always
// topological, so for generator-produced netlists the rebuild preserves
// gate order exactly — which is what makes apply_key with the correct key
// an exact inverse: folding the pass-through key gates away and restoring
// the __pre names yields a netlist content-hash-identical to the clean
// twin (tests/test_obfuscation.cpp pins this down).
#include <algorithm>
#include <cctype>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obf/internal.hpp"
#include "util/error.hpp"

namespace gfre::obf {
namespace detail {
namespace {

/// Picks `count` distinct values from [0, n) by partial Fisher-Yates,
/// returned ascending.
std::vector<std::size_t> pick_distinct(std::size_t n, std::size_t count,
                                       Prng& rng) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  count = std::min(count, n);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.next_below(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace

ObfuscationResult key_gate_pass(const nl::Netlist& src, unsigned strength,
                                const PassOptions& options, Prng& rng) {
  using nl::CellType;
  using nl::Var;
  ObfuscationResult result{nl::Netlist(src.name()), {}, options.key_base, {}};
  nl::Netlist& out = result.netlist;
  if (src.num_gates() == 0) {
    result.netlist = src;
    return result;
  }

  // 4 key gates per strength level, capped by the netlist size.
  const std::size_t bits =
      std::min<std::size_t>(src.num_gates(),
                            static_cast<std::size_t>(strength) * 4);
  const std::vector<std::size_t> topo = src.topological_order();
  const std::vector<std::size_t> picked_pos =
      pick_distinct(topo.size(), bits, rng);
  // slot_at[topo position] = key index, or npos.
  std::vector<std::size_t> slot_at(topo.size(), topo.size());
  for (std::size_t s = 0; s < picked_pos.size(); ++s)
    slot_at[picked_pos[s]] = s;

  // Seeded per-gate polarity (XNOR => correct bit 1) and operand order.
  std::vector<bool> xnor(picked_pos.size());
  std::vector<bool> key_first(picked_pos.size());
  for (std::size_t s = 0; s < picked_pos.size(); ++s) {
    xnor[s] = rng.next_bool();
    key_first[s] = rng.next_bool();
  }

  std::vector<Var> map(src.num_vars());
  for (Var v : src.inputs()) map[v] = out.add_input(src.var_name(v));
  std::vector<Var> keys(picked_pos.size());
  for (std::size_t s = 0; s < picked_pos.size(); ++s) {
    const unsigned index = options.first_key_index + static_cast<unsigned>(s);
    keys[s] = out.add_input(options.key_base + std::to_string(index));
    result.key.push_back(xnor[s]);
  }

  for (std::size_t pos = 0; pos < topo.size(); ++pos) {
    const nl::Gate& gate = src.gate(topo[pos]);
    std::vector<Var> in;
    in.reserve(gate.inputs.size());
    for (Var v : gate.inputs) in.push_back(map[v]);
    const std::string& name = src.var_name(gate.output);
    const std::size_t s = slot_at[pos];
    if (s == topo.size()) {
      map[gate.output] = out.add_gate(gate.type, std::move(in), name);
      continue;
    }
    const unsigned index = options.first_key_index + static_cast<unsigned>(s);
    const Var pre = out.add_gate(gate.type, std::move(in),
                                 name + "__pre" + std::to_string(index));
    std::vector<Var> operands = key_first[s] ? std::vector<Var>{keys[s], pre}
                                             : std::vector<Var>{pre, keys[s]};
    map[gate.output] = out.add_gate(
        xnor[s] ? CellType::Xnor : CellType::Xor, std::move(operands), name);
  }
  for (Var v : src.outputs()) out.mark_output(map[v]);
  return result;
}

}  // namespace detail

nl::Netlist apply_key(const nl::Netlist& keyed, const std::vector<bool>& key,
                      const std::string& key_base, unsigned first_key_index) {
  using nl::CellType;
  using nl::Var;

  // Resolve each key bit to its primary input.
  std::unordered_map<Var, bool> key_value;
  for (std::size_t i = 0; i < key.size(); ++i) {
    const std::string name =
        key_base + std::to_string(first_key_index + static_cast<unsigned>(i));
    const std::optional<Var> v = keyed.find_var(name);
    if (!v || !keyed.is_input(*v))
      throw InvalidArgument("key bit " + std::to_string(i) +
                            " has no primary input '" + name + "'");
    key_value.emplace(*v, key[i]);
  }

  const std::vector<std::size_t> topo = keyed.topological_order();

  // Classify each gate: pass-through key gate (folds away), inverting key
  // gate (becomes INV), or ordinary (kept).  A key gate is a 2-input
  // XOR/XNOR with exactly one keyed operand.
  enum class Fold { Keep, PassThrough, Invert };
  std::vector<Fold> fold(keyed.num_gates(), Fold::Keep);
  std::vector<Var> data_of(keyed.num_gates(), 0);
  for (std::size_t g = 0; g < keyed.num_gates(); ++g) {
    const nl::Gate& gate = keyed.gate(g);
    if ((gate.type != CellType::Xor && gate.type != CellType::Xnor) ||
        gate.inputs.size() != 2)
      continue;
    const bool k0 = key_value.count(gate.inputs[0]) != 0;
    const bool k1 = key_value.count(gate.inputs[1]) != 0;
    if (k0 == k1) continue;
    const Var key_var = k0 ? gate.inputs[0] : gate.inputs[1];
    const bool bit = key_value.at(key_var);
    // XOR passes through at 0, XNOR at 1; the other bit inverts.
    const bool inverts = (gate.type == CellType::Xor) ? bit : !bit;
    fold[g] = inverts ? Fold::Invert : Fold::PassThrough;
    data_of[g] = k0 ? gate.inputs[1] : gate.inputs[0];
  }

  // Restore names: a pass-through gate's data net takes the key gate's
  // (original) name.  Reverse-topological so chained key gates resolve.
  std::unordered_map<Var, std::string> final_name;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::size_t g = *it;
    if (fold[g] != Fold::PassThrough) continue;
    const Var out_var = keyed.gate(g).output;
    const auto named = final_name.find(out_var);
    final_name[data_of[g]] =
        named != final_name.end() ? named->second : keyed.var_name(out_var);
  }
  const auto name_for = [&](Var v) -> const std::string& {
    const auto it = final_name.find(v);
    return it != final_name.end() ? it->second : keyed.var_name(v);
  };

  nl::Netlist out(keyed.name());
  std::vector<Var> map(keyed.num_vars());
  std::vector<bool> mapped(keyed.num_vars(), false);
  for (Var v : keyed.inputs()) {
    if (key_value.count(v)) continue;  // key inputs disappear
    map[v] = out.add_input(keyed.var_name(v));
    mapped[v] = true;
  }
  // Tie cells for the rare case of a key input feeding a non-key gate
  // (hand-written netlists); created lazily so the common path stays an
  // exact inverse of insertion.
  std::optional<Var> tie0, tie1;
  const auto const_for = [&](bool bit) -> Var {
    std::optional<Var>& tie = bit ? tie1 : tie0;
    if (!tie)
      tie = out.add_gate(bit ? CellType::Const1 : CellType::Const0, {},
                         std::string("obf_tie") + (bit ? "1" : "0"));
    return *tie;
  };

  for (std::size_t pos = 0; pos < topo.size(); ++pos) {
    const std::size_t g = topo[pos];
    const nl::Gate& gate = keyed.gate(g);
    const Var out_var = gate.output;
    if (fold[g] == Fold::PassThrough) {
      map[out_var] = map[data_of[g]];
      mapped[out_var] = true;
      continue;
    }
    if (fold[g] == Fold::Invert) {
      map[out_var] = out.add_gate(CellType::Inv, {map[data_of[g]]},
                                  name_for(out_var));
      mapped[out_var] = true;
      continue;
    }
    std::vector<Var> in;
    in.reserve(gate.inputs.size());
    for (Var v : gate.inputs) {
      const auto kv = key_value.find(v);
      in.push_back(kv != key_value.end() ? const_for(kv->second) : map[v]);
    }
    map[out_var] = out.add_gate(gate.type, std::move(in), name_for(out_var));
    mapped[out_var] = true;
  }
  for (Var v : keyed.outputs()) {
    if (!mapped[v] && key_value.count(v))
      throw InvalidArgument("key input '" + keyed.var_name(v) +
                            "' is a primary output; cannot fold");
    out.mark_output(map[v]);
  }
  return out;
}

}  // namespace gfre::obf
