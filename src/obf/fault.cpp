// Fault-injection passes — deliberately NOT semantics-preserving.
//
// stuckat ties `strength` seeded gate input pins to a constant; flip
// replaces `strength` seeded gates with a different same-arity cell.
// Against these the flow's contract is recover-or-diagnose-never-crash:
// a fault either leaves the circuit a multiplier over some field (rare)
// or the flow reports a diagnosed failure.
#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "netlist/cell.hpp"
#include "obf/internal.hpp"

namespace gfre::obf::detail {
namespace {

std::vector<std::size_t> pick_distinct(std::size_t n, std::size_t count,
                                       Prng& rng) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  count = std::min(count, n);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.next_below(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace

nl::Netlist fault_pass(const nl::Netlist& src, PassKind kind,
                       unsigned strength, Prng& rng) {
  using nl::CellType;
  using nl::Var;
  if (src.num_gates() == 0) return src;
  const std::vector<std::size_t> topo = src.topological_order();

  // stuckat: global input-pin indices; flip: gate topo positions.
  std::vector<std::size_t> pin_offset(topo.size() + 1, 0);
  for (std::size_t pos = 0; pos < topo.size(); ++pos)
    pin_offset[pos + 1] = pin_offset[pos] + src.gate(topo[pos]).inputs.size();

  std::vector<std::size_t> stuck_pins;
  std::vector<bool> stuck_value;
  std::vector<unsigned char> flip_at(topo.size(), 0);
  std::vector<CellType> flip_to(topo.size(), CellType::Buf);
  if (kind == PassKind::FaultStuckAt) {
    if (pin_offset.back() == 0) return src;
    stuck_pins = pick_distinct(pin_offset.back(), strength, rng);
    for (std::size_t i = 0; i < stuck_pins.size(); ++i)
      stuck_value.push_back(rng.next_bool());
  } else {
    for (std::size_t pos : pick_distinct(topo.size(), strength, rng)) {
      const nl::Gate& gate = src.gate(topo[pos]);
      std::vector<CellType> candidates;
      for (CellType type : nl::all_cell_types())
        if (type != gate.type && nl::arity_ok(type, gate.inputs.size()))
          candidates.push_back(type);
      if (candidates.empty()) continue;
      flip_at[pos] = 1;
      flip_to[pos] = candidates[rng.next_below(candidates.size())];
    }
  }

  nl::Netlist out(src.name());
  std::vector<Var> map(src.num_vars());
  for (Var v : src.inputs()) map[v] = out.add_input(src.var_name(v));
  std::optional<Var> tie0, tie1;
  const auto const_for = [&](bool bit) -> Var {
    std::optional<Var>& tie = bit ? tie1 : tie0;
    if (!tie)
      tie = out.add_gate(bit ? CellType::Const1 : CellType::Const0, {},
                         std::string("obf_fault_tie") + (bit ? "1" : "0"));
    return *tie;
  };
  std::size_t next_stuck = 0;
  for (std::size_t pos = 0; pos < topo.size(); ++pos) {
    const nl::Gate& gate = src.gate(topo[pos]);
    std::vector<Var> in;
    in.reserve(gate.inputs.size());
    for (std::size_t p = 0; p < gate.inputs.size(); ++p) {
      const std::size_t global_pin = pin_offset[pos] + p;
      if (next_stuck < stuck_pins.size() &&
          stuck_pins[next_stuck] == global_pin) {
        in.push_back(const_for(stuck_value[next_stuck]));
        ++next_stuck;
      } else {
        in.push_back(map[gate.inputs[p]]);
      }
    }
    const CellType type = flip_at[pos] ? flip_to[pos] : gate.type;
    map[gate.output] =
        out.add_gate(type, std::move(in), src.var_name(gate.output));
  }
  for (Var v : src.outputs()) out.mark_output(map[v]);
  return out;
}

}  // namespace gfre::obf::detail
