#include "obf/campaign.hpp"

#include <cctype>
#include <utility>

#include "gen/karatsuba.hpp"
#include "gen/mastrovito.hpp"
#include "gen/montgomery_gate.hpp"
#include "gen/shift_add.hpp"
#include "gf2poly/catalog.hpp"
#include "gf2poly/irreducible.hpp"
#include "sim/equivalence.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace gfre::obf {

const char* to_string(KeyMode mode) {
  switch (mode) {
    case KeyMode::None:
      return "none";
    case KeyMode::Correct:
      return "correct";
    case KeyMode::Wrong:
      return "wrong";
    case KeyMode::Free:
      return "free";
  }
  return "?";
}

std::optional<KeyMode> key_mode_from_name(std::string_view name) {
  std::string lower;
  for (char c : name)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  for (KeyMode mode :
       {KeyMode::None, KeyMode::Correct, KeyMode::Wrong, KeyMode::Free})
    if (lower == to_string(mode)) return mode;
  return std::nullopt;
}

const std::vector<std::string>& campaign_families() {
  static const std::vector<std::string> families = {
      "mastrovito", "montgomery", "karatsuba", "shiftadd"};
  return families;
}

nl::Netlist generate_family(const std::string& family,
                            const gf2m::Field& field) {
  if (family == "mastrovito") return gen::generate_mastrovito(field);
  if (family == "montgomery") return gen::generate_montgomery(field);
  if (family == "karatsuba") return gen::generate_karatsuba(field);
  if (family == "shiftadd") return gen::generate_shift_add(field);
  throw InvalidArgument("unknown campaign family '" + family + "'");
}

gf2::Poly field_polynomial(unsigned m) {
  return gf2::has_paper_polynomial(m) ? gf2::paper_polynomial(m).p
                                      : gf2::default_irreducible(m);
}

std::string scenario_name(const Scenario& scenario) {
  std::string stack = to_string(scenario.passes);
  for (char& c : stack)
    if (c == '+' || c == ':') c = '_';
  if (stack.empty()) stack = "clean";
  return scenario.family + "_m" + std::to_string(scenario.m) + "_" + stack +
         "_s" + std::to_string(scenario.seed) + "_" +
         to_string(scenario.key_mode);
}

PreparedScenario prepare_scenario(const Scenario& scenario) {
  PreparedScenario prepared{scenario,
                            field_polynomial(scenario.m),
                            nl::Netlist(),
                            {nl::Netlist(), {}, "k", {}},
                            nl::Netlist(),
                            {}};
  if (prepared.scenario.name.empty())
    prepared.scenario.name = scenario_name(scenario);
  const gf2m::Field field(prepared.truth);
  prepared.clean = generate_family(scenario.family, field);
  PassOptions options;
  options.seed = scenario.seed;
  prepared.obf = apply_stack(prepared.clean, scenario.passes, options);

  const std::vector<bool>& key = prepared.obf.key;
  if (scenario.explicit_key) {
    prepared.attack_key = *scenario.explicit_key;
    prepared.attack = apply_key(prepared.obf.netlist, prepared.attack_key,
                                prepared.obf.key_base);
    return prepared;
  }
  switch (scenario.key_mode) {
    case KeyMode::Correct:
      if (!key.empty()) prepared.attack_key = key;
      break;
    case KeyMode::Wrong:
      if (!key.empty()) prepared.attack_key = complement_key(key);
      break;
    case KeyMode::None:
    case KeyMode::Free:
      break;
  }
  prepared.attack = prepared.attack_key.empty()
                        ? prepared.obf.netlist
                        : apply_key(prepared.obf.netlist, prepared.attack_key,
                                    prepared.obf.key_base);
  return prepared;
}

bool CampaignReport::all_recovered() const {
  for (const ScenarioOutcome& outcome : outcomes)
    if (!outcome.recovered) return false;
  return true;
}

CampaignReport run_campaign(const std::vector<Scenario>& scenarios,
                            const CampaignOptions& options) {
  std::vector<PreparedScenario> prepared;
  prepared.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios)
    prepared.push_back(prepare_scenario(scenario));

  core::FlowOptions flow;
  flow.max_terms = options.max_terms;
  flow.verify_with_golden = options.verify_with_golden;

  std::vector<core::BatchJob> jobs;
  jobs.reserve(prepared.size() * 2);
  for (const PreparedScenario& p : prepared) {
    core::BatchJob attack;
    attack.name = p.scenario.name;
    attack.netlist = p.attack;
    attack.options = flow;
    jobs.push_back(std::move(attack));
    if (options.measure_clean) {
      core::BatchJob clean;
      clean.name = p.scenario.family + "_m" + std::to_string(p.scenario.m) +
                   "_clean";
      clean.netlist = p.clean;
      clean.options = flow;
      jobs.push_back(std::move(clean));
    }
  }

  core::BatchOptions batch;
  batch.threads = options.threads;
  batch.result_cache = options.result_cache;
  core::BatchReport report = core::run_batch(std::move(jobs), batch);

  CampaignReport campaign;
  campaign.stats = report.stats;
  campaign.wall_seconds = report.wall_seconds;
  const std::size_t stride = options.measure_clean ? 2 : 1;
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    const PreparedScenario& p = prepared[i];
    const core::BatchJobResult& attack = report.results[i * stride];
    ScenarioOutcome outcome;
    outcome.name = p.scenario.name;
    outcome.family = p.scenario.family;
    outcome.m = p.scenario.m;
    outcome.pass = to_string(p.scenario.passes);
    for (const PassSpec& spec : p.scenario.passes)
      outcome.strength += spec.strength;
    outcome.key_mode = to_string(
        p.obf.key.empty() ? KeyMode::None : p.scenario.key_mode);
    outcome.key_bits = p.obf.key.size();
    outcome.truth = p.truth;
    outcome.clean_equations = p.clean.num_equations();
    outcome.obf_equations = p.obf.netlist.num_equations();
    outcome.ok = attack.ok;
    outcome.recovered_p = attack.report.recovery.p;
    outcome.recovered = attack.ok && attack.report.recovery.p == p.truth;
    outcome.diagnosis =
        !attack.error.empty() ? attack.error : attack.report.recovery.diagnosis;
    outcome.seconds = attack.report.extraction.wall_seconds;
    outcome.peak_terms = attack.report.extraction.total_peak_terms;
    outcome.cache_hit = attack.cache_hit;
    if (options.measure_clean) {
      const core::BatchJobResult& clean = report.results[i * stride + 1];
      outcome.clean_peak_terms = clean.report.extraction.total_peak_terms;
      if (outcome.clean_peak_terms > 0)
        outcome.blowup = static_cast<double>(outcome.peak_terms) /
                         static_cast<double>(outcome.clean_peak_terms);
    }
    if (options.check_corruption && !p.obf.key.empty()) {
      Prng rng(p.scenario.seed ^ 0xc0ffee);
      const nl::Netlist wrong = apply_key(
          p.obf.netlist, complement_key(p.obf.key), p.obf.key_base);
      outcome.corrupts =
          sim::check_netlists_equal(p.clean, wrong, rng).has_value();
    }
    campaign.outcomes.push_back(std::move(outcome));
  }
  return campaign;
}

JsonLine outcome_json(const ScenarioOutcome& outcome) {
  JsonLine line;
  line.add("scenario", outcome.name)
      .add("family", outcome.family)
      .add("m", outcome.m)
      .add("pass", outcome.pass.empty() ? "clean" : outcome.pass)
      .add("strength", outcome.strength)
      .add("key_mode", outcome.key_mode)
      .add("key_bits", outcome.key_bits)
      .add("expected_p", outcome.truth.to_paper_string())
      .add("ok", outcome.ok)
      .add("recovered", outcome.recovered)
      .add("p", outcome.ok ? outcome.recovered_p.to_paper_string()
                           : std::string());
  if (!outcome.ok) line.add("diagnosis", outcome.diagnosis);
  if (outcome.corrupts) line.add("corrupts", *outcome.corrupts);
  line.add("equations", outcome.clean_equations)
      .add("obf_equations", outcome.obf_equations)
      .add("extract_seconds", outcome.seconds)
      .add("peak_terms", outcome.peak_terms)
      .add("clean_peak_terms", outcome.clean_peak_terms)
      .add("blowup", outcome.blowup)
      .add("cache_hit", outcome.cache_hit);
  return line;
}

}  // namespace gfre::obf
