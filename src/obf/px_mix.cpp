// P(x) mixing — decoy-polynomial reduction rows XORed into output bits.
//
// For a decoy irreducible Q(x) of degree m, a "reduction row" is
// support(x^k mod Q) for some k in [m, 2m-2] — exactly the shape of the
// true reduction network's rows, which is what makes the decoy plausible.
// Each selected output z is re-driven as z = z_raw ^ d ^ d', where d and
// d' are two structurally separate XOR gates over the RAW output nets of
// the row's tap bits (raw nets keep the construction acyclic even when
// taps land on other decoyed outputs).  d ^ d' = 0, so the function is
// unchanged and the true P(x) remains recoverable — but backward
// rewriting expands both decoy cones (most of the netlist each) before
// they cancel, so the attack's peak live-term count grows with strength.
#include <algorithm>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gf2poly/irreducible.hpp"
#include "obf/internal.hpp"

namespace gfre::obf::detail {
namespace {

/// Candidate decoys of degree m: NIST-convention default, every
/// irreducible trinomial, the first pentanomial, and reciprocals —
/// deduplicated and ordered so the seeded pick is deterministic.
std::vector<gf2::Poly> decoy_candidates(unsigned m) {
  std::vector<gf2::Poly> out;
  const auto push = [&](const gf2::Poly& p) {
    if (p.degree() != static_cast<int>(m)) return;
    for (const gf2::Poly& q : out)
      if (q == p) return;
    out.push_back(p);
  };
  push(gf2::default_irreducible(m));
  for (unsigned a : gf2::irreducible_trinomials(m)) push(gf2::Poly{m, a, 0});
  if (const auto penta = gf2::first_irreducible_pentanomial(m)) push(*penta);
  const std::size_t base = out.size();
  for (std::size_t i = 0; i < base; ++i) push(out[i].reciprocal());
  return out;
}

}  // namespace

nl::Netlist px_mix_pass(const nl::Netlist& src, unsigned strength,
                        const PassOptions& options, Prng& rng,
                        gf2::Poly* decoy_used) {
  using nl::CellType;
  using nl::Var;
  *decoy_used = gf2::Poly();
  const unsigned m = static_cast<unsigned>(src.outputs().size());
  if (m < 2) return src;

  gf2::Poly decoy = options.decoy;
  if (decoy.degree() != static_cast<int>(m)) {
    const std::vector<gf2::Poly> candidates = decoy_candidates(m);
    decoy = candidates[rng.next_below(candidates.size())];
  }

  // One decoy row per strength level: (output bit, row exponent k).
  struct Row {
    unsigned out_index;
    std::vector<unsigned> taps;  // bit indices < m, ascending
  };
  std::vector<Row> rows;
  for (unsigned r = 0; r < strength; ++r) {
    const unsigned out_index = static_cast<unsigned>(rng.next_below(m));
    const unsigned k = m + static_cast<unsigned>(
                               rng.next_below(m > 1 ? m - 1 : 1));
    if (src.is_input(src.outputs()[out_index])) continue;  // cannot re-drive
    Row row{out_index, {}};
    const gf2::Poly residue = gf2::Poly::monomial(k).mod(decoy);
    for (unsigned d : residue.support())
      if (d < m) row.taps.push_back(d);
    std::sort(row.taps.begin(), row.taps.end());
    // XOR gates need >= 2 operands; pad deterministically.
    for (unsigned pad = 0; row.taps.size() < 2 && pad < m; ++pad) {
      bool present = false;
      for (unsigned t : row.taps) present |= (t == pad);
      if (!present) row.taps.push_back(pad);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return src;
  *decoy_used = decoy;

  std::vector<unsigned> rows_on(m, 0);
  for (const Row& row : rows) ++rows_on[row.out_index];

  nl::Netlist out(src.name());
  std::vector<Var> map(src.num_vars());
  for (Var v : src.inputs()) map[v] = out.add_input(src.var_name(v));
  // Decoyed output gates keep their logic but surrender their name to the
  // final mix gate.
  std::unordered_map<Var, bool> decoyed;
  for (unsigned i = 0; i < m; ++i)
    if (rows_on[i] > 0) decoyed[src.outputs()[i]] = true;
  for (std::size_t g : src.topological_order()) {
    const nl::Gate& gate = src.gate(g);
    std::vector<Var> in;
    in.reserve(gate.inputs.size());
    for (Var v : gate.inputs) in.push_back(map[v]);
    const std::string& name = src.var_name(gate.output);
    map[gate.output] = out.add_gate(
        gate.type, std::move(in),
        decoyed.count(gate.output) ? name + "__raw" : name);
  }

  // Chain the decoy rows; taps always reference the raw output nets.
  //
  // The cancelling pair must NOT be two identical gates: backward
  // rewriting substitutes the last gates first, so d ^ d' over the same
  // operands cancels immediately and costs the attack nothing.  Instead
  // the second copy is an XOR over a CLONED sub-cone of each tap
  // (duplicated to 3*strength levels, bottoming out on shared nets).
  // The clones sit above the originals in topological order, so the
  // rewriter expands the duplicated region first and must carry it live
  // until the original tap expansion reaches the shared frontier and the
  // monomials cancel — the deeper the clones, the longer that window
  // overlaps the expensive partial-product layer, which is exactly the
  // measured peak-term blowup.
  std::vector<Var> current(m);
  std::vector<unsigned> emitted_on(m, 0);
  for (unsigned i = 0; i < m; ++i) current[i] = map[src.outputs()[i]];
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Row& row = rows[r];
    const std::string tag = std::to_string(r);
    std::unordered_map<Var, Var> clone_memo;
    std::size_t clone_tag = 0;
    const std::function<Var(Var, unsigned)> clone = [&](Var v,
                                                        unsigned depth) -> Var {
      if (src.is_input(v) || depth == 0) return map[v];
      const auto hit = clone_memo.find(v);
      if (hit != clone_memo.end()) return hit->second;
      const nl::Gate& gate = src.gate(*src.driver(v));
      std::vector<Var> in;
      in.reserve(gate.inputs.size());
      for (Var w : gate.inputs) in.push_back(clone(w, depth - 1));
      const Var c = out.add_gate(
          gate.type, std::move(in),
          "obf_mix" + tag + "_c" + std::to_string(clone_tag++));
      clone_memo.emplace(v, c);
      return c;
    };
    std::vector<Var> taps, taps_clone;
    taps.reserve(row.taps.size());
    taps_clone.reserve(row.taps.size());
    for (unsigned t : row.taps) {
      taps.push_back(map[src.outputs()[t]]);
      taps_clone.push_back(clone(src.outputs()[t], 3 * strength));
    }
    const Var d1 = out.add_gate(CellType::Xor, taps, "obf_mix" + tag + "a");
    const Var d2 =
        out.add_gate(CellType::Xor, taps_clone, "obf_mix" + tag + "b");
    const std::string& final_name = src.var_name(src.outputs()[row.out_index]);
    const bool last = ++emitted_on[row.out_index] == rows_on[row.out_index];
    current[row.out_index] = out.add_gate(
        CellType::Xor, {current[row.out_index], d1, d2},
        last ? final_name : final_name + "__mix" + tag);
  }
  for (unsigned i = 0; i < m; ++i) out.mark_output(current[i]);
  return out;
}

}  // namespace gfre::obf::detail
