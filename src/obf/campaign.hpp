// Campaign driver — the measured attacker.
//
// A Scenario names one cell of the obfuscation matrix: {family, m, pass
// stack, seed, key mode}.  prepare_scenario generates the clean twin,
// obfuscates it, and derives the netlist the attack actually sees
// (correct key applied / wrong key applied / key inputs left free).
// run_campaign pushes every attack — and its clean twin, for the blowup
// baseline — through the batch scheduler as in-memory jobs, so identical
// clean twins across scenarios deduplicate via content-hash memoization
// and an optional persistent ResultCache warms across runs, exactly like
// the production serving tier.  Outcomes render to one shared JSONL
// schema (outcome_json) used by examples/obfuscated_recovery.cpp,
// examples/fault_injection.cpp and bench/bench_ablation_obfuscation.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch.hpp"
#include "gf2m/field.hpp"
#include "gf2poly/gf2_poly.hpp"
#include "obf/passes.hpp"
#include "util/jsonl.hpp"

namespace gfre::obf {

/// How the attack treats the key inputs of a key-gated netlist.
enum class KeyMode {
  None,     ///< no key gates in the stack; attack the netlist as-is
  Correct,  ///< apply the correct key (de-obfuscate) before attacking
  Wrong,    ///< apply the complement key — every key gate inverts
  Free,     ///< leave key inputs as extra primary inputs (oracle-free)
};

const char* to_string(KeyMode mode);
std::optional<KeyMode> key_mode_from_name(std::string_view name);

/// Families the campaign can generate ("mastrovito", "montgomery",
/// "karatsuba", "shiftadd").
const std::vector<std::string>& campaign_families();

/// Generates one family instance over `field`.  Throws InvalidArgument
/// for unknown family names.
nl::Netlist generate_family(const std::string& family,
                            const gf2m::Field& field);

/// The campaign's ground-truth P(x) for width m: the paper catalog's
/// polynomial when listed, else the NIST-convention default.
gf2::Poly field_polynomial(unsigned m);

struct Scenario {
  std::string name;  ///< label; auto-derived when empty
  std::string family = "mastrovito";
  unsigned m = 8;
  std::vector<PassSpec> passes;
  std::uint64_t seed = 1;
  KeyMode key_mode = KeyMode::Correct;
  /// Explicit key bits to apply instead of the key_mode policy.
  std::optional<std::vector<bool>> explicit_key;
};

/// Deterministic scenario label:
/// "<family>_m<m>_<stack>_s<seed>_<keymode>" ('+' and ':' flattened).
std::string scenario_name(const Scenario& scenario);

struct PreparedScenario {
  Scenario scenario;
  gf2::Poly truth;          ///< true field polynomial
  nl::Netlist clean;        ///< unobfuscated twin
  ObfuscationResult obf;    ///< obfuscated netlist + correct key + decoy
  nl::Netlist attack;       ///< what the flow is run on
  std::vector<bool> attack_key;  ///< key folded into `attack` (may be empty)
};

PreparedScenario prepare_scenario(const Scenario& scenario);

struct ScenarioOutcome {
  std::string name;
  std::string family;
  unsigned m = 0;
  std::string pass;      ///< canonical stack string ("keygate:2+pxmix:1")
  unsigned strength = 0; ///< summed stack strength
  std::string key_mode;
  std::size_t key_bits = 0;
  gf2::Poly truth;
  std::size_t clean_equations = 0;
  std::size_t obf_equations = 0;
  bool ok = false;         ///< flow succeeded end to end
  bool recovered = false;  ///< ok and recovered P(x) == truth
  gf2::Poly recovered_p;
  std::string diagnosis;   ///< load error or recovery diagnosis when !ok
  /// Wrong-key simulation verdict (set only for key-gated scenarios when
  /// CampaignOptions::check_corruption): true when the complement key
  /// provably changes outputs.
  std::optional<bool> corrupts;
  double seconds = 0.0;          ///< attack extraction wall time
  std::size_t peak_terms = 0;    ///< attack total_peak_terms
  std::size_t clean_peak_terms = 0;
  double blowup = 0.0;  ///< peak_terms / clean_peak_terms (term budget)
  bool cache_hit = false;
};

struct CampaignOptions {
  unsigned threads = 1;
  std::size_t max_terms = 2000000;
  bool verify_with_golden = true;
  /// Also run every clean twin through the flow (memo-deduplicated) so
  /// outcomes carry the blowup baseline.
  bool measure_clean = true;
  /// Simulate the complement key against the clean twin for key-gated
  /// scenarios (fills ScenarioOutcome::corrupts).
  bool check_corruption = true;
  std::shared_ptr<core::ResultCache> result_cache;
};

struct CampaignReport {
  std::vector<ScenarioOutcome> outcomes;  ///< one per scenario, in order
  core::BatchStats stats;
  double wall_seconds = 0.0;

  bool all_recovered() const;
};

/// Runs every scenario (attack + clean twin) through one shared batch
/// scheduler.  Throws InvalidArgument for malformed scenarios (unknown
/// family, key bits without key inputs); per-attack flow failures land in
/// the outcome, never throw.
CampaignReport run_campaign(const std::vector<Scenario>& scenarios,
                            const CampaignOptions& options = {});

/// The shared JSONL schema for one scenario outcome.
JsonLine outcome_json(const ScenarioOutcome& outcome);

}  // namespace gfre::obf
