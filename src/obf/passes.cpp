// Pass-suite plumbing: names, stack parsing, dispatch, key utilities.
#include "obf/passes.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "obf/internal.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace gfre::obf {

const char* to_string(PassKind kind) {
  switch (kind) {
    case PassKind::KeyGates:
      return "keygate";
    case PassKind::PxMix:
      return "pxmix";
    case PassKind::Rewrite:
      return "rewrite";
    case PassKind::FaultStuckAt:
      return "stuckat";
    case PassKind::FaultFlip:
      return "flip";
  }
  return "?";
}

std::optional<PassKind> pass_from_name(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  for (PassKind kind :
       {PassKind::KeyGates, PassKind::PxMix, PassKind::Rewrite,
        PassKind::FaultStuckAt, PassKind::FaultFlip}) {
    if (lower == to_string(kind)) return kind;
  }
  return std::nullopt;
}

bool semantics_preserving(PassKind kind) {
  switch (kind) {
    case PassKind::KeyGates:
    case PassKind::PxMix:
    case PassKind::Rewrite:
      return true;
    case PassKind::FaultStuckAt:
    case PassKind::FaultFlip:
      return false;
  }
  return false;
}

std::string to_string(const std::vector<PassSpec>& stack) {
  std::string out;
  for (const PassSpec& spec : stack) {
    if (!out.empty()) out.push_back('+');
    out += to_string(spec.kind);
    out.push_back(':');
    out += std::to_string(spec.strength);
  }
  return out;
}

std::vector<PassSpec> parse_pass_stack(const std::string& text,
                                       unsigned default_strength) {
  std::vector<PassSpec> stack;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, '+')) {
    if (item.empty())
      throw InvalidArgument("empty pass in stack '" + text + "'");
    std::string name = item;
    unsigned strength = default_strength;
    const std::size_t colon = item.find(':');
    if (colon != std::string::npos) {
      name = item.substr(0, colon);
      const std::string digits = item.substr(colon + 1);
      if (digits.empty()) throw InvalidArgument("bad pass spec '" + item + "'");
      for (char c : digits)
        if (!std::isdigit(static_cast<unsigned char>(c)))
          throw InvalidArgument("bad pass strength in '" + item + "'");
      strength = static_cast<unsigned>(std::stoul(digits));
    }
    const std::optional<PassKind> kind = pass_from_name(name);
    if (!kind) throw InvalidArgument("unknown obfuscation pass '" + name + "'");
    stack.push_back({*kind, strength});
  }
  if (stack.empty()) throw InvalidArgument("empty pass stack '" + text + "'");
  return stack;
}

ObfuscationResult apply_pass(const nl::Netlist& netlist, PassKind kind,
                             unsigned strength, const PassOptions& options) {
  ObfuscationResult result{netlist, {}, options.key_base, {}};
  if (strength == 0) return result;
  Prng rng(options.seed);
  switch (kind) {
    case PassKind::KeyGates:
      result = detail::key_gate_pass(netlist, strength, options, rng);
      break;
    case PassKind::PxMix:
      result.netlist =
          detail::px_mix_pass(netlist, strength, options, rng, &result.decoy);
      break;
    case PassKind::Rewrite:
      result.netlist = detail::rewrite_pass(netlist, strength, rng);
      break;
    case PassKind::FaultStuckAt:
    case PassKind::FaultFlip:
      result.netlist = detail::fault_pass(netlist, kind, strength, rng);
      break;
  }
  return result;
}

ObfuscationResult apply_stack(const nl::Netlist& netlist,
                              const std::vector<PassSpec>& stack,
                              const PassOptions& options) {
  ObfuscationResult acc{netlist, {}, options.key_base, {}};
  unsigned pass_index = 0;
  for (const PassSpec& spec : stack) {
    PassOptions per_pass = options;
    // Derive an independent seed per pass position so reordering a stack
    // reorders every random choice, not just the pass order.
    per_pass.seed = options.seed ^
                    (0x9e3779b97f4a7c15ull * (pass_index + 1)) ^
                    (static_cast<std::uint64_t>(spec.kind) << 32);
    per_pass.first_key_index =
        options.first_key_index + static_cast<unsigned>(acc.key.size());
    ObfuscationResult step =
        apply_pass(acc.netlist, spec.kind, spec.strength, per_pass);
    acc.netlist = std::move(step.netlist);
    acc.key.insert(acc.key.end(), step.key.begin(), step.key.end());
    if (!step.decoy.is_zero()) acc.decoy = step.decoy;
    ++pass_index;
  }
  return acc;
}

std::vector<bool> complement_key(const std::vector<bool>& key) {
  std::vector<bool> out(key.size());
  for (std::size_t i = 0; i < key.size(); ++i) out[i] = !key[i];
  return out;
}

std::string render_key(const std::vector<bool>& key) {
  std::string out;
  out.reserve(key.size());
  for (bool bit : key) out.push_back(bit ? '1' : '0');
  return out;
}

std::vector<bool> parse_key(const std::string& text) {
  std::vector<bool> key;
  key.reserve(text.size());
  for (char c : text) {
    if (c != '0' && c != '1')
      throw InvalidArgument("key must be a 0/1 string, got '" + text + "'");
    key.push_back(c == '1');
  }
  return key;
}

std::vector<bool> read_key_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot read key file " + path);
  std::string line;
  while (std::getline(is, line)) {
    std::string trimmed;
    for (char c : line)
      if (!std::isspace(static_cast<unsigned char>(c))) trimmed.push_back(c);
    if (!trimmed.empty()) return parse_key(trimmed);
  }
  throw Error("key file " + path + " is empty");
}

void write_key_file(const std::vector<bool>& key, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  os << render_key(key) << "\n";
  if (!os) throw Error("cannot write key file " + path);
}

}  // namespace gfre::obf
