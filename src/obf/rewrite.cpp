// Arithmetic/structural rewriting — hides the generator's shape without
// changing the function.
//
//   strength 1: the Table III synthesis pipeline (XOR sharing + AOI/OAI
//               remapping), i.e. what an attacker meets after ABC.
//   strength 2: + NAND/NOR technology mapping and a second AOI fusion
//               over the mapped structure.
//   strength 3+: + seeded INV-pair stacks and gate duplication with
//               fanout splitting — redundant structure the flow has to
//               rewrite through (the opt/ passes would cancel it; the
//               attack deliberately does not get to run them).
#include <algorithm>
#include <string>
#include <vector>

#include "obf/internal.hpp"
#include "opt/passes.hpp"

namespace gfre::obf::detail {
namespace {

/// Distinct topo positions, ascending (partial Fisher-Yates).
std::vector<std::size_t> pick_positions(std::size_t n, std::size_t count,
                                        Prng& rng) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  count = std::min(count, n);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.next_below(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  std::sort(all.begin(), all.end());
  return all;
}

/// Seeded redundancy: INV-INV stacks after selected gates and duplicated
/// gates whose later fanout is split at random between the original and
/// the clone.
nl::Netlist add_redundancy(const nl::Netlist& src, unsigned levels,
                           Prng& rng) {
  using nl::CellType;
  using nl::Var;
  if (src.num_gates() == 0) return src;
  const std::vector<std::size_t> topo = src.topological_order();
  const std::size_t per_kind = static_cast<std::size_t>(levels) *
                               std::max<std::size_t>(1, topo.size() / 16);
  const std::vector<std::size_t> inv_pos =
      pick_positions(topo.size(), per_kind, rng);
  const std::vector<std::size_t> dup_pos =
      pick_positions(topo.size(), per_kind, rng);
  std::vector<unsigned char> is_inv(topo.size(), 0), is_dup(topo.size(), 0);
  for (std::size_t p : inv_pos) is_inv[p] = 1;
  for (std::size_t p : dup_pos) is_dup[p] = 1;

  nl::Netlist out(src.name());
  std::vector<Var> map(src.num_vars());
  std::vector<Var> clone_of(src.num_vars(), 0);
  std::vector<unsigned char> has_clone(src.num_vars(), 0);
  for (Var v : src.inputs()) map[v] = out.add_input(src.var_name(v));
  std::size_t tag = 0;
  for (std::size_t pos = 0; pos < topo.size(); ++pos) {
    const nl::Gate& gate = src.gate(topo[pos]);
    std::vector<Var> in;
    in.reserve(gate.inputs.size());
    for (Var v : gate.inputs)
      in.push_back(has_clone[v] && rng.next_bool() ? clone_of[v] : map[v]);
    const std::string& name = src.var_name(gate.output);
    const std::string id = std::to_string(tag++);
    Var mapped;
    if (is_inv[pos]) {
      const Var base =
          out.add_gate(gate.type, in, name + "__obfb" + id);
      const Var neg =
          out.add_gate(CellType::Inv, {base}, "obf_inv" + id);
      mapped = out.add_gate(CellType::Inv, {neg}, name);
    } else {
      mapped = out.add_gate(gate.type, in, name);
    }
    if (is_dup[pos]) {
      clone_of[gate.output] =
          out.add_gate(gate.type, std::move(in), "obf_dup" + id);
      has_clone[gate.output] = 1;
    }
    map[gate.output] = mapped;
  }
  for (Var v : src.outputs()) out.mark_output(map[v]);
  return out;
}

}  // namespace

nl::Netlist rewrite_pass(const nl::Netlist& src, unsigned strength,
                         Prng& rng) {
  nl::Netlist current = opt::synthesize(src);
  if (strength >= 2) current = opt::map_aoi(opt::tech_map(current));
  if (strength >= 3) current = add_redundancy(current, strength - 2, rng);
  return current;
}

}  // namespace gfre::obf::detail
