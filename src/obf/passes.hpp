// Obfuscation pass suite — the defense side of the attack/defense campaign.
//
// Yu & Holcomb's sequel paper ("Algorithmic Obfuscation over GF(2^m)",
// arXiv:1809.06207) obfuscates exactly the multipliers this library
// reverse-engineers.  This module reproduces the defenses as deterministic,
// seeded, composable netlist passes so the flow can be measured attacking
// them:
//
//   keygate  — XOR/XNOR key-gate insertion.  Each selected internal net t
//              is renamed t__pre<i> and re-driven through a key gate
//              XOR(t__pre<i>, k<i>) (or XNOR).  The correct key bit (0 for
//              XOR, 1 for XNOR) makes the gate a pass-through; any wrong
//              bit inverts the net, which corrupts outputs (proved by
//              simulation in the tests) and makes the ANF non-bilinear.
//   pxmix    — P(x) mixing.  Selected output bits are re-expressed as
//              z = z_raw ^ d ^ d', where d and d' are two structurally
//              SEPARATE copies of a reduction row of a decoy irreducible
//              polynomial Q(x) != P(x) (taps = support(x^k mod Q)).
//              Semantics are untouched (d ^ d' = 0) but backward rewriting
//              must expand both decoy cones before they cancel, so the
//              attack's peak term count — the max_terms budget — grows
//              with strength.  The true field stays recoverable; the cost
//              of recovering it is what the bench measures.
//   rewrite  — arithmetic/structural rewriting via the opt/ passes:
//              XOR sharing + AOI/OAI remapping (strength 1), NAND/NOR tech
//              mapping (strength 2), plus seeded INV-pair stacks and gate
//              duplication with fanout splitting (strength >= 3).
//              Semantics-preserving; hides the generator's structure.
//   stuckat  — fault injection: `strength` gate input pins tied to a
//              seeded constant.  NOT semantics-preserving — the flow must
//              diagnose, not recover.
//   flip     — fault injection: `strength` gates replaced by a different
//              same-arity cell.  NOT semantics-preserving.
//
// Contracts the tests pin down:
//   * strength 0 is the identity for every pass (bit-identical netlist);
//   * same (pass, strength, seed) emits a byte-identical netlist across
//     runs and thread counts;
//   * apply_key with the correct key is the EXACT inverse of keygate
//     insertion: the de-obfuscated netlist is content-hash-identical to
//     the clean twin, so its FlowReport is bit-identical too.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gf2poly/gf2_poly.hpp"
#include "netlist/netlist.hpp"

namespace gfre::obf {

enum class PassKind {
  KeyGates,
  PxMix,
  Rewrite,
  FaultStuckAt,
  FaultFlip,
};

/// Canonical lower-case pass name ("keygate", "pxmix", "rewrite",
/// "stuckat", "flip").
const char* to_string(PassKind kind);

/// Inverse of to_string (case-insensitive).
std::optional<PassKind> pass_from_name(std::string_view name);

/// True for passes that never change the netlist's Boolean function
/// (keygate counts: with the correct key applied it is the identity).
bool semantics_preserving(PassKind kind);

/// One pass application in a stack.
struct PassSpec {
  PassKind kind = PassKind::KeyGates;
  unsigned strength = 1;
};

/// Renders "keygate:2" / "keygate:2+pxmix:1" (always with strengths).
std::string to_string(const std::vector<PassSpec>& stack);

/// Parses a '+'-separated pass stack: "keygate", "keygate:2+pxmix:1".
/// A spec without ":N" gets `default_strength`.  Throws InvalidArgument
/// on unknown pass names or malformed strengths.
std::vector<PassSpec> parse_pass_stack(const std::string& text,
                                       unsigned default_strength = 1);

struct PassOptions {
  /// Seed for every random choice (sites, key-gate polarity, decoy rows,
  /// duplication fanout splits).  Same seed => byte-identical output.
  std::uint64_t seed = 1;
  /// Key input base name: key i is a primary input `<key_base><i>`.
  std::string key_base = "k";
  /// First key index to allocate (apply_stack threads this so stacked
  /// keygate passes share one contiguous key vector k0..k{K-1}).
  unsigned first_key_index = 0;
  /// pxmix: explicit decoy polynomial.  Zero (default) = pick a seeded
  /// irreducible decoy of degree m distinct from the likely true P.
  gf2::Poly decoy;
};

struct ObfuscationResult {
  nl::Netlist netlist;
  /// Correct key bits appended by keygate passes (empty otherwise),
  /// key[i] belongs to input `<key_base><first_key_index + i>`.
  std::vector<bool> key;
  std::string key_base = "k";
  /// pxmix: the decoy polynomial actually used (zero when none).
  gf2::Poly decoy;
};

/// Applies one pass.  strength 0 returns the input unchanged (and an
/// empty key).  Deterministic in (netlist, kind, strength, options).
ObfuscationResult apply_pass(const nl::Netlist& netlist, PassKind kind,
                             unsigned strength,
                             const PassOptions& options = {});

/// Applies a stack left to right, concatenating key vectors (key indices
/// continue across keygate passes) and deriving per-pass seeds from
/// options.seed so reordering a stack changes every choice.
ObfuscationResult apply_stack(const nl::Netlist& netlist,
                              const std::vector<PassSpec>& stack,
                              const PassOptions& options = {});

/// Folds the key inputs of a key-gated netlist away under a concrete key
/// assignment: pass-through key gates (bit matches the gate's polarity)
/// disappear and the pre-insertion net name is restored; inverting key
/// gates become INV cells.  With the correct key this is the exact
/// inverse of insertion — the result is content-hash-identical to the
/// netlist before the keygate pass.  Keys longer than the number of key
/// inputs are rejected (InvalidArgument); extra netlist inputs that do
/// not look like keys are left alone.
nl::Netlist apply_key(const nl::Netlist& keyed, const std::vector<bool>& key,
                      const std::string& key_base = "k",
                      unsigned first_key_index = 0);

/// The all-bits-flipped key: every key gate inverts, guaranteeing
/// corruption whenever any key gate sits in an output cone.
std::vector<bool> complement_key(const std::vector<bool>& key);

/// "0101..." rendering (empty string for an empty key).
std::string render_key(const std::vector<bool>& key);

/// Parses a "0101..." key string.  Throws InvalidArgument on anything
/// but 0/1 characters.
std::vector<bool> parse_key(const std::string& text);

/// Reads a key file: first non-empty line, whitespace trimmed, parsed
/// with parse_key.  Throws Error when unreadable.
std::vector<bool> read_key_file(const std::string& path);

/// Writes `render_key(key)` plus newline.  Throws Error on failure.
void write_key_file(const std::vector<bool>& key, const std::string& path);

}  // namespace gfre::obf
