// Fixed-size thread pool used for Theorem-2 parallel per-output-bit
// extraction.  The paper runs "in n threads" (16 on their Xeon); we expose
// the thread count as a parameter so the same experiments scale to any
// machine.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gfre {

/// Simple work-queue thread pool.  Tasks are std::function<void()>; submit()
/// returns a future for completion/exception propagation.
class ThreadPool {
 public:
  /// Creates `n` worker threads (n >= 1).  n == 1 still uses a worker
  /// thread, which keeps per-thread timing uniform across configurations.
  explicit ThreadPool(std::size_t n);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  The returned future rethrows any exception the task
  /// raised.
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t size() const { return workers_.size(); }

  /// Run `count` indexed tasks (fn(0..count-1)) across the pool and wait
  /// for ALL of them to finish — even when some throw.  The first exception
  /// (lowest index) is stashed as a std::exception_ptr and rethrown only
  /// after every task has completed, so `fn` is never destroyed while a
  /// worker still references it and a throwing task can never escalate to
  /// std::terminate.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Reasonable default worker count for this machine.
  static std::size_t default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gfre
