// Byte-level helpers shared by the report serializer (core/report_io.cpp),
// the persistent result cache (core/result_cache.cpp) and the batch
// netlist loader (core/scheduler.cpp): little-endian fixed-width wire
// encoding, and a whole-file slurp.
//
// The wire helpers exist in exactly one place so the on-disk formats that
// embed them (docs/CACHE_FORMAT.md) cannot drift between writers and
// readers.  All are pure; thread-safe trivially.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

namespace gfre::util {

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

/// Callers guarantee at least 4/8 readable bytes at `p`.
inline std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t{static_cast<std::uint8_t>(p[i])} << (8 * i);
  }
  return v;
}

inline std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{static_cast<std::uint8_t>(p[i])} << (8 * i);
  }
  return v;
}

/// Reads a whole file into `*out` (binary).  Returns false — rather than
/// throwing — when the file cannot be opened or a read fails; callers
/// with a throwing contract wrap it.
inline bool read_file_to_string(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->clear();
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    out->append(buf, static_cast<std::size_t>(in.gcount()));
  }
  return !in.bad();
}

}  // namespace gfre::util
