// Process memory metering.
//
// The paper reports peak memory per extraction (Tables I-IV).  On Linux we
// read VmRSS / VmHWM from /proc/self/status; on other platforms the calls
// return 0 and the harness falls back to the engine's internal live-monomial
// high-water estimate.
#pragma once

#include <cstdint>
#include <string>

namespace gfre {

/// Current resident set size in bytes (0 if unavailable).
std::uint64_t current_rss_bytes();

/// Peak resident set size (high-water mark) in bytes (0 if unavailable).
std::uint64_t peak_rss_bytes();

/// Render a byte count the way the paper's tables do ("37 MB", "4.5 GB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace gfre
