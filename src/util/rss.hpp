// Process memory metering.
//
// The paper reports peak memory per extraction (Tables I-IV).  On Linux we
// read VmRSS / VmHWM from /proc/self/status; on other platforms the calls
// return 0 and the harness falls back to the engine's internal live-monomial
// high-water estimate.
#pragma once

#include <cstdint>
#include <string>

namespace gfre {

/// Current resident set size in bytes (0 if unavailable).
std::uint64_t current_rss_bytes();

/// Peak resident set size (high-water mark) in bytes (0 if unavailable).
std::uint64_t peak_rss_bytes();

/// Reset the kernel's peak-RSS high-water mark to the current RSS, so the
/// next peak_rss_bytes() reading covers only work done after this call
/// (Linux: write "5" to /proc/self/clear_refs).  Returns false when the
/// platform does not support resetting; the mark then stays monotonic and
/// peak_rss_bytes() remains a process-lifetime upper bound.
bool reset_peak_rss();

/// Render a byte count the way the paper's tables do ("37 MB", "4.5 GB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace gfre
