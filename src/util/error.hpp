// Error handling primitives for the gfre library.
//
// The library reports unrecoverable usage/input errors with exceptions
// derived from gfre::Error, and guards internal invariants with
// GFRE_ASSERT (enabled in all build types: the algebra engine is the
// product, so invariant checking is never compiled out).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gfre {

/// Base class of every exception thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input file / unparseable netlist.  Diagnostics carry the
/// source position: "file:line: msg", or "file:line:col: msg" when the
/// frontend knows the column (column 0 means "unknown/whole line").
class ParseError : public Error {
 public:
  ParseError(const std::string& file, int line, const std::string& msg)
      : Error(file + ":" + std::to_string(line) + ": " + msg),
        file_(file),
        line_(line) {}

  ParseError(const std::string& file, int line, int column,
             const std::string& msg)
      : Error(file + ":" + std::to_string(line) + ":" +
              std::to_string(column) + ": " + msg),
        file_(file),
        line_(line),
        column_(column) {}

  const std::string& file() const { return file_; }
  int line() const { return line_; }
  /// 1-based column, or 0 when the diagnostic is line-granular.
  int column() const { return column_; }

 private:
  std::string file_;
  int line_;
  int column_ = 0;
};

/// A request that is structurally invalid (bad degree, unknown cell, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* cond, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace gfre

/// Invariant check; active in every build type.
#define GFRE_ASSERT(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream gfre_assert_oss_;                              \
      gfre_assert_oss_ << msg; /* NOLINT */                             \
      ::gfre::detail::assert_fail(#cond, __FILE__, __LINE__,            \
                                  gfre_assert_oss_.str());              \
    }                                                                   \
  } while (false)
