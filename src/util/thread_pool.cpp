#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gfre {

ThreadPool::ThreadPool(std::size_t n) {
  GFRE_ASSERT(n >= 1, "thread pool needs at least one worker");
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futs.push_back(submit([i, &fn] { fn(i); }));
  }
  // Drain every future before surfacing any failure: tasks capture `fn` by
  // reference, so returning (by throw) while workers still run would leave
  // them calling a destroyed function.  The first failure is stashed and
  // rethrown once the whole range has completed.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}

}  // namespace gfre
