// Lightweight wall-clock timing used by the extraction engine and the
// benchmark harnesses (per-output-bit runtimes of Figure 4, total runtimes
// of Tables I-IV).
#pragma once

#include <chrono>
#include <cstdint>

namespace gfre {

/// Monotonic stopwatch. Started on construction; restart with reset().
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  double micros() const { return seconds() * 1e6; }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gfre
