#include "util/options.hpp"

#include <cstdlib>

#include "util/thread_pool.hpp"

namespace gfre {

bool full_scale_requested() {
  const char* v = std::getenv("GFRE_FULL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::size_t configured_threads() {
  const long n = env_long("GFRE_THREADS", 0);
  if (n > 0) return static_cast<std::size_t>(n);
  return ThreadPool::default_threads();
}

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

}  // namespace gfre
