// Deterministic PRNG for simulation vectors and property tests.
//
// splitmix64 seeding + xoshiro256** generation: fast, reproducible across
// platforms, and independent of libstdc++'s unspecified distributions.
#pragma once

#include <cstdint>

namespace gfre {

/// xoshiro256** seeded via splitmix64.  Deterministic for a given seed.
class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).  n must be nonzero.
  std::uint64_t next_below(std::uint64_t n) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = n * ((~0ull) / n);
    std::uint64_t x;
    do {
      x = next_u64();
    } while (x >= limit);
    return x % n;
  }

  bool next_bool() { return (next_u64() & 1ull) != 0; }

  /// Uniform double in [0,1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace gfre
