#include "util/rss.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gfre {

namespace {

// Parse a "Vm...:   1234 kB" line from /proc/self/status.
std::uint64_t read_status_kb(const std::string& key) {
  std::ifstream in("/proc/self/status");
  if (!in) return 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) == 0) {
      std::istringstream iss(line.substr(key.size()));
      std::uint64_t kb = 0;
      iss >> kb;
      return kb;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t current_rss_bytes() { return read_status_kb("VmRSS:") * 1024; }

std::uint64_t peak_rss_bytes() { return read_status_kb("VmHWM:") * 1024; }

bool reset_peak_rss() {
  std::ofstream out("/proc/self/clear_refs");
  if (!out) return false;
  out << "5\n";
  out.flush();
  return out.good();
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof buf, "%.1f GB", b / double(1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof buf, "%.0f MB", b / double(1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof buf, "%.0f KB", b / double(1ull << 10));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace gfre
