// SHA-256 (FIPS 180-4), vendored.
//
// The batch engine's in-memory memoization key is a fast 128-bit
// multiply-xor pair — accident-proof, not adversary-proof (an attacker who
// can choose netlist bytes could construct a colliding pair and poison a
// shared cache with another tenant's report).  Anything that persists
// results across processes therefore keys on SHA-256 instead
// (core/result_cache.hpp), and the same digest authenticates each cache
// entry's payload against on-disk corruption.
//
// This is a from-scratch implementation of the public FIPS 180-4
// specification — no external dependency, no platform intrinsics — small
// enough to audit in one sitting.  Throughput is irrelevant here: the
// cache hashes kilobyte netlists in front of second-long extractions.
// Thread safety: distinct Sha256 instances are independent; one instance
// must not be shared across threads without external synchronization.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gfre::util {

/// Streaming SHA-256: update() any number of times, then digest() once.
class Sha256 {
 public:
  using Digest = std::array<std::uint8_t, 32>;

  Sha256() { reset(); }

  /// Restores the initial state; the instance is reusable afterwards.
  void reset();

  /// Absorbs `n` bytes.  Must not be called after digest().
  void update(const void* data, std::size_t n);
  void update(std::string_view bytes) { update(bytes.data(), bytes.size()); }

  /// Appends a 64-bit value in little-endian framing — the convenience the
  /// cache-key derivation uses for length prefixes and integer fields.
  void update_u64(std::uint64_t v);

  /// Length-prefixed string framing (u64 length, then the bytes), so
  /// adjacent fields can never alias ("ab"+"c" vs "a"+"bc").
  void update_str(std::string_view s);

  /// Finalizes (pads, appends the bit length) and returns the 32-byte
  /// digest.  The instance is spent until reset().
  Digest digest();

  /// One-shot digest of a byte buffer.
  static Digest of(std::string_view bytes);

  /// Lower-case hex rendering (64 characters).
  static std::string hex(const Digest& digest);

 private:
  void compress(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
};

}  // namespace gfre::util
