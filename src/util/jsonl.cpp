#include "util/jsonl.hpp"

#include <charconv>

#include "util/error.hpp"

namespace gfre {

namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

JsonLine& JsonLine::add(const std::string& key, const std::string& value) {
  // Built with += (not operator+ chains): gcc 12's -Wrestrict false-fires
  // on `"lit" + std::string&&` at -O2 (PR 105651).
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted += '"';
  quoted += escape(value);
  quoted += '"';
  fields_.emplace_back(key, std::move(quoted));
  return *this;
}

JsonLine& JsonLine::add(const std::string& key, double value) {
  // Shortest round-trip-exact rendering: strtod(render()) == value bit for
  // bit.  The previous "%.9g" silently dropped up to 24 mantissa bits, so
  // timings re-read from a JSONL report disagreed with the run that wrote
  // them.  (Like %g, this emits "inf"/"nan" for non-finite values — not
  // JSON, but the engine never reports those.)
  char buf[64];
  const auto out = std::to_chars(buf, buf + sizeof buf, value);
  fields_.emplace_back(key, std::string(buf, out.ptr));
  return *this;
}

JsonLine& JsonLine::add(const std::string& key, std::size_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonLine& JsonLine::add(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

std::string JsonLine::render() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    out += escape(fields_[i].first);
    out += "\": ";
    out += fields_[i].second;
  }
  out += "}";
  return out;
}

JsonlWriter::JsonlWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    throw Error("cannot open '" + path + "' for writing");
  }
}

JsonlWriter::~JsonlWriter() { close(); }

void JsonlWriter::write(const JsonLine& line) {
  write_raw(line.render());
}

void JsonlWriter::write_raw(const std::string& line) {
  if (file_ == nullptr) {
    ok_ = false;
    return;
  }
  if (std::fprintf(file_, "%s\n", line.c_str()) < 0) {
    ok_ = false;
    return;
  }
  ++lines_;
}

void JsonlWriter::close() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0) ok_ = false;
    file_ = nullptr;
  }
}

}  // namespace gfre
