// Plain-text table rendering used by the benchmark harnesses to print the
// paper's tables (Tables I-IV) in the same row/column layout.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gfre {

/// Column-aligned ASCII table with a header row and optional title.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; the row must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column alignment, a separator under the header, and an
  /// optional title line.
  std::string render(const std::string& title = "") const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string fmt_double(double v, int decimals);
std::string fmt_int(long long v);
/// 1628170 -> "1,628,170" (the paper prints thousand separators in #eqns).
std::string fmt_thousands(unsigned long long v);

}  // namespace gfre
