// JSON-lines report writer.
//
// Batch runs emit one flat JSON object per job (newline-delimited JSON),
// the format log pipelines and `jq` consume natively — a 10,000-job report
// streams line by line instead of materializing one giant document.  No
// external JSON dependency: records are flat key -> scalar maps, rendered
// with the same escaping rules as bench/bench_json.hpp.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace gfre {

/// One flat JSON object: insertion-ordered key -> scalar fields.
class JsonLine {
 public:
  JsonLine& add(const std::string& key, const std::string& value);
  JsonLine& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  JsonLine& add(const std::string& key, double value);
  JsonLine& add(const std::string& key, std::size_t value);
  JsonLine& add(const std::string& key, unsigned value) {
    return add(key, static_cast<std::size_t>(value));
  }
  JsonLine& add(const std::string& key, bool value);

  /// Renders "{...}" (no trailing newline).
  std::string render() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Appending newline-delimited JSON writer.  Throws Error when the file
/// cannot be opened; write failures surface on close()/destruction via
/// ok().
class JsonlWriter {
 public:
  /// Opens `path` for writing (truncates).
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter();

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  /// Writes one record as a single line.
  void write(const JsonLine& line);

  /// Writes an already-rendered record verbatim (plus the newline).  Used
  /// when the bytes must match another writer's output exactly — e.g.
  /// gfre_client relaying report lines the workers rendered.
  void write_raw(const std::string& line);

  /// Flushes and closes.  Safe to call more than once.
  void close();

  /// True while every write has succeeded.
  bool ok() const { return ok_; }

  std::size_t lines_written() const { return lines_; }

 private:
  std::FILE* file_ = nullptr;
  bool ok_ = true;
  std::size_t lines_ = 0;
};

}  // namespace gfre
