// Benchmark/example configuration shared across harness binaries.
//
// The paper's experiments ran 16 threads on a 12-core Xeon with 32 GB; this
// container is much smaller, so benches default to scaled bit-widths and
// hardware-concurrency threads, and GFRE_FULL=1 selects the paper's full
// problem sizes.
#pragma once

#include <cstddef>
#include <string>

namespace gfre {

/// True when the environment requests the paper's full problem sizes
/// (GFRE_FULL=1).
bool full_scale_requested();

/// Thread count for parallel extraction: GFRE_THREADS if set, else hardware
/// concurrency.
std::size_t configured_threads();

/// Integer environment variable with default.
long env_long(const char* name, long fallback);

/// String environment variable with default.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace gfre
