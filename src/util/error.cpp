#include "util/error.hpp"

#include <cstdlib>
#include <iostream>

namespace gfre::detail {

[[noreturn]] void assert_fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream oss;
  oss << "GFRE_ASSERT failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  // Throwing (rather than aborting) lets tests exercise failure paths and
  // lets the CLI report a clean diagnostic for corrupt inputs.
  throw Error(oss.str());
}

}  // namespace gfre::detail
