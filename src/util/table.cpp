#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace gfre {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  GFRE_ASSERT(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  GFRE_ASSERT(row.size() == header_.size(),
              "row has " << row.size() << " cells, header has "
                         << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title.empty()) out << title << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_int(long long v) { return std::to_string(v); }

std::string fmt_thousands(unsigned long long v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace gfre
