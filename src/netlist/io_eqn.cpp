#include "netlist/io_eqn.hpp"

#include <cctype>
#include <fstream>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace gfre::nl {

std::string write_eqn(const Netlist& netlist) {
  std::ostringstream out;
  out << "# gfre .eqn netlist — " << netlist.num_equations()
      << " equations\n";
  out << "model " << netlist.name() << "\n";
  out << "input";
  for (Var v : netlist.inputs()) out << " " << netlist.var_name(v);
  out << ";\n";
  out << "output";
  for (Var v : netlist.outputs()) out << " " << netlist.var_name(v);
  out << ";\n";
  for (std::size_t g : netlist.topological_order()) {
    const Gate& gate = netlist.gate(g);
    out << netlist.var_name(gate.output) << " = " << cell_name(gate.type)
        << "(";
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      if (i != 0) out << ", ";
      out << netlist.var_name(gate.inputs[i]);
    }
    out << ");\n";
  }
  return out.str();
}

namespace {

struct RawEquation {
  std::string lhs;
  std::string op;
  std::vector<std::string> args;
  int line;
};

struct RawFile {
  std::string model = "top";
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<RawEquation> equations;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '[' || c == ']' || c == '.';
}

std::vector<std::string> tokenize_names(const std::string& text) {
  std::vector<std::string> names;
  std::string current;
  for (char c : text) {
    if (is_ident_char(c)) {
      current.push_back(c);
    } else if (!current.empty()) {
      names.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) names.push_back(current);
  return names;
}

RawFile scan(const std::string& text, const std::string& filename) {
  RawFile raw;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    // Trim.
    std::size_t begin = 0, end = line.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(line[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(line[end - 1]))) --end;
    line = line.substr(begin, end - begin);
    if (line.empty()) continue;
    if (!line.empty() && line.back() == ';') line.pop_back();

    if (line.rfind("model ", 0) == 0) {
      raw.model = line.substr(6);
      while (!raw.model.empty() && std::isspace(static_cast<unsigned char>(
                                        raw.model.front()))) {
        raw.model.erase(raw.model.begin());
      }
      continue;
    }
    if (line.rfind("input", 0) == 0 &&
        (line.size() == 5 || !is_ident_char(line[5]))) {
      for (auto& n : tokenize_names(line.substr(5))) {
        raw.inputs.push_back(n);
      }
      continue;
    }
    if (line.rfind("output", 0) == 0 &&
        (line.size() == 6 || !is_ident_char(line[6]))) {
      for (auto& n : tokenize_names(line.substr(6))) {
        raw.outputs.push_back(n);
      }
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw ParseError(filename, line_no, "unrecognized statement: " + line);
    }
    RawEquation equation;
    equation.line = line_no;
    {
      auto lhs_names = tokenize_names(line.substr(0, eq));
      if (lhs_names.size() != 1) {
        throw ParseError(filename, line_no, "bad equation left-hand side");
      }
      equation.lhs = lhs_names[0];
    }
    std::string rhs = line.substr(eq + 1);
    const auto paren = rhs.find('(');
    if (paren == std::string::npos) {
      // Constant form: "x = 0" / "x = 1".
      auto names = tokenize_names(rhs);
      if (names.size() == 1 && (names[0] == "0" || names[0] == "1")) {
        equation.op = names[0] == "0" ? "CONST0" : "CONST1";
        raw.equations.push_back(std::move(equation));
        continue;
      }
      throw ParseError(filename, line_no, "expected OP(args) or 0/1");
    }
    auto op_names = tokenize_names(rhs.substr(0, paren));
    if (op_names.size() != 1) {
      throw ParseError(filename, line_no, "bad operator name");
    }
    equation.op = op_names[0];
    const auto close = rhs.rfind(')');
    if (close == std::string::npos || close < paren) {
      throw ParseError(filename, line_no, "unbalanced parentheses");
    }
    equation.args = tokenize_names(rhs.substr(paren + 1, close - paren - 1));
    raw.equations.push_back(std::move(equation));
  }
  return raw;
}

}  // namespace

Netlist read_eqn(const std::string& text, const std::string& filename) {
  const RawFile raw = scan(text, filename);
  Netlist netlist(raw.model);

  std::unordered_map<std::string, std::size_t> eq_by_lhs;
  for (std::size_t i = 0; i < raw.equations.size(); ++i) {
    const auto& equation = raw.equations[i];
    if (!eq_by_lhs.emplace(equation.lhs, i).second) {
      throw ParseError(filename, equation.line,
                       "net '" + equation.lhs + "' defined twice");
    }
    // Declared names may be created out of order; keep auto names clear.
    netlist.reserve_name(equation.lhs);
  }

  for (const auto& name : raw.inputs) {
    if (eq_by_lhs.count(name) != 0) {
      throw ParseError(filename, 0, "input '" + name + "' is also driven");
    }
    netlist.add_input(name);
  }

  // Topologically create gates (equations may be in any textual order).
  enum class State : std::uint8_t { Unvisited, Visiting, Done };
  std::unordered_map<std::string, State> state;
  std::vector<std::size_t> stack;

  // Iterative DFS on equation dependencies.
  std::function<void(std::size_t)> emit = [&](std::size_t index) {
    struct Frame {
      std::size_t eq;
      std::size_t next_arg = 0;
    };
    std::vector<Frame> frames{{index}};
    state[raw.equations[index].lhs] = State::Visiting;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const RawEquation& equation = raw.equations[frame.eq];
      bool descended = false;
      while (frame.next_arg < equation.args.size()) {
        const std::string& arg = equation.args[frame.next_arg++];
        if (netlist.find_var(arg).has_value()) continue;
        const auto it = eq_by_lhs.find(arg);
        if (it == eq_by_lhs.end()) {
          throw ParseError(filename, equation.line,
                           "undefined net '" + arg + "'");
        }
        auto& st = state[arg];
        if (st == State::Visiting) {
          throw ParseError(filename, equation.line,
                           "combinational cycle through '" + arg + "'");
        }
        if (st == State::Unvisited) {
          st = State::Visiting;
          frames.push_back(Frame{it->second});
          descended = true;
          break;
        }
      }
      if (descended) continue;
      // All args resolved — create the gate.
      std::vector<Var> args;
      args.reserve(equation.args.size());
      for (const auto& arg : equation.args) {
        args.push_back(*netlist.find_var(arg));
      }
      CellType type;
      try {
        type = cell_from_name(equation.op);
      } catch (const InvalidArgument& e) {
        throw ParseError(filename, equation.line, e.what());
      }
      if (!arity_ok(type, args.size())) {
        throw ParseError(filename, equation.line,
                         "bad arity for " + equation.op);
      }
      netlist.add_gate(type, std::move(args), equation.lhs);
      state[equation.lhs] = State::Done;
      frames.pop_back();
    }
  };

  for (std::size_t i = 0; i < raw.equations.size(); ++i) {
    if (state[raw.equations[i].lhs] == State::Unvisited) emit(i);
  }

  for (const auto& name : raw.outputs) {
    const auto v = netlist.find_var(name);
    if (!v.has_value()) {
      throw ParseError(filename, 0, "undefined output '" + name + "'");
    }
    netlist.mark_output(*v);
  }
  netlist.validate();
  return netlist;
}

void write_eqn_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  out << write_eqn(netlist);
}

Netlist read_eqn_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_eqn(buffer.str(), path);
}

}  // namespace gfre::nl
