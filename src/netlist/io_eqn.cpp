#include "netlist/io_eqn.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "frontend/cell_library.hpp"
#include "frontend/graph.hpp"
#include "frontend/source.hpp"
#include "opt/passes.hpp"
#include "util/error.hpp"

namespace gfre::nl {

std::string write_eqn(const Netlist& netlist) {
  std::ostringstream out;
  out << "# gfre .eqn netlist — " << netlist.num_equations()
      << " equations\n";
  out << "model " << netlist.name() << "\n";
  out << "input";
  for (Var v : netlist.inputs()) out << " " << netlist.var_name(v);
  out << ";\n";
  out << "output";
  for (Var v : netlist.outputs()) out << " " << netlist.var_name(v);
  out << ";\n";
  for (std::size_t g : netlist.topological_order()) {
    const Gate& gate = netlist.gate(g);
    out << netlist.var_name(gate.output) << " = " << cell_name(gate.type)
        << "(";
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      if (i != 0) out << ", ";
      out << netlist.var_name(gate.inputs[i]);
    }
    out << ");\n";
  }
  return out.str();
}

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '[' || c == ']' || c == '.' || c == '$';
}

std::vector<std::string> tokenize_names(const std::string& text) {
  std::vector<std::string> names;
  std::string current;
  for (char c : text) {
    if (is_ident_char(c)) {
      current.push_back(c);
    } else if (!current.empty()) {
      names.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) names.push_back(current);
  return names;
}

/// Resolves an operator name to the gate(s) it creates and registers the
/// node: builtin mnemonics become single gates; with a library loaded,
/// library cells resolve to their builtin equivalent or expand
/// structurally.
void add_equation_node(frontend::GraphBuilder& builder, std::string lhs,
                       std::string op, std::vector<std::string> args,
                       const frontend::Loc& loc,
                       const frontend::CellLibrary* library) {
  CellType type{};
  bool builtin = true;
  try {
    type = cell_from_name(op);
  } catch (const InvalidArgument& e) {
    builtin = false;
    if (!library) frontend::fail_at(loc, e.what());
  }
  if (builtin) {
    if (!arity_ok(type, args.size()))
      frontend::fail_at(loc, "bad arity for " + op);
    std::string out = lhs;
    builder.add_node(std::move(lhs), std::move(args), loc,
                     [type, out](Netlist& netlist,
                                 const std::vector<Var>& vars) {
                       netlist.add_gate(type, vars, out);
                     });
    return;
  }
  const frontend::LibCell* cell = library->find(op);
  if (!cell) {
    // Match the builtin mnemonic error shape, mentioning the library.
    frontend::fail_at(loc, "unknown cell '" + op + "' (not builtin, not in "
                           "library '" + library->name() + "')");
  }
  if (args.size() != cell->inputs.size())
    frontend::fail_at(loc, "cell '" + op + "' expects " +
                               std::to_string(cell->inputs.size()) +
                               " arguments, got " +
                               std::to_string(args.size()));
  if (cell->builtin) {
    CellType t = *cell->builtin;
    std::string out = lhs;
    builder.add_node(std::move(lhs), std::move(args), loc,
                     [t, out](Netlist& netlist, const std::vector<Var>& vars) {
                       netlist.add_gate(t, vars, out);
                     });
    return;
  }
  std::string out = lhs;
  builder.add_node(
      std::move(lhs), std::move(args), loc,
      [cell, out](Netlist& netlist, const std::vector<Var>& vars) {
        std::unordered_map<std::string, Var> by_name;
        std::vector<std::string> actuals;
        for (Var v : vars) {
          std::string n = netlist.var_name(v);
          by_name.emplace(n, v);
          actuals.push_back(std::move(n));
        }
        opt::EmitGateFn emit = [&](CellType t,
                                   std::vector<std::string> input_names,
                                   std::string output) {
          std::vector<Var> inputs;
          for (const std::string& n : input_names) {
            auto it = by_name.find(n);
            GFRE_ASSERT(it != by_name.end(),
                        "expansion references unknown net " << n);
            inputs.push_back(it->second);
          }
          Var v = netlist.add_gate(t, std::move(inputs), output);
          std::string vname = netlist.var_name(v);
          by_name.emplace(vname, v);
          return vname;
        };
        opt::expand_cell_function(*cell, actuals, out, emit);
      });
}

}  // namespace

Netlist read_eqn(const std::string& text, const std::string& filename,
                 const frontend::FrontendOptions& options) {
  frontend::LineScanner scanner(
      text, filename,
      frontend::LineSyntax{.hash_comments = true, .slash_comments = true,
                           .block_comments = true});
  std::string model = "top";
  frontend::GraphBuilder builder(model, filename);
  const frontend::CellLibrary* library = options.library.get();

  while (auto logical = scanner.next()) {
    std::string line = logical->text;
    frontend::Loc loc{filename, logical->line, 0};
    if (!line.empty() && line.back() == ';') line.pop_back();
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back())))
      line.pop_back();
    if (line.empty()) continue;

    if (line.rfind("model ", 0) == 0) {
      model = line.substr(6);
      while (!model.empty() &&
             std::isspace(static_cast<unsigned char>(model.front())))
        model.erase(model.begin());
      continue;
    }
    if (line.rfind("input", 0) == 0 &&
        (line.size() == 5 || !is_ident_char(line[5]))) {
      for (auto& n : tokenize_names(line.substr(5)))
        builder.add_input(n, loc);
      continue;
    }
    if (line.rfind("output", 0) == 0 &&
        (line.size() == 6 || !is_ident_char(line[6]))) {
      for (auto& n : tokenize_names(line.substr(6)))
        builder.add_output(n, loc);
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      frontend::fail_at(loc, "unrecognized statement: " + line);
    auto lhs_names = tokenize_names(line.substr(0, eq));
    if (lhs_names.size() != 1)
      frontend::fail_at(loc, "bad equation left-hand side");
    std::string lhs = lhs_names[0];
    std::string rhs = line.substr(eq + 1);
    const auto paren = rhs.find('(');
    if (paren == std::string::npos) {
      // Constant form: "x = 0" / "x = 1".
      auto names = tokenize_names(rhs);
      if (names.size() == 1 && (names[0] == "0" || names[0] == "1")) {
        add_equation_node(builder, std::move(lhs),
                          names[0] == "0" ? "CONST0" : "CONST1", {}, loc,
                          library);
        continue;
      }
      frontend::fail_at(loc, "expected OP(args) or 0/1");
    }
    auto op_names = tokenize_names(rhs.substr(0, paren));
    if (op_names.size() != 1) frontend::fail_at(loc, "bad operator name");
    const auto close = rhs.rfind(')');
    if (close == std::string::npos || close < paren)
      frontend::fail_at(loc, "unbalanced parentheses");
    add_equation_node(builder, std::move(lhs), op_names[0],
                      tokenize_names(rhs.substr(paren + 1, close - paren - 1)),
                      loc, library);
  }
  Netlist netlist = builder.build();
  netlist.set_name(model);
  return netlist;
}

Netlist read_eqn(const std::string& text, const std::string& filename) {
  return read_eqn(text, filename, frontend::FrontendOptions{});
}

void write_eqn_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  out << write_eqn(netlist);
}

Netlist read_eqn_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_eqn(buffer.str(), path);
}

}  // namespace gfre::nl
