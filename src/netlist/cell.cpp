#include "netlist/cell.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "util/error.hpp"

namespace gfre::nl {

namespace {

constexpr std::array<CellType, 16> kAllCells = {
    CellType::Const0, CellType::Const1, CellType::Buf,   CellType::Inv,
    CellType::And,    CellType::Or,     CellType::Xor,   CellType::Xnor,
    CellType::Nand,   CellType::Nor,    CellType::Mux,   CellType::Aoi21,
    CellType::Oai21,  CellType::Aoi22,  CellType::Oai22, CellType::Maj3,
};

// OR-family ANF expansion is 2^n - 1 monomials; cap the arity so a
// malformed netlist cannot blow up the rewriter.
constexpr std::size_t kMaxOrArity = 8;
constexpr std::size_t kMaxAndArity = 64;

}  // namespace

std::span<const CellType> all_cell_types() { return kAllCells; }

std::string cell_name(CellType type) {
  switch (type) {
    case CellType::Const0: return "CONST0";
    case CellType::Const1: return "CONST1";
    case CellType::Buf: return "BUF";
    case CellType::Inv: return "INV";
    case CellType::And: return "AND";
    case CellType::Or: return "OR";
    case CellType::Xor: return "XOR";
    case CellType::Xnor: return "XNOR";
    case CellType::Nand: return "NAND";
    case CellType::Nor: return "NOR";
    case CellType::Mux: return "MUX";
    case CellType::Aoi21: return "AOI21";
    case CellType::Oai21: return "OAI21";
    case CellType::Aoi22: return "AOI22";
    case CellType::Oai22: return "OAI22";
    case CellType::Maj3: return "MAJ3";
  }
  throw InvalidArgument("unknown cell type");
}

CellType cell_from_name(const std::string& name) {
  std::string up = name;
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (CellType t : kAllCells) {
    if (cell_name(t) == up) return t;
  }
  // Common aliases used by synthesis netlists.
  if (up == "NOT") return CellType::Inv;
  if (up == "BUFF") return CellType::Buf;
  if (up == "AND2" || up == "AND3" || up == "AND4") return CellType::And;
  if (up == "OR2" || up == "OR3" || up == "OR4") return CellType::Or;
  if (up == "XOR2" || up == "XOR3") return CellType::Xor;
  if (up == "XNOR2") return CellType::Xnor;
  if (up == "NAND2" || up == "NAND3" || up == "NAND4") return CellType::Nand;
  if (up == "NOR2" || up == "NOR3") return CellType::Nor;
  if (up == "MUX2") return CellType::Mux;
  throw InvalidArgument("unknown cell name '" + name + "'");
}

bool arity_ok(CellType type, std::size_t arity) {
  switch (type) {
    case CellType::Const0:
    case CellType::Const1:
      return arity == 0;
    case CellType::Buf:
    case CellType::Inv:
      return arity == 1;
    case CellType::And:
    case CellType::Nand:
      return arity >= 2 && arity <= kMaxAndArity;
    case CellType::Or:
    case CellType::Nor:
      return arity >= 2 && arity <= kMaxOrArity;
    case CellType::Xor:
    case CellType::Xnor:
      return arity >= 2 && arity <= kMaxAndArity;
    case CellType::Mux:
    case CellType::Aoi21:
    case CellType::Oai21:
    case CellType::Maj3:
      return arity == 3;
    case CellType::Aoi22:
    case CellType::Oai22:
      return arity == 4;
  }
  return false;
}

bool eval_cell(CellType type, std::span<const bool> in) {
  GFRE_ASSERT(arity_ok(type, in.size()),
              "bad arity " << in.size() << " for " << cell_name(type));
  switch (type) {
    case CellType::Const0: return false;
    case CellType::Const1: return true;
    case CellType::Buf: return in[0];
    case CellType::Inv: return !in[0];
    case CellType::And: {
      for (bool b : in) if (!b) return false;
      return true;
    }
    case CellType::Nand: {
      for (bool b : in) if (!b) return true;
      return false;
    }
    case CellType::Or: {
      for (bool b : in) if (b) return true;
      return false;
    }
    case CellType::Nor: {
      for (bool b : in) if (b) return false;
      return true;
    }
    case CellType::Xor: {
      bool acc = false;
      for (bool b : in) acc ^= b;
      return acc;
    }
    case CellType::Xnor: {
      bool acc = true;
      for (bool b : in) acc ^= b;
      return acc;
    }
    case CellType::Mux: return in[0] ? in[2] : in[1];
    case CellType::Aoi21: return !((in[0] && in[1]) || in[2]);
    case CellType::Oai21: return !((in[0] || in[1]) && in[2]);
    case CellType::Aoi22: return !((in[0] && in[1]) || (in[2] && in[3]));
    case CellType::Oai22: return !((in[0] || in[1]) && (in[2] || in[3]));
    case CellType::Maj3:
      return (in[0] && in[1]) || (in[0] && in[2]) || (in[1] && in[2]);
  }
  throw InvalidArgument("unknown cell type");
}

std::uint64_t eval_cell_words(CellType type,
                              std::span<const std::uint64_t> in) {
  GFRE_ASSERT(arity_ok(type, in.size()),
              "bad arity " << in.size() << " for " << cell_name(type));
  constexpr std::uint64_t kOnes = ~0ull;
  switch (type) {
    case CellType::Const0: return 0;
    case CellType::Const1: return kOnes;
    case CellType::Buf: return in[0];
    case CellType::Inv: return ~in[0];
    case CellType::And: {
      std::uint64_t acc = kOnes;
      for (auto w : in) acc &= w;
      return acc;
    }
    case CellType::Nand: {
      std::uint64_t acc = kOnes;
      for (auto w : in) acc &= w;
      return ~acc;
    }
    case CellType::Or: {
      std::uint64_t acc = 0;
      for (auto w : in) acc |= w;
      return acc;
    }
    case CellType::Nor: {
      std::uint64_t acc = 0;
      for (auto w : in) acc |= w;
      return ~acc;
    }
    case CellType::Xor: {
      std::uint64_t acc = 0;
      for (auto w : in) acc ^= w;
      return acc;
    }
    case CellType::Xnor: {
      std::uint64_t acc = 0;
      for (auto w : in) acc ^= w;
      return ~acc;
    }
    case CellType::Mux: return (in[0] & in[2]) | (~in[0] & in[1]);
    case CellType::Aoi21: return ~((in[0] & in[1]) | in[2]);
    case CellType::Oai21: return ~((in[0] | in[1]) & in[2]);
    case CellType::Aoi22: return ~((in[0] & in[1]) | (in[2] & in[3]));
    case CellType::Oai22: return ~((in[0] | in[1]) & (in[2] | in[3]));
    case CellType::Maj3:
      return (in[0] & in[1]) | (in[0] & in[2]) | (in[1] & in[2]);
  }
  throw InvalidArgument("unknown cell type");
}

namespace {

using anf::Anf;
using anf::Var;

// OR over variables = 1 + prod(1 + v_i); expanding the product yields every
// nonempty subset of the inputs as a monomial.
Anf or_anf(std::span<const Var> in) {
  Anf prod = Anf::one();
  for (Var v : in) {
    prod = prod * (Anf::one() + Anf::var(v));
  }
  return Anf::one() + prod;
}

Anf and_anf(std::span<const Var> in) {
  Anf prod = Anf::one();
  for (Var v : in) prod = prod * Anf::var(v);
  return prod;
}

Anf xor_anf(std::span<const Var> in) {
  Anf sum;
  for (Var v : in) sum += Anf::var(v);
  return sum;
}

}  // namespace

anf::Anf cell_anf(CellType type, std::span<const anf::Var> in) {
  GFRE_ASSERT(arity_ok(type, in.size()),
              "bad arity " << in.size() << " for " << cell_name(type));
  using anf::Anf;
  switch (type) {
    case CellType::Const0: return Anf::zero();
    case CellType::Const1: return Anf::one();
    case CellType::Buf: return Anf::var(in[0]);
    case CellType::Inv: return Anf::one() + Anf::var(in[0]);
    case CellType::And: return and_anf(in);
    case CellType::Nand: return Anf::one() + and_anf(in);
    case CellType::Or: return or_anf(in);
    case CellType::Nor: return Anf::one() + or_anf(in);
    case CellType::Xor: return xor_anf(in);
    case CellType::Xnor: return Anf::one() + xor_anf(in);
    case CellType::Mux:
      // s?d1:d0 = d0 + s*d0 + s*d1
      return Anf::var(in[1]) + Anf::var(in[0]) * Anf::var(in[1]) +
             Anf::var(in[0]) * Anf::var(in[2]);
    case CellType::Aoi21:
    case CellType::Oai21:
    case CellType::Aoi22:
    case CellType::Oai22:
    case CellType::Maj3:
      break;
  }
  // Complex cells: compose from the primitive ANFs (kept out of the switch
  // so each formula reads like its schematic).
  using anf::Var;
  const auto v = [](Var x) { return Anf::var(x); };
  switch (type) {
    case CellType::Aoi21:  // !((a&b) | c)
      return Anf::one() + (v(in[0]) * v(in[1]) + v(in[2]) +
                           v(in[0]) * v(in[1]) * v(in[2]));
    case CellType::Oai21:  // !((a|b) & c)
      return Anf::one() +
             (v(in[0]) + v(in[1]) + v(in[0]) * v(in[1])) * v(in[2]);
    case CellType::Aoi22: {  // !((a&b) | (c&d))
      const Anf ab = v(in[0]) * v(in[1]);
      const Anf cd = v(in[2]) * v(in[3]);
      return Anf::one() + ab + cd + ab * cd;
    }
    case CellType::Oai22: {  // !((a|b) & (c|d))
      const Anf ab = v(in[0]) + v(in[1]) + v(in[0]) * v(in[1]);
      const Anf cd = v(in[2]) + v(in[3]) + v(in[2]) * v(in[3]);
      return Anf::one() + ab * cd;
    }
    case CellType::Maj3:  // ab + ac + bc (mod 2: abc terms cancel pairwise)
      return v(in[0]) * v(in[1]) + v(in[0]) * v(in[2]) +
             v(in[1]) * v(in[2]);
    default:
      break;
  }
  throw InvalidArgument("unknown cell type");
}

}  // namespace gfre::nl
