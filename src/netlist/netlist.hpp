// Gate-level netlist graph.
//
// A netlist is a DAG of cells over named Boolean nets.  Every net is an
// anf::Var, so netlist signals and rewriting variables share one id space —
// backward rewriting (core) substitutes gate outputs without any mapping
// layer.  Gates are stored in creation order; topological order is computed
// on demand (parsers may interleave declarations).
//
// The number of gates is the paper's "#eqns" column: one algebraic equation
// per gate.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "anf/monomial.hpp"
#include "netlist/cell.hpp"

namespace gfre::nl {

using anf::Var;

/// One gate instance: a cell driving one output net.
struct Gate {
  CellType type;
  Var output;
  std::vector<Var> inputs;
};

/// Gate-level combinational netlist.
class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- Construction -------------------------------------------------------

  /// Declares a primary input net.  Names must be unique.
  Var add_input(const std::string& name);

  /// Creates a gate; returns its output net.  An empty name auto-generates
  /// one ("n<id>").  Inputs must already exist.
  Var add_gate(CellType type, std::vector<Var> inputs,
               const std::string& name = "");

  /// Marks an existing net as a primary output (order is significant: for a
  /// multiplier, outputs are z0..z{m-1} in bit order).
  void mark_output(Var v);

  /// Reserves a name so auto-generated names never take it.  Used by
  /// rebuilding passes (output names must survive) and parsers (declared
  /// names may appear after intermediate gates are synthesized).
  void reserve_name(const std::string& name);

  // -- Interrogation ------------------------------------------------------

  std::size_t num_vars() const { return var_names_.size(); }
  std::size_t num_gates() const { return gates_.size(); }
  /// One equation per gate — the paper's "#eqns" metric.
  std::size_t num_equations() const { return gates_.size(); }

  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(std::size_t idx) const { return gates_[idx]; }
  const std::vector<Var>& inputs() const { return inputs_; }
  const std::vector<Var>& outputs() const { return outputs_; }

  const std::string& var_name(Var v) const;
  bool is_input(Var v) const;

  /// Gate index driving net v, or nullopt for primary inputs.
  std::optional<std::size_t> driver(Var v) const;

  /// Net id by name, or nullopt.
  std::optional<Var> find_var(const std::string& name) const;

  // -- Structure ----------------------------------------------------------

  /// Gate indices in topological order (inputs before users).
  /// Throws Error on combinational cycles.
  std::vector<std::size_t> topological_order() const;

  /// Gate indices in the transitive fanin cone of `root`, topologically
  /// ordered.  This is the per-output-bit logic cone of Theorem 2.
  ///
  /// Cost: one whole-netlist index build on first use (cached until the
  /// netlist is mutated), then a linear bitmap sweep per call — the
  /// crypto-size multipliers call this once per output bit over cones
  /// covering most of the netlist, where a per-call DFS was the dominant
  /// extraction cost.
  std::vector<std::size_t> fanin_cone(Var root) const;

  /// Primary inputs feeding the cone of `root`.
  std::vector<Var> cone_inputs(Var root) const;

  /// Logic depth (longest path, in gates).
  unsigned depth() const;

  /// Per-cell-type gate counts.
  std::unordered_map<CellType, std::size_t> cell_histogram() const;

  /// Total XOR/XNOR two-input-equivalent operations: an n-ary XOR counts as
  /// n-1.  Used for the Figure 1 style cost comparisons on real netlists.
  std::size_t xor2_equivalent_count() const;

  /// Structural sanity: unique drivers, defined inputs, acyclic, declared
  /// outputs exist.  Throws Error with a diagnostic on violation.
  void validate() const;

 private:
  Var new_var(const std::string& name, bool is_input);

  /// Tri-color DFS from one gate, appending reachable gates to `order` in
  /// topological order; backs topological_order().
  void topo_dfs(std::size_t root_gate, std::vector<unsigned char>& mark,
                std::vector<std::size_t>& order) const;

  /// Whole-netlist structure shared by every fanin_cone() call: the global
  /// topological order plus a flattened gate -> driver-gate adjacency, both
  /// expressed in topological *positions* so the per-cone reachability
  /// sweep is one backward pass over a dense bitmap.  Built lazily under
  /// cone_index_mutex_ and dropped on mutation; callers hold a shared_ptr
  /// so concurrent extraction threads never race a rebuild.
  struct ConeIndex {
    std::vector<std::size_t> topo;         ///< topo[pos] = gate index
    std::vector<std::uint32_t> pos_of;     ///< gate index -> topo position
    std::vector<std::uint32_t> fanin_off;  ///< per position: fanin_pos range
    std::vector<std::uint32_t> fanin_pos;  ///< driver gates, as positions
  };
  /// Cache cell for the lazily-built index.  Copying or moving a Netlist
  /// must not share (or steal) the cache — copies simply start cold, which
  /// also keeps Netlist's value semantics despite the mutex inside.
  struct ConeIndexCache {
    std::mutex mutex;
    std::shared_ptr<const ConeIndex> index;
    ConeIndexCache() = default;
    ConeIndexCache(const ConeIndexCache&) noexcept {}
    ConeIndexCache(ConeIndexCache&&) noexcept {}
    ConeIndexCache& operator=(const ConeIndexCache&) noexcept {
      index.reset();
      return *this;
    }
    ConeIndexCache& operator=(ConeIndexCache&&) noexcept {
      index.reset();
      return *this;
    }
  };
  std::shared_ptr<const ConeIndex> cone_index() const;
  void invalidate_cone_index();

  std::string name_;
  std::size_t next_auto_name_ = 0;
  std::unordered_set<std::string> reserved_names_;
  std::vector<std::string> var_names_;
  std::vector<bool> var_is_input_;
  // driver_[v] = gate index + 1, or 0 when v is an input.
  std::vector<std::size_t> driver_;
  std::unordered_map<std::string, Var> by_name_;
  std::vector<Gate> gates_;
  std::vector<Var> inputs_;
  std::vector<Var> outputs_;
  mutable ConeIndexCache cone_cache_;
};

}  // namespace gfre::nl
