// BLIF (Berkeley Logic Interchange Format) subset.
//
// The paper's multipliers are synthesized and mapped with ABC, whose native
// exchange format is BLIF.  We support the combinational subset:
// .model/.inputs/.outputs/.names with SOP covers (both output polarities)
// and .end.  On read, each .names node is synthesized into AND/OR/INV
// primitives; on write, each cell is emitted as a cover.
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace gfre::nl {

/// Serializes a netlist as BLIF text.
std::string write_blif(const Netlist& netlist);

/// Parses BLIF text (combinational subset).
Netlist read_blif(const std::string& text,
                  const std::string& filename = "<blif>");

void write_blif_file(const Netlist& netlist, const std::string& path);
Netlist read_blif_file(const std::string& path);

}  // namespace gfre::nl
