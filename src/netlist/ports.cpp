#include "netlist/ports.hpp"

#include <algorithm>
#include <cctype>
#include <map>

#include "util/error.hpp"

namespace gfre::nl {

namespace {

/// Splits "a12" into ("a", 12) and "a[12]" into ("a", 12) — the latter is
/// how the Verilog frontend names flattened vector-port bits.  Returns
/// false when the name has no trailing index or no base.
bool split_indexed(const std::string& name, std::string& base,
                   unsigned& index) {
  std::size_t end = name.size();
  const bool bracket = end > 0 && name[end - 1] == ']';
  if (bracket) --end;
  std::size_t pos = end;
  while (pos > 0 && std::isdigit(static_cast<unsigned char>(name[pos - 1]))) {
    --pos;
  }
  if (pos == end || pos == 0) return false;
  if (bracket) {
    if (name[pos - 1] != '[') return false;
    base = name.substr(0, pos - 1);
    if (base.empty()) return false;
  } else {
    base = name.substr(0, pos);
  }
  index = static_cast<unsigned>(std::stoul(name.substr(pos, end - pos)));
  return true;
}

std::vector<WordPort> group_ports(const Netlist& netlist,
                                  const std::vector<Var>& nets) {
  std::map<std::string, std::map<unsigned, Var>> groups;
  for (Var v : nets) {
    std::string base;
    unsigned index = 0;
    if (split_indexed(netlist.var_name(v), base, index)) {
      groups[base][index] = v;
    }
  }
  std::vector<WordPort> ports;
  for (auto& [base, bits] : groups) {
    // Require dense indices 0..k-1.
    if (bits.begin()->first != 0 ||
        bits.rbegin()->first + 1 != bits.size()) {
      continue;
    }
    WordPort port;
    port.base = base;
    port.bits.reserve(bits.size());
    for (auto& [idx, v] : bits) port.bits.push_back(v);
    ports.push_back(std::move(port));
  }
  return ports;
}

}  // namespace

std::optional<WordPort> find_word_port(const Netlist& netlist,
                                       const std::string& base) {
  WordPort port;
  port.base = base;
  for (unsigned i = 0;; ++i) {
    // Suffix style ("a0") first — the generator/paper convention — then
    // bracket style ("a[0]"), which flattened Verilog vector ports use.
    auto v = netlist.find_var(base + std::to_string(i));
    if (!v.has_value())
      v = netlist.find_var(base + "[" + std::to_string(i) + "]");
    if (!v.has_value()) break;
    port.bits.push_back(*v);
  }
  if (port.bits.empty()) return std::nullopt;
  return port;
}

std::vector<WordPort> input_word_ports(const Netlist& netlist) {
  return group_ports(netlist, netlist.inputs());
}

std::vector<WordPort> output_word_ports(const Netlist& netlist) {
  return group_ports(netlist, netlist.outputs());
}

std::optional<MultiplierPorts> infer_multiplier_ports(
    const Netlist& netlist) {
  auto ins = input_word_ports(netlist);
  auto outs = output_word_ports(netlist);
  if (ins.size() != 2 || outs.size() != 1) return std::nullopt;
  if (ins[0].width() != ins[1].width() ||
      ins[0].width() != outs[0].width()) {
    return std::nullopt;
  }
  // Every PI/PO must be covered (otherwise there are extra control pins and
  // this is not a plain multiplier interface).
  if (ins[0].bits.size() + ins[1].bits.size() != netlist.inputs().size()) {
    return std::nullopt;
  }
  if (outs[0].bits.size() != netlist.outputs().size()) return std::nullopt;
  // group_ports returns bases in lexicographic order already (std::map).
  return MultiplierPorts{std::move(ins[0]), std::move(ins[1]),
                         std::move(outs[0])};
}

MultiplierPorts multiplier_ports(const Netlist& netlist,
                                 const std::string& a_base,
                                 const std::string& b_base,
                                 const std::string& z_base) {
  auto a = find_word_port(netlist, a_base);
  auto b = find_word_port(netlist, b_base);
  auto z = find_word_port(netlist, z_base);
  if (!a || !b || !z) {
    throw InvalidArgument("netlist '" + netlist.name() +
                          "' lacks multiplier ports " + a_base + "/" +
                          b_base + "/" + z_base);
  }
  if (a->width() != b->width() || a->width() != z->width()) {
    throw InvalidArgument(
        "multiplier port widths disagree: " + a_base + "=" +
        std::to_string(a->width()) + " " + b_base + "=" +
        std::to_string(b->width()) + " " + z_base + "=" +
        std::to_string(z->width()));
  }
  return MultiplierPorts{std::move(*a), std::move(*b), std::move(*z)};
}

}  // namespace gfre::nl
