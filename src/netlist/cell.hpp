// Cell library for gate-level netlists.
//
// The paper's circuit model (Section III-A) covers basic gates plus the
// complex standard cells produced by synthesis and technology mapping
// (AOI, OAI, ...).  Each cell here provides:
//   * a Boolean evaluator (single-bit and 64-way bit-parallel), and
//   * an exact ANF model — Eq. (1) generalized to every cell — which is
//     what backward rewriting substitutes.
// The ANF of fixed-function cells is derived analytically; anything new can
// be added through Anf::from_truth_table.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "anf/anf.hpp"

namespace gfre::nl {

/// Supported cell functions.  And/Or/Xor/Xnor/Nand/Nor are variadic
/// (arity >= 2; OR-family arity capped to keep ANF expansion bounded).
enum class CellType {
  Const0,  ///< constant 0 (no inputs)
  Const1,  ///< constant 1 (no inputs)
  Buf,     ///< identity
  Inv,     ///< NOT
  And,     ///< n-input AND
  Or,      ///< n-input OR
  Xor,     ///< n-input XOR
  Xnor,    ///< n-input XNOR
  Nand,    ///< n-input NAND
  Nor,     ///< n-input NOR
  Mux,     ///< Mux(s, d0, d1) = s ? d1 : d0
  Aoi21,   ///< !((a & b) | c)
  Oai21,   ///< !((a | b) & c)
  Aoi22,   ///< !((a & b) | (c & d))
  Oai22,   ///< !((a | b) & (c | d))
  Maj3,    ///< majority of three
};

/// All cell types, for iteration in tests.
std::span<const CellType> all_cell_types();

/// Canonical upper-case mnemonic ("AND", "AOI21", ...).
std::string cell_name(CellType type);

/// Inverse of cell_name (case-insensitive); throws InvalidArgument on
/// unknown names.
CellType cell_from_name(const std::string& name);

/// Checks whether `arity` inputs are legal for the cell type.
bool arity_ok(CellType type, std::size_t arity);

/// Single-bit evaluation.
bool eval_cell(CellType type, std::span<const bool> inputs);

/// 64-way bit-parallel evaluation (one call simulates 64 input vectors).
std::uint64_t eval_cell_words(CellType type,
                              std::span<const std::uint64_t> inputs);

/// Exact ANF of the cell over the given input variables — the polynomial
/// backward rewriting substitutes for the cell's output variable.
anf::Anf cell_anf(CellType type, std::span<const anf::Var> inputs);

}  // namespace gfre::nl
