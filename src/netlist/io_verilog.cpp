#include "netlist/io_verilog.hpp"

#include <cctype>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace gfre::nl {

namespace {

std::string gate_expression(const Netlist& netlist, const Gate& gate) {
  const auto name = [&](Var v) { return netlist.var_name(v); };
  const auto join = [&](const char* op) {
    std::string out;
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      if (i != 0) {
        out += " ";
        out += op;
        out += " ";
      }
      out += name(gate.inputs[i]);
    }
    return out;
  };
  const auto& in = gate.inputs;
  switch (gate.type) {
    case CellType::Const0: return "1'b0";
    case CellType::Const1: return "1'b1";
    case CellType::Buf: return name(in[0]);
    case CellType::Inv: return "~" + name(in[0]);
    case CellType::And: return join("&");
    case CellType::Or: return join("|");
    case CellType::Xor: return join("^");
    case CellType::Xnor: return "~(" + join("^") + ")";
    case CellType::Nand: return "~(" + join("&") + ")";
    case CellType::Nor: return "~(" + join("|") + ")";
    case CellType::Mux:
      return name(in[0]) + " ? " + name(in[2]) + " : " + name(in[1]);
    case CellType::Aoi21:
      return "~((" + name(in[0]) + " & " + name(in[1]) + ") | " +
             name(in[2]) + ")";
    case CellType::Oai21:
      return "~((" + name(in[0]) + " | " + name(in[1]) + ") & " +
             name(in[2]) + ")";
    case CellType::Aoi22:
      return "~((" + name(in[0]) + " & " + name(in[1]) + ") | (" +
             name(in[2]) + " & " + name(in[3]) + "))";
    case CellType::Oai22:
      return "~((" + name(in[0]) + " | " + name(in[1]) + ") & (" +
             name(in[2]) + " | " + name(in[3]) + "))";
    case CellType::Maj3:
      return "(" + name(in[0]) + " & " + name(in[1]) + ") | (" + name(in[0]) +
             " & " + name(in[2]) + ") | (" + name(in[1]) + " & " +
             name(in[2]) + ")";
  }
  throw InvalidArgument("unknown cell type");
}

}  // namespace

std::string write_verilog(const Netlist& netlist) {
  std::ostringstream out;
  out << "// gfre structural netlist — " << netlist.num_equations()
      << " gates\n";
  out << "module " << netlist.name() << "(";
  bool first = true;
  for (Var v : netlist.inputs()) {
    if (!first) out << ", ";
    first = false;
    out << netlist.var_name(v);
  }
  for (Var v : netlist.outputs()) {
    if (!first) out << ", ";
    first = false;
    out << netlist.var_name(v);
  }
  out << ");\n";
  for (Var v : netlist.inputs()) {
    out << "  input " << netlist.var_name(v) << ";\n";
  }
  for (Var v : netlist.outputs()) {
    out << "  output " << netlist.var_name(v) << ";\n";
  }
  // Internal wires: driven nets that are not outputs.
  std::vector<bool> is_output(netlist.num_vars(), false);
  for (Var v : netlist.outputs()) is_output[v] = true;
  for (const Gate& g : netlist.gates()) {
    if (!is_output[g.output]) {
      out << "  wire " << netlist.var_name(g.output) << ";\n";
    }
  }
  for (std::size_t g : netlist.topological_order()) {
    const Gate& gate = netlist.gate(g);
    out << "  assign " << netlist.var_name(gate.output) << " = "
        << gate_expression(netlist, gate) << ";\n";
  }
  out << "endmodule\n";
  return out.str();
}

namespace {

// ---------------------------------------------------------------------------
// Reader: tokenizer + recursive-descent expression parser.
// Grammar (precedence low to high):
//   ternary := or ('?' or ':' or)?
//   or      := xor ('|' xor)*
//   xor     := and ('^' and)*
//   and     := unary ('&' unary)*
//   unary   := '~' unary | primary
//   primary := identifier | '1\'b0' | '1\'b1' | '(' ternary ')'
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { Ident, Op, Const0, Const1, End };
  Kind kind;
  std::string text;  // for Ident / Op
  int line;
};

class Lexer {
 public:
  Lexer(const std::string& text, std::string filename)
      : text_(text), filename_(std::move(filename)) {}

  Token next() {
    skip_trivia();
    if (pos_ >= text_.size()) return {Token::Kind::End, "", line_};
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '\\') {
      return lex_ident();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return lex_number();
    ++pos_;
    return {Token::Kind::Op, std::string(1, c), line_};
  }

  [[noreturn]] void fail(int line, const std::string& msg) const {
    throw ParseError(filename_, line, msg);
  }

 private:
  void skip_trivia() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
        continue;
      }
      break;
    }
  }

  Token lex_ident() {
    const int line = line_;
    std::string ident;
    if (text_[pos_] == '\\') {
      // Escaped identifier: up to whitespace.
      ++pos_;
      while (pos_ < text_.size() &&
             !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ident.push_back(text_[pos_++]);
      }
    } else {
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '$')) {
        ident.push_back(text_[pos_++]);
      }
    }
    return {Token::Kind::Ident, ident, line};
  }

  Token lex_number() {
    const int line = line_;
    // Only the literals 1'b0 / 1'b1 are meaningful in this subset.
    std::string lit;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '\'')) {
      lit.push_back(text_[pos_++]);
    }
    if (lit == "1'b0") return {Token::Kind::Const0, lit, line};
    if (lit == "1'b1") return {Token::Kind::Const1, lit, line};
    fail(line, "unsupported literal '" + lit + "'");
  }

  const std::string& text_;
  std::string filename_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class VerilogParser {
 public:
  VerilogParser(const std::string& text, const std::string& filename)
      : lexer_(text, filename), filename_(filename) {
    advance();
  }

  Netlist parse() {
    expect_ident("module");
    Netlist netlist(expect_any_ident("module name"));
    netlist_ = &netlist;
    // Port list (names only; directions come from declarations).
    if (is_op("(")) {
      advance();
      while (!is_op(")")) {
        expect_any_ident("port name");
        if (is_op(",")) advance();
      }
      advance();  // ')'
    }
    expect_op(";");

    std::vector<std::string> output_names;
    while (!is_ident("endmodule")) {
      if (is_ident("input")) {
        advance();
        for (const auto& name : name_list()) {
          netlist.add_input(name);
        }
      } else if (is_ident("output")) {
        advance();
        for (const auto& name : name_list()) {
          output_names.push_back(name);
        }
      } else if (is_ident("wire")) {
        advance();
        name_list();  // declarations are implicit in our netlist model
      } else if (is_ident("assign")) {
        advance();
        parse_assign();
      } else {
        lexer_.fail(token_.line,
                    "unsupported construct '" + token_.text + "'");
      }
    }

    resolve_pending();
    for (const auto& name : output_names) {
      const auto v = netlist.find_var(name);
      if (!v.has_value()) {
        throw ParseError(filename_, 0, "undriven output '" + name + "'");
      }
      netlist.mark_output(*v);
    }
    netlist.validate();
    return netlist;
  }

 private:
  // Expression AST (assignments may reference nets defined later, so we
  // parse to an AST first and elaborate after all assigns are known).
  struct Expr {
    enum class Kind { Ref, Const0, Const1, Not, And, Or, Xor, Mux };
    Kind kind;
    std::string ref;                         // Kind::Ref
    std::vector<std::unique_ptr<Expr>> ops;  // operands
    int line = 0;
  };

  void advance() { token_ = lexer_.next(); }

  bool is_ident(const std::string& s) const {
    return token_.kind == Token::Kind::Ident && token_.text == s;
  }
  bool is_op(const std::string& s) const {
    return token_.kind == Token::Kind::Op && token_.text == s;
  }
  void expect_ident(const std::string& s) {
    if (!is_ident(s)) {
      lexer_.fail(token_.line, "expected '" + s + "', got '" + token_.text + "'");
    }
    advance();
  }
  std::string expect_any_ident(const std::string& what) {
    if (token_.kind != Token::Kind::Ident) {
      lexer_.fail(token_.line, "expected " + what);
    }
    std::string name = token_.text;
    advance();
    return name;
  }
  void expect_op(const std::string& s) {
    if (!is_op(s)) {
      lexer_.fail(token_.line, "expected '" + s + "', got '" + token_.text + "'");
    }
    advance();
  }

  std::vector<std::string> name_list() {
    std::vector<std::string> names;
    names.push_back(expect_any_ident("net name"));
    while (is_op(",")) {
      advance();
      names.push_back(expect_any_ident("net name"));
    }
    expect_op(";");
    return names;
  }

  void parse_assign() {
    const std::string lhs = expect_any_ident("assign target");
    expect_op("=");
    auto rhs = parse_ternary();
    expect_op(";");
    if (!assigns_.emplace(lhs, std::move(rhs)).second) {
      throw ParseError(filename_, token_.line, "net '" + lhs + "' assigned twice");
    }
    assign_order_.push_back(lhs);
  }

  std::unique_ptr<Expr> make(Expr::Kind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = token_.line;
    return e;
  }

  std::unique_ptr<Expr> parse_ternary() {
    auto cond = parse_or();
    if (!is_op("?")) return cond;
    advance();
    auto then_e = parse_or();
    expect_op(":");
    auto else_e = parse_or();
    auto e = make(Expr::Kind::Mux);
    e->ops.push_back(std::move(cond));
    e->ops.push_back(std::move(else_e));  // MUX(s, d0, d1): d0 = else
    e->ops.push_back(std::move(then_e));
    return e;
  }

  std::unique_ptr<Expr> parse_or() {
    auto lhs = parse_xor();
    while (is_op("|")) {
      advance();
      auto e = make(Expr::Kind::Or);
      e->ops.push_back(std::move(lhs));
      e->ops.push_back(parse_xor());
      lhs = std::move(e);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_xor() {
    auto lhs = parse_and();
    while (is_op("^")) {
      advance();
      auto e = make(Expr::Kind::Xor);
      e->ops.push_back(std::move(lhs));
      e->ops.push_back(parse_and());
      lhs = std::move(e);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_and() {
    auto lhs = parse_unary();
    while (is_op("&")) {
      advance();
      auto e = make(Expr::Kind::And);
      e->ops.push_back(std::move(lhs));
      e->ops.push_back(parse_unary());
      lhs = std::move(e);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_unary() {
    if (is_op("~")) {
      advance();
      auto e = make(Expr::Kind::Not);
      e->ops.push_back(parse_unary());
      return e;
    }
    return parse_primary();
  }

  std::unique_ptr<Expr> parse_primary() {
    if (is_op("(")) {
      advance();
      auto e = parse_ternary();
      expect_op(")");
      return e;
    }
    if (token_.kind == Token::Kind::Const0) {
      advance();
      return make(Expr::Kind::Const0);
    }
    if (token_.kind == Token::Kind::Const1) {
      advance();
      return make(Expr::Kind::Const1);
    }
    auto e = make(Expr::Kind::Ref);
    e->ref = expect_any_ident("operand");
    return e;
  }

  // -- Elaboration ---------------------------------------------------------

  Var elaborate_net(const std::string& name) {
    if (const auto v = netlist_->find_var(name)) return *v;
    const auto it = assigns_.find(name);
    if (it == assigns_.end()) {
      throw ParseError(filename_, 0, "undefined net '" + name + "'");
    }
    if (elaborating_.count(name) != 0) {
      throw ParseError(filename_, it->second->line,
                       "combinational cycle through '" + name + "'");
    }
    elaborating_.insert(name);
    const Var v = elaborate_expr(*it->second, name);
    elaborating_.erase(name);
    return v;
  }

  Var elaborate_expr(const Expr& e, const std::string& name) {
    std::vector<Var> operands;
    for (const auto& op : e.ops) {
      if (op->kind == Expr::Kind::Ref) {
        operands.push_back(elaborate_net(op->ref));
      } else {
        operands.push_back(elaborate_expr(*op, ""));
      }
    }
    switch (e.kind) {
      case Expr::Kind::Ref:
        // Top-level alias: assign x = y;
        return netlist_->add_gate(CellType::Buf, {elaborate_net(e.ref)}, name);
      case Expr::Kind::Const0:
        return netlist_->add_gate(CellType::Const0, {}, name);
      case Expr::Kind::Const1:
        return netlist_->add_gate(CellType::Const1, {}, name);
      case Expr::Kind::Not:
        return netlist_->add_gate(CellType::Inv, operands, name);
      case Expr::Kind::And:
        return netlist_->add_gate(CellType::And, operands, name);
      case Expr::Kind::Or:
        return netlist_->add_gate(CellType::Or, operands, name);
      case Expr::Kind::Xor:
        return netlist_->add_gate(CellType::Xor, operands, name);
      case Expr::Kind::Mux:
        return netlist_->add_gate(CellType::Mux, operands, name);
    }
    throw ParseError(filename_, e.line, "bad expression");
  }

  void resolve_pending() {
    for (const auto& name : assign_order_) {
      netlist_->reserve_name(name);
    }
    for (const auto& name : assign_order_) {
      const auto existing = netlist_->find_var(name);
      if (existing.has_value() && netlist_->is_input(*existing)) {
        throw ParseError(filename_, assigns_.at(name)->line,
                         "net '" + name + "' is an input and cannot be "
                         "assigned");
      }
      elaborate_net(name);
    }
  }

  Lexer lexer_;
  std::string filename_;
  Token token_;
  Netlist* netlist_ = nullptr;
  std::unordered_map<std::string, std::unique_ptr<Expr>> assigns_;
  std::vector<std::string> assign_order_;
  std::unordered_set<std::string> elaborating_;
};

}  // namespace

Netlist read_verilog(const std::string& text, const std::string& filename) {
  VerilogParser parser(text, filename);
  return parser.parse();
}

void write_verilog_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  out << write_verilog(netlist);
}

Netlist read_verilog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_verilog(buffer.str(), path);
}

}  // namespace gfre::nl
