#include "netlist/io_verilog.hpp"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "frontend/cell_library.hpp"
#include "frontend/graph.hpp"
#include "frontend/source.hpp"
#include "opt/passes.hpp"
#include "util/error.hpp"

namespace gfre::nl {

using frontend::Loc;
using frontend::Token;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string verilog_ident(const std::string& name) {
  bool simple = !name.empty() &&
                (std::isalpha(static_cast<unsigned char>(name[0])) ||
                 name[0] == '_');
  for (char c : name) {
    if (!simple) break;
    simple = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
             c == '$';
  }
  if (simple) return name;
  return "\\" + name + " ";
}

namespace {

std::string gate_expression(const Netlist& netlist, const Gate& gate) {
  const auto name = [&](Var v) { return verilog_ident(netlist.var_name(v)); };
  const auto join = [&](const char* op) {
    std::string out;
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      if (i != 0) {
        out += " ";
        out += op;
        out += " ";
      }
      out += name(gate.inputs[i]);
    }
    return out;
  };
  const auto& in = gate.inputs;
  switch (gate.type) {
    case CellType::Const0: return "1'b0";
    case CellType::Const1: return "1'b1";
    case CellType::Buf: return name(in[0]);
    case CellType::Inv: return "~" + name(in[0]);
    case CellType::And: return join("&");
    case CellType::Or: return join("|");
    case CellType::Xor: return join("^");
    case CellType::Xnor: return "~(" + join("^") + ")";
    case CellType::Nand: return "~(" + join("&") + ")";
    case CellType::Nor: return "~(" + join("|") + ")";
    case CellType::Mux:
      return name(in[0]) + " ? " + name(in[2]) + " : " + name(in[1]);
    case CellType::Aoi21:
      return "~((" + name(in[0]) + " & " + name(in[1]) + ") | " +
             name(in[2]) + ")";
    case CellType::Oai21:
      return "~((" + name(in[0]) + " | " + name(in[1]) + ") & " +
             name(in[2]) + ")";
    case CellType::Aoi22:
      return "~((" + name(in[0]) + " & " + name(in[1]) + ") | (" +
             name(in[2]) + " & " + name(in[3]) + "))";
    case CellType::Oai22:
      return "~((" + name(in[0]) + " | " + name(in[1]) + ") & (" +
             name(in[2]) + " | " + name(in[3]) + "))";
    case CellType::Maj3:
      return "(" + name(in[0]) + " & " + name(in[1]) + ") | (" + name(in[0]) +
             " & " + name(in[2]) + ") | (" + name(in[1]) + " & " +
             name(in[2]) + ")";
  }
  throw InvalidArgument("unknown cell type");
}

}  // namespace

std::string write_verilog(const Netlist& netlist) {
  std::ostringstream out;
  out << "// gfre structural netlist — " << netlist.num_equations()
      << " gates\n";
  out << "module " << verilog_ident(netlist.name()) << "(";
  bool first = true;
  for (Var v : netlist.inputs()) {
    if (!first) out << ", ";
    first = false;
    out << verilog_ident(netlist.var_name(v));
  }
  for (Var v : netlist.outputs()) {
    if (!first) out << ", ";
    first = false;
    out << verilog_ident(netlist.var_name(v));
  }
  out << ");\n";
  for (Var v : netlist.inputs()) {
    out << "  input " << verilog_ident(netlist.var_name(v)) << ";\n";
  }
  for (Var v : netlist.outputs()) {
    out << "  output " << verilog_ident(netlist.var_name(v)) << ";\n";
  }
  // Internal wires: driven nets that are not outputs.
  std::vector<bool> is_output(netlist.num_vars(), false);
  for (Var v : netlist.outputs()) is_output[v] = true;
  for (const Gate& g : netlist.gates()) {
    if (!is_output[g.output]) {
      out << "  wire " << verilog_ident(netlist.var_name(g.output)) << ";\n";
    }
  }
  for (std::size_t g : netlist.topological_order()) {
    const Gate& gate = netlist.gate(g);
    out << "  assign " << verilog_ident(netlist.var_name(gate.output))
        << " = " << gate_expression(netlist, gate) << ";\n";
  }
  out << "endmodule\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Reader: module ASTs, then hierarchy elaboration onto a GraphBuilder.
// ---------------------------------------------------------------------------

namespace {

// -- Integer (parameter) expressions ---------------------------------------

struct IntExpr {
  enum class Kind { Num, Ref, Add, Sub, Mul, Div, Neg };
  Kind kind = Kind::Num;
  std::int64_t value = 0;   ///< Num
  std::string name;         ///< Ref (parameter)
  std::vector<IntExpr> operands;
  Loc loc;
};

using ParamEnv = std::map<std::string, std::int64_t>;

std::int64_t eval_int(const IntExpr& e, const ParamEnv& env) {
  switch (e.kind) {
    case IntExpr::Kind::Num:
      return e.value;
    case IntExpr::Kind::Ref: {
      auto it = env.find(e.name);
      if (it == env.end())
        frontend::fail_at(e.loc, "undefined parameter '" + e.name + "'");
      return it->second;
    }
    case IntExpr::Kind::Add:
      return eval_int(e.operands[0], env) + eval_int(e.operands[1], env);
    case IntExpr::Kind::Sub:
      return eval_int(e.operands[0], env) - eval_int(e.operands[1], env);
    case IntExpr::Kind::Mul:
      return eval_int(e.operands[0], env) * eval_int(e.operands[1], env);
    case IntExpr::Kind::Div: {
      std::int64_t d = eval_int(e.operands[1], env);
      if (d == 0) frontend::fail_at(e.loc, "division by zero in constant");
      return eval_int(e.operands[0], env) / d;
    }
    case IntExpr::Kind::Neg:
      return -eval_int(e.operands[0], env);
  }
  return 0;
}

// -- Net expressions -------------------------------------------------------

struct Expr {
  enum class Kind { Ref, Const, Not, And, Or, Xor, Mux };
  Kind kind = Kind::Ref;
  std::string name;               ///< Ref: net or vector name
  std::optional<IntExpr> index;   ///< Ref: bit-select
  bool escaped = false;           ///< Ref came from an escaped identifier
  bool const_one = false;         ///< Const
  std::vector<Expr> operands;
  Loc loc;
};

// -- Module AST ------------------------------------------------------------

enum class Dir { Input, Output, Wire };

struct Range {
  IntExpr msb;
  IntExpr lsb;
};

struct NetDecl {
  Dir dir = Dir::Wire;
  std::optional<Range> range;
  std::string name;
  Loc loc;
};

struct Param {
  bool local = false;
  std::string name;
  IntExpr value;
  Loc loc;
};

struct Assign {
  Expr lhs;  ///< must be Ref (optionally indexed)
  Expr rhs;
  Loc loc;
};

struct Conn {
  std::string formal;  ///< empty for positional
  std::optional<Expr> actual;
  Loc loc;
};

struct Instance {
  std::string target;  ///< module / cell / primitive name
  std::string name;    ///< instance name ("" for anonymous primitives)
  std::vector<std::pair<std::string, IntExpr>> overrides;
  std::vector<Conn> conns;
  bool named = false;
  Loc loc;
};

struct Item {
  enum class Kind { Assign, Instance };
  Kind kind;
  std::size_t index;  ///< into assigns / instances
};

struct Module {
  std::string name;
  std::vector<std::string> header_ports;
  std::vector<NetDecl> decls;
  std::vector<Param> params;
  std::vector<Assign> assigns;
  std::vector<Instance> instances;
  std::vector<Item> items;
  Loc loc;
};

bool is_primitive(const std::string& word) {
  return word == "and" || word == "or" || word == "nand" || word == "nor" ||
         word == "xor" || word == "xnor" || word == "not" || word == "buf";
}

CellType primitive_cell(const std::string& word) {
  if (word == "and") return CellType::And;
  if (word == "or") return CellType::Or;
  if (word == "nand") return CellType::Nand;
  if (word == "nor") return CellType::Nor;
  if (word == "xor") return CellType::Xor;
  if (word == "xnor") return CellType::Xnor;
  if (word == "not") return CellType::Inv;
  return CellType::Buf;
}

bool is_keyword(const std::string& word) {
  return word == "module" || word == "endmodule" || word == "input" ||
         word == "output" || word == "wire" || word == "assign" ||
         word == "parameter" || word == "localparam" || word == "inout";
}

// -- Parser ----------------------------------------------------------------

class VerilogParser {
 public:
  VerilogParser(const std::string& text, const std::string& filename)
      : lexer_(text, filename,
               frontend::LexSyntax{.slash_comments = true,
                                   .verilog_numbers = true,
                                   .escaped_idents = true,
                                   .directives = true},
               frontend::filesystem_include_resolver()) {}

  std::vector<Module> parse() {
    std::vector<Module> modules;
    while (lexer_.peek().kind != Token::Kind::End) {
      Token kw = lexer_.expect_ident("'module'");
      if (kw.text != "module" && kw.text != "macromodule")
        frontend::fail_at(kw.loc, "expected 'module', got '" + kw.text + "'");
      modules.push_back(parse_module(kw.loc));
    }
    return modules;
  }

 private:
  Module parse_module(const Loc& loc) {
    Module m;
    m.loc = loc;
    Token name = lexer_.expect_ident("module name");
    m.name = name.text;
    if (lexer_.accept_punct('#')) parse_param_ports(m);
    if (lexer_.accept_punct('(')) parse_port_list(m);
    lexer_.expect_punct(';');
    for (;;) {
      const Token& t = lexer_.peek();
      if (t.kind == Token::Kind::End)
        frontend::fail_at(m.loc, "missing 'endmodule'");
      if (t.kind != Token::Kind::Ident)
        frontend::fail_at(t.loc, "expected a module item, got '" + t.text +
                                     "'");
      if (t.text == "endmodule") {
        lexer_.next();
        break;
      }
      if (t.text == "inout")
        frontend::fail_at(t.loc, "inout ports are not supported");
      if (t.text == "input" || t.text == "output" || t.text == "wire") {
        parse_net_decl(m);
      } else if (t.text == "parameter" || t.text == "localparam") {
        parse_param_decl(m, t.text == "localparam");
      } else if (t.text == "assign") {
        parse_assign(m);
      } else {
        parse_instance(m);
      }
    }
    return m;
  }

  void parse_param_ports(Module& m) {
    // #( parameter NAME = expr, ... )
    lexer_.expect_punct('(');
    if (lexer_.accept_punct(')')) return;
    for (;;) {
      lexer_.accept_ident("parameter");
      Token name = lexer_.expect_ident("parameter name");
      lexer_.expect_punct('=');
      Param p;
      p.name = name.text;
      p.loc = name.loc;
      p.value = parse_int_expr();
      m.params.push_back(std::move(p));
      if (lexer_.accept_punct(')')) break;
      lexer_.expect_punct(',');
    }
  }

  void parse_port_list(Module& m) {
    if (lexer_.accept_punct(')')) return;
    // Non-ANSI (name list) or ANSI (direction-annotated declarations).
    Dir dir = Dir::Wire;
    bool ansi = false;
    std::optional<Range> range;
    for (;;) {
      const Token& t = lexer_.peek();
      if (t.kind != Token::Kind::Ident)
        frontend::fail_at(t.loc, "expected a port name, got '" + t.text + "'");
      if (t.text == "inout")
        frontend::fail_at(t.loc, "inout ports are not supported");
      if (t.text == "input" || t.text == "output" || t.text == "wire") {
        ansi = true;
        dir = t.text == "input" ? Dir::Input
              : t.text == "output" ? Dir::Output
                                   : Dir::Wire;
        lexer_.next();
        lexer_.accept_ident("wire");
        range = parse_optional_range();
      }
      Token name = lexer_.expect_ident("port name");
      m.header_ports.push_back(name.text);
      if (ansi) {
        NetDecl d;
        d.dir = dir;
        d.range = range;
        d.name = name.text;
        d.loc = name.loc;
        m.decls.push_back(std::move(d));
      }
      if (lexer_.accept_punct(')')) break;
      lexer_.expect_punct(',');
    }
  }

  std::optional<Range> parse_optional_range() {
    if (!lexer_.accept_punct('[')) return std::nullopt;
    Range r;
    r.msb = parse_int_expr();
    lexer_.expect_punct(':');
    r.lsb = parse_int_expr();
    lexer_.expect_punct(']');
    return r;
  }

  void parse_net_decl(Module& m) {
    Token kw = lexer_.next();
    Dir dir = kw.text == "input" ? Dir::Input
              : kw.text == "output" ? Dir::Output
                                    : Dir::Wire;
    std::optional<Range> range = parse_optional_range();
    for (;;) {
      Token name = lexer_.expect_ident("net name");
      NetDecl d;
      d.dir = dir;
      d.range = range;
      d.name = name.text;
      d.loc = name.loc;
      m.decls.push_back(std::move(d));
      if (lexer_.accept_punct(';')) break;
      lexer_.expect_punct(',');
    }
  }

  void parse_param_decl(Module& m, bool local) {
    lexer_.next();  // parameter / localparam
    for (;;) {
      Token name = lexer_.expect_ident("parameter name");
      lexer_.expect_punct('=');
      Param p;
      p.local = local;
      p.name = name.text;
      p.loc = name.loc;
      p.value = parse_int_expr();
      m.params.push_back(std::move(p));
      if (lexer_.accept_punct(';')) break;
      lexer_.expect_punct(',');
    }
  }

  void parse_assign(Module& m) {
    Token kw = lexer_.next();  // assign
    Assign a;
    a.loc = kw.loc;
    a.lhs = parse_primary();
    if (a.lhs.kind != Expr::Kind::Ref)
      frontend::fail_at(a.lhs.loc, "assign target must be a net");
    lexer_.expect_punct('=');
    a.rhs = parse_expr();
    lexer_.expect_punct(';');
    m.items.push_back({Item::Kind::Assign, m.assigns.size()});
    m.assigns.push_back(std::move(a));
  }

  void parse_instance(Module& m) {
    Token target = lexer_.expect_ident("module or cell name");
    if (is_keyword(target.text))
      frontend::fail_at(target.loc,
                        "unexpected keyword '" + target.text + "'");
    Instance inst;
    inst.target = target.text;
    inst.loc = target.loc;
    if (lexer_.accept_punct('#')) {
      lexer_.expect_punct('(');
      for (;;) {
        lexer_.expect_punct('.');
        Token pname = lexer_.expect_ident("parameter name");
        lexer_.expect_punct('(');
        inst.overrides.emplace_back(pname.text, parse_int_expr());
        lexer_.expect_punct(')');
        if (lexer_.accept_punct(')')) break;
        lexer_.expect_punct(',');
      }
    }
    if (lexer_.peek().kind == Token::Kind::Ident) {
      inst.name = lexer_.next().text;
    } else if (!is_primitive(inst.target)) {
      frontend::fail_at(lexer_.peek().loc, "expected an instance name");
    }
    lexer_.expect_punct('(');
    if (!lexer_.accept_punct(')')) {
      bool first = true;
      for (;;) {
        Conn conn;
        conn.loc = lexer_.peek().loc;
        if (lexer_.accept_punct('.')) {
          if (!first && !inst.named)
            frontend::fail_at(conn.loc,
                              "cannot mix named and positional connections");
          inst.named = true;
          Token formal = lexer_.expect_ident("port name");
          conn.formal = formal.text;
          lexer_.expect_punct('(');
          if (!lexer_.accept_punct(')')) {
            conn.actual = parse_expr();
            lexer_.expect_punct(')');
          }
        } else {
          if (inst.named)
            frontend::fail_at(conn.loc,
                              "cannot mix named and positional connections");
          conn.actual = parse_expr();
        }
        inst.conns.push_back(std::move(conn));
        first = false;
        if (lexer_.accept_punct(')')) break;
        lexer_.expect_punct(',');
      }
    }
    lexer_.expect_punct(';');
    m.items.push_back({Item::Kind::Instance, m.instances.size()});
    m.instances.push_back(std::move(inst));
  }

  // -- Expressions (precedence low to high: ?: | ^ & unary primary) ------

  Expr parse_expr() { return parse_ternary(); }

  Expr parse_ternary() {
    Expr cond = parse_or();
    if (!lexer_.accept_punct('?')) return cond;
    Expr then_e = parse_ternary();
    lexer_.expect_punct(':');
    Expr else_e = parse_ternary();
    Expr e;
    e.kind = Expr::Kind::Mux;
    e.loc = cond.loc;
    // Mux operand order is (select, d0, d1): select ? d1 : d0.
    e.operands = {std::move(cond), std::move(else_e), std::move(then_e)};
    return e;
  }

  Expr parse_or() {
    Expr e = parse_xor();
    while (lexer_.peek().is_punct('|')) {
      Loc loc = lexer_.next().loc;
      Expr rhs = parse_xor();
      Expr joined;
      joined.kind = Expr::Kind::Or;
      joined.loc = loc;
      joined.operands = {std::move(e), std::move(rhs)};
      e = std::move(joined);
    }
    return e;
  }

  Expr parse_xor() {
    Expr e = parse_and();
    while (lexer_.peek().is_punct('^')) {
      Loc loc = lexer_.next().loc;
      Expr rhs = parse_and();
      Expr joined;
      joined.kind = Expr::Kind::Xor;
      joined.loc = loc;
      joined.operands = {std::move(e), std::move(rhs)};
      e = std::move(joined);
    }
    return e;
  }

  Expr parse_and() {
    Expr e = parse_unary();
    while (lexer_.peek().is_punct('&')) {
      Loc loc = lexer_.next().loc;
      Expr rhs = parse_unary();
      Expr joined;
      joined.kind = Expr::Kind::And;
      joined.loc = loc;
      joined.operands = {std::move(e), std::move(rhs)};
      e = std::move(joined);
    }
    return e;
  }

  Expr parse_unary() {
    if (lexer_.peek().is_punct('~') || lexer_.peek().is_punct('!')) {
      Loc loc = lexer_.next().loc;
      Expr e;
      e.kind = Expr::Kind::Not;
      e.loc = loc;
      e.operands = {parse_unary()};
      return e;
    }
    return parse_primary();
  }

  Expr parse_primary() {
    const Token& t = lexer_.peek();
    Expr e;
    e.loc = t.loc;
    if (t.is_punct('(')) {
      lexer_.next();
      e = parse_expr();
      lexer_.expect_punct(')');
      return e;
    }
    if (t.kind == Token::Kind::Number) {
      Token num = lexer_.next();
      if (num.value > 1 || (num.width != 0 && num.width != 1))
        frontend::fail_at(num.loc,
                          "unsupported literal '" + num.text +
                              "' (only 1-bit constants allowed)");
      e.kind = Expr::Kind::Const;
      e.const_one = num.value == 1;
      return e;
    }
    if (t.kind == Token::Kind::Ident) {
      Token id = lexer_.next();
      if (is_keyword(id.text) && !id.escaped)
        frontend::fail_at(id.loc, "unexpected keyword '" + id.text + "'");
      e.kind = Expr::Kind::Ref;
      e.name = id.text;
      e.escaped = id.escaped;
      if (!id.escaped && lexer_.peek().is_punct('[')) {
        lexer_.next();
        e.index = parse_int_expr();
        lexer_.expect_punct(']');
      }
      return e;
    }
    frontend::fail_at(t.loc, "expected an operand, got '" + t.text + "'");
  }

  // -- Constant integer expressions ---------------------------------------

  IntExpr parse_int_expr() { return parse_int_add(); }

  IntExpr parse_int_add() {
    IntExpr e = parse_int_mul();
    for (;;) {
      bool add = lexer_.peek().is_punct('+');
      bool sub = lexer_.peek().is_punct('-');
      if (!add && !sub) return e;
      Loc loc = lexer_.next().loc;
      IntExpr rhs = parse_int_mul();
      IntExpr joined;
      joined.kind = add ? IntExpr::Kind::Add : IntExpr::Kind::Sub;
      joined.loc = loc;
      joined.operands = {std::move(e), std::move(rhs)};
      e = std::move(joined);
    }
  }

  IntExpr parse_int_mul() {
    IntExpr e = parse_int_unary();
    for (;;) {
      bool mul = lexer_.peek().is_punct('*');
      bool div = lexer_.peek().is_punct('/');
      if (!mul && !div) return e;
      Loc loc = lexer_.next().loc;
      IntExpr rhs = parse_int_unary();
      IntExpr joined;
      joined.kind = mul ? IntExpr::Kind::Mul : IntExpr::Kind::Div;
      joined.loc = loc;
      joined.operands = {std::move(e), std::move(rhs)};
      e = std::move(joined);
    }
  }

  IntExpr parse_int_unary() {
    const Token& t = lexer_.peek();
    IntExpr e;
    e.loc = t.loc;
    if (t.is_punct('-')) {
      lexer_.next();
      e.kind = IntExpr::Kind::Neg;
      e.operands = {parse_int_unary()};
      return e;
    }
    if (t.is_punct('(')) {
      lexer_.next();
      e = parse_int_expr();
      lexer_.expect_punct(')');
      return e;
    }
    if (t.kind == Token::Kind::Number) {
      Token num = lexer_.next();
      e.kind = IntExpr::Kind::Num;
      e.value = static_cast<std::int64_t>(num.value);
      return e;
    }
    if (t.kind == Token::Kind::Ident) {
      Token id = lexer_.next();
      e.kind = IntExpr::Kind::Ref;
      e.name = id.text;
      return e;
    }
    frontend::fail_at(t.loc,
                      "expected a constant expression, got '" + t.text + "'");
  }

  frontend::Lexer lexer_;
};

// -- Elaboration -----------------------------------------------------------

/// A module-scope symbol: a parameter value or a (possibly vector) net
/// whose bits are bound to flat (top-level) net names.
struct Symbol {
  bool vector_net = false;
  std::int64_t lsb = 0;  ///< smallest declared index (vectors)
  std::vector<std::string> bits;  ///< flat names; bits[i] = index lsb+i
  Dir dir = Dir::Wire;
  Loc loc;
};

struct Scope {
  std::string prefix;  ///< "" at top, "u0." below
  ParamEnv params;
  std::map<std::string, Symbol> nets;
};

class Elaborator {
 public:
  Elaborator(const std::vector<Module>& modules,
             const frontend::FrontendOptions& options,
             const std::string& filename)
      : options_(options), filename_(filename) {
    for (const Module& m : modules) {
      if (!by_name_.emplace(m.name, &m).second)
        frontend::fail_at(m.loc, "module '" + m.name + "' defined twice");
    }
  }

  Netlist run() {
    const Module& top = select_top();
    builder_ =
        std::make_unique<frontend::GraphBuilder>(top.name, filename_);
    Scope scope;
    elaborate_module(top, scope, /*overrides=*/{}, /*bindings=*/nullptr,
                     top.loc, /*is_top=*/true);
    return builder_->build();
  }

 private:
  const Module& select_top() {
    if (!options_.top.empty()) {
      auto it = by_name_.find(options_.top);
      if (it == by_name_.end())
        throw InvalidArgument("top module '" + options_.top + "' not found");
      return *it->second;
    }
    if (by_name_.size() == 1) return *by_name_.begin()->second;
    // The unique uninstantiated module is the top.
    std::unordered_set<std::string> instantiated;
    for (const auto& [name, m] : by_name_)
      for (const Instance& inst : m->instances)
        instantiated.insert(inst.target);
    const Module* top = nullptr;
    for (const auto& [name, m] : by_name_) {
      if (instantiated.count(name)) continue;
      if (top)
        throw InvalidArgument(
            "multiple top-level module candidates ('" + top->name + "', '" +
            name + "'); select one explicitly");
      top = m;
    }
    if (!top)
      throw InvalidArgument(
          "no top-level module (every module is instantiated)");
    return *top;
  }

  /// Elaborates `m` into the builder.  `bindings`, when non-null, maps
  /// formal port names to flat actual bit vectors.
  void elaborate_module(
      const Module& m, Scope& scope,
      const std::vector<std::pair<std::string, std::int64_t>>& overrides,
      const std::map<std::string, std::vector<std::string>>* bindings,
      const Loc& site, bool is_top = false) {
    if (path_.size() >= 64)
      frontend::fail_at(site, "module hierarchy too deep (limit 64)");
    path_.push_back(m.name);

    // Parameters: defaults in declaration order, overridden by name.
    for (const Param& p : m.params) {
      std::int64_t value = eval_int(p.value, scope.params);
      if (!p.local)
        for (const auto& [oname, ovalue] : overrides)
          if (oname == p.name) value = ovalue;
      if (!scope.params.emplace(p.name, value).second)
        frontend::fail_at(p.loc, "parameter '" + p.name + "' defined twice");
    }
    for (const auto& [oname, ovalue] : overrides) {
      bool known = false;
      for (const Param& p : m.params)
        known = known || (!p.local && p.name == oname);
      if (!known)
        frontend::fail_at(site, "module '" + m.name +
                                    "' has no parameter '" + oname + "'");
    }

    // Net declarations.
    std::unordered_set<std::string> header(m.header_ports.begin(),
                                           m.header_ports.end());
    for (const NetDecl& d : m.decls) {
      Symbol sym;
      sym.dir = d.dir;
      sym.loc = d.loc;
      if (d.range) {
        std::int64_t msb = eval_int(d.range->msb, scope.params);
        std::int64_t lsb = eval_int(d.range->lsb, scope.params);
        if (msb < lsb) std::swap(msb, lsb);
        if (msb - lsb + 1 > 4096)
          frontend::fail_at(d.loc, "vector '" + d.name + "' too wide");
        sym.vector_net = true;
        sym.lsb = lsb;
        for (std::int64_t i = lsb; i <= msb; ++i)
          sym.bits.push_back(scope.prefix + d.name + "[" +
                             std::to_string(i) + "]");
      } else {
        sym.bits.push_back(scope.prefix + d.name);
      }
      if (d.dir != Dir::Wire && !header.count(d.name))
        frontend::fail_at(d.loc, "port '" + d.name +
                                     "' is not in the module port list");
      // Port formals bound to parent actuals alias the parent nets.
      if (bindings && d.dir != Dir::Wire) {
        auto b = bindings->find(d.name);
        if (b != bindings->end()) {
          if (b->second.size() != sym.bits.size())
            frontend::fail_at(
                d.loc, "port '" + d.name + "' is " +
                           std::to_string(sym.bits.size()) +
                           " bits wide but connects to " +
                           std::to_string(b->second.size()) + " bits");
          sym.bits = b->second;
        }
      }
      auto it = scope.nets.find(d.name);
      if (it == scope.nets.end()) {
        scope.nets.emplace(d.name, std::move(sym));
      } else if (d.dir == Dir::Wire && it->second.dir != Dir::Wire) {
        // "output z; wire z;" — the wire redeclaration of a port is legal
        // non-ANSI style; the port symbol stays.
      } else {
        frontend::fail_at(d.loc, "net '" + d.name + "' declared twice");
      }
    }
    for (const std::string& port : m.header_ports) {
      auto it = scope.nets.find(port);
      if (it == scope.nets.end() || it->second.dir == Dir::Wire)
        frontend::fail_at(m.loc, "port '" + port +
                                     "' has no direction declaration");
    }

    // Primary IO is registered before the items elaborate, so driving an
    // input is diagnosed at the offending statement.  Header port order
    // defines bit order (vector bits LSB-first).
    if (is_top) {
      for (const std::string& port : m.header_ports) {
        const Symbol& sym = scope.nets.at(port);
        if (sym.dir == Dir::Input)
          for (const std::string& bit : sym.bits)
            builder_->add_input(bit, sym.loc);
      }
      for (const std::string& port : m.header_ports) {
        const Symbol& sym = scope.nets.at(port);
        if (sym.dir == Dir::Output)
          for (const std::string& bit : sym.bits)
            builder_->add_output(bit, sym.loc);
      }
    }

    // Items in source order.
    for (const Item& item : m.items) {
      if (item.kind == Item::Kind::Assign)
        elaborate_assign(m.assigns[item.index], scope);
      else
        elaborate_instance(m.instances[item.index], scope);
    }
    path_.pop_back();
  }

  // Resolves a Ref expression to a single flat bit name.
  std::string resolve_bit(const Expr& e, Scope& scope) {
    GFRE_ASSERT(e.kind == Expr::Kind::Ref, "resolve_bit on non-ref");
    Symbol* sym = lookup(e.name, scope, e.loc, /*implicit_ok=*/!e.index);
    if (e.index) {
      if (!sym->vector_net)
        frontend::fail_at(e.loc,
                          "bit-select on scalar net '" + e.name + "'");
      std::int64_t idx = eval_int(*e.index, scope.params);
      std::int64_t off = idx - sym->lsb;
      if (off < 0 || off >= static_cast<std::int64_t>(sym->bits.size()))
        frontend::fail_at(e.loc, "index " + std::to_string(idx) +
                                     " out of range for '" + e.name + "'");
      return sym->bits[static_cast<std::size_t>(off)];
    }
    if (sym->bits.size() != 1)
      frontend::fail_at(e.loc,
                        "vector net '" + e.name + "' used as a scalar");
    return sym->bits[0];
  }

  // Resolves a Ref to all its bits (vector actuals in port connections).
  std::vector<std::string> resolve_bits(const Expr& e, Scope& scope) {
    if (!e.index) {
      Symbol* sym = lookup(e.name, scope, e.loc, /*implicit_ok=*/true);
      return sym->bits;
    }
    return {resolve_bit(e, scope)};
  }

  /// Scope lookup; scalar nets referenced before declaration are created
  /// implicitly (matching common netlist-writer behavior).
  Symbol* lookup(const std::string& name, Scope& scope, const Loc& loc,
                 bool implicit_ok) {
    auto it = scope.nets.find(name);
    if (it != scope.nets.end()) return &it->second;
    if (scope.params.count(name))
      frontend::fail_at(loc, "parameter '" + name + "' used as a net");
    if (!implicit_ok)
      frontend::fail_at(loc, "undeclared vector net '" + name + "'");
    Symbol sym;
    sym.loc = loc;
    sym.bits.push_back(scope.prefix + name);
    return &scope.nets.emplace(name, std::move(sym)).first->second;
  }

  /// The flat net holding constant 0/1, creating its node on first use.
  std::string const_net(bool one) {
    std::string name = one ? "$const1" : "$const0";
    bool& made = one ? made_const1_ : made_const0_;
    if (!made) {
      builder_->add_node(
          name, {}, Loc{filename_, 0, 0},
          [one, name](Netlist& netlist, const std::vector<Var>&) {
            netlist.add_gate(one ? CellType::Const1 : CellType::Const0, {},
                             name);
          });
      made = true;
    }
    return name;
  }

  void elaborate_assign(const Assign& a, Scope& scope) {
    std::string lhs = resolve_bit(a.lhs, scope);
    // Resolve every leaf reference to its flat net name NOW — the emit
    // callback runs during build(), after this scope is gone.
    Expr rhs = flatten_expr(a.rhs, scope);
    std::vector<std::string> args;
    collect_refs(rhs, args);
    builder_->add_node(
        lhs, args, a.loc,
        [this, rhs, lhs](Netlist& netlist, const std::vector<Var>&) {
          emit_expr(rhs, netlist, lhs);
        });
  }

  /// Returns `e` with every Ref replaced by its resolved flat name.
  Expr flatten_expr(const Expr& e, Scope& scope) {
    Expr out = e;
    if (e.kind == Expr::Kind::Ref) {
      out.name = resolve_bit(e, scope);
      out.index.reset();
      return out;
    }
    for (Expr& op : out.operands) op = flatten_expr(op, scope);
    return out;
  }

  /// Appends every leaf Ref name in a flattened expr to `args`.
  void collect_refs(const Expr& e, std::vector<std::string>& args) {
    if (e.kind == Expr::Kind::Ref) {
      args.push_back(e.name);
      return;
    }
    for (const Expr& op : e.operands) collect_refs(op, args);
  }

  /// Emits gates for a flattened expr; the root gate takes `name` (may be
  /// "" = auto).
  Var emit_expr(const Expr& e, Netlist& netlist, const std::string& name) {
    switch (e.kind) {
      case Expr::Kind::Ref: {
        auto v = netlist.find_var(e.name);
        GFRE_ASSERT(v.has_value(), "unresolved argument '" << e.name << "'");
        if (name.empty()) return *v;
        return netlist.add_gate(CellType::Buf, {*v}, name);
      }
      case Expr::Kind::Const:
        return netlist.add_gate(
            e.const_one ? CellType::Const1 : CellType::Const0, {}, name);
      case Expr::Kind::Not:
        return netlist.add_gate(
            CellType::Inv, {emit_expr(e.operands[0], netlist, "")}, name);
      case Expr::Kind::And:
      case Expr::Kind::Or:
      case Expr::Kind::Xor: {
        CellType type = e.kind == Expr::Kind::And  ? CellType::And
                        : e.kind == Expr::Kind::Or ? CellType::Or
                                                   : CellType::Xor;
        Var a = emit_expr(e.operands[0], netlist, "");
        Var b = emit_expr(e.operands[1], netlist, "");
        return netlist.add_gate(type, {a, b}, name);
      }
      case Expr::Kind::Mux: {
        Var s = emit_expr(e.operands[0], netlist, "");
        Var d0 = emit_expr(e.operands[1], netlist, "");
        Var d1 = emit_expr(e.operands[2], netlist, "");
        return netlist.add_gate(CellType::Mux, {s, d0, d1}, name);
      }
    }
    GFRE_ASSERT(false, "unreachable expression kind");
    return 0;
  }

  void elaborate_instance(const Instance& inst, Scope& scope) {
    auto mod_it = by_name_.find(inst.target);
    if (mod_it != by_name_.end()) {
      elaborate_module_instance(inst, *mod_it->second, scope);
      return;
    }
    if (is_primitive(inst.target)) {
      elaborate_primitive(inst, scope);
      return;
    }
    const frontend::LibCell* cell =
        options_.library ? options_.library->find(inst.target) : nullptr;
    if (cell) {
      elaborate_cell(inst, *cell, scope);
      return;
    }
    if (options_.library)
      frontend::fail_at(inst.loc, "unknown module or cell '" + inst.target +
                                      "' (not in library '" +
                                      options_.library->name() + "')");
    frontend::fail_at(inst.loc, "unknown module '" + inst.target +
                                    "' (no cell library loaded)");
  }

  void elaborate_module_instance(const Instance& inst, const Module& child,
                                 Scope& scope) {
    for (const std::string& frame : path_)
      if (frame == child.name)
        frontend::fail_at(inst.loc, "recursive instantiation of module '" +
                                        child.name + "'");
    // Evaluate parameter overrides in the parent scope.
    std::vector<std::pair<std::string, std::int64_t>> overrides;
    for (const auto& [pname, pexpr] : inst.overrides)
      overrides.emplace_back(pname, eval_int(pexpr, scope.params));
    // Bind formals to flat actual bit vectors.
    std::map<std::string, std::vector<std::string>> bindings;
    auto bind = [&](const std::string& formal, const Conn& conn) {
      if (bindings.count(formal))
        frontend::fail_at(conn.loc,
                          "port '" + formal + "' connected twice");
      if (!conn.actual) return;  // explicitly unconnected
      bindings.emplace(formal, resolve_actual(*conn.actual, scope));
    };
    if (inst.named) {
      std::unordered_set<std::string> ports(child.header_ports.begin(),
                                            child.header_ports.end());
      for (const Conn& conn : inst.conns) {
        if (!ports.count(conn.formal))
          frontend::fail_at(conn.loc, "module '" + child.name +
                                          "' has no port '" + conn.formal +
                                          "'");
        bind(conn.formal, conn);
      }
    } else {
      if (inst.conns.size() > child.header_ports.size())
        frontend::fail_at(inst.loc,
                          "module '" + child.name + "' has " +
                              std::to_string(child.header_ports.size()) +
                              " ports but " +
                              std::to_string(inst.conns.size()) +
                              " connections given");
      for (std::size_t i = 0; i < inst.conns.size(); ++i)
        bind(child.header_ports[i], inst.conns[i]);
    }
    Scope child_scope;
    child_scope.prefix = scope.prefix + instance_prefix(inst) + ".";
    elaborate_module(child, child_scope, overrides, &bindings, inst.loc);
  }

  std::string instance_prefix(const Instance& inst) {
    if (!inst.name.empty()) return inst.name;
    return "$" + inst.target + std::to_string(anon_counter_++);
  }

  /// Resolves a port-connection actual to flat bit names.  Only nets,
  /// bit-selects and 1-bit constants are supported.
  std::vector<std::string> resolve_actual(const Expr& e, Scope& scope) {
    if (e.kind == Expr::Kind::Ref) return resolve_bits(e, scope);
    if (e.kind == Expr::Kind::Const) return {const_net(e.const_one)};
    frontend::fail_at(
        e.loc, "port connections must be nets, bit-selects or constants");
  }

  void elaborate_primitive(const Instance& inst, Scope& scope) {
    if (!inst.overrides.empty())
      frontend::fail_at(inst.loc, "gate primitive '" + inst.target +
                                      "' takes no parameters");
    if (inst.named)
      frontend::fail_at(inst.loc, "gate primitive '" + inst.target +
                                      "' uses positional connections");
    CellType type = primitive_cell(inst.target);
    if (inst.conns.size() < 1 || !arity_ok(type, inst.conns.size() - 1))
      frontend::fail_at(inst.loc,
                        "wrong connection count for gate primitive '" +
                            inst.target + "'");
    std::string out = connection_bit(inst.conns[0], scope);
    std::vector<std::string> args;
    for (std::size_t i = 1; i < inst.conns.size(); ++i)
      args.push_back(connection_bit(inst.conns[i], scope));
    builder_->add_node(out, args, inst.loc,
                       [type, out](Netlist& netlist,
                                   const std::vector<Var>& vars) {
                         netlist.add_gate(type, vars, out);
                       });
  }

  std::string connection_bit(const Conn& conn, Scope& scope) {
    if (!conn.actual)
      frontend::fail_at(conn.loc, "connection must not be empty here");
    if (conn.actual->kind == Expr::Kind::Const)
      return const_net(conn.actual->const_one);
    if (conn.actual->kind != Expr::Kind::Ref)
      frontend::fail_at(
          conn.actual->loc,
          "port connections must be nets, bit-selects or constants");
    return resolve_bit(*conn.actual, scope);
  }

  void elaborate_cell(const Instance& inst, const frontend::LibCell& cell,
                      Scope& scope) {
    if (!inst.overrides.empty())
      frontend::fail_at(inst.loc, "'" + cell.name +
                                      "' is a library cell and takes no "
                                      "parameters");
    // Collect one actual per input pin plus the output actual.
    std::vector<std::optional<std::string>> pin_actual(cell.inputs.size());
    std::optional<std::string> out_actual;
    if (inst.named) {
      for (const Conn& conn : inst.conns) {
        int pin = cell.find_input(conn.formal);
        if (pin >= 0) {
          if (pin_actual[static_cast<std::size_t>(pin)])
            frontend::fail_at(conn.loc,
                              "pin '" + conn.formal + "' connected twice");
          if (conn.actual)
            pin_actual[static_cast<std::size_t>(pin)] =
                connection_bit(conn, scope);
        } else if (conn.formal == cell.output) {
          if (out_actual)
            frontend::fail_at(conn.loc,
                              "pin '" + conn.formal + "' connected twice");
          if (conn.actual) out_actual = connection_bit(conn, scope);
        } else {
          frontend::fail_at(conn.loc, "cell '" + cell.name +
                                          "' has no pin '" + conn.formal +
                                          "'");
        }
      }
    } else {
      // Positional convention matches Verilog primitives: output first,
      // then inputs in pin order.
      if (inst.conns.size() != cell.inputs.size() + 1)
        frontend::fail_at(inst.loc,
                          "cell '" + cell.name + "' expects " +
                              std::to_string(cell.inputs.size() + 1) +
                              " connections (output first), got " +
                              std::to_string(inst.conns.size()));
      out_actual = connection_bit(inst.conns[0], scope);
      for (std::size_t i = 0; i < cell.inputs.size(); ++i)
        pin_actual[i] = connection_bit(inst.conns[i + 1], scope);
    }
    for (std::size_t i = 0; i < pin_actual.size(); ++i)
      if (!pin_actual[i])
        frontend::fail_at(inst.loc, "cell '" + cell.name + "' input pin '" +
                                        cell.inputs[i] + "' is unconnected");
    std::string out = out_actual
                          ? *out_actual
                          : scope.prefix + instance_prefix(inst) + "." +
                                cell.output;
    std::vector<std::string> args;
    for (const auto& a : pin_actual) args.push_back(*a);
    const frontend::LibCell* cell_ptr = &cell;
    builder_->add_node(
        out, args, inst.loc,
        [cell_ptr, out](Netlist& netlist, const std::vector<Var>& vars) {
          if (cell_ptr->builtin) {
            netlist.add_gate(*cell_ptr->builtin, vars, out);
            return;
          }
          // No builtin equivalent: expand the cell function structurally.
          std::unordered_map<std::string, Var> by_name;
          std::vector<std::string> actual_names;
          for (std::size_t i = 0; i < vars.size(); ++i) {
            std::string n = netlist.var_name(vars[i]);
            by_name.emplace(n, vars[i]);
            actual_names.push_back(std::move(n));
          }
          opt::EmitGateFn emit = [&](CellType type,
                                     std::vector<std::string> input_names,
                                     std::string output) {
            std::vector<Var> inputs;
            for (const std::string& n : input_names) {
              auto it = by_name.find(n);
              GFRE_ASSERT(it != by_name.end(),
                          "expansion references unknown net " << n);
              inputs.push_back(it->second);
            }
            Var v = netlist.add_gate(type, std::move(inputs), output);
            std::string vname = netlist.var_name(v);
            by_name.emplace(vname, v);
            return vname;
          };
          opt::expand_cell_function(*cell_ptr, actual_names, out, emit);
        });
  }

  const frontend::FrontendOptions& options_;
  std::string filename_;
  std::unordered_map<std::string, const Module*> by_name_;
  std::unique_ptr<frontend::GraphBuilder> builder_;
  std::vector<std::string> path_;  ///< module names on the elaboration stack
  bool made_const0_ = false;
  bool made_const1_ = false;
  unsigned anon_counter_ = 0;
};

}  // namespace

Netlist read_verilog(const std::string& text, const std::string& filename,
                     const frontend::FrontendOptions& options) {
  std::vector<Module> modules = VerilogParser(text, filename).parse();
  if (modules.empty())
    throw ParseError(filename, 1, "no module definition found");
  return Elaborator(modules, options, filename).run();
}

Netlist read_verilog(const std::string& text, const std::string& filename) {
  return read_verilog(text, filename, frontend::FrontendOptions{});
}

void write_verilog_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  out << write_verilog(netlist);
  if (!out) throw Error("failed writing '" + path + "'");
}

Netlist read_verilog_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return read_verilog(ss.str(), path);
}

}  // namespace gfre::nl
