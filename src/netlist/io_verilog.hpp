// Structural Verilog subset.
//
// Writer: emits one `assign` per gate using ~ & | ^ expressions (plus the
// ternary operator for MUX), which loads into any synthesis tool.
// Reader: parses the combinational subset — module header, input/output/
// wire declarations (scalar nets), and `assign` statements with the
// operators ~ & | ^ ?: and parentheses.  Expressions are decomposed into
// library cells on the fly.
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace gfre::nl {

/// Serializes a netlist as structural Verilog.
std::string write_verilog(const Netlist& netlist);

/// Parses the structural Verilog subset emitted by write_verilog (and
/// similar hand-written netlists).
Netlist read_verilog(const std::string& text,
                     const std::string& filename = "<verilog>");

void write_verilog_file(const Netlist& netlist, const std::string& path);
Netlist read_verilog_file(const std::string& path);

}  // namespace gfre::nl
