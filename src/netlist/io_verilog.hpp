// Structural Verilog subset.
//
// Writer: emits one `assign` per gate using ~ & | ^ expressions (plus the
// ternary operator for MUX), which loads into any synthesis tool.  Names
// that are not simple identifiers (flattened instance paths, vector bits)
// are emitted as escaped identifiers.
//
// Reader: parses structural netlists — multi-module files with hierarchy
// (module instantiation with named or positional connections, flattened
// with instance-path net naming), `include resolution with cycle
// detection, parameter/localparam with constant folding, vector ports and
// bit-selects, escaped identifiers, Verilog gate primitives (and/or/...),
// `assign` expressions with ~ & | ^ ?: — and, given a cell library,
// instances of standard cells resolved to gate subgraphs.  The supported
// subset is specified in docs/FRONTEND.md.
#pragma once

#include <string>

#include "frontend/frontend.hpp"
#include "netlist/netlist.hpp"

namespace gfre::nl {

/// Serializes a netlist as structural Verilog.
std::string write_verilog(const Netlist& netlist);

/// Parses the structural Verilog subset; `filename` is used in
/// diagnostics and as the base directory for `include resolution.
Netlist read_verilog(const std::string& text,
                     const std::string& filename = "<verilog>");
Netlist read_verilog(const std::string& text, const std::string& filename,
                     const frontend::FrontendOptions& options);

void write_verilog_file(const Netlist& netlist, const std::string& path);
Netlist read_verilog_file(const std::string& path);

/// Quotes `name` as a Verilog identifier: returned verbatim when it is a
/// simple identifier, otherwise escaped ("\name " — the trailing space is
/// part of the escape syntax).
std::string verilog_ident(const std::string& name);

}  // namespace gfre::nl
