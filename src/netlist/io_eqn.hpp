// The .eqn equation format.
//
// A line-oriented gate-equation format in the spirit of the "equations"
// inputs the paper's tool consumes (one polynomial-able equation per gate):
//
//   # GF(2^4) Mastrovito multiplier
//   model mastrovito_m4
//   input a0 a1 a2 a3 b0 b1 b2 b3;
//   output z0 z1 z2 z3;
//   s0 = AND(a0, b0);
//   t1 = XOR(s1, s4);
//   z0 = BUF(t9);
//
// Statements may appear in any order; the reader topologically orders the
// equations (and reports cycles as parse errors).
#pragma once

#include <iosfwd>
#include <string>

#include "frontend/frontend.hpp"
#include "netlist/netlist.hpp"

namespace gfre::nl {

/// Serializes a netlist to .eqn text.
std::string write_eqn(const Netlist& netlist);

/// Parses .eqn text; `filename` is used in diagnostics only.
Netlist read_eqn(const std::string& text,
                 const std::string& filename = "<eqn>");

/// Library-aware parse: operator names outside the builtin mnemonics are
/// resolved against `options.library` (single gate when the cell matches a
/// builtin truth table, structural expansion otherwise).
Netlist read_eqn(const std::string& text, const std::string& filename,
                 const frontend::FrontendOptions& options);

/// File helpers.
void write_eqn_file(const Netlist& netlist, const std::string& path);
Netlist read_eqn_file(const std::string& path);

}  // namespace gfre::nl
