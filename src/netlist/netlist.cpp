#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gfre::nl {

namespace {
// Tri-color DFS marks for topo_dfs.
constexpr unsigned char kWhite = 0;
constexpr unsigned char kGrey = 1;
constexpr unsigned char kBlack = 2;
}  // namespace

Var Netlist::new_var(const std::string& name, bool is_input) {
  std::string final_name = name;
  if (final_name.empty()) {
    // Auto names must not collide with explicit or reserved names (e.g. a
    // parsed file whose nets were themselves auto-named "n<k>" by a
    // previous tool, or output names a rebuilding pass will need later).
    do {
      final_name = "n" + std::to_string(next_auto_name_++);
    } while (by_name_.find(final_name) != by_name_.end() ||
             reserved_names_.find(final_name) != reserved_names_.end());
  }
  GFRE_ASSERT(by_name_.find(final_name) == by_name_.end(),
              "duplicate net name '" << final_name << "'");
  const Var v = static_cast<Var>(var_names_.size());
  var_names_.push_back(final_name);
  var_is_input_.push_back(is_input);
  driver_.push_back(0);
  by_name_.emplace(var_names_.back(), v);
  return v;
}

Var Netlist::add_input(const std::string& name) {
  const Var v = new_var(name, /*is_input=*/true);
  inputs_.push_back(v);
  return v;
}

Var Netlist::add_gate(CellType type, std::vector<Var> inputs,
                      const std::string& name) {
  GFRE_ASSERT(arity_ok(type, inputs.size()),
              "gate " << cell_name(type) << " cannot take " << inputs.size()
                      << " inputs");
  for (Var in : inputs) {
    GFRE_ASSERT(in < num_vars(), "gate input net " << in << " undeclared");
  }
  const Var out = new_var(name, /*is_input=*/false);
  gates_.push_back(Gate{type, out, std::move(inputs)});
  driver_[out] = gates_.size();  // index + 1
  return out;
}

void Netlist::mark_output(Var v) {
  GFRE_ASSERT(v < num_vars(), "output net " << v << " undeclared");
  outputs_.push_back(v);
}

void Netlist::reserve_name(const std::string& name) {
  if (!name.empty()) reserved_names_.insert(name);
}

const std::string& Netlist::var_name(Var v) const {
  GFRE_ASSERT(v < num_vars(), "net " << v << " undeclared");
  return var_names_[v];
}

bool Netlist::is_input(Var v) const {
  GFRE_ASSERT(v < num_vars(), "net " << v << " undeclared");
  return var_is_input_[v];
}

std::optional<std::size_t> Netlist::driver(Var v) const {
  GFRE_ASSERT(v < num_vars(), "net " << v << " undeclared");
  if (driver_[v] == 0) return std::nullopt;
  return driver_[v] - 1;
}

std::optional<Var> Netlist::find_var(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

void Netlist::topo_dfs(std::size_t root_gate,
                       std::vector<unsigned char>& mark,
                       std::vector<std::size_t>& order) const {
  // Iterative tri-color DFS appending gates reachable from root_gate to
  // `order` in topological order (inputs before users); throws on
  // combinational cycles.  Shared by the whole-netlist sort and the
  // per-output fanin cone.
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // (gate, next-in)
  mark[root_gate] = kGrey;
  stack.emplace_back(root_gate, 0);
  while (!stack.empty()) {
    auto& [g, next] = stack.back();
    const Gate& gate = gates_[g];
    bool descended = false;
    while (next < gate.inputs.size()) {
      const Var in = gate.inputs[next++];
      const auto drv = driver(in);
      if (!drv.has_value() || mark[*drv] == kBlack) continue;
      if (mark[*drv] == kGrey) {
        throw Error("combinational cycle through net '" + var_name(in) +
                    "' in netlist '" + name_ + "'");
      }
      mark[*drv] = kGrey;
      // emplace_back may reallocate, invalidating g/next/gate — leave the
      // inner loop now and re-bind from stack.back() on the next pass.
      stack.emplace_back(*drv, 0);
      descended = true;
      break;
    }
    if (!descended && next >= gate.inputs.size()) {
      mark[g] = kBlack;
      order.push_back(g);
      stack.pop_back();
    }
  }
}

std::vector<std::size_t> Netlist::topological_order() const {
  std::vector<unsigned char> mark(gates_.size(), kWhite);
  std::vector<std::size_t> order;
  order.reserve(gates_.size());
  for (std::size_t root = 0; root < gates_.size(); ++root) {
    if (mark[root] == kWhite) topo_dfs(root, mark, order);
  }
  return order;
}

std::vector<std::size_t> Netlist::fanin_cone(Var root) const {
  GFRE_ASSERT(root < num_vars(), "net " << root << " undeclared");
  // Cone-local DFS: per-bit extraction cost scales with the cone, not
  // with a whole-netlist topological sort — this runs once per output bit
  // on the Algorithm-1 hot path.
  std::vector<unsigned char> mark(gates_.size(), kWhite);
  std::vector<std::size_t> cone;
  const auto root_drv = driver(root);
  if (root_drv.has_value()) topo_dfs(*root_drv, mark, cone);
  return cone;
}

std::vector<Var> Netlist::cone_inputs(Var root) const {
  std::vector<bool> seen(num_vars(), false);
  std::vector<Var> result;
  std::vector<Var> work{root};
  while (!work.empty()) {
    const Var v = work.back();
    work.pop_back();
    if (seen[v]) continue;
    seen[v] = true;
    const auto drv = driver(v);
    if (!drv.has_value()) {
      if (var_is_input_[v]) result.push_back(v);
      continue;
    }
    for (Var in : gates_[*drv].inputs) work.push_back(in);
  }
  std::sort(result.begin(), result.end());
  return result;
}

unsigned Netlist::depth() const {
  std::vector<unsigned> level(num_vars(), 0);
  unsigned max_level = 0;
  for (std::size_t g : topological_order()) {
    const Gate& gate = gates_[g];
    unsigned lvl = 0;
    for (Var in : gate.inputs) lvl = std::max(lvl, level[in]);
    level[gate.output] = lvl + 1;
    max_level = std::max(max_level, lvl + 1);
  }
  return max_level;
}

std::unordered_map<CellType, std::size_t> Netlist::cell_histogram() const {
  std::unordered_map<CellType, std::size_t> histogram;
  for (const Gate& g : gates_) ++histogram[g.type];
  return histogram;
}

std::size_t Netlist::xor2_equivalent_count() const {
  std::size_t count = 0;
  for (const Gate& g : gates_) {
    if (g.type == CellType::Xor || g.type == CellType::Xnor) {
      count += g.inputs.size() - 1;
    }
  }
  return count;
}

void Netlist::validate() const {
  for (const Gate& g : gates_) {
    GFRE_ASSERT(arity_ok(g.type, g.inputs.size()),
                "gate on net '" << var_name(g.output) << "' has bad arity");
    GFRE_ASSERT(!var_is_input_[g.output],
                "net '" << var_name(g.output) << "' is both input and driven");
  }
  for (Var out : outputs_) {
    GFRE_ASSERT(out < num_vars(), "undeclared output net " << out);
  }
  // Every non-input net must have a driver; cycle check via topo sort.
  for (Var v = 0; v < num_vars(); ++v) {
    if (!var_is_input_[v] && driver_[v] == 0) {
      throw Error("net '" + var_names_[v] + "' has no driver in netlist '" +
                  name_ + "'");
    }
  }
  (void)topological_order();
}

}  // namespace gfre::nl
