#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gfre::nl {

namespace {
// Tri-color DFS marks for topo_dfs.
constexpr unsigned char kWhite = 0;
constexpr unsigned char kGrey = 1;
constexpr unsigned char kBlack = 2;
}  // namespace

Var Netlist::new_var(const std::string& name, bool is_input) {
  std::string final_name = name;
  if (final_name.empty()) {
    // Auto names must not collide with explicit or reserved names (e.g. a
    // parsed file whose nets were themselves auto-named "n<k>" by a
    // previous tool, or output names a rebuilding pass will need later).
    do {
      final_name = "n" + std::to_string(next_auto_name_++);
    } while (by_name_.find(final_name) != by_name_.end() ||
             reserved_names_.find(final_name) != reserved_names_.end());
  }
  GFRE_ASSERT(by_name_.find(final_name) == by_name_.end(),
              "duplicate net name '" << final_name << "'");
  const Var v = static_cast<Var>(var_names_.size());
  var_names_.push_back(final_name);
  var_is_input_.push_back(is_input);
  driver_.push_back(0);
  by_name_.emplace(var_names_.back(), v);
  return v;
}

Var Netlist::add_input(const std::string& name) {
  const Var v = new_var(name, /*is_input=*/true);
  inputs_.push_back(v);
  return v;
}

Var Netlist::add_gate(CellType type, std::vector<Var> inputs,
                      const std::string& name) {
  GFRE_ASSERT(arity_ok(type, inputs.size()),
              "gate " << cell_name(type) << " cannot take " << inputs.size()
                      << " inputs");
  for (Var in : inputs) {
    GFRE_ASSERT(in < num_vars(), "gate input net " << in << " undeclared");
  }
  const Var out = new_var(name, /*is_input=*/false);
  gates_.push_back(Gate{type, out, std::move(inputs)});
  driver_[out] = gates_.size();  // index + 1
  invalidate_cone_index();
  return out;
}

void Netlist::mark_output(Var v) {
  GFRE_ASSERT(v < num_vars(), "output net " << v << " undeclared");
  outputs_.push_back(v);
}

void Netlist::reserve_name(const std::string& name) {
  if (!name.empty()) reserved_names_.insert(name);
}

const std::string& Netlist::var_name(Var v) const {
  GFRE_ASSERT(v < num_vars(), "net " << v << " undeclared");
  return var_names_[v];
}

bool Netlist::is_input(Var v) const {
  GFRE_ASSERT(v < num_vars(), "net " << v << " undeclared");
  return var_is_input_[v];
}

std::optional<std::size_t> Netlist::driver(Var v) const {
  GFRE_ASSERT(v < num_vars(), "net " << v << " undeclared");
  if (driver_[v] == 0) return std::nullopt;
  return driver_[v] - 1;
}

std::optional<Var> Netlist::find_var(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

void Netlist::topo_dfs(std::size_t root_gate,
                       std::vector<unsigned char>& mark,
                       std::vector<std::size_t>& order) const {
  // Iterative tri-color DFS appending gates reachable from root_gate to
  // `order` in topological order (inputs before users); throws on
  // combinational cycles.  Backs the whole-netlist sort (which in turn
  // backs the cached cone index behind fanin_cone).
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // (gate, next-in)
  mark[root_gate] = kGrey;
  stack.emplace_back(root_gate, 0);
  while (!stack.empty()) {
    auto& [g, next] = stack.back();
    const Gate& gate = gates_[g];
    bool descended = false;
    while (next < gate.inputs.size()) {
      const Var in = gate.inputs[next++];
      const auto drv = driver(in);
      if (!drv.has_value() || mark[*drv] == kBlack) continue;
      if (mark[*drv] == kGrey) {
        throw Error("combinational cycle through net '" + var_name(in) +
                    "' in netlist '" + name_ + "'");
      }
      mark[*drv] = kGrey;
      // emplace_back may reallocate, invalidating g/next/gate — leave the
      // inner loop now and re-bind from stack.back() on the next pass.
      stack.emplace_back(*drv, 0);
      descended = true;
      break;
    }
    if (!descended && next >= gate.inputs.size()) {
      mark[g] = kBlack;
      order.push_back(g);
      stack.pop_back();
    }
  }
}

std::vector<std::size_t> Netlist::topological_order() const {
  std::vector<unsigned char> mark(gates_.size(), kWhite);
  std::vector<std::size_t> order;
  order.reserve(gates_.size());
  for (std::size_t root = 0; root < gates_.size(); ++root) {
    if (mark[root] == kWhite) topo_dfs(root, mark, order);
  }
  return order;
}

std::shared_ptr<const Netlist::ConeIndex> Netlist::cone_index() const {
  std::lock_guard<std::mutex> lock(cone_cache_.mutex);
  if (cone_cache_.index == nullptr) {
    auto index = std::make_shared<ConeIndex>();
    index->topo = topological_order();  // throws on combinational cycles
    index->pos_of.resize(gates_.size());
    for (std::size_t pos = 0; pos < index->topo.size(); ++pos) {
      index->pos_of[index->topo[pos]] = static_cast<std::uint32_t>(pos);
    }
    index->fanin_off.reserve(index->topo.size() + 1);
    for (std::size_t g : index->topo) {
      index->fanin_off.push_back(
          static_cast<std::uint32_t>(index->fanin_pos.size()));
      for (Var in : gates_[g].inputs) {
        if (driver_[in] != 0) {
          index->fanin_pos.push_back(index->pos_of[driver_[in] - 1]);
        }
      }
    }
    index->fanin_off.push_back(
        static_cast<std::uint32_t>(index->fanin_pos.size()));
    cone_cache_.index = std::move(index);
  }
  return cone_cache_.index;
}

void Netlist::invalidate_cone_index() {
  std::lock_guard<std::mutex> lock(cone_cache_.mutex);
  cone_cache_.index.reset();
}

std::vector<std::size_t> Netlist::fanin_cone(Var root) const {
  GFRE_ASSERT(root < num_vars(), "net " << root << " undeclared");
  const auto root_drv = driver(root);
  if (!root_drv.has_value()) return {};
  // Backward reachability sweep over the cached whole-netlist order: mark
  // the root's position in a dense bitmap, walk positions downward (every
  // driver sits at a strictly lower position), and mark each reached
  // gate's drivers.  Crypto-size multiplier cones cover most of the
  // netlist for every output bit, so this sequential pass over the
  // flattened adjacency beats a pointer-chasing DFS per bit by a wide
  // margin — and the L2-resident bitmap replaces a byte-per-gate mark
  // array.
  const auto index = cone_index();
  const std::size_t root_pos = index->pos_of[*root_drv];
  std::vector<std::uint64_t> in_cone((root_pos + 64) / 64, 0);
  in_cone[root_pos >> 6] |= std::uint64_t{1} << (root_pos & 63);
  const std::uint32_t* fanin_off = index->fanin_off.data();
  const std::uint32_t* fanin_pos = index->fanin_pos.data();
  std::size_t count = 0;
  // Sweep word-by-word downward, skipping all-zero words outright — small
  // cones in a large netlist (e.g. Mastrovito output bits) would otherwise
  // crawl position-by-position through vast empty stretches.  A nonzero
  // word is scanned bit-by-bit descending from a register image: marking
  // p's fanin can set bits in the current word (always strictly below p,
  // drivers sit at lower positions), and folding those into the register
  // keeps dense cones free of per-position memory round-trips.  (A
  // count-leading-zeros skip within the word measures slower on dense
  // cones: it chains each bit pick on the previous visit's marks.)
  for (std::size_t w = (root_pos >> 6) + 1; w-- > 0;) {
    std::uint64_t word = in_cone[w];
    if (word == 0) continue;  // all marks for w arrived before the sweep got here
    for (unsigned b = 64; b-- > 0;) {
      if (((word >> b) & 1u) == 0) continue;
      const std::size_t p = (w << 6) | b;
      ++count;
      for (std::uint32_t i = fanin_off[p]; i < fanin_off[p + 1]; ++i) {
        const std::uint32_t q = fanin_pos[i];
        const std::uint64_t bit = std::uint64_t{1} << (q & 63);
        if ((q >> 6) == w) {
          word |= bit;  // below b: the descending scan still reaches it
        } else {
          in_cone[q >> 6] |= bit;
        }
      }
    }
    in_cone[w] = word;
  }
  // Emit in increasing position: a restriction of a topological order is
  // a topological order of the cone.
  std::vector<std::size_t> cone;
  cone.reserve(count);
  for (std::size_t w = 0; w < in_cone.size(); ++w) {
    std::uint64_t bits = in_cone[w];
    while (bits != 0) {
      const std::size_t p =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      cone.push_back(index->topo[p]);
    }
  }
  return cone;
}

std::vector<Var> Netlist::cone_inputs(Var root) const {
  std::vector<bool> seen(num_vars(), false);
  std::vector<Var> result;
  std::vector<Var> work{root};
  while (!work.empty()) {
    const Var v = work.back();
    work.pop_back();
    if (seen[v]) continue;
    seen[v] = true;
    const auto drv = driver(v);
    if (!drv.has_value()) {
      if (var_is_input_[v]) result.push_back(v);
      continue;
    }
    for (Var in : gates_[*drv].inputs) work.push_back(in);
  }
  std::sort(result.begin(), result.end());
  return result;
}

unsigned Netlist::depth() const {
  std::vector<unsigned> level(num_vars(), 0);
  unsigned max_level = 0;
  for (std::size_t g : topological_order()) {
    const Gate& gate = gates_[g];
    unsigned lvl = 0;
    for (Var in : gate.inputs) lvl = std::max(lvl, level[in]);
    level[gate.output] = lvl + 1;
    max_level = std::max(max_level, lvl + 1);
  }
  return max_level;
}

std::unordered_map<CellType, std::size_t> Netlist::cell_histogram() const {
  std::unordered_map<CellType, std::size_t> histogram;
  for (const Gate& g : gates_) ++histogram[g.type];
  return histogram;
}

std::size_t Netlist::xor2_equivalent_count() const {
  std::size_t count = 0;
  for (const Gate& g : gates_) {
    if (g.type == CellType::Xor || g.type == CellType::Xnor) {
      count += g.inputs.size() - 1;
    }
  }
  return count;
}

void Netlist::validate() const {
  for (const Gate& g : gates_) {
    GFRE_ASSERT(arity_ok(g.type, g.inputs.size()),
                "gate on net '" << var_name(g.output) << "' has bad arity");
    GFRE_ASSERT(!var_is_input_[g.output],
                "net '" << var_name(g.output) << "' is both input and driven");
  }
  for (Var out : outputs_) {
    GFRE_ASSERT(out < num_vars(), "undeclared output net " << out);
  }
  // Every non-input net must have a driver; cycle check via topo sort.
  for (Var v = 0; v < num_vars(); ++v) {
    if (!var_is_input_[v] && driver_[v] == 0) {
      throw Error("net '" + var_names_[v] + "' has no driver in netlist '" +
                  name_ + "'");
    }
  }
  (void)topological_order();
}

}  // namespace gfre::nl
