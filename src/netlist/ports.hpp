// Word-level port discovery.
//
// Multiplier netlists expose bit-vector operands as individually named nets
// (a0..a{m-1}, b0.., z0..).  The reverse-engineering flow needs to know
// which nets form the A word, the B word and the Z word — this module
// groups nets by "<base><index>" naming, the convention used by both our
// generators and the paper's benchmark netlists.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace gfre::nl {

/// A named bit-vector: bits[i] is the net for <base><i>.
struct WordPort {
  std::string base;
  std::vector<Var> bits;

  unsigned width() const { return static_cast<unsigned>(bits.size()); }
};

/// Collects nets named base0, base1, ..., base{k-1}; requires the index
/// range to be dense starting at 0.  Bracket-style names ("base[0]", the
/// flattened-Verilog vector-port convention) are accepted per index when
/// the suffix-style name is absent.  Returns nullopt if neither base0 nor
/// base[0] exists.
std::optional<WordPort> find_word_port(const Netlist& netlist,
                                       const std::string& base);

/// Groups *all* primary inputs (or outputs) into word ports by splitting a
/// trailing "<digits>" or "[<digits>]" index.  Bases whose indices are not
/// dense from 0 are dropped.
std::vector<WordPort> input_word_ports(const Netlist& netlist);
std::vector<WordPort> output_word_ports(const Netlist& netlist);

/// The standard multiplier interface: A and B input words and the Z output
/// word, all of width m.
struct MultiplierPorts {
  WordPort a;
  WordPort b;
  WordPort z;

  unsigned m() const { return z.width(); }
};

/// Locates a multiplier interface with the given base names; throws
/// InvalidArgument with a diagnostic when widths disagree or ports are
/// missing.
MultiplierPorts multiplier_ports(const Netlist& netlist,
                                 const std::string& a_base = "a",
                                 const std::string& b_base = "b",
                                 const std::string& z_base = "z");

/// Infers the multiplier interface without knowing the base names: the
/// inputs must group into exactly two same-width word ports covering every
/// primary input, and the outputs into one word port of that width covering
/// every primary output.  Returns nullopt when the netlist does not have
/// that shape (the operand roles a-vs-b are symmetric for multiplication,
/// so the lexicographically smaller base is assigned to a).
std::optional<MultiplierPorts> infer_multiplier_ports(const Netlist& netlist);

}  // namespace gfre::nl
