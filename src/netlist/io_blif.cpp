#include "netlist/io_blif.hpp"

#include <array>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "frontend/graph.hpp"
#include "frontend/source.hpp"
#include "util/error.hpp"

namespace gfre::nl {

namespace {

// -- Writing ---------------------------------------------------------------

/// Emits the SOP cover of a cell.  Rows are over the gate's inputs in order;
/// the final column is the output value.
void write_cover(std::ostream& out, const Gate& gate) {
  const std::size_t n = gate.inputs.size();
  switch (gate.type) {
    case CellType::Const0:
      // Empty cover = constant 0.
      return;
    case CellType::Const1:
      out << "1\n";
      return;
    case CellType::Buf:
      out << "1 1\n";
      return;
    case CellType::Inv:
      out << "0 1\n";
      return;
    case CellType::And:
      out << std::string(n, '1') << " 1\n";
      return;
    case CellType::Nand:
      out << std::string(n, '1') << " 0\n";
      return;
    case CellType::Or:
      for (std::size_t i = 0; i < n; ++i) {
        std::string row(n, '-');
        row[i] = '1';
        out << row << " 1\n";
      }
      return;
    case CellType::Nor:
      out << std::string(n, '0') << " 1\n";
      return;
    default:
      break;
  }
  // Generic fallback: enumerate the truth table rows evaluating to 1.
  GFRE_ASSERT(n <= 8, "cover enumeration too wide");
  std::array<bool, 8> in{};
  for (std::size_t row = 0; row < (std::size_t{1} << n); ++row) {
    for (std::size_t i = 0; i < n; ++i) in[i] = (row >> i) & 1;
    if (eval_cell(gate.type, std::span<const bool>(in.data(), n))) {
      std::string bits(n, '0');
      for (std::size_t i = 0; i < n; ++i) {
        if (in[i]) bits[i] = '1';
      }
      out << bits << " 1\n";
    }
  }
}

// -- Reading ---------------------------------------------------------------

struct NamesNode {
  std::vector<std::string> signals;  // inputs..., output last
  std::vector<std::string> rows;     // cover rows like "1-0 1"
  frontend::Loc loc;
};

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream iss(line);
  std::string token;
  while (iss >> token) tokens.push_back(token);
  return tokens;
}

/// Builds gates for one .names node.  `inputs` are the resolved argument
/// nets (cover columns, in order).  Shared `inv_cache` keeps one INV per
/// inverted literal across the whole file.
void synthesize_node(Netlist& netlist, const NamesNode& node,
                     const std::vector<Var>& inputs,
                     std::unordered_map<Var, Var>& inv_cache) {
  const std::size_t n = node.signals.size() - 1;
  const std::string& out_name = node.signals.back();

  auto inverted = [&](Var v) -> Var {
    const auto it = inv_cache.find(v);
    if (it != inv_cache.end()) return it->second;
    const Var inv = netlist.add_gate(CellType::Inv, {v});
    inv_cache.emplace(v, inv);
    return inv;
  };

  // Parse rows into (mask, polarity) pairs.
  struct Row {
    std::string bits;
    bool value;
  };
  std::vector<Row> rows;
  for (const auto& text : node.rows) {
    auto tokens = split_ws(text);
    if (n == 0) {
      if (tokens.size() != 1 || (tokens[0] != "0" && tokens[0] != "1")) {
        frontend::fail_at(node.loc, "bad constant cover row");
      }
      rows.push_back(Row{"", tokens[0] == "1"});
      continue;
    }
    if (tokens.size() != 2 || tokens[0].size() != n ||
        (tokens[1] != "0" && tokens[1] != "1")) {
      frontend::fail_at(node.loc, "bad cover row '" + text + "'");
    }
    rows.push_back(Row{tokens[0], tokens[1] == "1"});
  }

  // All rows must share one output polarity (standard BLIF).
  bool polarity = true;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i == 0) {
      polarity = rows[i].value;
    } else if (rows[i].value != polarity) {
      frontend::fail_at(node.loc, "mixed cover polarities");
    }
  }

  if (rows.empty()) {
    netlist.add_gate(CellType::Const0, {}, out_name);
    return;
  }
  if (n == 0) {
    netlist.add_gate(polarity ? CellType::Const1 : CellType::Const0, {},
                     out_name);
    return;
  }

  // Each row -> product term; OR of terms; invert if polarity is 0.
  std::vector<Var> terms;
  for (const auto& row : rows) {
    std::vector<Var> literals;
    for (std::size_t i = 0; i < n; ++i) {
      if (row.bits[i] == '1') {
        literals.push_back(inputs[i]);
      } else if (row.bits[i] == '0') {
        literals.push_back(inverted(inputs[i]));
      } else if (row.bits[i] != '-') {
        frontend::fail_at(node.loc, "bad cover literal '" + row.bits + "'");
      }
    }
    if (literals.empty()) {
      // Row of all don't-cares: tautology.
      terms.push_back(netlist.add_gate(CellType::Const1, {}));
    } else if (literals.size() == 1) {
      terms.push_back(literals[0]);
    } else {
      terms.push_back(netlist.add_gate(CellType::And, literals));
    }
  }

  // OR chain (bounded arity); final gate carries the node's output name.
  auto reduce_or = [&](std::vector<Var> operands, const std::string& name,
                       bool invert) -> Var {
    while (operands.size() > 4) {
      std::vector<Var> next;
      for (std::size_t i = 0; i < operands.size(); i += 4) {
        const std::size_t chunk = std::min<std::size_t>(4, operands.size() - i);
        if (chunk == 1) {
          next.push_back(operands[i]);
        } else {
          next.push_back(netlist.add_gate(
              CellType::Or,
              std::vector<Var>(operands.begin() + i,
                               operands.begin() + i + chunk)));
        }
      }
      operands = std::move(next);
    }
    if (operands.size() == 1) {
      return netlist.add_gate(invert ? CellType::Inv : CellType::Buf,
                              {operands[0]}, name);
    }
    return netlist.add_gate(invert ? CellType::Nor : CellType::Or, operands,
                            name);
  };

  reduce_or(std::move(terms), out_name, !polarity);
}

}  // namespace

std::string write_blif(const Netlist& netlist) {
  std::ostringstream out;
  out << ".model " << netlist.name() << "\n";
  out << ".inputs";
  for (Var v : netlist.inputs()) out << " " << netlist.var_name(v);
  out << "\n.outputs";
  for (Var v : netlist.outputs()) out << " " << netlist.var_name(v);
  out << "\n";
  for (std::size_t g : netlist.topological_order()) {
    const Gate& gate = netlist.gate(g);
    out << ".names";
    for (Var in : gate.inputs) out << " " << netlist.var_name(in);
    out << " " << netlist.var_name(gate.output) << "\n";
    write_cover(out, gate);
  }
  out << ".end\n";
  return out.str();
}

Netlist read_blif(const std::string& text, const std::string& filename) {
  frontend::LineScanner scanner(
      text, filename,
      frontend::LineSyntax{.hash_comments = true, .slash_comments = false,
                           .block_comments = true,
                           .backslash_continuation = true});
  std::string model = "top";
  frontend::GraphBuilder builder(model, filename);
  // One INV per inverted literal, shared across the whole file.  On the
  // heap because node emit closures run inside builder.build(), after this
  // frame may have created many of them.
  auto inv_cache = std::make_shared<std::unordered_map<Var, Var>>();
  // The .names block being collected: rows attach to the last node until
  // the next directive.
  std::shared_ptr<NamesNode> current;

  auto finish_current = [&]() {
    if (!current) return;
    std::shared_ptr<NamesNode> node = std::move(current);
    std::vector<std::string> args(node->signals.begin(),
                                  node->signals.end() - 1);
    std::string out_name = node->signals.back();
    builder.add_node(std::move(out_name), std::move(args), node->loc,
                     [node, inv_cache](Netlist& netlist,
                                       const std::vector<Var>& inputs) {
                       synthesize_node(netlist, *node, inputs, *inv_cache);
                     });
  };

  while (auto logical = scanner.next()) {
    frontend::Loc loc{filename, logical->line, 0};
    auto tokens = split_ws(logical->text);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];
    if (keyword == ".model") {
      finish_current();
      if (tokens.size() >= 2) model = tokens[1];
    } else if (keyword == ".inputs") {
      finish_current();
      for (std::size_t i = 1; i < tokens.size(); ++i)
        builder.add_input(tokens[i], loc);
    } else if (keyword == ".outputs") {
      finish_current();
      for (std::size_t i = 1; i < tokens.size(); ++i)
        builder.add_output(tokens[i], loc);
    } else if (keyword == ".names") {
      finish_current();
      if (tokens.size() < 2) frontend::fail_at(loc, ".names without signals");
      current = std::make_shared<NamesNode>();
      current->signals.assign(tokens.begin() + 1, tokens.end());
      current->loc = loc;
    } else if (keyword == ".end") {
      finish_current();
    } else if (keyword[0] == '.') {
      frontend::fail_at(loc, "unsupported BLIF construct '" + keyword + "'");
    } else {
      if (!current) frontend::fail_at(loc, "cover row outside .names");
      current->rows.push_back(logical->text);
    }
  }
  finish_current();

  Netlist netlist = builder.build();
  netlist.set_name(model);
  return netlist;
}

void write_blif_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  out << write_blif(netlist);
}

Netlist read_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_blif(buffer.str(), path);
}

}  // namespace gfre::nl
