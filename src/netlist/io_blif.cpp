#include "netlist/io_blif.hpp"

#include <array>
#include <cctype>
#include <fstream>
#include <functional>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"

namespace gfre::nl {

namespace {

// -- Writing ---------------------------------------------------------------

/// Emits the SOP cover of a cell.  Rows are over the gate's inputs in order;
/// the final column is the output value.
void write_cover(std::ostream& out, const Gate& gate) {
  const std::size_t n = gate.inputs.size();
  switch (gate.type) {
    case CellType::Const0:
      // Empty cover = constant 0.
      return;
    case CellType::Const1:
      out << "1\n";
      return;
    case CellType::Buf:
      out << "1 1\n";
      return;
    case CellType::Inv:
      out << "0 1\n";
      return;
    case CellType::And:
      out << std::string(n, '1') << " 1\n";
      return;
    case CellType::Nand:
      out << std::string(n, '1') << " 0\n";
      return;
    case CellType::Or:
      for (std::size_t i = 0; i < n; ++i) {
        std::string row(n, '-');
        row[i] = '1';
        out << row << " 1\n";
      }
      return;
    case CellType::Nor:
      out << std::string(n, '0') << " 1\n";
      return;
    default:
      break;
  }
  // Generic fallback: enumerate the truth table rows evaluating to 1.
  GFRE_ASSERT(n <= 8, "cover enumeration too wide");
  std::array<bool, 8> in{};
  for (std::size_t row = 0; row < (std::size_t{1} << n); ++row) {
    for (std::size_t i = 0; i < n; ++i) in[i] = (row >> i) & 1;
    if (eval_cell(gate.type, std::span<const bool>(in.data(), n))) {
      std::string bits(n, '0');
      for (std::size_t i = 0; i < n; ++i) {
        if (in[i]) bits[i] = '1';
      }
      out << bits << " 1\n";
    }
  }
}

// -- Reading ---------------------------------------------------------------

struct NamesNode {
  std::vector<std::string> signals;  // inputs..., output last
  std::vector<std::string> rows;     // cover rows like "1-0 1"
  int line;
};

struct RawBlif {
  std::string model = "top";
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<NamesNode> nodes;
};

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream iss(line);
  std::string token;
  while (iss >> token) tokens.push_back(token);
  return tokens;
}

RawBlif scan(const std::string& text, const std::string& filename) {
  RawBlif raw;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  std::string pending;  // handles "\" continuations
  int pending_line = 0;
  NamesNode* current = nullptr;

  auto process = [&](const std::string& full, int at_line) {
    if (full.empty()) return;
    if (full[0] == '#') return;
    auto tokens = split_ws(full);
    if (tokens.empty()) return;
    const std::string& keyword = tokens[0];
    if (keyword == ".model") {
      if (tokens.size() >= 2) raw.model = tokens[1];
      current = nullptr;
    } else if (keyword == ".inputs") {
      raw.inputs.insert(raw.inputs.end(), tokens.begin() + 1, tokens.end());
      current = nullptr;
    } else if (keyword == ".outputs") {
      raw.outputs.insert(raw.outputs.end(), tokens.begin() + 1, tokens.end());
      current = nullptr;
    } else if (keyword == ".names") {
      NamesNode node;
      node.signals.assign(tokens.begin() + 1, tokens.end());
      node.line = at_line;
      if (node.signals.empty()) {
        throw ParseError(filename, at_line, ".names without signals");
      }
      raw.nodes.push_back(std::move(node));
      current = &raw.nodes.back();
    } else if (keyword == ".end") {
      current = nullptr;
    } else if (keyword[0] == '.') {
      throw ParseError(filename, at_line,
                       "unsupported BLIF construct '" + keyword + "'");
    } else {
      if (current == nullptr) {
        throw ParseError(filename, at_line, "cover row outside .names");
      }
      current->rows.push_back(full);
    }
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty() && line.back() == '\\') {
      if (pending.empty()) pending_line = line_no;
      pending += line.substr(0, line.size() - 1) + " ";
      continue;
    }
    if (!pending.empty()) {
      process(pending + line, pending_line);
      pending.clear();
    } else {
      process(line, line_no);
    }
  }
  if (!pending.empty()) process(pending, pending_line);
  return raw;
}

/// Builds gates for one .names node once all its inputs exist.
void synthesize_node(Netlist& netlist, const NamesNode& node,
                     const std::string& filename,
                     std::unordered_map<Var, Var>& inv_cache) {
  const std::size_t n = node.signals.size() - 1;
  const std::string& out_name = node.signals.back();

  std::vector<Var> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = netlist.find_var(node.signals[i]);
    GFRE_ASSERT(v.has_value(), "blif node input should exist by now");
    inputs.push_back(*v);
  }

  auto inverted = [&](Var v) -> Var {
    const auto it = inv_cache.find(v);
    if (it != inv_cache.end()) return it->second;
    const Var inv = netlist.add_gate(CellType::Inv, {v});
    inv_cache.emplace(v, inv);
    return inv;
  };

  // Parse rows into (mask, polarity) pairs.
  struct Row {
    std::string bits;
    bool value;
  };
  std::vector<Row> rows;
  for (const auto& text : node.rows) {
    auto tokens = split_ws(text);
    if (n == 0) {
      if (tokens.size() != 1 || (tokens[0] != "0" && tokens[0] != "1")) {
        throw ParseError(filename, node.line, "bad constant cover row");
      }
      rows.push_back(Row{"", tokens[0] == "1"});
      continue;
    }
    if (tokens.size() != 2 || tokens[0].size() != n ||
        (tokens[1] != "0" && tokens[1] != "1")) {
      throw ParseError(filename, node.line, "bad cover row '" + text + "'");
    }
    rows.push_back(Row{tokens[0], tokens[1] == "1"});
  }

  // All rows must share one output polarity (standard BLIF).
  bool polarity = true;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i == 0) {
      polarity = rows[i].value;
    } else if (rows[i].value != polarity) {
      throw ParseError(filename, node.line, "mixed cover polarities");
    }
  }

  if (rows.empty()) {
    netlist.add_gate(CellType::Const0, {}, out_name);
    return;
  }
  if (n == 0) {
    netlist.add_gate(polarity ? CellType::Const1 : CellType::Const0, {},
                     out_name);
    return;
  }

  // Each row -> product term; OR of terms; invert if polarity is 0.
  std::vector<Var> terms;
  for (const auto& row : rows) {
    std::vector<Var> literals;
    for (std::size_t i = 0; i < n; ++i) {
      if (row.bits[i] == '1') {
        literals.push_back(inputs[i]);
      } else if (row.bits[i] == '0') {
        literals.push_back(inverted(inputs[i]));
      } else if (row.bits[i] != '-') {
        throw ParseError(filename, node.line,
                         "bad cover literal '" + row.bits + "'");
      }
    }
    if (literals.empty()) {
      // Row of all don't-cares: tautology.
      terms.push_back(netlist.add_gate(CellType::Const1, {}));
    } else if (literals.size() == 1) {
      terms.push_back(literals[0]);
    } else {
      terms.push_back(netlist.add_gate(CellType::And, literals));
    }
  }

  // OR chain (bounded arity); final gate carries the node's output name.
  auto reduce_or = [&](std::vector<Var> operands, const std::string& name,
                       bool invert) -> Var {
    while (operands.size() > 4) {
      std::vector<Var> next;
      for (std::size_t i = 0; i < operands.size(); i += 4) {
        const std::size_t chunk = std::min<std::size_t>(4, operands.size() - i);
        if (chunk == 1) {
          next.push_back(operands[i]);
        } else {
          next.push_back(netlist.add_gate(
              CellType::Or,
              std::vector<Var>(operands.begin() + i,
                               operands.begin() + i + chunk)));
        }
      }
      operands = std::move(next);
    }
    if (operands.size() == 1) {
      return netlist.add_gate(invert ? CellType::Inv : CellType::Buf,
                              {operands[0]}, name);
    }
    return netlist.add_gate(invert ? CellType::Nor : CellType::Or, operands,
                            name);
  };

  reduce_or(std::move(terms), out_name, !polarity);
}

}  // namespace

std::string write_blif(const Netlist& netlist) {
  std::ostringstream out;
  out << ".model " << netlist.name() << "\n";
  out << ".inputs";
  for (Var v : netlist.inputs()) out << " " << netlist.var_name(v);
  out << "\n.outputs";
  for (Var v : netlist.outputs()) out << " " << netlist.var_name(v);
  out << "\n";
  for (std::size_t g : netlist.topological_order()) {
    const Gate& gate = netlist.gate(g);
    out << ".names";
    for (Var in : gate.inputs) out << " " << netlist.var_name(in);
    out << " " << netlist.var_name(gate.output) << "\n";
    write_cover(out, gate);
  }
  out << ".end\n";
  return out.str();
}

Netlist read_blif(const std::string& text, const std::string& filename) {
  const RawBlif raw = scan(text, filename);
  Netlist netlist(raw.model);
  for (const auto& name : raw.inputs) netlist.add_input(name);

  // Order nodes topologically by their declared output names.
  std::unordered_map<std::string, std::size_t> node_by_output;
  for (std::size_t i = 0; i < raw.nodes.size(); ++i) {
    const std::string& out_name = raw.nodes[i].signals.back();
    if (!node_by_output.emplace(out_name, i).second) {
      throw ParseError(filename, raw.nodes[i].line,
                       "net '" + out_name + "' defined twice");
    }
    // Cover synthesis creates helper gates before the named node output.
    netlist.reserve_name(out_name);
  }

  std::unordered_map<Var, Var> inv_cache;
  enum class State : std::uint8_t { Unvisited, Visiting, Done };
  std::vector<State> state(raw.nodes.size(), State::Unvisited);

  std::function<void(std::size_t)> emit = [&](std::size_t index) {
    struct Frame {
      std::size_t node;
      std::size_t next = 0;
    };
    std::vector<Frame> frames{{index}};
    state[index] = State::Visiting;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const NamesNode& node = raw.nodes[frame.node];
      const std::size_t n = node.signals.size() - 1;
      bool descended = false;
      while (frame.next < n) {
        const std::string& arg = node.signals[frame.next++];
        if (netlist.find_var(arg).has_value()) continue;
        const auto it = node_by_output.find(arg);
        if (it == node_by_output.end()) {
          throw ParseError(filename, node.line, "undefined net '" + arg + "'");
        }
        if (state[it->second] == State::Visiting) {
          throw ParseError(filename, node.line,
                           "combinational cycle through '" + arg + "'");
        }
        if (state[it->second] == State::Unvisited) {
          state[it->second] = State::Visiting;
          frames.push_back(Frame{it->second});
          descended = true;
          break;
        }
      }
      if (descended) continue;
      synthesize_node(netlist, node, filename, inv_cache);
      state[frame.node] = State::Done;
      frames.pop_back();
    }
  };

  for (std::size_t i = 0; i < raw.nodes.size(); ++i) {
    if (state[i] == State::Unvisited) emit(i);
  }

  for (const auto& name : raw.outputs) {
    const auto v = netlist.find_var(name);
    if (!v.has_value()) {
      throw ParseError(filename, 0, "undefined output '" + name + "'");
    }
    netlist.mark_output(*v);
  }
  netlist.validate();
  return netlist;
}

void write_blif_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  out << write_blif(netlist);
}

Netlist read_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_blif(buffer.str(), path);
}

}  // namespace gfre::nl
