// The canonical content walk behind every cache key.
//
// Two keyspaces hash the same semantic content: the scheduler's fast
// in-memory 128-bit memoization key (core/scheduler.cpp's Mixer) and the
// persistent SHA-256 key (core/result_cache.cpp).  If their walks were
// written twice, a FlowOptions field added to one but not the other would
// make the disk cache replay WRONG reports for jobs that differ in the
// missed field — a silent correctness bug no digest check can catch.  So
// the walk exists exactly once, templated over the sink.
//
// Sink concept: `void u64(std::uint64_t)` and `void str(const
// std::string&)` (length-prefixed — the sink must frame strings so
// adjacent fields cannot alias).  Domain tags and framing *around* these
// walks (e.g. file-bytes vs structural, tag position) belong to each
// keyspace's call site; the field lists below are the shared truth.
#pragma once

#include <cstdint>

#include "core/flow.hpp"
#include "netlist/netlist.hpp"

namespace gfre::core {

/// Everything that identifies a netlist structurally: names, cells,
/// wiring, output order.
template <typename Sink>
void walk_netlist_content(Sink& sink, const nl::Netlist& netlist) {
  sink.str(netlist.name());
  sink.u64(netlist.inputs().size());
  for (const nl::Var v : netlist.inputs()) sink.str(netlist.var_name(v));
  sink.u64(netlist.num_gates());
  for (const nl::Gate& gate : netlist.gates()) {
    sink.u64(static_cast<std::uint64_t>(gate.type));
    sink.str(netlist.var_name(gate.output));
    sink.u64(gate.inputs.size());
    for (const nl::Var in : gate.inputs) sink.u64(in);
  }
  sink.u64(netlist.outputs().size());
  for (const nl::Var v : netlist.outputs()) sink.u64(v);
}

/// Every FlowOptions field that changes the report — and nothing else.
/// `threads` is deliberately excluded: reports are bit-identical at any
/// worker count (Theorem 2), which is what lets a 1-thread run warm an
/// 8-thread one.  `library` is also excluded — it is a PATH, and hashing
/// a path would miss edits to the file behind it; both keyspaces mix the
/// library file's bytes in at their call sites instead (scheduler memo
/// key, ResultCache::key_for_file).  A new option that affects the
/// report MUST be added here (both keyspaces pick it up automatically).
template <typename Sink>
void walk_report_options(Sink& sink, const FlowOptions& o) {
  sink.u64(static_cast<std::uint64_t>(o.strategy));
  sink.u64((o.verify_with_golden ? 1u : 0u) | (o.infer_ports ? 2u : 0u) |
           (o.try_output_permutation ? 4u : 0u));
  sink.str(o.a_base);
  sink.str(o.b_base);
  sink.str(o.z_base);
  sink.u64(o.max_terms);
}

}  // namespace gfre::core
