#include "core/report_io.hpp"

#include <bit>
#include <cstring>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace gfre::core {

namespace {

constexpr char kMagic[4] = {'G', 'F', 'R', 'B'};

// -- Little-endian writer ---------------------------------------------------

struct Writer {
  std::string out;

  void u8(std::uint8_t v) { out.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { util::put_u32(out, v); }
  void u64(std::uint64_t v) { util::put_u64(out, v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    out.append(s);
  }
  void poly(const gf2::Poly& p) {
    const auto degrees = p.support();
    u64(degrees.size());
    for (const unsigned d : degrees) u32(d);
  }
  void anf(const anf::Anf& a) {
    // Canonical graded-lex order: the serialized form of an Anf is unique,
    // so byte-comparing two blobs compares the polynomials.
    const auto monomials = a.sorted_monomials();
    u64(monomials.size());
    for (const auto& monomial : monomials) {
      u64(monomial.vars().size());
      for (const anf::Var v : monomial.vars()) u32(v);
    }
  }
};

// -- Bounds-checked reader --------------------------------------------------

struct Reader {
  std::string_view in;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (in.size() - pos < n) {
      throw Error("truncated FlowReport blob (want " + std::to_string(n) +
                  " more bytes at offset " + std::to_string(pos) + ", have " +
                  std::to_string(in.size() - pos) + ")");
    }
  }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(in[pos++]);
  }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = util::get_u32(in.data() + pos);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    const std::uint64_t v = util::get_u64(in.data() + pos);
    pos += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  /// A count that allocates must fit in what the blob could possibly hold —
  /// otherwise a corrupt length field turns into a giant allocation before
  /// the truncation check can fire.
  std::size_t count(std::size_t element_bytes) {
    const std::uint64_t n = u64();
    if (element_bytes > 0 && n > (in.size() - pos) / element_bytes) {
      throw Error("corrupt FlowReport blob: count " + std::to_string(n) +
                  " exceeds the remaining payload");
    }
    return static_cast<std::size_t>(n);
  }
  std::string str() {
    const std::size_t n = count(1);
    need(n);
    std::string s(in.substr(pos, n));
    pos += n;
    return s;
  }
  gf2::Poly poly() {
    const std::size_t terms = count(4);
    std::vector<unsigned> degrees;
    degrees.reserve(terms);
    for (std::size_t i = 0; i < terms; ++i) degrees.push_back(u32());
    return gf2::Poly::from_degrees(degrees);
  }
  anf::Anf anf() {
    const std::size_t monomials = count(8);
    std::vector<anf::Monomial> out;
    out.reserve(monomials);
    for (std::size_t i = 0; i < monomials; ++i) {
      const std::size_t vars = count(4);
      std::vector<anf::Var> v;
      v.reserve(vars);
      for (std::size_t j = 0; j < vars; ++j) v.push_back(u32());
      out.push_back(anf::Monomial::from_vars(std::move(v)));
    }
    return anf::Anf::from_monomials(std::move(out));
  }
};

}  // namespace

std::string serialize_report(const FlowReport& report) {
  Writer w;
  w.out.append(kMagic, sizeof kMagic);
  w.u32(kReportSchemaVersion);

  w.u32(report.m);
  w.u64(report.equations);
  w.poly(report.algorithm2_p);

  w.u8(static_cast<std::uint8_t>(report.recovery.circuit_class));
  w.poly(report.recovery.p);
  w.u8(report.recovery.p_is_irreducible ? 1 : 0);
  w.u64(report.recovery.rows.size());
  for (const auto& row : report.recovery.rows) w.poly(row);
  w.u8(report.recovery.rows_consistent ? 1 : 0);
  w.str(report.recovery.diagnosis);

  w.u8(report.output_permutation.has_value() ? 1 : 0);
  if (report.output_permutation.has_value()) {
    w.u64(report.output_permutation->size());
    for (const unsigned i : *report.output_permutation) w.u32(i);
  }

  w.u8(report.verification.equivalent ? 1 : 0);
  w.u32(report.verification.mismatch_bit);
  w.str(report.verification.detail);

  w.u64(report.extraction.anfs.size());
  for (const auto& a : report.extraction.anfs) w.anf(a);
  w.u64(report.extraction.per_bit.size());
  for (const auto& stats : report.extraction.per_bit) {
    w.u64(stats.cone_gates);
    w.u64(stats.substitutions);
    w.u64(stats.cancellations);
    w.u64(stats.peak_terms);
    w.u64(stats.final_terms);
    w.f64(stats.seconds);
  }
  w.f64(report.extraction.wall_seconds);
  w.u64(report.extraction.total_peak_terms);
  w.u32(report.extraction.threads);

  w.f64(report.total_seconds);
  w.u64(report.rss_peak_bytes);
  w.u64(report.rss_after_bytes);
  w.u8(report.success ? 1 : 0);
  return std::move(w.out);
}

FlowReport deserialize_report(std::string_view bytes) {
  Reader r{bytes};
  r.need(sizeof kMagic);
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    throw Error("FlowReport blob has a bad magic header");
  }
  r.pos += sizeof kMagic;
  const std::uint32_t version = r.u32();
  if (version != kReportSchemaVersion) {
    throw Error("FlowReport blob has schema version " +
                std::to_string(version) + ", this build reads only " +
                std::to_string(kReportSchemaVersion));
  }

  FlowReport report;
  report.m = r.u32();
  report.equations = r.u64();
  report.algorithm2_p = r.poly();

  const std::uint8_t circuit_class = r.u8();
  if (circuit_class > static_cast<std::uint8_t>(CircuitClass::NotAMultiplier)) {
    throw Error("corrupt FlowReport blob: unknown circuit class " +
                std::to_string(circuit_class));
  }
  report.recovery.circuit_class = static_cast<CircuitClass>(circuit_class);
  report.recovery.p = r.poly();
  report.recovery.p_is_irreducible = r.u8() != 0;
  const std::size_t rows = r.count(8);
  report.recovery.rows.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    report.recovery.rows.push_back(r.poly());
  }
  report.recovery.rows_consistent = r.u8() != 0;
  report.recovery.diagnosis = r.str();

  if (r.u8() != 0) {
    const std::size_t bits = r.count(4);
    std::vector<unsigned> permutation;
    permutation.reserve(bits);
    for (std::size_t i = 0; i < bits; ++i) permutation.push_back(r.u32());
    report.output_permutation = std::move(permutation);
  }

  report.verification.equivalent = r.u8() != 0;
  report.verification.mismatch_bit = r.u32();
  report.verification.detail = r.str();

  const std::size_t anfs = r.count(8);
  report.extraction.anfs.reserve(anfs);
  for (std::size_t i = 0; i < anfs; ++i) {
    report.extraction.anfs.push_back(r.anf());
  }
  const std::size_t per_bit = r.count(6 * 8);
  report.extraction.per_bit.reserve(per_bit);
  for (std::size_t i = 0; i < per_bit; ++i) {
    RewriteStats stats;
    stats.cone_gates = r.u64();
    stats.substitutions = r.u64();
    stats.cancellations = r.u64();
    stats.peak_terms = r.u64();
    stats.final_terms = r.u64();
    stats.seconds = r.f64();
    report.extraction.per_bit.push_back(stats);
  }
  report.extraction.wall_seconds = r.f64();
  report.extraction.total_peak_terms = r.u64();
  report.extraction.threads = r.u32();

  report.total_seconds = r.f64();
  report.rss_peak_bytes = r.u64();
  report.rss_after_bytes = r.u64();
  report.success = r.u8() != 0;

  if (r.pos != bytes.size()) {
    throw Error("FlowReport blob has " + std::to_string(bytes.size() - r.pos) +
                " bytes of trailing garbage");
  }
  return report;
}

}  // namespace gfre::core
