#include "core/permutation.hpp"

#include "core/poly_extract.hpp"
#include "util/error.hpp"

namespace gfre::core {

std::optional<std::vector<unsigned>> recover_output_order(
    const std::vector<anf::Anf>& anfs, const nl::MultiplierPorts& ports) {
  const unsigned m = ports.m();
  GFRE_ASSERT(anfs.size() == m,
              "expected " << m << " output ANFs, got " << anfs.size());

  // For each output, the set of in-field k (k < m) whose S_k it contains
  // completely must be a singleton {k}; that k is the bit position.
  std::vector<unsigned> order(m, m);  // order[bit] = anf index
  std::vector<bool> claimed(m, false);
  for (unsigned out = 0; out < m; ++out) {
    std::optional<unsigned> position;
    for (unsigned k = 0; k < m; ++k) {
      const auto set = product_set(ports, k);
      switch (product_set_membership(anfs[out], set)) {
        case SetMembership::All:
          if (position.has_value()) return std::nullopt;  // two claims
          position = k;
          break;
        case SetMembership::None:
          break;
        case SetMembership::Mixed:
          return std::nullopt;  // not a clean product structure
      }
    }
    if (!position.has_value()) return std::nullopt;  // no claim
    if (claimed[*position]) return std::nullopt;     // duplicate bit
    claimed[*position] = true;
    order[*position] = out;
  }
  return order;
}

}  // namespace gfre::core
