#include "core/report_json.hpp"

#include "gf2poly/gf2_poly.hpp"

namespace gfre::core {

JsonLine result_json_line(const BatchJobResult& result) {
  JsonLine line;
  line.add("name", result.name);
  if (!result.path.empty()) line.add("path", result.path);
  line.add("ok", result.ok);
  line.add("cache_hit", result.cache_hit);
  if (result.rejected) {
    line.add("rejected", true);
    line.add("error", result.error);
    return line;
  }
  if (result.deadline_exceeded) line.add("deadline_exceeded", true);
  if (result.cancelled) {
    line.add("cancelled", true);
    return line;
  }
  if (!result.error.empty()) {
    line.add("error", result.error);
    return line;
  }
  const auto& report = result.report;
  line.add("m", report.m);
  line.add("equations", report.equations);
  line.add("circuit_class", to_string(report.recovery.circuit_class));
  if (report.m != 0) {
    line.add("p", report.recovery.p.to_paper_string());
    line.add("p_irreducible", report.recovery.p_is_irreducible);
  }
  if (!report.recovery.diagnosis.empty()) {
    line.add("diagnosis", report.recovery.diagnosis);
  }
  line.add("scrambled_outputs", report.output_permutation.has_value());
  line.add("verification", report.verification.detail);
  line.add("extract_seconds", report.extraction.wall_seconds);
  line.add("completed_seconds", result.seconds);
  return line;
}

}  // namespace gfre::core
