// Versioned binary serialization of core::FlowReport.
//
// The persistent result cache (core/result_cache.hpp) stores completed
// extractions across processes, so a warm CI run must be able to replay a
// FlowReport *exactly* as the cold run produced it — every diagnosis
// string, every per-bit ANF, every timing double bit for bit.  JSON was
// rejected for this job: round-tripping doubles and large monomial sets
// through text is slower, bigger and easier to get subtly wrong than a
// fixed little-endian binary layout.
//
// Format (byte-precise layout in docs/CACHE_FORMAT.md):
//   magic "GFRB", u32 schema version, then every FlowReport field in
//   declaration order.  Integers are little-endian fixed width, doubles
//   are their IEEE-754 bit patterns as u64 (exact round trip by
//   construction), strings and vectors are u64-length-prefixed.  ANFs are
//   written in canonical graded-lex monomial order, polynomials as their
//   support degrees — both reconstruct to equal values because the
//   underlying representations are canonical.
//
// Versioning: kReportSchemaVersion bumps whenever FlowReport (or any
// nested struct) changes shape.  deserialize_report rejects every other
// version with an Error — the cache treats that as a miss and re-extracts
// (docs/CACHE_FORMAT.md, "Versioning").  There is deliberately no
// migration path: a cache entry is a memo, not data of record.
//
// Thread safety: both functions are pure (no shared state); call them
// freely from scheduler workers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/flow.hpp"

namespace gfre::core {

/// Bump on any change to FlowReport's serialized shape.
inline constexpr std::uint32_t kReportSchemaVersion = 1;

/// Serializes a report to a self-describing binary blob.
std::string serialize_report(const FlowReport& report);

/// Exact inverse of serialize_report.  Throws gfre::Error on a bad magic,
/// a schema-version mismatch, truncation, or trailing garbage — callers
/// (the result cache) map all of those to "treat as miss".
FlowReport deserialize_report(std::string_view bytes);

}  // namespace gfre::core
