#include "core/scheduler.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <list>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>
#include <unordered_map>

#include "core/content_walk.hpp"
#include "core/parallel_extract.hpp"
#include "core/result_cache.hpp"
#include "core/rewriter.hpp"
#include "frontend/cell_library.hpp"
#include "frontend/frontend.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/rss.hpp"
#include "util/timer.hpp"

namespace gfre::core {

namespace {

// -- Content hashing --------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
// Second, independent multiply-xor stream (Murmur64's odd constant) so the
// cache key is effectively 128 bits: an *accidental* simultaneous
// collision is ~2^-128, i.e. never.  Neither stream is cryptographic — a
// determined adversary could still construct a colliding pair, so a
// hardened multi-tenant service should swap in a real cryptographic hash
// (ROADMAP open item) before trusting cross-tenant memoization.
constexpr std::uint64_t kAltOffset = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kAltPrime = 0xc6a4a7935bd1e995ull;

/// Two independent 64-bit accumulators fed in one pass.
struct Mixer {
  std::uint64_t a = kFnvOffset;
  std::uint64_t b = kAltOffset;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      a = (a ^ p[i]) * kFnvPrime;
      b = (b ^ p[i]) * kAltPrime;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, 8); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

/// 128-bit memoization key.  A job that has no key (memoization off, or
/// failure before hashing) carries std::optional<CacheKey> == nullopt —
/// there is deliberately no in-band "empty" sentinel, because the all-zero
/// bit pattern is a legitimate (if astronomically unlikely) hash value and
/// must memoize like any other.
struct CacheKey {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return static_cast<std::size_t>(k.a ^ (k.b * kFnvPrime));
  }
};


std::string read_file_bytes(const std::string& path) {
  std::string bytes;
  if (!util::read_file_to_string(path, &bytes)) {
    throw Error("cannot open netlist file '" + path + "'");
  }
  return bytes;
}

/// Parses netlist text, dispatching on CONTENT (frontend::sniff_format)
/// rather than the path's extension.  The batch engine hashes and parses
/// the SAME byte buffer, so a file rewritten mid-batch can never cache a
/// report under the wrong content hash.
nl::Netlist parse_netlist_text(
    const std::string& text, const std::string& path,
    std::shared_ptr<const frontend::CellLibrary> library = nullptr) {
  frontend::FrontendOptions options;
  options.library = std::move(library);
  return frontend::parse_netlist(text, path, options);
}

template <typename Container, typename T>
void erase_value(Container& container, const T& value) {
  const auto it = std::find(container.begin(), container.end(), value);
  if (it != container.end()) container.erase(it);
}

/// Diagnosis for a job whose deadline elapsed before any of it executed.
/// Fixed text — the report must not depend on how late the reaper fired.
constexpr const char* kQueuedDeadlineDiagnosis =
    "deadline exceeded: the job's wall-clock budget elapsed before "
    "extraction began";

/// Rejection diagnosis for try_submit on a full bounded queue.
constexpr const char* kRejectedDiagnosis =
    "rejected: the scheduler's bounded submission queue is full";

}  // namespace

NetlistHash netlist_content_hash(const nl::Netlist& netlist) {
  Mixer mix;
  walk_netlist_content(mix, netlist);
  return NetlistHash{mix.a, mix.b};
}

std::ostream& operator<<(std::ostream& os, const NetlistHash& hash) {
  const auto flags = os.flags();
  os << std::hex << hash.a << ":" << hash.b;
  os.flags(flags);
  return os;
}

nl::Netlist load_netlist_file(const std::string& path,
                              const std::string& library_path) {
  std::shared_ptr<const frontend::CellLibrary> library;
  if (!library_path.empty()) {
    library = std::make_shared<const frontend::CellLibrary>(
        frontend::load_cell_library_file(library_path));
  }
  return parse_netlist_text(read_file_bytes(path), path, std::move(library));
}

// ---------------------------------------------------------------------------
// BatchScheduler::Impl
//
// Per-job state machine:  Queued -> SettingUp -> Extracting (one task per
// output cone) -> ReadyToFinalize -> Finalizing -> Done, with shortcuts to
// Done for cache hits / load errors / port failures / cancellation, and
// AwaitingPrimary for duplicates of an in-flight job.  `threads` worker
// threads run Impl::worker for the scheduler's whole lifetime; all
// bookkeeping is under one mutex (tasks are coarse — a whole cone rewrite
// or a whole file parse — so the lock is cold).
//
// Job lifetime: a Job lives in jobs_ from submit until *delivery* (callback
// run + promise fulfilled), then is erased — a long-lived scheduler does
// not accumulate per-job state.  A worker only holds a raw Job* while that
// job has a task mid-run, and a job with a running task is never erased
// (only Done jobs are, and every transition to Done happens either in the
// job's own task or for jobs with no task at all), so the pointer cannot
// dangle.
// ---------------------------------------------------------------------------

struct BatchScheduler::Impl {
  struct Job {
    JobHandle handle = 0;
    BatchJob spec;
    Callback callback;
    std::promise<BatchJobResult> promise;

    enum class State {
      Queued,
      SettingUp,
      Extracting,
      AwaitingPrimary,  ///< duplicate of an in-flight job; primary resolves it
      ReadyToFinalize,
      Finalizing,
      Done,
    } state = State::Queued;

    // Setup products.  `net` points at spec.netlist (in-memory job) or at
    // `loaded` (file job); released on completion to bound live memory.
    std::optional<nl::Netlist> loaded;
    const nl::Netlist* net = nullptr;
    std::optional<nl::MultiplierPorts> ports;
    ExtractionResult extraction;
    double extract_started = 0.0;

    std::size_t cones_claimed = 0;
    std::size_t cones_done = 0;
    /// Lowest-index cone failure.  Lowest index — not first to complete —
    /// because that is what both standalone paths deterministically report
    /// (the sequential loop stops at the first throwing bit; parallel_for
    /// rethrows the lowest-index exception), and scheduler reports must be
    /// identical under any interleaving.
    std::exception_ptr abort;
    std::size_t abort_cone = 0;

    /// Absolute deadline (spec.deadline_ms past submission); nullopt = no
    /// budget.  While the job is Queued/AwaitingPrimary the reaper owns
    /// enforcement (deadline_it points into deadlines_); once extraction
    /// starts, the substitution-checkpoint soft abort does.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    bool deadline_registered = false;
    std::multimap<std::chrono::steady_clock::time_point, Job*>::iterator
        deadline_it;

    std::optional<CacheKey> key;
    /// SHA-256 persistent-cache key (64 hex chars; empty = no disk cache
    /// attached or keying never happened).
    std::string disk_key;
    bool inflight_registered = false;
    Job* primary = nullptr;       ///< set while AwaitingPrimary
    std::vector<Job*> followers;  ///< duplicates parked on this job

    /// Non-Error exception that escaped a task runner (engine bug / OOM):
    /// delivered through the promise instead of a result.
    std::exception_ptr fatal;

    BatchJobResult result;
  };

  struct Task {
    enum class Kind { None, Setup, Cone, Finalize } kind = Kind::None;
    Job* job = nullptr;
    std::size_t cone = 0;
  };

  struct CacheEntry {
    FlowReport report;
    std::string error;
  };
  /// LRU order for the bounded memo: front = most recently used.  cache_
  /// indexes into this list, so lookups stay O(1) and eviction O(1).
  using MemoList = std::list<std::pair<CacheKey, CacheEntry>>;

  static constexpr std::size_t kPriorityClasses = 3;
  static std::size_t class_of(const Job& job) {
    return static_cast<std::size_t>(job.spec.priority);
  }

  explicit Impl(const BatchOptions& options) : options_(options) {
    GFRE_ASSERT(options_.threads >= 1,
                "batch scheduler needs at least one worker");
    last_job_.assign(options_.threads, JobHandle{0});
    workers_.reserve(options_.threads);
    for (unsigned wid = 0; wid < options_.threads; ++wid) {
      workers_.emplace_back([this, wid] { worker(wid); });
    }
    reaper_ = std::thread([this] { reaper(); });
  }

  ~Impl() {
    std::vector<Job*> done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutting_down_ = true;
      // Revoke everything that has not started.  Jobs past Queued (in
      // flight, or parked behind an in-flight primary) run to completion —
      // their futures resolve with real results below.
      for (auto& queue : setup_queues_) {
        for (Job* job : queue) {
          job->result.cancelled = true;
          finish_locked(*job, done);
        }
        queue.clear();
      }
    }
    // Submitters blocked on admission resolve their jobs as cancelled.
    cv_room_.notify_all();
    deliver(done);
    retire(done);
    drain();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    cv_reaper_.notify_all();
    cv_room_.notify_all();
    for (auto& w : workers_) w.join();
    reaper_.join();
  }

  Submission submit(BatchJob spec, Callback on_complete) {
    return submit_impl(std::move(spec), std::move(on_complete),
                       /*blocking=*/true);
  }

  Submission try_submit(BatchJob spec, Callback on_complete) {
    return submit_impl(std::move(spec), std::move(on_complete),
                       /*blocking=*/false);
  }

  Submission submit_impl(BatchJob spec, Callback on_complete, bool blocking) {
    // The deadline clock starts at arrival: time spent blocked on
    // admission is the job's problem, not free.
    const auto arrival = std::chrono::steady_clock::now();
    auto owned = std::make_unique<Job>();
    Job* job = owned.get();
    job->spec = std::move(spec);
    if (job->spec.name.empty()) {
      job->spec.name = !job->spec.path.empty()
                           ? job->spec.path
                           : (job->spec.netlist ? job->spec.netlist->name()
                                                : "job");
    }
    job->callback = std::move(on_complete);
    Submission out;
    out.result = job->promise.get_future();
    std::vector<Job*> done;
    bool rejected = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const std::size_t cap = options_.max_queued;
      if (cap != 0 && !shutting_down_ && unresolved_ >= cap) {
        if (blocking) {
          cv_room_.wait(lock, [&] {
            return shutting_down_ || unresolved_ < cap;
          });
        } else {
          ++stats_.jobs;
          ++stats_.rejected;
          rejected = true;
        }
      }
      if (!rejected) {
        job->handle = next_handle_++;
        out.handle = job->handle;
        ++stats_.jobs;
        ++unresolved_;
        stats_.queue_peak = std::max(stats_.queue_peak, unresolved_);
        jobs_.emplace(job->handle, std::move(owned));
        if (shutting_down_) {
          // A submission racing teardown resolves like any other queued
          // job at teardown: cancelled, on the submitting thread.
          job->result.cancelled = true;
          finish_locked(*job, done);
        } else {
          if (job->spec.deadline_ms > 0) {
            job->deadline =
                arrival + std::chrono::milliseconds(job->spec.deadline_ms);
            job->deadline_it = deadlines_.emplace(*job->deadline, job);
            job->deadline_registered = true;
            // Wake the reaper only when this deadline becomes the new
            // earliest — it sleeps until exactly deadlines_.begin(), so a
            // registration behind that point changes nothing it would
            // act on, and a submission burst must not turn the reaper
            // into a busy loop of spurious wakes.
            if (job->deadline_it == deadlines_.begin())
              cv_reaper_.notify_one();
          }
          setup_queues_[class_of(*job)].push_back(job);
          cv_work_.notify_one();
        }
      }
    }
    if (rejected) {
      // The rejected ticket resolves on the submitting thread, before
      // try_submit returns: handle stays 0, the callback runs, the future
      // is already fulfilled.  `owned` was never handed to jobs_.
      job->result.name = job->spec.name;
      job->result.path = job->spec.path;
      job->result.rejected = true;
      job->result.error = kRejectedDiagnosis;
      job->result.seconds = clock_.seconds();
      if (job->callback) {
        try {
          job->callback(job->result);
        } catch (...) {
        }
      }
      job->promise.set_value(std::move(job->result));
      return out;
    }
    if (!done.empty()) {
      deliver(done);
      retire(done);
    }
    return out;
  }

  bool cancel(JobHandle handle) {
    std::vector<Job*> done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = jobs_.find(handle);
      if (it == jobs_.end()) return false;
      Job& job = *it->second;
      if (job.state == Job::State::Queued) {
        erase_value(setup_queues_[class_of(job)], &job);
      } else if (job.state == Job::State::AwaitingPrimary) {
        erase_value(job.primary->followers, &job);
        job.primary = nullptr;
      } else {
        // Already running (or finished): the job's own resolution stands.
        return false;
      }
      job.result.cancelled = true;
      finish_locked(job, done);
    }
    // By the time cancel() returns true the callback has run and the
    // future is ready — the caller can rely on "nothing will ever run".
    deliver(done);
    retire(done);
    return true;
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [&] { return unresolved_ == 0; });
  }

  bool wait_idle_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_idle_.wait_for(lock, timeout,
                             [&] { return unresolved_ == 0; });
  }

  bool drain_for(std::chrono::milliseconds timeout) {
    std::vector<Job*> done;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_idle_.wait_for(lock, timeout, [&] { return unresolved_ == 0; })) {
        return true;
      }
      // Budget spent: convert everything that has not started into a
      // terminal outcome — expired-deadline jobs resolve as
      // deadline_exceeded, the rest as cancelled — then wait for the
      // in-flight remainder (including duplicates parked behind running
      // primaries, which those primaries resolve).
      const auto now = std::chrono::steady_clock::now();
      for (auto& queue : setup_queues_) {
        for (Job* job : queue) {
          if (job->deadline.has_value() && now > *job->deadline) {
            job->result.deadline_exceeded = true;
            job->result.error = kQueuedDeadlineDiagnosis;
          } else {
            job->result.cancelled = true;
          }
          finish_locked(*job, done);
        }
        queue.clear();
      }
    }
    deliver(done);
    retire(done);
    drain();
    return false;
  }

  BatchStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  void worker(std::size_t wid) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      const Task task = find_work(wid);
      if (task.kind == Task::Kind::None) {
        if (stop_) return;
        cv_work_.wait(lock);
        continue;
      }
      lock.unlock();
      std::vector<Job*> done;
      try {
        switch (task.kind) {
          case Task::Kind::Setup: run_setup(*task.job, done); break;
          case Task::Kind::Cone: run_cone(*task.job, task.cone, done); break;
          case Task::Kind::Finalize: run_finalize(*task.job, done); break;
          case Task::Kind::None: break;
        }
      } catch (...) {
        // Per-job failures are converted to results inside the task
        // runners; anything reaching here is an engine bug (or OOM).
        // Deliver it through the job's future instead of killing the
        // worker — a long-lived scheduler must survive its own bugs.
        std::lock_guard<std::mutex> guard(mu_);
        fail_locked(*task.job, std::current_exception(), done);
      }
      deliver(done);
      lock.lock();
      retire_locked(done);
    }
  }

  /// Deadline enforcement for jobs that have not started: one background
  /// thread sleeps until the earliest registered deadline and expires
  /// whatever is still Queued or AwaitingPrimary at that instant.  Jobs
  /// already extracting are left to the substitution-checkpoint soft
  /// abort — a cone mid-rewrite cannot be revoked from outside without
  /// tearing state, and the checkpoint bounds the overshoot to one
  /// gate-ANF expansion.
  void reaper() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (stop_) return;
      if (deadlines_.empty()) {
        cv_reaper_.wait(lock);
        continue;
      }
      const auto next = deadlines_.begin()->first;
      if (std::chrono::steady_clock::now() < next) {
        // Re-evaluate after the wait: a nearer deadline may have been
        // registered, or teardown may have started.
        cv_reaper_.wait_until(lock, next);
        continue;
      }
      std::vector<Job*> done;
      const auto now = std::chrono::steady_clock::now();
      while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
        Job* job = deadlines_.begin()->second;
        deadlines_.erase(deadlines_.begin());
        job->deadline_registered = false;
        if (job->state == Job::State::Queued) {
          erase_value(setup_queues_[class_of(*job)], job);
          expire_locked(*job, done);
        } else if (job->state == Job::State::AwaitingPrimary) {
          erase_value(job->primary->followers, job);
          job->primary = nullptr;
          expire_locked(*job, done);
        }
        // Any other state: extraction owns enforcement from here on.
      }
      if (!done.empty()) {
        lock.unlock();
        deliver(done);
        lock.lock();
        retire_locked(done);
      }
    }
  }

  /// Resolves a not-yet-started job as deadline_exceeded.  Requires mu_;
  /// the caller has already removed the job from its claim structure and
  /// from deadlines_.
  void expire_locked(Job& job, std::vector<Job*>& done) {
    job.result.deadline_exceeded = true;
    job.result.error = kQueuedDeadlineDiagnosis;
    finish_locked(job, done);
  }

  std::size_t cones_available(const Job& job) const {
    if (job.state != Job::State::Extracting || job.abort) return 0;
    return job.extraction.anfs.size() - job.cones_claimed;
  }

  Task claim_cone(Job* job, std::size_t wid) {
    Task task;
    task.kind = Task::Kind::Cone;
    task.job = job;
    task.cone = job->cones_claimed++;
    if (last_job_[wid] != job->handle) {
      if (last_job_[wid] != JobHandle{0}) ++stats_.cone_steals;
      last_job_[wid] = job->handle;
    }
    return task;
  }

  Task claim_setup(std::size_t cls, std::size_t wid) {
    Job* job = setup_queues_[cls].front();
    setup_queues_[cls].pop_front();
    job->state = Job::State::SettingUp;
    // The worker adopts the job it opens — claiming its cones next is
    // affinity, not a steal.
    last_job_[wid] = job->handle;
    Task task;
    task.kind = Task::Kind::Setup;
    task.job = job;
    return task;
  }

  /// Claims the next unit of work under mu_.  Finished jobs retire first
  /// (unblocks duplicates); after that, priority classes are served
  /// strictly in order — all claimable High work before any Normal before
  /// any Low, FIFO within a class — and the BatchOptions::policy knob
  /// picks the order WITHIN a class:
  ///
  ///  * Throughput (default): stay on the worker's current job (the
  ///    netlist is cache-hot), open a new job in submission order, and
  ///    only then steal a cone from the deepest same-class backlog — so
  ///    only the rare steal path (own job dry AND nothing left to open)
  ///    scans the in-flight jobs.
  ///  * Latency: converge on the oldest in-flight job of the class
  ///    (ignoring affinity) so it crosses the finish line soonest; open
  ///    new jobs only when nothing of the class is extracting.
  Task find_work(std::size_t wid) {
    if (!finalize_ready_.empty()) {
      Job* job = finalize_ready_.back();
      finalize_ready_.pop_back();
      job->state = Job::State::Finalizing;
      Task task;
      task.kind = Task::Kind::Finalize;
      task.job = job;
      return task;
    }
    for (std::size_t cls = 0; cls < kPriorityClasses; ++cls) {
      if (options_.policy == SchedulingPolicy::Latency) {
        // extracting_ is in extraction-start order, so the first live
        // entry of the class is the oldest.
        for (Job* job : extracting_) {
          if (class_of(*job) == cls && cones_available(*job) > 0) {
            return claim_cone(job, wid);
          }
        }
        if (!setup_queues_[cls].empty()) return claim_setup(cls, wid);
        continue;
      }
      if (last_job_[wid] != JobHandle{0}) {
        const auto it = jobs_.find(last_job_[wid]);
        if (it != jobs_.end() && class_of(*it->second) == cls &&
            cones_available(*it->second) > 0) {
          return claim_cone(it->second.get(), wid);
        }
      }
      if (!setup_queues_[cls].empty()) return claim_setup(cls, wid);
      Job* best = nullptr;
      std::size_t best_backlog = 0;
      for (Job* job : extracting_) {
        if (class_of(*job) != cls) continue;
        const std::size_t backlog = cones_available(*job);
        if (backlog > best_backlog) {
          best = job;
          best_backlog = backlog;
        }
      }
      if (best != nullptr) return claim_cone(best, wid);
    }
    return Task{};
  }

  void run_setup(Job& job, std::vector<Job*>& done) {
    // File jobs are read ONCE: the content hash and the parse below both
    // see these bytes, so a file rewritten mid-batch cannot cache a
    // report under the wrong hash — and duplicates dedup before paying
    // for a parse.
    std::string text;
    if (!job.spec.netlist.has_value()) {
      try {
        text = read_file_bytes(job.spec.path);
      } catch (const Error& e) {
        complete_with_error(job, e.what(), done);
        return;
      }
    }
    // The cell library (file jobs only — in-memory netlists are already
    // parsed, so a library cannot change them) is read up front: its
    // BYTES belong in both cache keys, exactly like the netlist bytes.
    const bool want_library =
        !job.spec.netlist.has_value() && !job.spec.options.library.empty();
    std::string library_text;
    if (want_library &&
        !util::read_file_to_string(job.spec.options.library,
                                   &library_text)) {
      complete_with_error(job,
                          "cannot open cell library '" +
                              job.spec.options.library + "'",
                          done);
      return;
    }

    if (options_.memoize) {
      Mixer mix;
      if (job.spec.netlist.has_value()) {
        walk_netlist_content(mix, *job.spec.netlist);
        mix.u64(1);  // domain tag: structural
      } else {
        mix.bytes(text.data(), text.size());
        mix.u64(2);  // domain tag: file bytes
        if (want_library) {
          mix.bytes(library_text.data(), library_text.size());
          mix.u64(3);  // domain tag: cell-library bytes
        }
      }
      walk_report_options(mix, job.spec.options);
      const CacheKey key{mix.a, mix.b};
      {
        std::lock_guard<std::mutex> lock(mu_);
        job.key = key;
        if (const CacheEntry* cached = memo_find_locked(key)) {
          job.result.report = cached->report;
          job.result.error = cached->error;
          job.result.cache_hit = true;
          ++stats_.cache_hits;
          finish_locked(job, done);
          return;
        }
        const auto inflight = inflight_.find(key);
        if (inflight != inflight_.end()) {
          job.primary = inflight->second;
          job.primary->followers.push_back(&job);
          job.state = Job::State::AwaitingPrimary;
          return;
        }
        inflight_.emplace(key, &job);
        job.inflight_registered = true;
      }
      // In-memory miss, and this task now owns the in-flight slot for the
      // key: only NOW derive the cryptographic persistent key (SHA-256 of
      // the full content — deliberately lazy, so the hot duplicate path
      // above never pays more than the cheap 128-bit mix) and consult the
      // disk store (file I/O, so outside mu_).  A hit replays the cold
      // run's outcome verbatim, seeds the in-memory memo and resolves any
      // followers that parked meanwhile — the whole job costs one read,
      // zero extractions.
      if (options_.result_cache) {
        job.disk_key =
            job.spec.netlist.has_value()
                ? ResultCache::key_for_netlist(*job.spec.netlist,
                                               job.spec.options)
                : ResultCache::key_for_file(text, job.spec.options,
                                            library_text);
        if (auto cached = options_.result_cache->lookup(job.disk_key)) {
          job.result.report = std::move(cached->report);
          job.result.error = std::move(cached->error);
          job.result.cache_hit = true;
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.disk_hits;
          memo_insert_locked(*job.key,
                             CacheEntry{job.result.report, job.result.error});
          finish_locked(job, done);
          return;
        }
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.disk_misses;
      }
    }

    try {
      if (!job.spec.netlist.has_value()) {
        std::shared_ptr<const frontend::CellLibrary> library;
        if (want_library) {
          library = std::make_shared<const frontend::CellLibrary>(
              frontend::parse_cell_library(library_text,
                                           job.spec.options.library));
        }
        job.loaded =
            parse_netlist_text(text, job.spec.path, std::move(library));
        job.net = &*job.loaded;
      } else {
        job.net = &*job.spec.netlist;
      }
    } catch (const Error& e) {
      // Parse failures after inflight registration still resolve any
      // followers (complete_with_error caches the error and unregisters).
      complete_with_error(job, e.what(), done);
      return;
    }

    FlowReport port_failure;
    job.ports = resolve_flow_ports(*job.net, job.spec.options, &port_failure);
    if (!job.ports.has_value()) {
      complete_with_report(job, std::move(port_failure), done);
      return;
    }

    const std::size_t bits = job.ports->z.bits.size();
    job.extraction.anfs.resize(bits);
    job.extraction.per_bit.resize(bits);
    job.extraction.threads = options_.threads;

    std::lock_guard<std::mutex> lock(mu_);
    job.extract_started = clock_.seconds();
    // A multiplier interface always has >= 1 output bit (m >= 1), so the
    // job cannot be born ReadyToFinalize here.
    job.state = Job::State::Extracting;
    extracting_.push_back(&job);
    cv_work_.notify_all();
  }

  void run_cone(Job& job, std::size_t cone, std::vector<Job*>& done) {
    RewriteOptions options;
    options.strategy = job.spec.options.strategy;
    options.max_terms = job.spec.options.max_terms;
    // Soft-abort plumbing: the rewriter checks this at the same
    // between-substitutions checkpoint as max_terms.
    options.deadline = job.deadline;
    std::exception_ptr failure;
    try {
      // Each slot is claimed by exactly one worker — no lock needed for
      // the write.
      job.extraction.anfs[cone] =
          extract_output_anf(*job.net, job.ports->z.bits[cone], options,
                             &job.extraction.per_bit[cone]);
    } catch (...) {
      // Error-derived failures become this job's diagnosed result in
      // run_finalize; anything else resolves the job's future with the
      // exception there.
      failure = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cones_extracted;
    ++job.cones_done;
    if (failure && (!job.abort || cone < job.abort_cone)) {
      job.abort = failure;
      job.abort_cone = cone;
    }
    // On abort, cones_available() stops further claims; the job finalizes
    // once the already-claimed cones drain.
    if (job.cones_done == job.cones_claimed &&
        (job.abort || job.cones_claimed == job.extraction.anfs.size())) {
      job.state = Job::State::ReadyToFinalize;
      erase_value(extracting_, &job);
      finalize_ready_.push_back(&job);
      cv_work_.notify_one();
    }
    (void)done;
  }

  void run_finalize(Job& job, std::vector<Job*>& done) {
    FlowReport report;
    if (job.abort) {
      std::string what;
      try {
        std::rethrow_exception(job.abort);
      } catch (const DeadlineExceeded& e) {
        // Resource budget, not a property of the netlist: flag the result
        // so completion skips both caches, and let the fixed exception
        // message shape a report that is bit-identical at any thread
        // count.
        job.result.deadline_exceeded = true;
        what = e.what();
      } catch (const Error& e) {
        what = e.what();
      } catch (...) {
        // A non-Error escaped a cone task: engine bug, not a diagnosis.
        std::lock_guard<std::mutex> lock(mu_);
        fail_locked(job, job.abort, done);
        return;
      }
      report = extraction_failure_report(*job.net, *job.ports, what);
    } else {
      {
        std::lock_guard<std::mutex> lock(mu_);
        job.extraction.wall_seconds = clock_.seconds() - job.extract_started;
      }
      for (const auto& stats : job.extraction.per_bit) {
        job.extraction.total_peak_terms += stats.peak_terms;
      }
      // Same guard reverse_engineer wraps around this call: an analysis
      // Error is this job's diagnosed failure, never a dead worker.
      try {
        report = analyze_extraction(*job.net, *job.ports,
                                    std::move(job.extraction),
                                    job.spec.options);
      } catch (const Error& e) {
        report = extraction_failure_report(*job.net, *job.ports, e.what());
      }
    }
    report.rss_peak_bytes = peak_rss_bytes();
    report.rss_after_bytes = current_rss_bytes();
    complete_with_report(job, std::move(report), done);
  }

  void complete_with_report(Job& job, FlowReport&& report,
                            std::vector<Job*>& done) {
    job.result.report = std::move(report);
    // Deadline aborts are a statement about this run's wall-clock budget,
    // not about the netlist — caching one (memo or disk) would replay a
    // "failure" for content that extracts fine under a saner budget.
    const bool cacheable = !job.result.deadline_exceeded;
    // Disk write-back happens before mu_ (serialization + file I/O must
    // not stall other workers); a failed store is invisible to the job.
    const bool stored = cacheable && write_back(job, job.result.report, "");
    std::lock_guard<std::mutex> lock(mu_);
    if (stored) ++stats_.disk_stores;
    if (cacheable && job.key.has_value()) {
      memo_insert_locked(*job.key, CacheEntry{job.result.report, ""});
    }
    finish_locked(job, done);
  }

  void complete_with_error(Job& job, const std::string& error,
                           std::vector<Job*>& done) {
    job.result.error = error;
    // Parse/port errors are as deterministic in the netlist bytes as
    // reports are, so they persist too — a warm run replays the same
    // diagnosed failure without re-reading the broken design.
    const bool stored = write_back(job, FlowReport{}, error);
    std::lock_guard<std::mutex> lock(mu_);
    if (stored) ++stats_.disk_stores;
    if (job.key.has_value()) {
      memo_insert_locked(*job.key, CacheEntry{FlowReport{}, error});
    }
    finish_locked(job, done);
  }

  /// O(1) memo lookup; a hit is refreshed to the LRU front.  Requires mu_.
  const CacheEntry* memo_find_locked(const CacheKey& key) {
    const auto it = cache_.find(key);
    if (it == cache_.end()) return nullptr;
    memo_lru_.splice(memo_lru_.begin(), memo_lru_, it->second);
    return &it->second->second;
  }

  /// Inserts (or refreshes) a memo entry and enforces the
  /// memo_max_entries LRU bound.  An evicted key is not a lost result —
  /// the disk layer is consulted on the next miss.  Requires mu_.
  void memo_insert_locked(const CacheKey& key, CacheEntry entry) {
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      it->second->second = std::move(entry);
      memo_lru_.splice(memo_lru_.begin(), memo_lru_, it->second);
      return;
    }
    memo_lru_.emplace_front(key, std::move(entry));
    cache_.emplace(key, memo_lru_.begin());
    if (options_.memo_max_entries != 0 &&
        cache_.size() > options_.memo_max_entries) {
      cache_.erase(memo_lru_.back().first);
      memo_lru_.pop_back();
      ++stats_.memo_evictions;
    }
  }

  /// Persists a completed outcome under the job's SHA-256 key, if a disk
  /// cache is attached and this job was keyed.  Never throws, never
  /// blocks on mu_.
  bool write_back(const Job& job, const FlowReport& report,
                  const std::string& error) {
    if (!options_.result_cache || job.disk_key.empty()) return false;
    return options_.result_cache->store(job.disk_key, report, error);
  }

  /// Backstop for exceptions that escape a task runner.  Requires mu_.
  void fail_locked(Job& job, std::exception_ptr error,
                   std::vector<Job*>& done) {
    if (job.state == Job::State::Done) return;  // result already stands
    if (job.state == Job::State::Extracting &&
        job.cones_done < job.cones_claimed) {
      // Other workers still run this job's cones — poison it and let the
      // last cone route it to run_finalize, which delivers the exception.
      if (!job.abort) {
        job.abort = error;
        job.abort_cone = 0;
      }
      return;
    }
    // No task references the job anymore; scrub it from whichever claim
    // structure holds it and resolve its future exceptionally.
    if (job.state == Job::State::Queued) {
      erase_value(setup_queues_[class_of(job)], &job);
    }
    if (job.state == Job::State::Extracting) erase_value(extracting_, &job);
    if (job.state == Job::State::ReadyToFinalize) {
      erase_value(finalize_ready_, &job);
    }
    job.fatal = error;
    // The callback still fires for engine-fatal jobs (the "exactly once"
    // contract is what serving tiers count completions with), so give it
    // a legible result while the future carries the real exception.
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      job.result.error = std::string("engine failure: ") + e.what();
    } catch (...) {
      job.result.error = "engine failure: unknown exception";
    }
    finish_locked(job, done);
  }

  void count_locked(const Job& job) {
    if (job.fatal) {
      ++stats_.failed;
    } else if (job.result.deadline_exceeded) {
      // Both flavors — expired while queued (error set) and soft-aborted
      // mid-extraction (diagnosed report) — land here, disjoint from
      // cancelled/load_errors/failed.
      ++stats_.deadline_exceeded;
    } else if (job.result.cancelled) {
      ++stats_.cancelled;
    } else if (!job.result.error.empty()) {
      ++stats_.load_errors;
    } else if (job.result.report.success) {
      ++stats_.succeeded;
    } else {
      ++stats_.failed;
    }
  }

  /// Marks job Done, resolves its duplicates from the freshly cached
  /// result, releases the per-job working set and queues everything for
  /// delivery (callback + promise, which the caller performs WITHOUT the
  /// lock).  Requires mu_.
  void finish_locked(Job& job, std::vector<Job*>& done) {
    job.result.name = job.spec.name;
    job.result.path = job.spec.path;
    job.result.ok = !job.result.cancelled && !job.result.deadline_exceeded &&
                    job.result.error.empty() && job.result.report.success;
    job.result.seconds = clock_.seconds();
    job.state = Job::State::Done;
    count_locked(job);
    if (job.deadline_registered) {
      deadlines_.erase(job.deadline_it);
      job.deadline_registered = false;
    }
    if (job.inflight_registered) {
      // Only this job's own registration: a job that failed before keying
      // never registered and must not evict someone else's entry.
      const auto it = inflight_.find(*job.key);
      if (it != inflight_.end() && it->second == &job) inflight_.erase(it);
      job.inflight_registered = false;
    }
    done.push_back(&job);
    for (Job* dup : job.followers) {
      dup->result.report = job.result.report;
      dup->result.error = job.result.error;
      // A deadline abort is the PRIMARY's budget verdict; followers
      // inherit the diagnosed outcome (they attached to that extraction)
      // but it is not a cache hit — nothing was cached.
      dup->result.deadline_exceeded = job.result.deadline_exceeded;
      if (!job.result.deadline_exceeded) {
        dup->result.cache_hit = true;
        ++stats_.cache_hits;
      }
      dup->result.name = dup->spec.name;
      dup->result.path = dup->spec.path;
      dup->result.ok = !dup->result.deadline_exceeded &&
                       dup->result.error.empty() &&
                       dup->result.report.success;
      dup->result.seconds = clock_.seconds();
      dup->fatal = job.fatal;
      dup->primary = nullptr;
      dup->state = Job::State::Done;
      count_locked(*dup);
      if (dup->deadline_registered) {
        deadlines_.erase(dup->deadline_it);
        dup->deadline_registered = false;
      }
      done.push_back(dup);
    }
    job.followers.clear();
    job.loaded.reset();
    job.spec.netlist.reset();
    job.net = nullptr;
  }

  /// Runs callbacks and fulfills promises for finished jobs.  MUST be
  /// called without mu_: callbacks may re-enter submit()/cancel()/stats(),
  /// and promise fulfillment wakes arbitrary waiters.
  void deliver(const std::vector<Job*>& done) {
    for (Job* job : done) {
      if (job->callback) {
        try {
          job->callback(job->result);
        } catch (...) {
          // The callback contract forbids throwing; a violation must not
          // take down a worker (or the canceller) mid-delivery.
        }
      }
      if (job->fatal) {
        // The callback above saw a result with `error` filled in; the
        // future carries the actual exception.
        job->promise.set_exception(job->fatal);
      } else {
        job->promise.set_value(std::move(job->result));
      }
    }
  }

  /// Erases delivered jobs and publishes quiescence.  Requires mu_.
  void retire_locked(const std::vector<Job*>& done) {
    for (Job* job : done) jobs_.erase(job->handle);
    unresolved_ -= done.size();
    if (unresolved_ == 0) cv_idle_.notify_all();
    // Resolved jobs free admission slots for blocked submitters.
    if (options_.max_queued != 0) cv_room_.notify_all();
  }

  void retire(const std::vector<Job*>& done) {
    if (done.empty()) return;
    std::lock_guard<std::mutex> lock(mu_);
    retire_locked(done);
  }

 public:
  BatchOptions options_;
  Timer clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  ///< workers wait for claimable tasks
  std::condition_variable cv_idle_;  ///< drain()/teardown wait for quiescence
  std::condition_variable cv_room_;  ///< blocking submit waits for a slot
  std::condition_variable cv_reaper_;  ///< reaper waits for deadlines
  std::unordered_map<JobHandle, std::unique_ptr<Job>> jobs_;
  /// Queued jobs, one FIFO per priority class (index = JobPriority).
  std::array<std::deque<Job*>, kPriorityClasses> setup_queues_;
  std::vector<Job*> extracting_;     ///< steal-scan candidates, start order
  std::vector<Job*> finalize_ready_; ///< awaiting a Finalize claim
  std::vector<JobHandle> last_job_;  ///< per-worker affinity
  std::unordered_map<CacheKey, Job*, CacheKeyHash> inflight_;
  /// Bounded memo: cache_ indexes memo_lru_ (front = most recent).
  MemoList memo_lru_;
  std::unordered_map<CacheKey, MemoList::iterator, CacheKeyHash> cache_;
  /// Deadline registrations for not-yet-started jobs, earliest first.
  std::multimap<std::chrono::steady_clock::time_point, Job*> deadlines_;
  BatchStats stats_;
  JobHandle next_handle_ = 1;
  std::size_t unresolved_ = 0;  ///< submitted minus delivered
  bool shutting_down_ = false;  ///< teardown started: new submits cancel
  bool stop_ = false;           ///< workers and the reaper may exit
  std::vector<std::thread> workers_;
  std::thread reaper_;
};

BatchScheduler::BatchScheduler(const BatchOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

BatchScheduler::~BatchScheduler() = default;

BatchScheduler::Submission BatchScheduler::submit(BatchJob job,
                                                  Callback on_complete) {
  return impl_->submit(std::move(job), std::move(on_complete));
}

BatchScheduler::Submission BatchScheduler::try_submit(BatchJob job,
                                                      Callback on_complete) {
  return impl_->try_submit(std::move(job), std::move(on_complete));
}

bool BatchScheduler::cancel(JobHandle handle) {
  return impl_->cancel(handle);
}

void BatchScheduler::drain() { impl_->drain(); }

bool BatchScheduler::drain_for(std::chrono::milliseconds timeout) {
  return impl_->drain_for(timeout);
}

bool BatchScheduler::wait_idle_for(std::chrono::milliseconds timeout) {
  return impl_->wait_idle_for(timeout);
}

BatchStats BatchScheduler::stats() const { return impl_->stats(); }

unsigned BatchScheduler::threads() const { return impl_->options_.threads; }

}  // namespace gfre::core
