// Long-lived asynchronous batch scheduler — the serving front end's engine.
//
// core/batch.hpp's run_batch is submit-all-then-wait: one pool per call,
// memoization scoped to that call.  A serving tier ingests jobs
// incrementally instead, so this class keeps the batch engine's worker
// fleet, per-job state machine, content-hash memoization, in-flight
// deduplication, worker/job affinity and cone stealing alive across an
// arbitrary stream of submissions:
//
//   BatchScheduler scheduler(options);            // workers start here
//   auto ticket = scheduler.submit(std::move(job),
//       [](const BatchJobResult& r) { ... });     // optional callback
//   ...submit more, from any thread...
//   BatchJobResult result = ticket.result.get();  // per-job future
//   scheduler.cancel(ticket.handle);              // queued jobs only
//   scheduler.drain();                            // barrier: all resolved
//
// Guarantees:
//  - Every submitted job's future is eventually fulfilled — with a result
//    (cache hit, success, diagnosed failure or load error), with
//    `cancelled` set, or (engine bug only) with the escaped exception.
//  - The completion callback, when provided, runs exactly once — for
//    results, cancellations and even engine-bug jobs (those see a result
//    with `error` set to "engine failure: ..." while the future carries
//    the exception) — on the thread that resolved the job (a worker, or
//    the caller of cancel()), *before* the future becomes ready.
//    Callbacks must not block on the scheduler (submit/cancel/stats are
//    safe; drain() would deadlock) and must not throw (escaped
//    exceptions are swallowed).
//  - Memoization and in-flight dedup span the scheduler's whole lifetime:
//    a job submitted while its duplicate is mid-extraction attaches to
//    that extraction; one submitted after it completes is a cache hit.
//    The in-memory cache is bounded (BatchOptions::memo_max_entries,
//    LRU-evicted, BatchStats::memo_evictions counts the churn), so a
//    service that runs for months holds a working set, not a leak.  An
//    evicted entry falls through to the persistent disk cache
//    (BatchOptions::result_cache -> core/result_cache.hpp), which
//    survives scheduler recycling, is shared between scheduler instances
//    and is consulted on every in-memory miss before an extraction is
//    paid for.
//  - Admission control (BatchOptions::max_queued > 0) bounds unresolved
//    jobs: submit() blocks until a slot frees; try_submit() never blocks
//    and instead returns a rejected ticket — handle == 0, future already
//    fulfilled with `rejected` set, callback already run.  With
//    max_queued == 0 both behave like the unbounded submit.
//  - Deadlines (BatchJob::deadline_ms > 0) are enforced in two places: a
//    reaper expires still-queued jobs (resolved with `deadline_exceeded`
//    and a diagnosis, without running), and running extractions are
//    soft-aborted at the between-substitutions checkpoint the term budget
//    uses, resolving with a diagnosed failure report that is bit-stable
//    across worker counts.  Deadline outcomes are never written to the
//    memo or the disk cache — they describe the budget, not the netlist.
//  - Priorities (BatchJob::priority) order every claim point — High
//    before Normal before Low, FIFO within a class — ahead of affinity
//    and stealing; BatchOptions::policy picks the latency-vs-throughput
//    behavior within a class.  A cone already running is never preempted.
//  - cancel(handle) succeeds only for jobs that have not started running
//    (queued, or parked behind an in-flight duplicate).  When it returns
//    true, the job's callback has run, its future is ready with
//    `cancelled == true`, and no part of the job will ever execute.
//  - The destructor is safe with work in flight: queued jobs are
//    cancelled (futures fulfilled, callbacks run), jobs that already
//    started run to completion, then the workers shut down.
//
// Thread safety: submit/cancel/stats/threads are safe from any thread,
// including from inside completion callbacks (drain() is the one
// callback-forbidden call — it would self-deadlock).  The scheduler owns
// its workers; the caller owns the futures.  Destruction follows the
// usual C++ object rule — the caller must ensure no thread is inside (or
// about to enter) a method when the destructor starts.  Within that
// rule, teardown is graceful: submissions arriving from completion
// callbacks while the destructor drains resolve as cancelled.
//
// Reports are bit-identical to standalone core::reverse_engineer — the
// scheduler drives the same flow phases, and tests/test_scheduler.cpp
// enforces the equivalence differentially (tests/test_batch.cpp does the
// same for the run_batch wrapper, which is now a thin shim over this
// class).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>

#include "core/batch.hpp"

namespace gfre::core {

class BatchScheduler {
 public:
  /// Identifies a submission for cancel(); never reused within one
  /// scheduler.  0 is not a valid handle.
  using JobHandle = std::uint64_t;

  /// Per-job completion hook; see the header comment for the contract.
  using Callback = std::function<void(const BatchJobResult&)>;

  struct Submission {
    JobHandle handle = 0;
    std::future<BatchJobResult> result;
  };

  /// Starts `options.threads` workers (>= 1) immediately.
  explicit BatchScheduler(const BatchOptions& options = {});

  /// Cancels every job that has not started, waits for in-flight jobs to
  /// resolve, then joins the workers.  Every future is fulfilled first.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueues one job; thread-safe.  The future is fulfilled exactly once
  /// (see the guarantees above).  With BatchOptions::max_queued set and
  /// the queue full, blocks until a job resolves (do NOT call the
  /// blocking submit from a completion callback on a full queue — like
  /// drain(), it can self-deadlock; use try_submit there).  Jobs
  /// submitted while teardown is draining (only possible from completion
  /// callbacks — see the destruction rule in the header comment) resolve
  /// immediately as cancelled.
  Submission submit(BatchJob job, Callback on_complete = nullptr);

  /// Non-blocking admission: like submit, but when the bounded queue is
  /// full the job is rejected instead of waiting — the returned ticket
  /// has handle == 0 and a future already fulfilled with `rejected` set
  /// (callback already run).  Safe from completion callbacks.
  Submission try_submit(BatchJob job, Callback on_complete = nullptr);

  /// Cancels a not-yet-started job.  True: the job never ran and its
  /// future is already fulfilled with `cancelled` set.  False: the job is
  /// running, finished, or the handle is unknown — its future resolves
  /// (or resolved) with a real result.
  bool cancel(JobHandle handle);

  /// Blocks until every job submitted so far is resolved (futures
  /// fulfilled, callbacks done).  Jobs submitted concurrently with the
  /// call may or may not be waited on.
  void drain();

  /// drain() with a wall-clock budget.  Waits up to `timeout` for the
  /// queue to empty; if time runs out, every job that has not started is
  /// cancelled (futures fulfilled with `cancelled` — or
  /// `deadline_exceeded` for jobs whose own deadline also expired), then
  /// waits for the in-flight remainder to resolve.  Returns true when
  /// everything resolved within the budget without forced cancellation.
  bool drain_for(std::chrono::milliseconds timeout);

  /// Passive bounded wait: true when every job submitted so far resolved
  /// within `timeout`, false otherwise — nothing is cancelled either way
  /// (drain_for cancels on timeout).  The building block for
  /// interruptible drains: poll in a loop and break on an external stop
  /// flag, e.g. gfre_batch's SIGINT handling.
  bool wait_idle_for(std::chrono::milliseconds timeout);

  /// Snapshot of the lifetime counters (jobs, cache_hits, cones, ...).
  BatchStats stats() const;

  unsigned threads() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gfre::core
