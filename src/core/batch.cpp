#include "core/batch.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <future>
#include <set>
#include <sstream>

#include "core/scheduler.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gfre::core {

bool BatchReport::all_ok() const {
  return std::all_of(results.begin(), results.end(),
                     [](const BatchJobResult& r) { return r.ok; });
}

const char* to_string(JobPriority priority) {
  switch (priority) {
    case JobPriority::High:
      return "high";
    case JobPriority::Normal:
      return "normal";
    case JobPriority::Low:
      return "low";
  }
  return "normal";
}

std::optional<JobPriority> priority_from_name(std::string_view name) {
  std::string lowered(name);
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lowered == "high") return JobPriority::High;
  if (lowered == "normal") return JobPriority::Normal;
  if (lowered == "low") return JobPriority::Low;
  return std::nullopt;
}

// The submit-all-then-wait entry point, reimplemented as a thin wrapper
// over the long-lived scheduler: submit every job, drain, collect the
// futures in submission order.  All scheduling behavior (state machine,
// memoization, in-flight dedup, affinity, cone stealing) lives in
// core/scheduler.cpp — there is exactly one engine, so the differential
// guarantees proven for run_batch hold for the async path by construction.
BatchReport run_batch(std::vector<BatchJob> jobs,
                      const BatchOptions& options) {
  GFRE_ASSERT(options.threads >= 1, "batch needs at least one worker");
  Timer clock;
  BatchReport out;
  out.threads = options.threads;
  std::vector<std::future<BatchJobResult>> futures;
  futures.reserve(jobs.size());
  {
    BatchScheduler scheduler(options);
    for (auto& job : jobs) {
      futures.push_back(scheduler.submit(std::move(job)).result);
    }
    scheduler.drain();
    out.stats = scheduler.stats();
  }
  out.results.reserve(futures.size());
  // get() rethrows only for engine bugs (per-job failures are results) —
  // the same surface the old in-place scheduler exposed via parallel_for.
  for (auto& future : futures) out.results.push_back(future.get());
  out.wall_seconds = clock.seconds();
  return out;
}

// ---------------------------------------------------------------------------
// Manifest parsing
// ---------------------------------------------------------------------------

namespace {

bool parse_bool(const std::string& value) {
  if (value == "1" || value == "true" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "no") return false;
  throw InvalidArgument("expected a boolean, got '" + value + "'");
}

}  // namespace

std::optional<BatchJob> parse_manifest_line(const std::string& line,
                                            int lineno,
                                            const std::string& manifest_path,
                                            const std::string& base_dir,
                                            const FlowOptions& defaults) {
  std::string text = line;
  // Manifests written on Windows (or fetched through a CRLF-normalizing
  // transport) end lines in \r\n; getline leaves the \r attached.
  if (!text.empty() && text.back() == '\r') text.pop_back();

  const std::filesystem::path base(base_dir);
  std::istringstream tokens(text);
  std::string token;
  BatchJob job;
  job.options = defaults;
  bool have_path = false;
  bool have_options = false;
  std::set<std::string> seen_keys;
  while (tokens >> token) {
    if (token[0] == '#') break;
    const auto eq = token.find('=');
    if (!have_path && eq == std::string::npos) {
      std::filesystem::path p(token);
      job.path = p.is_absolute() ? p.string() : (base / p).string();
      have_path = true;
      continue;
    }
    if (eq == std::string::npos) {
      throw ParseError(manifest_path, lineno,
                       "expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    have_options = true;
    // A repeated key is near-certainly an editing mistake ("deadline_ms=1
    // deadline_ms=1000"); letting the last one win silently runs the job
    // under whichever value happened to be typed second.
    if (!seen_keys.insert(key).second) {
      throw ParseError(manifest_path, lineno,
                       "duplicate manifest key '" + key + "'");
    }
    try {
      if (key == "name") {
        job.name = value;
      } else if (key == "ports") {
        const auto c1 = value.find(',');
        const auto c2 = value.find(',', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos) {
          throw InvalidArgument("want ports=a,b,z");
        }
        // 'ports=a,b,z,extra' must not silently fold ",extra" into the
        // z base name — that is a job analyzing the wrong port.
        if (value.find(',', c2 + 1) != std::string::npos) {
          throw InvalidArgument("want exactly three ports=a,b,z, got '" +
                                value + "'");
        }
        job.options.a_base = value.substr(0, c1);
        job.options.b_base = value.substr(c1 + 1, c2 - c1 - 1);
        job.options.z_base = value.substr(c2 + 1);
      } else if (key == "strategy") {
        const auto strategy = strategy_from_name(value);
        if (!strategy.has_value()) {
          throw InvalidArgument("unknown strategy '" + value + "'");
        }
        job.options.strategy = *strategy;
      } else if (key == "infer") {
        job.options.infer_ports = parse_bool(value);
      } else if (key == "verify") {
        job.options.verify_with_golden = parse_bool(value);
      } else if (key == "permute") {
        job.options.try_output_permutation = parse_bool(value);
      } else if (key == "max_terms") {
        // stoull would silently wrap "-1" to 2^64-1, disabling the very
        // budget the key sets.
        if (value.empty() || value[0] == '-') {
          throw InvalidArgument("max_terms wants a non-negative integer, "
                                "got '" + value + "'");
        }
        job.options.max_terms = std::stoull(value);
      } else if (key == "deadline_ms") {
        // Same wrap hazard as max_terms: "-1" must not become a 2^64-1 ms
        // deadline (i.e. no deadline at all).
        if (value.empty() || value[0] == '-') {
          throw InvalidArgument("deadline_ms wants a non-negative integer, "
                                "got '" + value + "'");
        }
        job.deadline_ms = std::stoull(value);
      } else if (key == "library") {
        // Library paths resolve like netlist paths: against the
        // manifest's directory.
        std::filesystem::path p(value);
        job.options.library =
            p.is_absolute() ? p.string() : (base / p).string();
      } else if (key == "priority") {
        const auto priority = priority_from_name(value);
        if (!priority.has_value()) {
          throw InvalidArgument("unknown priority '" + value +
                                "' (want high|normal|low)");
        }
        job.priority = *priority;
      } else {
        throw InvalidArgument("unknown manifest key '" + key + "'");
      }
    } catch (const std::exception& e) {
      throw ParseError(manifest_path, lineno, e.what());
    }
  }
  if (!have_path) {
    // Blank and comment-only lines are fine; a line that parsed options
    // but no path is a dropped job waiting to go unnoticed.
    if (have_options) {
      throw ParseError(manifest_path, lineno,
                       "job line has key=value options but no netlist "
                       "path");
    }
    return std::nullopt;
  }
  return job;
}

std::vector<BatchJob> parse_manifest(const std::string& path,
                                     const FlowOptions& defaults) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open manifest '" + path + "'");
  const std::string base =
      std::filesystem::path(path).parent_path().string();

  std::vector<BatchJob> jobs;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (auto job = parse_manifest_line(line, lineno, path, base, defaults)) {
      jobs.push_back(std::move(*job));
    }
  }
  return jobs;
}

}  // namespace gfre::core
