#include "core/batch.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "core/parallel_extract.hpp"
#include "core/rewriter.hpp"
#include "netlist/io_blif.hpp"
#include "netlist/io_eqn.hpp"
#include "netlist/io_verilog.hpp"
#include "util/error.hpp"
#include "util/rss.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace gfre::core {

namespace {

constexpr std::size_t kNoJob = ~std::size_t{0};

// -- Content hashing --------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
// Second, independent multiply-xor stream (Murmur64's odd constant) so the
// cache key is effectively 128 bits: an *accidental* simultaneous
// collision is ~2^-128, i.e. never.  Neither stream is cryptographic — a
// determined adversary could still construct a colliding pair, so a
// hardened multi-tenant service should swap in a real cryptographic hash
// (ROADMAP open item) before trusting cross-tenant memoization.
constexpr std::uint64_t kAltOffset = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kAltPrime = 0xc6a4a7935bd1e995ull;

/// Two independent 64-bit accumulators fed in one pass.
struct Mixer {
  std::uint64_t a = kFnvOffset;
  std::uint64_t b = kAltOffset;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      a = (a ^ p[i]) * kFnvPrime;
      b = (b ^ p[i]) * kAltPrime;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, 8); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

/// 128-bit memoization key.
struct CacheKey {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool operator==(const CacheKey&) const = default;
  bool empty() const { return a == 0 && b == 0; }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return static_cast<std::size_t>(k.a ^ (k.b * kFnvPrime));
  }
};

void mix_netlist(Mixer& mix, const nl::Netlist& netlist) {
  mix.str(netlist.name());
  mix.u64(netlist.inputs().size());
  for (nl::Var v : netlist.inputs()) mix.str(netlist.var_name(v));
  mix.u64(netlist.num_gates());
  for (const nl::Gate& gate : netlist.gates()) {
    mix.u64(static_cast<std::uint64_t>(gate.type));
    mix.str(netlist.var_name(gate.output));
    mix.u64(gate.inputs.size());
    for (nl::Var in : gate.inputs) mix.u64(in);
  }
  mix.u64(netlist.outputs().size());
  for (nl::Var v : netlist.outputs()) mix.u64(v);
}

/// Flow options that change the report (everything but thread count).
void mix_options(Mixer& mix, const FlowOptions& o) {
  mix.u64(static_cast<std::uint64_t>(o.strategy));
  mix.u64((o.verify_with_golden ? 1u : 0u) | (o.infer_ports ? 2u : 0u) |
          (o.try_output_permutation ? 4u : 0u));
  mix.str(o.a_base);
  mix.str(o.b_base);
  mix.str(o.z_base);
  mix.u64(o.max_terms);
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open netlist file '" + path + "'");
  std::string bytes;
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    bytes.append(buf, static_cast<std::size_t>(in.gcount()));
  }
  return bytes;
}

/// Parses netlist text by the path's extension.  The batch engine hashes
/// and parses the SAME byte buffer, so a file rewritten mid-batch can
/// never cache a report under the wrong content hash.
nl::Netlist parse_netlist_text(const std::string& text,
                               const std::string& path) {
  if (ends_with(path, ".eqn")) return nl::read_eqn(text, path);
  if (ends_with(path, ".blif")) return nl::read_blif(text, path);
  if (ends_with(path, ".v")) return nl::read_verilog(text, path);
  throw InvalidArgument("unknown netlist extension on '" + path +
                        "' (want .eqn, .blif or .v)");
}

}  // namespace

std::uint64_t netlist_content_hash(const nl::Netlist& netlist) {
  Mixer mix;
  mix_netlist(mix, netlist);
  return mix.a;
}

nl::Netlist load_netlist_file(const std::string& path) {
  return parse_netlist_text(read_file_bytes(path), path);
}

bool BatchReport::all_ok() const {
  return std::all_of(results.begin(), results.end(),
                     [](const BatchJobResult& r) { return r.ok; });
}

// ---------------------------------------------------------------------------
// Scheduler
//
// Per-job state machine:  PendingSetup -> SettingUp -> Extracting (one task
// per output cone) -> ReadyToFinalize -> Finalizing -> Done, with shortcuts
// to Done for cache hits / load errors / port failures, and AwaitingPrimary
// for duplicates of an in-flight job.  `threads` workers run the loop in
// Scheduler::worker on one shared ThreadPool; all bookkeeping is under one
// mutex (tasks are coarse — a whole cone rewrite or a whole file parse — so
// the lock is cold).
// ---------------------------------------------------------------------------

namespace {

class Scheduler {
 public:
  Scheduler(std::vector<BatchJob>&& specs, const BatchOptions& options)
      : options_(options) {
    jobs_.reserve(specs.size());
    for (auto& spec : specs) {
      Job job;
      job.spec = std::move(spec);
      if (job.spec.name.empty()) {
        job.spec.name = !job.spec.path.empty()
                            ? job.spec.path
                            : (job.spec.netlist ? job.spec.netlist->name()
                                                : "job");
      }
      jobs_.push_back(std::move(job));
    }
    last_job_.assign(std::max(1u, options_.threads), kNoJob);
  }

  void worker(std::size_t wid) {
    std::unique_lock<std::mutex> lock(mu_);
    while (!fatal_ && jobs_done_ < jobs_.size()) {
      const Task task = find_work(wid);
      if (task.kind == Task::Kind::None) {
        cv_.wait(lock);
        continue;
      }
      lock.unlock();
      try {
        switch (task.kind) {
          case Task::Kind::Setup: run_setup(task.job); break;
          case Task::Kind::Cone: run_cone(task.job, task.cone); break;
          case Task::Kind::Finalize: run_finalize(task.job); break;
          case Task::Kind::None: break;
        }
      } catch (...) {
        // Per-job failures are already converted to results inside the
        // task runners; anything reaching here is an engine bug (or OOM).
        // Surface it through parallel_for instead of leaving the other
        // workers waiting on a batch that can no longer finish.
        lock.lock();
        if (!fatal_) fatal_ = true;
        cv_.notify_all();
        throw;
      }
      lock.lock();
    }
    cv_.notify_all();
  }

  BatchReport collect() {
    BatchReport out;
    out.threads = options_.threads;
    out.stats = stats_;
    out.stats.jobs = jobs_.size();
    out.results.reserve(jobs_.size());
    for (Job& job : jobs_) {
      if (!job.result.error.empty()) {
        ++out.stats.load_errors;
      } else if (job.result.ok) {
        ++out.stats.succeeded;
      } else {
        ++out.stats.failed;
      }
      out.results.push_back(std::move(job.result));
    }
    out.wall_seconds = clock_.seconds();
    return out;
  }

 private:
  struct Job {
    BatchJob spec;
    enum class State {
      PendingSetup,
      SettingUp,
      Extracting,
      AwaitingPrimary,  ///< duplicate of an in-flight job; primary resolves it
      ReadyToFinalize,
      Finalizing,
      Done,
    } state = State::PendingSetup;

    // Setup products.  `net` points at spec.netlist (in-memory job) or at
    // `loaded` (file job); released on completion to bound batch memory.
    std::optional<nl::Netlist> loaded;
    const nl::Netlist* net = nullptr;
    std::optional<nl::MultiplierPorts> ports;
    ExtractionResult extraction;
    double extract_started = 0.0;

    std::size_t cones_claimed = 0;
    std::size_t cones_done = 0;
    /// Lowest-index cone failure (Error-derived).  Lowest index — not
    /// first to complete — because that is what both standalone paths
    /// deterministically report (the sequential loop stops at the first
    /// throwing bit; parallel_for rethrows the lowest-index exception),
    /// and batch reports must be identical under any scheduling.
    std::exception_ptr abort;
    std::size_t abort_cone = 0;

    CacheKey key;
    std::vector<std::size_t> followers;

    BatchJobResult result;
  };

  struct Task {
    enum class Kind { None, Setup, Cone, Finalize } kind = Kind::None;
    std::size_t job = kNoJob;
    std::size_t cone = kNoJob;
  };

  struct CacheEntry {
    FlowReport report;
    std::string error;
  };

  std::size_t cones_available(const Job& job) const {
    if (job.state != Job::State::Extracting || job.abort) return 0;
    return job.extraction.anfs.size() - job.cones_claimed;
  }

  Task claim_cone(std::size_t j, std::size_t wid) {
    Job& job = jobs_[j];
    Task task;
    task.kind = Task::Kind::Cone;
    task.job = j;
    task.cone = job.cones_claimed++;
    if (last_job_[wid] != j) {
      if (last_job_[wid] != kNoJob) ++stats_.cone_steals;
      last_job_[wid] = j;
    }
    return task;
  }

  /// Claims the next unit of work under mu_.  Priorities: retire finished
  /// jobs (unblocks duplicates), stay on the worker's current job (the
  /// netlist is cache-hot), open a new job, and only then steal a cone
  /// from the deepest other job's backlog.  The first three claims are
  /// O(1) — finalize-ready jobs queue in finalize_ready_, setups are
  /// claimed in submission order via next_setup_ — so only the rare
  /// steal path (own job dry AND nothing left to open) scans all jobs.
  Task find_work(std::size_t wid) {
    if (!finalize_ready_.empty()) {
      const std::size_t j = finalize_ready_.back();
      finalize_ready_.pop_back();
      jobs_[j].state = Job::State::Finalizing;
      Task task;
      task.kind = Task::Kind::Finalize;
      task.job = j;
      return task;
    }
    if (last_job_[wid] != kNoJob && cones_available(jobs_[last_job_[wid]])) {
      return claim_cone(last_job_[wid], wid);
    }
    if (next_setup_ < jobs_.size()) {
      const std::size_t j = next_setup_++;
      jobs_[j].state = Job::State::SettingUp;
      // The worker adopts the job it opens — claiming its cones next is
      // affinity, not a steal.
      last_job_[wid] = j;
      Task task;
      task.kind = Task::Kind::Setup;
      task.job = j;
      return task;
    }
    std::size_t best = kNoJob;
    std::size_t best_backlog = 0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const std::size_t backlog = cones_available(jobs_[j]);
      if (backlog > best_backlog) {
        best = j;
        best_backlog = backlog;
      }
    }
    if (best != kNoJob) return claim_cone(best, wid);
    return Task{};
  }

  void run_setup(std::size_t j) {
    Job& job = jobs_[j];
    // File jobs are read ONCE: the content hash and the parse below both
    // see these bytes, so a file rewritten mid-batch cannot cache a
    // report under the wrong hash — and duplicates dedup before paying
    // for a parse.
    std::string text;
    if (!job.spec.netlist.has_value()) {
      try {
        text = read_file_bytes(job.spec.path);
      } catch (const Error& e) {
        complete_with_error(j, e.what());
        return;
      }
    }

    if (options_.memoize) {
      Mixer mix;
      if (job.spec.netlist.has_value()) {
        mix_netlist(mix, *job.spec.netlist);
        mix.u64(1);  // domain tag: structural
      } else {
        mix.bytes(text.data(), text.size());
        mix.u64(2);  // domain tag: file bytes
      }
      mix_options(mix, job.spec.options);
      const CacheKey key{mix.a, mix.b};
      std::unique_lock<std::mutex> lock(mu_);
      job.key = key;
      const auto cached = cache_.find(key);
      if (cached != cache_.end()) {
        job.result.report = cached->second.report;
        job.result.error = cached->second.error;
        job.result.cache_hit = true;
        ++stats_.cache_hits;
        finish_locked(j);
        return;
      }
      const auto inflight = inflight_.find(key);
      if (inflight != inflight_.end()) {
        jobs_[inflight->second].followers.push_back(j);
        job.state = Job::State::AwaitingPrimary;
        return;
      }
      inflight_.emplace(key, j);
    }

    try {
      if (!job.spec.netlist.has_value()) {
        job.loaded = parse_netlist_text(text, job.spec.path);
        job.net = &*job.loaded;
      } else {
        job.net = &*job.spec.netlist;
      }
    } catch (const Error& e) {
      // Parse failures after inflight registration still resolve any
      // followers (complete_with_error caches the error and unregisters).
      complete_with_error(j, e.what());
      return;
    }

    FlowReport port_failure;
    job.ports = resolve_flow_ports(*job.net, job.spec.options, &port_failure);
    if (!job.ports.has_value()) {
      complete_with_report(j, std::move(port_failure));
      return;
    }

    const std::size_t bits = job.ports->z.bits.size();
    job.extraction.anfs.resize(bits);
    job.extraction.per_bit.resize(bits);
    job.extraction.threads = options_.threads;

    std::lock_guard<std::mutex> lock(mu_);
    job.extract_started = clock_.seconds();
    // A multiplier interface always has >= 1 output bit (m >= 1), so the
    // job cannot be born ReadyToFinalize here.
    job.state = Job::State::Extracting;
    cv_.notify_all();
  }

  void run_cone(std::size_t j, std::size_t cone) {
    Job& job = jobs_[j];
    RewriteOptions options;
    options.strategy = job.spec.options.strategy;
    options.max_terms = job.spec.options.max_terms;
    std::exception_ptr failure;
    try {
      // Each slot is claimed by exactly one worker — no lock needed for
      // the write.
      job.extraction.anfs[cone] =
          extract_output_anf(*job.net, job.ports->z.bits[cone], options,
                             &job.extraction.per_bit[cone]);
    } catch (const Error&) {
      // Same exception surface reverse_engineer converts to a diagnosed
      // failure; anything else is an engine bug and propagates.
      failure = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cones_extracted;
    ++job.cones_done;
    if (failure && (!job.abort || cone < job.abort_cone)) {
      job.abort = failure;
      job.abort_cone = cone;
    }
    // On abort, cones_available() stops further claims; the job finalizes
    // once the already-claimed cones drain.
    if (job.cones_done == job.cones_claimed &&
        (job.abort || job.cones_claimed == job.extraction.anfs.size())) {
      job.state = Job::State::ReadyToFinalize;
      finalize_ready_.push_back(j);
    }
    cv_.notify_all();
  }

  void run_finalize(std::size_t j) {
    Job& job = jobs_[j];
    FlowReport report;
    if (job.abort) {
      std::string what;
      try {
        std::rethrow_exception(job.abort);
      } catch (const Error& e) {
        what = e.what();
      }
      report = extraction_failure_report(*job.net, *job.ports, what);
    } else {
      {
        std::lock_guard<std::mutex> lock(mu_);
        job.extraction.wall_seconds = clock_.seconds() - job.extract_started;
      }
      for (const auto& stats : job.extraction.per_bit) {
        job.extraction.total_peak_terms += stats.peak_terms;
      }
      // Same guard reverse_engineer wraps around this call: an analysis
      // Error is this job's diagnosed failure, never a dead worker (which
      // would deadlock the batch).
      try {
        report = analyze_extraction(*job.net, *job.ports,
                                    std::move(job.extraction),
                                    job.spec.options);
      } catch (const Error& e) {
        report = extraction_failure_report(*job.net, *job.ports, e.what());
      }
    }
    report.rss_peak_bytes = peak_rss_bytes();
    report.rss_after_bytes = current_rss_bytes();
    complete_with_report(j, std::move(report));
  }

  void complete_with_report(std::size_t j, FlowReport&& report) {
    Job& job = jobs_[j];
    job.result.report = std::move(report);
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.memoize) {
      cache_.emplace(job.key, CacheEntry{job.result.report, ""});
    }
    finish_locked(j);
  }

  void complete_with_error(std::size_t j, const std::string& error) {
    Job& job = jobs_[j];
    job.result.error = error;
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.memoize && !job.key.empty()) {
      cache_.emplace(job.key, CacheEntry{FlowReport{}, error});
    }
    finish_locked(j);
  }

  /// Marks job j done, resolves its duplicates from the freshly cached
  /// result and releases the per-job working set.  Requires mu_.
  void finish_locked(std::size_t j) {
    Job& job = jobs_[j];
    job.result.name = job.spec.name;
    job.result.path = job.spec.path;
    job.result.ok = job.result.error.empty() && job.result.report.success;
    job.result.seconds = clock_.seconds();
    job.state = Job::State::Done;
    ++jobs_done_;
    if (options_.memoize) {
      // Only this job's own registration: a job that failed before keying
      // never registered and must not evict someone else's entry.
      const auto it = inflight_.find(job.key);
      if (it != inflight_.end() && it->second == j) inflight_.erase(it);
    }
    for (std::size_t f : job.followers) {
      Job& dup = jobs_[f];
      dup.result.report = job.result.report;
      dup.result.error = job.result.error;
      dup.result.cache_hit = true;
      ++stats_.cache_hits;
      dup.result.name = dup.spec.name;
      dup.result.path = dup.spec.path;
      dup.result.ok = dup.result.error.empty() && dup.result.report.success;
      dup.result.seconds = clock_.seconds();
      dup.state = Job::State::Done;
      ++jobs_done_;
    }
    job.followers.clear();
    job.loaded.reset();
    job.spec.netlist.reset();
    job.net = nullptr;
    cv_.notify_all();
  }

  BatchOptions options_;
  std::vector<Job> jobs_;
  std::vector<std::size_t> last_job_;  // per-worker affinity
  std::unordered_map<CacheKey, std::size_t, CacheKeyHash> inflight_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  BatchStats stats_;
  std::size_t jobs_done_ = 0;
  std::size_t next_setup_ = 0;               ///< jobs below are past setup
  std::vector<std::size_t> finalize_ready_;  ///< awaiting a Finalize claim
  bool fatal_ = false;  ///< a worker died on a non-job exception
  Timer clock_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace

BatchReport run_batch(std::vector<BatchJob> jobs,
                      const BatchOptions& options) {
  GFRE_ASSERT(options.threads >= 1, "batch needs at least one worker");
  Scheduler scheduler(std::move(jobs), options);
  {
    ThreadPool pool(options.threads);
    pool.parallel_for(options.threads,
                      [&](std::size_t wid) { scheduler.worker(wid); });
  }
  return scheduler.collect();
}

// ---------------------------------------------------------------------------
// Manifest parsing
// ---------------------------------------------------------------------------

namespace {

bool parse_bool(const std::string& value) {
  if (value == "1" || value == "true" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "no") return false;
  throw InvalidArgument("expected a boolean, got '" + value + "'");
}

}  // namespace

std::vector<BatchJob> parse_manifest(const std::string& path,
                                     const FlowOptions& defaults) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open manifest '" + path + "'");
  const std::filesystem::path base =
      std::filesystem::path(path).parent_path();

  std::vector<BatchJob> jobs;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream tokens(line);
    std::string token;
    BatchJob job;
    job.options = defaults;
    bool have_path = false;
    bool have_options = false;
    while (tokens >> token) {
      if (token[0] == '#') break;
      const auto eq = token.find('=');
      if (!have_path && eq == std::string::npos) {
        std::filesystem::path p(token);
        job.path = p.is_absolute() ? p.string() : (base / p).string();
        have_path = true;
        continue;
      }
      if (eq == std::string::npos) {
        throw ParseError(path, lineno, "expected key=value, got '" + token +
                                           "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      have_options = true;
      try {
        if (key == "name") {
          job.name = value;
        } else if (key == "ports") {
          const auto c1 = value.find(',');
          const auto c2 = value.find(',', c1 + 1);
          if (c1 == std::string::npos || c2 == std::string::npos) {
            throw InvalidArgument("want ports=a,b,z");
          }
          job.options.a_base = value.substr(0, c1);
          job.options.b_base = value.substr(c1 + 1, c2 - c1 - 1);
          job.options.z_base = value.substr(c2 + 1);
        } else if (key == "strategy") {
          const auto strategy = strategy_from_name(value);
          if (!strategy.has_value()) {
            throw InvalidArgument("unknown strategy '" + value + "'");
          }
          job.options.strategy = *strategy;
        } else if (key == "infer") {
          job.options.infer_ports = parse_bool(value);
        } else if (key == "verify") {
          job.options.verify_with_golden = parse_bool(value);
        } else if (key == "permute") {
          job.options.try_output_permutation = parse_bool(value);
        } else if (key == "max_terms") {
          // stoull would silently wrap "-1" to 2^64-1, disabling the very
          // budget the key sets.
          if (value.empty() || value[0] == '-') {
            throw InvalidArgument("max_terms wants a non-negative integer, "
                                  "got '" + value + "'");
          }
          job.options.max_terms = std::stoull(value);
        } else {
          throw InvalidArgument("unknown manifest key '" + key + "'");
        }
      } catch (const std::exception& e) {
        throw ParseError(path, lineno, e.what());
      }
    }
    if (!have_path) {
      // Blank and comment-only lines are fine; a line that parsed options
      // but no path is a dropped job waiting to go unnoticed.
      if (have_options) {
        throw ParseError(path, lineno,
                         "job line has key=value options but no netlist "
                         "path");
      }
      continue;
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace gfre::core
