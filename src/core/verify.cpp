#include "core/verify.hpp"

#include "core/parallel_extract.hpp"
#include "core/poly_extract.hpp"
#include "util/error.hpp"

namespace gfre::core {

using anf::Anf;
using gf2::Poly;

std::vector<Anf> golden_anfs(const gf2m::Field& field,
                             const nl::MultiplierPorts& ports,
                             bool montgomery_raw) {
  const unsigned m = field.m();
  GFRE_ASSERT(ports.m() == m,
              "port width " << ports.m() << " != field degree " << m);

  // Coefficient rows: C[k] says which output bits receive product set S_k.
  std::vector<Poly> rows(2 * m - 1);
  if (!montgomery_raw) {
    for (unsigned k = 0; k < m; ++k) rows[k] = Poly::monomial(k);
    for (unsigned k = m; k <= 2 * m - 2; ++k) {
      rows[k] = field.reduction_rows()[k - m];
    }
  } else {
    const Poly x_inv_m = field.inverse(field.reduce(Poly::monomial(m)));
    for (unsigned k = 0; k < m; ++k) {
      rows[k] = field.mul(field.reduce(Poly::monomial(k)), x_inv_m);
    }
    for (unsigned k = m; k <= 2 * m - 2; ++k) {
      rows[k] = Poly::monomial(k - m);
    }
  }

  std::vector<Anf> spec(m);
  for (unsigned k = 0; k <= 2 * m - 2; ++k) {
    const auto set = product_set(ports, k);
    for (unsigned i = 0; i < m; ++i) {
      if (!rows[k].coeff(i)) continue;
      for (const auto& monomial : set) spec[i].toggle(monomial);
    }
  }
  return spec;
}

VerifyResult verify_against_golden(const std::vector<Anf>& extracted,
                                   const gf2m::Field& field,
                                   const nl::MultiplierPorts& ports,
                                   CircuitClass circuit_class) {
  VerifyResult result;
  if (circuit_class == CircuitClass::NotAMultiplier) {
    result.detail = "no golden model: circuit is not a GF(2^m) multiplier";
    return result;
  }
  const auto spec = golden_anfs(
      field, ports, circuit_class == CircuitClass::MontgomeryRaw);
  GFRE_ASSERT(spec.size() == extracted.size(), "width mismatch");
  for (unsigned i = 0; i < spec.size(); ++i) {
    if (spec[i] != extracted[i]) {
      result.equivalent = false;
      result.mismatch_bit = i;
      result.detail = "output bit " + std::to_string(i) +
                      ": implementation ANF has " +
                      std::to_string(extracted[i].size()) +
                      " monomials, golden has " +
                      std::to_string(spec[i].size());
      return result;
    }
  }
  result.equivalent = true;
  result.detail = "all " + std::to_string(spec.size()) +
                  " output ANFs match the golden model";
  return result;
}

VerifyResult verify_known_multiplier(const nl::Netlist& netlist,
                                     const gf2m::Field& field,
                                     unsigned threads,
                                     const std::string& a_base,
                                     const std::string& b_base,
                                     const std::string& z_base) {
  const auto ports = nl::multiplier_ports(netlist, a_base, b_base, z_base);
  if (ports.m() != field.m()) {
    VerifyResult result;
    result.detail = "netlist width " + std::to_string(ports.m()) +
                    " != field degree " + std::to_string(field.m());
    return result;
  }
  const auto extraction = extract_outputs(netlist, ports.z.bits, threads);
  return verify_against_golden(extraction.anfs, field, ports,
                               CircuitClass::StandardProduct);
}

}  // namespace gfre::core
