// Scrambled-output recovery — an extension beyond the paper.
//
// The paper assumes the netlist's outputs are labeled z0..z{m-1} in bit
// order.  In a real reverse-engineering setting the bit order of the result
// bus may be unknown (bus bits get permuted by place-and-route or by
// deliberate obfuscation).  For a standard product Z = A*B mod P the
// in-field half of the coefficient matrix identifies each bit uniquely:
// product set S_k (k < m) feeds output bit k and no other, so the output
// whose ANF contains S_k *is* bit k.  This module recovers that
// permutation, after which Algorithm 2 proceeds as usual.
#pragma once

#include <optional>
#include <vector>

#include "anf/anf.hpp"
#include "netlist/ports.hpp"

namespace gfre::core {

/// Given the extracted ANFs of the m output nets in *arbitrary* order,
/// returns `order` such that anfs[order[i]] is the ANF of output bit i —
/// or nullopt when the functions do not have standard-product shape (no
/// unique in-field product set per output, duplicate claims, ...).
///
/// Only the a/b operand bits of `ports` are used; the z entries may be in
/// any order (that is the point).
std::optional<std::vector<unsigned>> recover_output_order(
    const std::vector<anf::Anf>& anfs, const nl::MultiplierPorts& ports);

}  // namespace gfre::core
