#include "core/rewriter.hpp"

#include <algorithm>
#include <cctype>
#include <limits>
#include <memory>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "anf/packed.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gfre::core {

using anf::Anf;
using anf::Monomial;
using nl::Var;

const char* to_string(RewriteStrategy strategy) {
  switch (strategy) {
    case RewriteStrategy::Packed: return "packed";
    case RewriteStrategy::Indexed: return "indexed";
    case RewriteStrategy::NaiveScan: return "naive";
  }
  return "?";
}

std::optional<RewriteStrategy> strategy_from_name(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "packed") return RewriteStrategy::Packed;
  if (lower == "indexed") return RewriteStrategy::Indexed;
  if (lower == "naive" || lower == "naivescan") {
    return RewriteStrategy::NaiveScan;
  }
  return std::nullopt;
}

namespace {

/// Occurrence-indexed polynomial (the legacy "Indexed" backend's store): a
/// stable entry table plus a variable -> (entry id, generation) handle
/// index.  Handles are validated by generation match — stale entries are
/// dropped lazily, and a handle is pushed exactly once per live monomial
/// per variable, so collecting occurrences needs no copy + sort + unique
/// of full Monomial values.
class IndexedPoly {
 public:
  void toggle(const Monomial& m, std::size_t* cancellations) {
    const auto it = live_.find(m);
    if (it != live_.end()) {
      release(it);
      if (cancellations != nullptr) ++(*cancellations);
      return;
    }
    std::uint32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else {
      id = static_cast<std::uint32_t>(entries_.size());
      entries_.push_back(Entry{nullptr, 0});
    }
    const auto pos = live_.emplace(m, id).first;
    Entry& e = entries_[id];
    e.mono = &pos->first;  // node-stable across unordered_map rehashes
    ++e.gen;               // dead -> live (odd)
    for (Var v : m.vars()) index_[v].push_back(OccRef{id, e.gen});
  }

  /// Monomials currently containing v; compacts the handle bucket.
  std::vector<Monomial> occurrences(Var v) {
    std::vector<Monomial> hits;
    const auto it = index_.find(v);
    if (it == index_.end()) return hits;
    auto& bucket = it->second;
    std::size_t out = 0;
    for (const OccRef& ref : bucket) {
      if (entries_[ref.id].gen != ref.gen) continue;  // stale handle
      hits.push_back(*entries_[ref.id].mono);
      bucket[out++] = ref;
    }
    bucket.resize(out);
    return hits;
  }

  void erase(const Monomial& m) {
    const auto it = live_.find(m);
    GFRE_ASSERT(it != live_.end(), "erasing absent monomial");
    release(it);
  }

  Anf value() const {
    Anf out;
    out.reserve(live_.size());
    for (const auto& [m, id] : live_) out.toggle(m);
    return out;
  }

  std::size_t size() const { return live_.size(); }

 private:
  struct Entry {
    const Monomial* mono;  // owned by live_; only dereferenced while live
    std::uint32_t gen;     // parity: odd = live; handles match exact gen
  };
  struct OccRef {
    std::uint32_t id;
    std::uint32_t gen;
  };
  using LiveMap = std::unordered_map<Monomial, std::uint32_t,
                                     anf::MonomialHash>;

  void release(LiveMap::iterator it) {
    const std::uint32_t id = it->second;
    ++entries_[id].gen;  // live -> dead; all outstanding handles go stale
    free_.push_back(id);
    live_.erase(it);
  }

  LiveMap live_;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<Var, std::vector<OccRef>> index_;
};

void trace_step(std::ostream& out, const nl::Netlist& netlist,
                std::size_t gate_index, const Anf& f,
                std::size_t cancelled_this_step) {
  out << "G" << gate_index << ": "
      << f.to_string([&](Var v) { return netlist.var_name(v); });
  if (cancelled_this_step > 0) {
    out << "   elim: " << cancelled_this_step << " monomial"
        << (cancelled_this_step == 1 ? "" : "s");
  }
  out << "\n";
}

// ---------------------------------------------------------------------------
// Algorithm-1 backends.  Each backend owns the polynomial store; the shared
// driver below walks the cone and applies the gate steps.
//
// Backend interface:
//   Backend(netlist, output, cone)   — F := {output}
//   bool prepare(Var v)              — true iff v occurs in F (caches
//                                      hits)
//   void substitute(const nl::Gate&) — apply the gate's ANF for v
//   std::size_t size()               — |F|
//   std::size_t transient_peak()     — intra-substitution |F| estimate
//   std::size_t cancellations()      — running mod-2 cancellation count
//   Anf value()                      — F as a canonical Anf
// ---------------------------------------------------------------------------

/// Per-thread scratch for the packed backend's var -> slot remap: an
/// epoch-stamped table sized to the netlist plus the reusable slot_to_var
/// and TermList buffers.  Starting a cone bumps the epoch instead of
/// refilling an O(num_vars) sentinel table, so per-bit backend setup costs
/// O(1), and the buffers keep their capacity across the thousands of
/// cones a crypto-size extraction walks (zero steady-state allocations).
struct RemapScratch {
  // stamp[v] = (epoch << 32) | slot; a stale epoch half means "unmapped".
  std::vector<std::uint64_t> stamp;
  std::vector<Var> slot_to_var;
  anf::packed::TermList terms;
  std::uint32_t epoch = 0;
  bool in_use = false;

  std::uint32_t next_epoch() {
    if (++epoch == 0) {  // wrap: invalidate every stamp explicitly
      std::fill(stamp.begin(), stamp.end(), std::uint64_t{0});
      epoch = 1;
    }
    return epoch;
  }

  void ensure_vars(std::size_t n) {
    if (stamp.size() < n) stamp.resize(n, 0);
  }
};

RemapScratch& thread_remap_scratch() {
  thread_local RemapScratch scratch;
  return scratch;
}

/// Packed backend: cone-local dense slot remapping over anf/packed.hpp.
class PackedBackend {
 public:
  PackedBackend(const nl::Netlist& netlist, Var output,
                const std::vector<std::size_t>& cone) {
    RemapScratch& st = *lease_.scratch;
    st.ensure_vars(netlist.num_vars());
    epoch_ = st.next_epoch();
    st.slot_to_var.clear();
    const auto root = slot_of(output);  // always slot 0
    // Slots are assigned lazily, on a var's first entry into F (root here,
    // substituted-term vars in build_terms) — never for the millions of
    // cone gates whose outputs the rewrite never reaches.  The engine and
    // its representation only need an upper bound on the slots that can
    // appear: every cone var is either a cone gate's output or undriven,
    // so cone size plus the netlist's undriven-var count covers it.  The
    // bound may overshoot the exact cone var count near a representation
    // boundary; any rep wide enough for the bound is wide enough for the
    // cone.
    const std::size_t bound = std::min<std::size_t>(
        anf::packed::kMaxSlots,
        std::max<std::size_t>(
            1, cone.size() + (netlist.num_vars() - netlist.num_gates())));
    engine_.emplace(bound, root);
  }

  bool prepare(Var v) {
    // A var gets a slot exactly when it first enters F, so a stale epoch
    // stamp IS the "never touched" test: the reverse walk rejects the
    // millions of cone gates whose outputs never appeared in F with one
    // table read and no engine call.  (Superset semantics — a touched
    // var's insertions may all have cancelled; occurrence_count settles
    // it.)
    RemapScratch& st = *lease_.scratch;
    const std::uint64_t stamp = st.stamp[v];
    if ((stamp >> 32) != epoch_) return false;
    var_slot_ = static_cast<anf::packed::Slot>(stamp);
    return engine_->occurrence_count(var_slot_) > 0;
  }

  void substitute(const nl::Gate& gate) {
    build_terms(gate);
    engine_->substitute(var_slot_, terms_);
  }

  // The engine folds live_ into its running peak at exactly the driver's
  // observation points (construction and the end of each substitution), so
  // the driver can skip its per-substitution size queries and read the
  // final value here — same number, fewer than half the virtual hops in
  // the hot loop.
  static constexpr bool kTracksPeak = true;
  std::size_t peak_terms() const { return engine_->peak_terms(); }

  std::size_t size() const { return engine_->size(); }
  std::size_t transient_peak() const { return engine_->size(); }
  std::size_t cancellations() const { return engine_->cancellations(); }

  Anf value() const {
    Anf out;
    const auto monos = engine_->monomials();
    out.reserve(monos.size());
    std::vector<Var> vars;
    const std::vector<Var>& slot_to_var = lease_.scratch->slot_to_var;
    for (const auto& mono : monos) {
      vars.clear();
      for (anf::packed::Slot s : mono) vars.push_back(slot_to_var[s]);
      out.toggle(Monomial::from_vars(vars));
    }
    return out;
  }

 private:
  /// Leases the thread scratch for this backend's lifetime; a nested
  /// backend on the same thread (tests only — the extraction driver never
  /// nests) falls back to a private heap-allocated scratch.  A member so
  /// a throwing constructor still releases the lease.
  struct ScratchLease {
    RemapScratch* scratch;
    std::unique_ptr<RemapScratch> owned;
    ScratchLease() {
      RemapScratch& ts = thread_remap_scratch();
      if (!ts.in_use) {
        ts.in_use = true;
        scratch = &ts;
      } else {
        owned = std::make_unique<RemapScratch>();
        scratch = owned.get();
      }
    }
    ~ScratchLease() {
      if (owned == nullptr) scratch->in_use = false;
    }
  };

  void push_singleton(Var v) {
    terms_.begin_term();
    terms_.push_slot(slot_of(v));
    terms_.end_term();
  }

  void push_constant_one() {
    terms_.begin_term();
    terms_.end_term();
  }

  /// Builds the gate's ANF directly in slot space.  The simple cell
  /// families that dominate generated netlists (AND/XOR trees, inverters)
  /// skip the per-gate Anf construction entirely; complex cells fall back
  /// to the exact cell_anf model.  Duplicate gate inputs need no special
  /// care: AND terms dedup on end_term(), XOR duplicates cancel mod 2 in
  /// the engine — identical semantics to cell_anf.
  void build_terms(const nl::Gate& gate) {
    terms_.clear();
    switch (gate.type) {
      case nl::CellType::Const0:
        break;
      case nl::CellType::Const1:
        push_constant_one();
        break;
      case nl::CellType::Buf:
        push_singleton(gate.inputs[0]);
        break;
      case nl::CellType::Inv:
        push_constant_one();
        push_singleton(gate.inputs[0]);
        break;
      case nl::CellType::Xor:
        for (Var in : gate.inputs) push_singleton(in);
        break;
      case nl::CellType::Xnor:
        push_constant_one();
        for (Var in : gate.inputs) push_singleton(in);
        break;
      case nl::CellType::Nand:
        push_constant_one();
        [[fallthrough]];
      case nl::CellType::And:
        terms_.begin_term();
        for (Var in : gate.inputs) terms_.push_slot(slot_of(in));
        terms_.end_term();
        break;
      default: {
        const Anf expression = nl::cell_anf(gate.type, gate.inputs);
        for (const Monomial& term : expression.monomials()) {
          terms_.begin_term();
          for (Var v : term.vars()) terms_.push_slot(slot_of(v));
          terms_.end_term();
        }
        break;
      }
    }
  }

  /// Slot of v, assigned on first use this cone (epoch-stamped).
  std::uint32_t slot_of(Var v) {
    RemapScratch& st = *lease_.scratch;
    const std::uint64_t stamp = st.stamp[v];
    if ((stamp >> 32) == epoch_) return static_cast<std::uint32_t>(stamp);
    if (st.slot_to_var.size() >= anf::packed::kMaxSlots) {
      throw anf::packed::Overflow("cone exceeds the packed slot space");
    }
    const auto s = static_cast<std::uint32_t>(st.slot_to_var.size());
    st.stamp[v] = (std::uint64_t{epoch_} << 32) | s;
    st.slot_to_var.push_back(v);
    return s;
  }

  ScratchLease lease_;
  std::uint32_t epoch_ = 0;
  std::optional<anf::packed::ConeEngine> engine_;
  anf::packed::Slot var_slot_ = 0;
  anf::packed::TermList& terms_ = lease_.scratch->terms;
};

/// Legacy occurrence-indexed backend (the ablation baseline).
class IndexedBackend {
 public:
  IndexedBackend(const nl::Netlist&, Var output,
                 const std::vector<std::size_t>&) {
    poly_.toggle(Monomial(output), nullptr);
  }

  static constexpr bool kTracksPeak = false;

  bool prepare(Var v) {
    var_ = v;
    hits_ = poly_.occurrences(v);
    return !hits_.empty();
  }

  void substitute(const nl::Gate& gate) {
    const Anf expression = nl::cell_anf(gate.type, gate.inputs);
    for (const Monomial& hit : hits_) {
      poly_.erase(hit);
      const Monomial rest = hit.without(var_);
      for (const Monomial& term : expression.monomials()) {
        poly_.toggle(rest.times(term), &cancellations_);
      }
    }
  }

  std::size_t size() const { return poly_.size(); }
  std::size_t transient_peak() const { return poly_.size(); }
  std::size_t cancellations() const { return cancellations_; }
  Anf value() const { return poly_.value(); }

 private:
  IndexedPoly poly_;
  Var var_ = 0;
  std::vector<Monomial> hits_;
  std::size_t cancellations_ = 0;
};

/// Textbook whole-polynomial scan (lines 4-5 of Algorithm 1, literal
/// reading) — kept for the ablation benchmark.
class NaiveBackend {
 public:
  NaiveBackend(const nl::Netlist&, Var output,
               const std::vector<std::size_t>&)
      : f_(Anf::var(output)) {}

  static constexpr bool kTracksPeak = false;

  bool prepare(Var v) {
    var_ = v;
    hits_.clear();
    for (const Monomial& m : f_.monomials()) {
      if (m.contains(v)) hits_.push_back(m);
    }
    return !hits_.empty();
  }

  void substitute(const nl::Gate& gate) {
    const Anf expression = nl::cell_anf(gate.type, gate.inputs);
    transient_peak_ =
        f_.size() - hits_.size() + hits_.size() * expression.size();
    for (const Monomial& hit : hits_) {
      f_.toggle(hit);  // remove
      const Monomial rest = hit.without(var_);
      for (const Monomial& term : expression.monomials()) {
        if (!f_.toggle(rest.times(term))) ++cancellations_;
      }
    }
  }

  std::size_t size() const { return f_.size(); }
  std::size_t transient_peak() const { return transient_peak_; }
  std::size_t cancellations() const { return cancellations_; }
  const Anf& value() const { return f_; }

 private:
  Anf f_;
  Var var_ = 0;
  std::vector<Monomial> hits_;
  std::size_t cancellations_ = 0;
  std::size_t transient_peak_ = 0;
};

/// Algorithm 1, generic over the substitution backend.
template <typename Backend>
Anf run_backward_rewriting(const nl::Netlist& netlist, Var output,
                           const RewriteOptions& options,
                           RewriteStats* stats) {
  const auto cone = netlist.fanin_cone(output);
  if (stats != nullptr) {
    const double seconds = stats->seconds;
    *stats = RewriteStats{};  // fresh slate (matters on packed fallback)
    stats->seconds = seconds;
    stats->cone_gates = cone.size();
  }

  Backend backend(netlist, output, cone);
  std::size_t peak = Backend::kTracksPeak ? 0 : backend.size();
  const auto current_peak = [&]() -> std::size_t {
    if constexpr (Backend::kTracksPeak) {
      return backend.peak_terms();
    } else {
      return peak;
    }
  };
  // Reverse topological order: consumers before producers.
  for (std::size_t idx = cone.size(); idx-- > 0;) {
    const nl::Gate& gate = netlist.gate(cone[idx]);
    if (!backend.prepare(gate.output)) continue;
    if (stats != nullptr) ++stats->substitutions;

    const std::size_t cancelled_before =
        options.trace == nullptr ? 0 : backend.cancellations();
    backend.substitute(gate);
    if constexpr (!Backend::kTracksPeak) {
      peak = std::max({peak, backend.size(), backend.transient_peak()});
    }
    if (options.max_terms != 0 && backend.size() > options.max_terms) {
      if (stats != nullptr) {
        stats->cancellations = backend.cancellations();
        stats->peak_terms = current_peak();
        stats->final_terms = backend.size();
      }
      throw TermBudgetExceeded(backend.size(), options.max_terms);
    }
    if (options.deadline.has_value() &&
        std::chrono::steady_clock::now() > *options.deadline) {
      // Same checkpoint as the term budget: between substitutions, F is
      // consistent, so the abort is clean.  One clock read per
      // substitution is noise against the substitution itself.
      if (stats != nullptr) {
        stats->cancellations = backend.cancellations();
        stats->peak_terms = current_peak();
        stats->final_terms = backend.size();
      }
      throw DeadlineExceeded();
    }
    if (options.trace != nullptr) {
      // Materializing value() per step costs O(|F|) for the handle-based
      // backends, but trace_step's sorted full-polynomial print is already
      // that order — tracing is a demonstration feature, not a hot path.
      trace_step(*options.trace, netlist, cone[idx], backend.value(),
                 backend.cancellations() - cancelled_before);
    }
  }

  if (stats != nullptr) {
    stats->cancellations = backend.cancellations();
    stats->peak_terms = current_peak();
    stats->final_terms = backend.size();
  }
  return backend.value();
}

}  // namespace

Anf extract_output_anf(const nl::Netlist& netlist, Var output,
                       const RewriteOptions& options, RewriteStats* stats) {
  Timer timer;
  Anf result;
  switch (options.strategy) {
    case RewriteStrategy::Packed:
      try {
        result =
            run_backward_rewriting<PackedBackend>(netlist, output, options,
                                                  stats);
      } catch (const anf::packed::Overflow&) {
        // Cone beyond the packing limits (16-bit slot space or sparse
        // degree cap): redo this cone on the legacy engine.
        result =
            run_backward_rewriting<IndexedBackend>(netlist, output, options,
                                                   stats);
      }
      break;
    case RewriteStrategy::Indexed:
      result = run_backward_rewriting<IndexedBackend>(netlist, output,
                                                      options, stats);
      break;
    case RewriteStrategy::NaiveScan:
      result = run_backward_rewriting<NaiveBackend>(netlist, output, options,
                                                    stats);
      break;
  }
  // Sanity (Theorem 1): a fully rewritten polynomial mentions only primary
  // inputs.
  for (const auto& monomial : result.monomials()) {
    for (Var v : monomial.vars()) {
      GFRE_ASSERT(netlist.is_input(v),
                  "rewriting left internal variable '" << netlist.var_name(v)
                                                       << "' in the ANF");
    }
  }
  if (stats != nullptr) stats->seconds = timer.seconds();
  return result;
}

}  // namespace gfre::core
