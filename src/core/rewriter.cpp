#include "core/rewriter.hpp"

#include <algorithm>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace gfre::core {

using anf::Anf;
using anf::Monomial;
using nl::Var;

namespace {

/// Occurrence-indexed polynomial: an Anf plus a lazy variable -> monomial
/// index.  Entries may be stale (monomial since cancelled); consumers
/// re-validate against the set.
class IndexedPoly {
 public:
  void toggle(const Monomial& m, std::size_t* cancellations) {
    if (anf_.toggle(m)) {
      for (Var v : m.vars()) index_[v].push_back(m);
    } else if (cancellations != nullptr) {
      ++(*cancellations);
    }
  }

  /// Monomials currently containing v (validated against the live set).
  std::vector<Monomial> occurrences(Var v) {
    std::vector<Monomial> hits;
    const auto it = index_.find(v);
    if (it == index_.end()) return hits;
    auto& bucket = it->second;
    // Compact the bucket while validating: stale entries are dropped.
    std::vector<Monomial> fresh;
    for (const Monomial& m : bucket) {
      if (anf_.contains(m)) {
        hits.push_back(m);
        fresh.push_back(m);
      }
    }
    // Deduplicate (a monomial can be re-toggled into the same bucket).
    std::sort(hits.begin(), hits.end());
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
    bucket = std::move(fresh);
    return hits;
  }

  void erase(const Monomial& m) {
    const bool present = anf_.contains(m);
    GFRE_ASSERT(present, "erasing absent monomial");
    anf_.toggle(m);
  }

  const Anf& value() const { return anf_; }
  std::size_t size() const { return anf_.size(); }

 private:
  Anf anf_;
  std::unordered_map<Var, std::vector<Monomial>> index_;
};

void trace_step(std::ostream& out, const nl::Netlist& netlist,
                std::size_t gate_index, const Anf& f,
                std::size_t cancelled_this_step) {
  out << "G" << gate_index << ": "
      << f.to_string([&](Var v) { return netlist.var_name(v); });
  if (cancelled_this_step > 0) {
    out << "   elim: " << cancelled_this_step << " monomial"
        << (cancelled_this_step == 1 ? "" : "s");
  }
  out << "\n";
}

Anf rewrite_indexed(const nl::Netlist& netlist, Var output,
                    const RewriteOptions& options, RewriteStats* stats) {
  const auto cone = netlist.fanin_cone(output);
  if (stats != nullptr) stats->cone_gates = cone.size();

  IndexedPoly f;
  std::size_t cancellations = 0;
  f.toggle(Monomial(output), &cancellations);

  std::size_t peak = f.size();
  // Reverse topological order: consumers before producers.
  for (std::size_t idx = cone.size(); idx-- > 0;) {
    const nl::Gate& gate = netlist.gate(cone[idx]);
    const Var v = gate.output;
    const auto hits = f.occurrences(v);
    if (hits.empty()) continue;
    if (stats != nullptr) ++stats->substitutions;

    const Anf expression = nl::cell_anf(gate.type, gate.inputs);
    const std::size_t cancelled_before = cancellations;
    for (const Monomial& hit : hits) {
      f.erase(hit);
      const Monomial rest = hit.without(v);
      for (const Monomial& term : expression.monomials()) {
        f.toggle(rest.times(term), &cancellations);
      }
    }
    peak = std::max(peak, f.size());
    if (options.trace != nullptr) {
      trace_step(*options.trace, netlist, cone[idx], f.value(),
                 cancellations - cancelled_before);
    }
  }

  if (stats != nullptr) {
    stats->cancellations = cancellations;
    stats->peak_terms = peak;
    stats->final_terms = f.size();
  }
  return f.value();
}

Anf rewrite_naive(const nl::Netlist& netlist, Var output,
                  const RewriteOptions& options, RewriteStats* stats) {
  const auto cone = netlist.fanin_cone(output);
  if (stats != nullptr) stats->cone_gates = cone.size();

  Anf f = Anf::var(output);
  std::size_t peak = f.size();
  std::size_t cancellations = 0;

  for (std::size_t idx = cone.size(); idx-- > 0;) {
    const nl::Gate& gate = netlist.gate(cone[idx]);
    const Var v = gate.output;
    // Whole-polynomial scan (lines 4-5 of Algorithm 1, literal reading).
    std::vector<Monomial> hits;
    for (const Monomial& m : f.monomials()) {
      if (m.contains(v)) hits.push_back(m);
    }
    if (hits.empty()) continue;
    if (stats != nullptr) ++stats->substitutions;

    const Anf expression = nl::cell_anf(gate.type, gate.inputs);
    const std::size_t size_before_products =
        f.size() - hits.size() + hits.size() * expression.size();
    for (const Monomial& hit : hits) {
      f.toggle(hit);  // remove
      const Monomial rest = hit.without(v);
      for (const Monomial& term : expression.monomials()) {
        if (!f.toggle(rest.times(term))) ++cancellations;
      }
    }
    peak = std::max({peak, f.size(), size_before_products});
    if (options.trace != nullptr) {
      trace_step(*options.trace, netlist, cone[idx], f, 0);
    }
  }

  if (stats != nullptr) {
    stats->cancellations = cancellations;
    stats->peak_terms = peak;
    stats->final_terms = f.size();
  }
  return f;
}

}  // namespace

Anf extract_output_anf(const nl::Netlist& netlist, Var output,
                       const RewriteOptions& options, RewriteStats* stats) {
  Timer timer;
  Anf result;
  switch (options.strategy) {
    case RewriteStrategy::Indexed:
      result = rewrite_indexed(netlist, output, options, stats);
      break;
    case RewriteStrategy::NaiveScan:
      result = rewrite_naive(netlist, output, options, stats);
      break;
  }
  // Sanity (Theorem 1): a fully rewritten polynomial mentions only primary
  // inputs.
  for (const auto& monomial : result.monomials()) {
    for (Var v : monomial.vars()) {
      GFRE_ASSERT(netlist.is_input(v),
                  "rewriting left internal variable '" << netlist.var_name(v)
                                                       << "' in the ANF");
    }
  }
  if (stats != nullptr) stats->seconds = timer.seconds();
  return result;
}

}  // namespace gfre::core
