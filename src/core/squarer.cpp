#include "core/squarer.hpp"

#include <unordered_map>

#include "gf2m/field.hpp"
#include "gf2poly/irreducible.hpp"
#include "util/error.hpp"

namespace gfre::core {

using gf2::Poly;

SquarerRecovery recover_squarer(const std::vector<anf::Anf>& anfs,
                                const nl::WordPort& a) {
  const unsigned m = a.width();
  SquarerRecovery result;
  GFRE_ASSERT(anfs.size() == m,
              "expected " << m << " output ANFs, got " << anfs.size());
  GFRE_ASSERT(m >= 2, "need m >= 2");

  // 1. The function must be linear over the input word: every monomial a
  //    single a_k variable (constant terms or products => not a squarer).
  std::unordered_map<anf::Var, unsigned> bit_of;
  for (unsigned k = 0; k < m; ++k) bit_of[a.bits[k]] = k;

  // rows[k].coeff(i) == 1 iff a_k feeds output bit i.
  std::vector<Poly> rows(m);
  for (unsigned i = 0; i < m; ++i) {
    for (const auto& monomial : anfs[i].monomials()) {
      if (monomial.degree() != 1) {
        result.diagnosis = "output bit " + std::to_string(i) +
                           " is not linear in the input word";
        return result;
      }
      const auto it = bit_of.find(monomial.vars()[0]);
      if (it == bit_of.end()) {
        result.diagnosis = "output bit " + std::to_string(i) +
                           " reads a variable outside the input word";
        return result;
      }
      rows[it->second].set_coeff(i, true);
    }
  }

  // 2. Unreduced half: x^(2k) for 2k < m must map straight through.
  for (unsigned k = 0; 2 * k < m; ++k) {
    if (rows[k] != Poly::monomial(2 * k)) {
      result.diagnosis = "input bit " + std::to_string(k) +
                         " does not map to x^(2k) — not a squarer";
      return result;
    }
  }

  // 3. Reconstruct P(x) from the first reduced row.
  Poly p_prime;  // P' = P + x^m
  if (m % 2 == 0) {
    // r_{m/2} = x^m mod P = P'.
    p_prime = rows[m / 2];
  } else {
    // r_{(m+1)/2} = x^(m+1) mod P = x*P' mod P.  Let u = P'; since P is
    // irreducible, u[0] = p_0 = 1, so row[0] discriminates the two cases:
    //   u[m-1] == 0: row = u << 1              (row[0] = 0),
    //   u[m-1] == 1: row[j] = u[j-1] + u[j]    (row[0] = u[0] = 1),
    // the latter solvable by the forward recurrence u[j] = row[j] + u[j-1].
    const Poly& row = rows[(m + 1) / 2];
    if (!row.coeff(0)) {  // case A
      p_prime = row >> 1;
      if (p_prime.coeff(m - 1)) {
        result.diagnosis = "reduced row is inconsistent with x*P' mod P";
        return result;
      }
    } else {  // case B
      Poly u;
      bool prev = false;
      for (unsigned j = 0; j < m; ++j) {
        const bool bit = row.coeff(j) != prev;
        if (bit) u.set_coeff(j, true);
        prev = bit;
      }
      if (!u.coeff(m - 1)) {
        result.diagnosis = "reduced row is inconsistent with x*P' mod P";
        return result;
      }
      p_prime = u;
    }
  }

  Poly p = p_prime + Poly::monomial(m);
  if (p.degree() != static_cast<int>(m) || !p.coeff(0)) {
    result.diagnosis = "reconstructed modulus " + p.to_string() +
                       " is malformed";
    return result;
  }
  result.p = p;
  result.p_is_irreducible = gf2::is_irreducible(p);
  if (!result.p_is_irreducible) {
    result.diagnosis = "recovered modulus " + p.to_string() +
                       " is reducible";
    return result;
  }

  // 4. Validate every row against x^(2k) mod P.
  const gf2m::Field field(p);
  for (unsigned k = 0; k < m; ++k) {
    const Poly expected = field.reduce(Poly::monomial(2 * k));
    if (rows[k] != expected) {
      result.diagnosis = "row for input bit " + std::to_string(k) +
                         " mismatches x^(2k) mod P";
      return result;
    }
  }
  result.recognized = true;
  return result;
}

}  // namespace gfre::core
