#include "core/flow.hpp"

#include <algorithm>
#include <sstream>

#include "core/permutation.hpp"
#include "core/poly_extract.hpp"
#include "gf2poly/irreducible.hpp"
#include "util/error.hpp"
#include "util/rss.hpp"
#include "util/timer.hpp"

namespace gfre::core {

std::uint64_t FlowReport::memory_bytes() const {
  if (rss_peak_bytes != 0) return rss_peak_bytes;
  // ~72 bytes per live monomial: two packed var ids, vector header, hash
  // node, and bucket share.  A coarse but platform-independent proxy.
  const std::uint64_t engine_estimate =
      static_cast<std::uint64_t>(extraction.total_peak_terms) * 72;
  return std::max(rss_after_bytes, engine_estimate);
}

std::string FlowReport::summary() const {
  std::ostringstream oss;
  if (m == 0) {
    // Analysis never ran (e.g. port inference found no multiplier
    // interface): only the classification and diagnosis are meaningful.
    oss << "netlist with " << equations << " equations\n";
    oss << "  circuit class : " << to_string(recovery.circuit_class) << "\n";
  } else {
    oss << "GF(2^" << m << ") multiplier, " << equations << " equations\n";
    oss << "  circuit class : " << to_string(recovery.circuit_class) << "\n";
    oss << "  Algorithm 2   : P(x) = " << algorithm2_p.to_string() << "\n";
    oss << "  recovered P(x): " << recovery.p.to_string()
        << (recovery.p_is_irreducible ? " (irreducible)"
                                      : " (NOT irreducible)")
        << "\n";
    oss << "  rows check    : "
        << (recovery.rows_consistent ? "consistent" : "INCONSISTENT") << "\n";
  }
  if (!recovery.diagnosis.empty()) {
    oss << "  diagnosis     : " << recovery.diagnosis << "\n";
  }
  if (output_permutation.has_value()) {
    oss << "  output order  : scrambled — recovered permutation [";
    for (unsigned i = 0; i < output_permutation->size(); ++i) {
      if (i != 0) oss << " ";
      oss << (*output_permutation)[i];
    }
    oss << "]\n";
  }
  oss << "  verification  : " << verification.detail << "\n";
  oss << "  extraction    : " << extraction.wall_seconds << " s in "
      << extraction.threads << " threads\n";
  oss << "  status        : " << (success ? "SUCCESS" : "FAILED") << "\n";
  return oss.str();
}

std::optional<nl::MultiplierPorts> resolve_flow_ports(
    const nl::Netlist& netlist, const FlowOptions& options,
    FlowReport* failure) {
  const auto fail = [&](const std::string& diagnosis) {
    if (failure != nullptr) {
      *failure = FlowReport{};
      failure->equations = netlist.num_equations();
      failure->recovery.circuit_class = CircuitClass::NotAMultiplier;
      failure->recovery.diagnosis = diagnosis;
      failure->verification.detail = "skipped: no multiplier interface";
      failure->success = false;
    }
  };
  if (options.infer_ports) {
    // Port inference is a discovery heuristic over arbitrary input data, so
    // its failure is a flow outcome (success=false + diagnosis), not an API
    // misuse like asking for explicitly named ports that do not exist.
    auto inferred = nl::infer_multiplier_ports(netlist);
    if (!inferred.has_value()) {
      fail("netlist '" + netlist.name() +
           "' does not expose a two-operand word-level multiplier interface "
           "(inputs must group into two same-width word ports and outputs "
           "into one)");
      return std::nullopt;
    }
    return inferred;
  }
  // Named ports: missing or mis-sized words are likewise a flow outcome —
  // fuzzed mutants drop/duplicate output nets and batch manifests point at
  // arbitrary files, and neither may take the process down.
  try {
    return nl::multiplier_ports(netlist, options.a_base, options.b_base,
                                options.z_base);
  } catch (const Error& e) {
    fail(e.what());
    return std::nullopt;
  }
}

FlowReport extraction_failure_report(const nl::Netlist& netlist,
                                     const nl::MultiplierPorts& ports,
                                     const std::string& what) {
  FlowReport report;
  report.m = ports.m();
  report.equations = netlist.num_equations();
  report.recovery.circuit_class = CircuitClass::NotAMultiplier;
  report.recovery.diagnosis = "extraction aborted: " + what;
  report.verification.detail = "skipped: extraction aborted";
  report.success = false;
  return report;
}

FlowReport analyze_extraction(const nl::Netlist& netlist,
                              const nl::MultiplierPorts& ports,
                              ExtractionResult extraction,
                              const FlowOptions& options) {
  FlowReport report;
  report.m = ports.m();
  report.equations = netlist.num_equations();
  report.extraction = std::move(extraction);

  // Phase 2: Algorithm 2 (Theorem 3 membership test).
  report.algorithm2_p = recover_irreducible(report.extraction.anfs, ports);

  // Phase 3: full reduction-matrix recovery + classification.
  report.recovery = recover_reduction_matrix(report.extraction.anfs, ports);

  // Phase 3b (extension): if the declared output order does not form a
  // multiplier, the bus may be permuted — recover the bit order from the
  // in-field product sets and retry.
  if (report.recovery.circuit_class == CircuitClass::NotAMultiplier &&
      options.try_output_permutation) {
    if (const auto order =
            recover_output_order(report.extraction.anfs, ports)) {
      bool identity = true;
      for (unsigned i = 0; i < report.m; ++i) identity &= (*order)[i] == i;
      if (!identity) {
        std::vector<anf::Anf> reordered(report.m);
        std::vector<RewriteStats> reordered_stats(report.m);
        for (unsigned i = 0; i < report.m; ++i) {
          reordered[i] = report.extraction.anfs[(*order)[i]];
          reordered_stats[i] = report.extraction.per_bit[(*order)[i]];
        }
        report.extraction.anfs = std::move(reordered);
        report.extraction.per_bit = std::move(reordered_stats);
        report.output_permutation = *order;
        report.algorithm2_p =
            recover_irreducible(report.extraction.anfs, ports);
        report.recovery =
            recover_reduction_matrix(report.extraction.anfs, ports);
      }
    }
  }

  // Phase 4: golden-model equivalence.
  if (options.verify_with_golden &&
      report.recovery.circuit_class != CircuitClass::NotAMultiplier &&
      report.recovery.p_is_irreducible) {
    const gf2m::Field field(report.recovery.p);
    report.verification =
        verify_against_golden(report.extraction.anfs, field, ports,
                              report.recovery.circuit_class);
  } else if (!options.verify_with_golden) {
    report.verification.detail = "skipped";
  } else {
    report.verification.detail = "skipped: no irreducible P(x) recovered";
  }

  report.success =
      report.recovery.circuit_class != CircuitClass::NotAMultiplier &&
      report.recovery.p_is_irreducible && report.recovery.rows_consistent &&
      (!options.verify_with_golden || report.verification.equivalent);
  return report;
}

FlowReport reverse_engineer(const nl::Netlist& netlist,
                            const FlowOptions& options) {
  Timer total;
  FlowReport report;

  const auto ports = resolve_flow_ports(netlist, options, &report);
  if (!ports.has_value()) {
    report.total_seconds = total.seconds();
    return report;
  }

  // Phase 1: parallel backward rewriting (Algorithms 1 + Theorem 2).
  try {
    report = analyze_extraction(
        netlist, *ports,
        extract_outputs(netlist, ports->z.bits, options.threads,
                        options.strategy, options.max_terms),
        options);
  } catch (const Error& e) {
    report = extraction_failure_report(netlist, *ports, e.what());
  }

  report.total_seconds = total.seconds();
  report.rss_peak_bytes = peak_rss_bytes();
  report.rss_after_bytes = current_rss_bytes();
  return report;
}

}  // namespace gfre::core
