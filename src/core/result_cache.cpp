#include "core/result_cache.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#if defined(_WIN32)
#include <process.h>
#define GFRE_GETPID _getpid
#else
#include <unistd.h>
#define GFRE_GETPID getpid
#endif

#include "core/content_walk.hpp"
#include "core/report_io.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/sha256.hpp"

namespace fs = std::filesystem;

namespace gfre::core {

namespace {

// Entry header: magic, entry schema version, payload length, SHA-256 of
// the payload.  The payload is (u64 error length, error bytes, report
// blob) — the report blob carries its own magic/version from report_io.
constexpr char kEntryMagic[4] = {'G', 'F', 'R', 'C'};
// Entry schema = header layout + report schema: either changing bumps the
// version a reader accepts, so one check covers both.
constexpr std::uint32_t kEntryVersion = 100 + kReportSchemaVersion;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 32;
constexpr const char* kEntrySuffix = ".rpt";
constexpr const char* kQuarantineDir = "quarantine";
/// How old a <key>.tmp.<pid>.<seq> file must be before it is presumed
/// abandoned by a crashed writer rather than mid-write by a live one.
/// The window only needs to exceed one serialize+rename; the generous
/// margin keeps the constructor sweep and prune() safely conservative
/// even under pathological I/O stalls.
constexpr std::chrono::minutes kTmpGraceWindow{10};

using util::get_u32;
using util::get_u64;
using util::put_u32;
using util::put_u64;

/// Adapts util::Sha256 to the content-walk Sink concept, so the
/// persistent keys hash the exact field lists core/content_walk.hpp
/// shares with the in-memory keyspace.
struct ShaSink {
  util::Sha256& h;
  void u64(std::uint64_t v) { h.update_u64(v); }
  void str(const std::string& s) { h.update_str(s); }
};

/// Why a read entry is unusable — quarantine only genuine corruption.
enum class EntryVerdict { Ok, Corrupt, StaleVersion };

EntryVerdict parse_entry(const std::string& bytes, CachedOutcome* out) {
  if (bytes.size() < kHeaderBytes) return EntryVerdict::Corrupt;
  if (std::memcmp(bytes.data(), kEntryMagic, sizeof kEntryMagic) != 0) {
    return EntryVerdict::Corrupt;
  }
  const std::uint32_t version = get_u32(bytes.data() + 4);
  if (version != kEntryVersion) return EntryVerdict::StaleVersion;
  const std::uint64_t payload_size = get_u64(bytes.data() + 8);
  if (payload_size != bytes.size() - kHeaderBytes) {
    return EntryVerdict::Corrupt;
  }
  const std::string_view payload(bytes.data() + kHeaderBytes,
                                 static_cast<std::size_t>(payload_size));
  const util::Sha256::Digest digest = util::Sha256::of(payload);
  if (std::memcmp(bytes.data() + 16, digest.data(), digest.size()) != 0) {
    return EntryVerdict::Corrupt;
  }
  // The digest matched, so the payload is exactly what store() wrote; a
  // deserialize failure past this point would be an entry written by a
  // buggy build — surface it as corruption, not a crash.
  try {
    if (payload.size() < 8) return EntryVerdict::Corrupt;
    const std::uint64_t error_len = get_u64(payload.data());
    if (error_len > payload.size() - 8) return EntryVerdict::Corrupt;
    out->error.assign(payload.data() + 8,
                      static_cast<std::size_t>(error_len));
    out->report = deserialize_report(payload.substr(8 + error_len));
  } catch (const Error&) {
    return EntryVerdict::Corrupt;
  }
  return EntryVerdict::Ok;
}

std::string render_entry(const FlowReport& report, const std::string& error) {
  std::string payload;
  put_u64(payload, error.size());
  payload.append(error);
  payload.append(serialize_report(report));

  std::string entry;
  entry.reserve(kHeaderBytes + payload.size());
  entry.append(kEntryMagic, sizeof kEntryMagic);
  put_u32(entry, kEntryVersion);
  put_u64(entry, payload.size());
  const util::Sha256::Digest digest = util::Sha256::of(payload);
  entry.append(reinterpret_cast<const char*>(digest.data()), digest.size());
  entry.append(payload);
  return entry;
}

/// Header-only verdict: enough to tell live from stale/garbled without
/// reading or hashing the payload (prune's classification; a lookup still
/// authenticates the full payload digest).
EntryVerdict classify_entry_header(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  char header[kHeaderBytes];
  if (!in.read(header, sizeof header)) return EntryVerdict::Corrupt;
  if (std::memcmp(header, kEntryMagic, sizeof kEntryMagic) != 0) {
    return EntryVerdict::Corrupt;
  }
  if (get_u32(header + 4) != kEntryVersion) return EntryVerdict::StaleVersion;
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec || get_u64(header + 8) != size - kHeaderBytes) {
    return EntryVerdict::Corrupt;
  }
  return EntryVerdict::Ok;
}

bool is_entry_name(const std::string& name) {
  if (name.size() != 64 + std::strlen(kEntrySuffix)) return false;
  if (!name.ends_with(kEntrySuffix)) return false;
  return name.find_first_not_of("0123456789abcdef") == 64;
}

}  // namespace

ResultCache::ResultCache(std::string dir, std::uint64_t max_bytes,
                         std::uint64_t negative_ttl_seconds)
    : dir_(std::move(dir)),
      max_bytes_(max_bytes),
      negative_ttl_seconds_(negative_ttl_seconds) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw Error("cannot create result cache directory '" + dir_ +
                "': " + (ec ? ec.message() : "not a directory"));
  }
  // Fail now, legibly, if the directory is read-only — not later from a
  // worker thread where store() deliberately swallows write failures.
  const fs::path probe = fs::path(dir_) / ".gfre_cache_probe";
  std::ofstream out(probe, std::ios::binary);
  if (!out) {
    throw Error("result cache directory '" + dir_ + "' is not writable");
  }
  out.close();
  fs::remove(probe, ec);
  // One opening scan does two jobs: sweep tmp files abandoned by crashed
  // writers (a daemon's shared directory would otherwise accumulate them
  // forever — workers die, nobody calls prune), and, when a byte cap is
  // armed, seed the approximate total from what is already on disk so the
  // cap applies to a pre-existing directory from the first store on.
  for (const auto& file : fs::directory_iterator(dir_, ec)) {
    if (!file.is_regular_file(ec)) continue;
    const std::string name = file.path().filename().string();
    if (is_entry_name(name)) {
      if (max_bytes_ != 0) {
        std::error_code size_ec;
        const std::uint64_t size = fs::file_size(file.path(), size_ec);
        if (!size_ec) approx_bytes_ += size;
      }
      continue;
    }
    if (name.find(".tmp.") == std::string::npos) continue;
    // Same grace discipline as prune(): a young tmp may belong to a live
    // store() in another process, between its write and its rename.
    std::error_code mtime_ec;
    const auto mtime = fs::last_write_time(file.path(), mtime_ec);
    if (mtime_ec ||
        fs::file_time_type::clock::now() - mtime <= kTmpGraceWindow) {
      continue;
    }
    std::error_code rm_ec;
    if (fs::remove(file.path(), rm_ec) && !rm_ec) ++stats_.tmp_swept;
  }
}

std::string ResultCache::key_for_file(std::string_view netlist_bytes,
                                      const FlowOptions& options,
                                      std::string_view library_bytes) {
  util::Sha256 h;
  h.update_u64(1);  // domain tag: raw file bytes
  h.update_str(netlist_bytes);
  // A job parsed against a cell library depends on the library's content:
  // tag-3 frame, only when a library is in play, so legacy keys (no
  // library) are unchanged.
  if (!library_bytes.empty()) {
    h.update_u64(3);  // domain tag: cell-library bytes
    h.update_str(library_bytes);
  }
  ShaSink sink{h};
  walk_report_options(sink, options);
  return util::Sha256::hex(h.digest());
}

std::string ResultCache::key_for_netlist(const nl::Netlist& netlist,
                                         const FlowOptions& options) {
  util::Sha256 h;
  h.update_u64(2);  // domain tag: structural walk
  ShaSink sink{h};
  walk_netlist_content(sink, netlist);
  walk_report_options(sink, options);
  return util::Sha256::hex(h.digest());
}

std::string ResultCache::entry_path(const std::string& key) const {
  return (fs::path(dir_) / (key + kEntrySuffix)).string();
}

void ResultCache::quarantine(const std::string& path) {
  std::error_code ec;
  const fs::path qdir = fs::path(dir_) / kQuarantineDir;
  fs::create_directories(qdir, ec);
  // Readers of the same key race to quarantine the same file; the unique
  // suffix keeps the second mover from clobbering the first's evidence,
  // and a rename failure (other process won) still means the bad entry is
  // out of the lookup path.
  static std::atomic<std::uint64_t> seq{0};
  const fs::path target =
      qdir / (fs::path(path).filename().string() + "." +
              std::to_string(static_cast<unsigned long long>(GFRE_GETPID())) +
              "." + std::to_string(seq.fetch_add(1)));
  fs::rename(path, target, ec);
  if (ec) fs::remove(path, ec);
}

std::optional<CachedOutcome> ResultCache::lookup(const std::string& key) {
  const std::string path = entry_path(key);
  std::string bytes;
  if (!util::read_file_to_string(path, &bytes)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return std::nullopt;
  }
  CachedOutcome outcome;
  switch (parse_entry(bytes, &outcome)) {
    case EntryVerdict::Ok: {
      // Negative entries (diagnosed parse/port errors) age out: the file
      // behind a bad job is often fixed in place, and only re-running can
      // notice.  Successful extractions never expire — content addressing
      // makes them valid forever.  The expired entry is deleted so the
      // retry's store() is a plain write, not an overwrite-of-expired.
      if (negative_ttl_seconds_ != 0 && !outcome.error.empty()) {
        std::error_code ec;
        const auto mtime = fs::last_write_time(path, ec);
        if (!ec && fs::file_time_type::clock::now() - mtime >
                       std::chrono::seconds(negative_ttl_seconds_)) {
          fs::remove(path, ec);
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.expired;
          ++stats_.misses;
          return std::nullopt;
        }
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.hits;
      return outcome;
    }
    case EntryVerdict::StaleVersion: {
      // Left in place: store() will overwrite it with the fresh result,
      // and prune() collects the ones that never get re-stored.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.stale;
      ++stats_.misses;
      return std::nullopt;
    }
    case EntryVerdict::Corrupt: {
      quarantine(path);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.quarantined;
      ++stats_.misses;
      return std::nullopt;
    }
  }
  return std::nullopt;  // unreachable
}

bool ResultCache::store(const std::string& key, const FlowReport& report,
                        const std::string& error) {
  const std::string entry = render_entry(report, error);
  // Unique temp name per writer, then one atomic rename: a reader (or a
  // concurrent writer of the same key) never observes a half-written
  // entry, and a crash leaves only a .tmp file for prune() to sweep.
  static std::atomic<std::uint64_t> seq{0};
  const fs::path tmp =
      fs::path(dir_) /
      (key + ".tmp." +
       std::to_string(static_cast<unsigned long long>(GFRE_GETPID())) + "." +
       std::to_string(seq.fetch_add(1)));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(entry.data(), static_cast<std::streamsize>(entry.size()));
    // close() flushes; only a stream that is still good after it has the
    // bytes on the filesystem.  Publishing an unchecked buffered write
    // would let ENOSPC atomically replace a VALID old entry with a
    // truncated one — the rename below must stay behind this check.
    out.close();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  // Size of the entry this store may be replacing — the approximate
  // total must not double-count overwrites.  Read before the rename so
  // the old size is still observable.
  std::error_code size_ec;
  std::uint64_t old_size = 0;
  if (max_bytes_ != 0) {
    old_size = fs::file_size(entry_path(key), size_ec);
    if (size_ec) old_size = 0;
  }
  std::error_code ec;
  fs::rename(tmp, entry_path(key), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  bool should_prune = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stores;
    if (max_bytes_ != 0) {
      approx_bytes_ += entry.size();
      approx_bytes_ -= std::min<std::uint64_t>(approx_bytes_, old_size);
      if (approx_bytes_ > max_bytes_ && !pruning_) {
        pruning_ = true;
        should_prune = true;
      }
    }
  }
  if (should_prune) {
    // The storing thread pays for the sweep (prune resyncs
    // approx_bytes_); concurrent stores keep going — pruning_ stops them
    // from piling onto the same directory walk.
    prune(max_bytes_);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.autoprunes;
    pruning_ = false;
  }
  return true;
}

ResultCache::PruneReport ResultCache::prune(std::uint64_t max_total_bytes) {
  PruneReport report;
  std::error_code ec;

  const auto remove_counted = [&](const fs::path& path) {
    std::error_code size_ec;
    const std::uint64_t size = fs::file_size(path, size_ec);
    std::error_code remove_ec;
    if (!fs::remove(path, remove_ec)) return false;
    ++report.entries_removed;
    report.bytes_removed += size_ec ? 0 : size;
    return true;
  };

  // Quarantined evidence goes first — it serves no lookup and exists only
  // until an operator (or this prune) collects it.
  const fs::path qdir = fs::path(dir_) / kQuarantineDir;
  if (fs::is_directory(qdir, ec)) {
    for (const auto& file : fs::directory_iterator(qdir, ec)) {
      remove_counted(file.path());
    }
    fs::remove(qdir, ec);  // succeeds only when emptied
  }

  struct LiveEntry {
    fs::path path;
    std::uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<LiveEntry> live;
  for (const auto& file : fs::directory_iterator(dir_, ec)) {
    if (!file.is_regular_file(ec)) continue;
    const std::string name = file.path().filename().string();
    if (!is_entry_name(name)) {
      if (name.find(".tmp.") != std::string::npos) {
        // A crashed writer's leftover — but a YOUNG tmp may belong to a
        // concurrent store() that is between write and rename (the
        // public contract allows prune racing stores, even from other
        // processes).  The grace window only needs to exceed one
        // write+rename, so a generous margin costs nothing.
        const auto mtime = fs::last_write_time(file.path(), ec);
        if (!ec && fs::file_time_type::clock::now() - mtime >
                       kTmpGraceWindow) {
          remove_counted(file.path());
        }
      }
      continue;
    }
    // Header-only classification: stale/garbled headers are dead weight
    // under every budget, and checking them is O(1) per entry — prune
    // never reads or re-hashes payloads (lookup authenticates those on
    // access and quarantines failures).
    if (classify_entry_header(file.path()) != EntryVerdict::Ok) {
      remove_counted(file.path());
      continue;
    }
    LiveEntry entry;
    entry.path = file.path();
    entry.size = fs::file_size(file.path(), ec);
    if (ec) continue;  // vanished under a concurrent prune
    entry.mtime = fs::last_write_time(file.path(), ec);
    live.push_back(std::move(entry));
  }

  // Oldest-first eviction until the live set fits the budget.  An entry
  // that refuses to delete (permissions, platform locks) stays counted
  // in bytes_kept — the report must describe the directory as it IS, not
  // as the budget wished it were.
  std::sort(live.begin(), live.end(),
            [](const LiveEntry& a, const LiveEntry& b) {
              return a.mtime < b.mtime;
            });
  std::uint64_t total = 0;
  for (const auto& entry : live) total += entry.size;
  std::size_t victims = 0;
  for (const auto& entry : live) {
    if (total <= max_total_bytes) break;
    if (remove_counted(entry.path)) {
      total -= entry.size;
      ++victims;
    }
  }
  report.entries_kept = live.size() - victims;
  report.bytes_kept = total;
  if (max_bytes_ != 0) {
    // Every prune — explicit or store-triggered — resyncs the
    // approximate total to the exact live size it just measured.
    std::lock_guard<std::mutex> lock(mu_);
    approx_bytes_ = report.bytes_kept;
  }
  return report;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace gfre::core
