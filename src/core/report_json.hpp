// Canonical JSONL rendering of one BatchJobResult.
//
// Every execution path that emits a per-job report line — the gfre_batch
// CLI, the serve-layer worker processes, the bench corpus dumps — must
// render THE SAME bytes for the same result, because the acceptance bar
// for the whole serving stack is `diff` between those files (volatile
// timing fields stripped).  Rendering twice from re-parsed values would
// drift on double formatting, so the renderer lives here, once, and the
// serve layer ships the rendered line verbatim over the wire instead of
// re-encoding fields.
#pragma once

#include "core/batch.hpp"
#include "util/jsonl.hpp"

namespace gfre::core {

/// One flat JSON object describing `result`.  Field set and order:
///   name, [path], ok, cache_hit,
///   then exactly one arm:
///     rejected: {rejected, error}
///     cancelled: {[deadline_exceeded], cancelled}
///     load error: {[deadline_exceeded], error}
///     report:    {[deadline_exceeded], m, equations, circuit_class,
///                 [p, p_irreducible], [diagnosis], scrambled_outputs,
///                 verification, extract_seconds, completed_seconds}
/// The volatile fields are `completed_seconds`, `cache_hit` and
/// `extract_seconds`; everything else replays bit-identically across
/// processes and cache hits.
JsonLine result_json_line(const BatchJobResult& result);

}  // namespace gfre::core
