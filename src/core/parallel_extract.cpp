#include "core/parallel_extract.hpp"

#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace gfre::core {

ExtractionResult extract_outputs(const nl::Netlist& netlist,
                                 const std::vector<nl::Var>& outputs,
                                 unsigned threads,
                                 RewriteStrategy strategy,
                                 std::size_t max_terms) {
  GFRE_ASSERT(threads >= 1, "need at least one extraction thread");
  ExtractionResult result;
  result.threads = threads;
  result.anfs.resize(outputs.size());
  result.per_bit.resize(outputs.size());

  Timer timer;
  RewriteOptions options;
  options.strategy = strategy;
  options.max_terms = max_terms;

  if (threads == 1) {
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      result.anfs[i] = extract_output_anf(netlist, outputs[i], options,
                                          &result.per_bit[i]);
    }
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(outputs.size(), [&](std::size_t i) {
      result.anfs[i] = extract_output_anf(netlist, outputs[i], options,
                                          &result.per_bit[i]);
    });
  }
  result.wall_seconds = timer.seconds();
  for (const auto& stats : result.per_bit) {
    result.total_peak_terms += stats.peak_terms;
  }
  return result;
}

ExtractionResult extract_all_outputs(const nl::Netlist& netlist,
                                     unsigned threads,
                                     RewriteStrategy strategy,
                                     std::size_t max_terms) {
  return extract_outputs(netlist, netlist.outputs(), threads, strategy,
                         max_terms);
}

}  // namespace gfre::core
