// Backward rewriting — Algorithm 1 of the paper.
//
// Starting from F0 = (the output bit's variable), walk the output's fanin
// cone in reverse topological order; for every gate whose output variable
// occurs in F, substitute the gate's ANF over its inputs, cancelling
// monomials mod 2.  After the last substitution F mentions only primary
// inputs: it is the unique ANF of that output bit (Theorem 1), and by
// Theorem 2 each output bit can be rewritten independently.
//
// Algorithm 1 itself is generic over a substitution backend; three are
// provided:
//  * Packed    — the default.  Cone variables are densely remapped to
//                slots 0..k-1 and monomials packed as fixed-width bitsets
//                (1/2/4 64-bit words chosen per cone, sorted-u16 spill for
//                wider cones) in an open-addressed flat table with an
//                occurrence index of small handles (anf/packed.hpp).  The
//                final polynomial is converted back to the canonical
//                anf::Anf, so everything downstream is unchanged.
//  * Indexed   — the legacy engine: heap monomials in an unordered set
//                plus a variable -> occurrence-handle index, making each
//                substitution O(occurrences x |gate ANF|).  Kept as the
//                ablation baseline.
//  * NaiveScan — re-scans the whole polynomial per gate (the textbook
//                reading of Algorithm 1; kept for the ablation benchmark).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "anf/anf.hpp"
#include "netlist/netlist.hpp"
#include "util/error.hpp"

namespace gfre::core {

/// Thrown when a rewriting run exceeds its configured term budget
/// (RewriteOptions::max_terms).  Non-multiplier inputs — fuzzed mutants,
/// hostile submissions to the batch service — can make |F| blow up
/// exponentially; the budget turns that into a bounded, diagnosable
/// failure instead of an OOM or an effective hang.
class TermBudgetExceeded : public Error {
 public:
  TermBudgetExceeded(std::size_t terms, std::size_t budget)
      : Error("backward rewriting exceeded its term budget (" +
              std::to_string(terms) + " live monomials > limit " +
              std::to_string(budget) +
              "); the cone is not a bounded GF(2^m) datapath"),
        terms_(terms),
        budget_(budget) {}

  std::size_t terms() const { return terms_; }
  std::size_t budget() const { return budget_; }

 private:
  std::size_t terms_;
  std::size_t budget_;
};

/// Thrown when a rewriting run crosses its wall-clock deadline
/// (RewriteOptions::deadline) — the batch scheduler's soft-abort for jobs
/// with a BatchJob::deadline_ms budget.  The message is deliberately fixed
/// (no elapsed times, no term counts): the diagnosed report a deadline
/// abort produces must be bit-identical at any worker count and under any
/// cone interleaving.
class DeadlineExceeded : public Error {
 public:
  DeadlineExceeded()
      : Error("backward rewriting exceeded the job deadline; the cone was "
              "abandoned at a substitution checkpoint") {}
};

enum class RewriteStrategy {
  Packed,
  Indexed,
  NaiveScan,
};

/// Canonical lower-case name ("packed", "indexed", "naive").
const char* to_string(RewriteStrategy strategy);

/// Inverse of to_string (case-insensitive; "naivescan" also accepted).
std::optional<RewriteStrategy> strategy_from_name(std::string_view name);

/// Per-extraction statistics (drives the paper's runtime/memory columns and
/// the Figure 4 per-bit profile).
struct RewriteStats {
  std::size_t cone_gates = 0;      ///< gates in the output's fanin cone
  std::size_t substitutions = 0;   ///< gates whose output occurred in F
  std::size_t cancellations = 0;   ///< monomials removed mod 2
  std::size_t peak_terms = 0;      ///< max |F| during rewriting
  std::size_t final_terms = 0;     ///< |ANF| at the end
  double seconds = 0.0;            ///< wall time of this extraction
};

struct RewriteOptions {
  RewriteStrategy strategy = RewriteStrategy::Packed;
  /// When set, prints a per-iteration trace in the style of the paper's
  /// Figure 3 ("G3: (1+a0b1+p0+s2)x+x   elim: 2x").
  std::ostream* trace = nullptr;
  /// Upper bound on live monomials during rewriting; 0 = unlimited.
  /// Exceeding it throws TermBudgetExceeded (checked between
  /// substitutions, so the transient overshoot is at most one gate-ANF
  /// expansion).
  std::size_t max_terms = 0;
  /// Wall-clock deadline for this extraction (monotonic clock); unset =
  /// unlimited.  Checked at the same between-substitutions checkpoint as
  /// max_terms, throwing DeadlineExceeded — so a cone already past its
  /// deadline overshoots by at most one gate-ANF expansion before it is
  /// abandoned, and the abort can never tear a substitution in half.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Extracts the ANF of one output bit by backward rewriting.
/// `output` may be any net; gates outside its cone are never touched.
anf::Anf extract_output_anf(const nl::Netlist& netlist, nl::Var output,
                            const RewriteOptions& options = {},
                            RewriteStats* stats = nullptr);

}  // namespace gfre::core
