// Full reduction-matrix recovery — an extension of Algorithm 2.
//
// A GF(2^m) multiplier's bit functions are bilinear: every ANF monomial is
// some a_i*b_j, and the coefficient matrix C[k][i] (does product-degree k
// feed output bit i?) is exactly the reduction matrix of the implemented
// function.  Recovering the *whole* matrix (not just row m) lets us:
//   1. validate that the circuit is a clean GF(2^m) multiplier (every
//      product set must be all-in or all-out of every output bit),
//   2. cross-check P(x) with the row recurrence
//         row_{k+1} = (row_k << 1) + row_k[m-1] * row_m,
//   3. recognize and solve *raw Montgomery* circuits (Z = A*B*x^(-m)
//      mod P), where row m-1 encodes x^(-1) mod P = (P(x)+1)/x and hence
//      P(x) itself — beyond the paper's scope,
//   4. reject buggy or non-multiplier netlists with a diagnosis instead of
//      emitting a bogus polynomial.
#pragma once

#include <string>
#include <vector>

#include "anf/anf.hpp"
#include "core/poly_extract.hpp"
#include "gf2poly/gf2_poly.hpp"
#include "netlist/ports.hpp"

namespace gfre::core {

/// What kind of function the circuit computes.
enum class CircuitClass {
  StandardProduct,  ///< Z = A*B mod P (Mastrovito, composed Montgomery, ...)
  MontgomeryRaw,    ///< Z = A*B*x^(-m) mod P
  NotAMultiplier,   ///< bit functions are not a consistent GF(2^m) product
};

std::string to_string(CircuitClass c);

struct RecoveryReport {
  CircuitClass circuit_class = CircuitClass::NotAMultiplier;

  /// The recovered irreducible polynomial (valid unless NotAMultiplier).
  gf2::Poly p;
  bool p_is_irreducible = false;

  /// Row k (k in [0, 2m-2]) of the recovered coefficient matrix:
  /// rows[k].coeff(i) == 1 iff product set S_k feeds output bit i.
  std::vector<gf2::Poly> rows;

  /// True when every row satisfies the x^k mod P recurrence implied by the
  /// recovered P(x) (StandardProduct) or x^(k-m) mod P (MontgomeryRaw).
  bool rows_consistent = false;

  /// Human-readable explanation (especially for NotAMultiplier).
  std::string diagnosis;
};

/// Recovers the full reduction matrix and classifies the circuit.
/// `anfs[i]` must be the extracted ANF of output bit i.
RecoveryReport recover_reduction_matrix(const std::vector<anf::Anf>& anfs,
                                        const nl::MultiplierPorts& ports);

}  // namespace gfre::core
