// P(x) recovery from GF(2^m) squarers — an extension beyond the paper.
//
// A squarer Z = A^2 mod P is linear: its coefficient matrix rows are
// r_k = x^(2k) mod P.  P(x) is reconstructed from the first reduced row:
//   m even: r_{m/2} = x^m mod P = P + x^m directly;
//   m odd:  r_{(m+1)/2} = x^(m+1) mod P = x * P' (mod P) with P' = P + x^m,
//           which yields P' by a one-pass bit recurrence (two cases on
//           whether the multiplication by x overflowed into x^m).
// Every remaining row is then checked against x^(2k) mod P, so a corrupted
// squarer is rejected rather than mis-identified.
#pragma once

#include <string>
#include <vector>

#include "anf/anf.hpp"
#include "gf2poly/gf2_poly.hpp"
#include "netlist/ports.hpp"

namespace gfre::core {

struct SquarerRecovery {
  bool recognized = false;       ///< linear, consistent squarer shape
  gf2::Poly p;                   ///< recovered modulus (when recognized)
  bool p_is_irreducible = false;
  std::string diagnosis;         ///< reason when !recognized
};

/// Attempts to interpret the extracted output ANFs as Z = A^2 mod P over
/// the single input word `a`.  anfs[i] must be the ANF of output bit i.
SquarerRecovery recover_squarer(const std::vector<anf::Anf>& anfs,
                                const nl::WordPort& a);

}  // namespace gfre::core
