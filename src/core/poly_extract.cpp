#include "core/poly_extract.hpp"

#include "util/error.hpp"

namespace gfre::core {

using anf::Anf;
using anf::Monomial;

std::vector<Monomial> product_set(const nl::MultiplierPorts& ports,
                                  unsigned k) {
  const unsigned m = ports.m();
  GFRE_ASSERT(k <= 2 * m - 2, "product set index " << k << " out of range");
  std::vector<Monomial> set;
  const unsigned i_begin = (k >= m) ? (k - m + 1) : 0u;
  const unsigned i_end = std::min(k, m - 1);
  for (unsigned i = i_begin; i <= i_end; ++i) {
    const unsigned j = k - i;
    set.push_back(Monomial::from_vars({ports.a.bits[i], ports.b.bits[j]}));
  }
  return set;
}

SetMembership product_set_membership(const Anf& anf,
                                     const std::vector<Monomial>& set) {
  GFRE_ASSERT(!set.empty(), "empty product set");
  std::size_t present = 0;
  for (const Monomial& m : set) {
    if (anf.contains(m)) ++present;
  }
  if (present == 0) return SetMembership::None;
  if (present == set.size()) return SetMembership::All;
  return SetMembership::Mixed;
}

gf2::Poly recover_irreducible(const std::vector<Anf>& anfs,
                              const nl::MultiplierPorts& ports) {
  const unsigned m = ports.m();
  GFRE_ASSERT(anfs.size() == m,
              "expected " << m << " output ANFs, got " << anfs.size());
  const auto p_m = product_set(ports, m);

  gf2::Poly p = gf2::Poly::monomial(m);  // line 2: P(x) = x^m
  for (unsigned i = 0; i < m; ++i) {     // lines 3-9
    if (product_set_membership(anfs[i], p_m) == SetMembership::All) {
      p.flip_coeff(i);  // line 7: P(x) += x^i
    }
  }
  return p;
}

}  // namespace gfre::core
