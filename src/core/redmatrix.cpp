#include "core/redmatrix.hpp"

#include <unordered_map>

#include "gf2m/field.hpp"
#include "gf2poly/irreducible.hpp"
#include "util/error.hpp"

namespace gfre::core {

using anf::Anf;
using gf2::Poly;

std::string to_string(CircuitClass c) {
  switch (c) {
    case CircuitClass::StandardProduct: return "standard-product";
    case CircuitClass::MontgomeryRaw: return "montgomery-raw";
    case CircuitClass::NotAMultiplier: return "not-a-multiplier";
  }
  return "?";
}

namespace {

/// Checks that every monomial of every ANF is a product a_i * b_j of one
/// bit of each operand.  Returns a diagnosis string on violation.
std::string check_bilinear(const std::vector<Anf>& anfs,
                           const nl::MultiplierPorts& ports) {
  enum class Side : std::uint8_t { A, B };
  std::unordered_map<anf::Var, Side> side;
  for (anf::Var v : ports.a.bits) side[v] = Side::A;
  for (anf::Var v : ports.b.bits) side[v] = Side::B;

  for (std::size_t i = 0; i < anfs.size(); ++i) {
    for (const auto& monomial : anfs[i].monomials()) {
      if (monomial.degree() != 2) {
        return "output bit " + std::to_string(i) +
               " has a non-bilinear monomial of degree " +
               std::to_string(monomial.degree());
      }
      const auto sa = side.find(monomial.vars()[0]);
      const auto sb = side.find(monomial.vars()[1]);
      if (sa == side.end() || sb == side.end() ||
          sa->second == sb->second) {
        return "output bit " + std::to_string(i) +
               " mixes operand sides in a monomial";
      }
    }
  }
  return "";
}

}  // namespace

RecoveryReport recover_reduction_matrix(const std::vector<Anf>& anfs,
                                        const nl::MultiplierPorts& ports) {
  const unsigned m = ports.m();
  GFRE_ASSERT(m >= 2, "need m >= 2");
  GFRE_ASSERT(anfs.size() == m,
              "expected " << m << " output ANFs, got " << anfs.size());

  RecoveryReport report;

  if (std::string why = check_bilinear(anfs, ports); !why.empty()) {
    report.diagnosis = why;
    return report;
  }

  // Membership matrix: rows[k].coeff(i) = does S_k feed output bit i?
  report.rows.assign(2 * m - 1, Poly{});
  for (unsigned k = 0; k <= 2 * m - 2; ++k) {
    const auto set = product_set(ports, k);
    for (unsigned i = 0; i < m; ++i) {
      switch (product_set_membership(anfs[i], set)) {
        case SetMembership::All:
          report.rows[k].set_coeff(i, true);
          break;
        case SetMembership::None:
          break;
        case SetMembership::Mixed:
          report.diagnosis = "product set S_" + std::to_string(k) +
                             " is split across output bit " +
                             std::to_string(i) +
                             " — inconsistent GF(2^m) reduction";
          return report;
      }
    }
  }

  // Classification by the identity half of the matrix.
  bool low_identity = true;  // rows[k] == x^k for k < m  (plain product)
  for (unsigned k = 0; k < m; ++k) {
    if (report.rows[k] != Poly::monomial(k)) {
      low_identity = false;
      break;
    }
  }
  bool high_identity = true;  // rows[k] == x^(k-m) for k >= m  (raw Mont.)
  for (unsigned k = m; k <= 2 * m - 2; ++k) {
    if (report.rows[k] != Poly::monomial(k - m)) {
      high_identity = false;
      break;
    }
  }

  if (low_identity) {
    // Standard product: row m is P'(x) = P(x) - x^m (Theorem 3).
    report.circuit_class = CircuitClass::StandardProduct;
    report.p = report.rows[m] + Poly::monomial(m);
    report.p_is_irreducible = gf2::is_irreducible(report.p);
    // Row recurrence: row_{k+1} = x*row_k, reduced by row_m on overflow.
    report.rows_consistent = true;
    Poly r = report.rows[m];
    for (unsigned k = m; k <= 2 * m - 2; ++k) {
      if (report.rows[k] != r) {
        report.rows_consistent = false;
        report.diagnosis = "reduction row for S_" + std::to_string(k) +
                           " violates the x^k mod P recurrence";
        break;
      }
      r = r << 1;
      if (r.coeff(m)) {
        r.flip_coeff(m);
        r += report.rows[m];
      }
    }
    if (report.rows_consistent && !report.p_is_irreducible) {
      report.diagnosis = "recovered modulus " + report.p.to_string() +
                         " is reducible";
    }
    return report;
  }

  if (high_identity) {
    // Raw Montgomery: Z = A*B*x^(-m) mod P.  Row m-1 is x^(-1) mod P =
    // (P(x)+1)/x, so p_{j+1} = rows[m-1].coeff(j) and p_0 = 1.
    report.circuit_class = CircuitClass::MontgomeryRaw;
    Poly p = Poly::one();
    for (unsigned j = 0; j < m; ++j) {
      if (report.rows[m - 1].coeff(j)) p.flip_coeff(j + 1);
    }
    report.p = p;
    if (p.degree() != static_cast<int>(m)) {
      report.diagnosis = "raw-Montgomery row m-1 does not encode a degree-" +
                         std::to_string(m) + " modulus";
      return report;
    }
    report.p_is_irreducible = gf2::is_irreducible(p);
    if (!report.p_is_irreducible) {
      report.diagnosis = "recovered modulus " + p.to_string() +
                         " is reducible";
      return report;
    }
    // Verify every low row against x^(k-m) mod P.
    const gf2m::Field field(p);
    const Poly x_inv_m =
        field.inverse(field.reduce(Poly::monomial(m)));  // x^(-m) mod P
    report.rows_consistent = true;
    for (unsigned k = 0; k < m; ++k) {
      const Poly expected = field.mul(field.reduce(Poly::monomial(k)),
                                      x_inv_m);
      if (report.rows[k] != expected) {
        report.rows_consistent = false;
        report.diagnosis = "raw-Montgomery row for S_" + std::to_string(k) +
                           " mismatches x^(k-m) mod P";
        break;
      }
    }
    return report;
  }

  report.circuit_class = CircuitClass::NotAMultiplier;
  report.diagnosis =
      "bit functions are bilinear but neither Z = A*B mod P nor "
      "Z = A*B*x^(-m) mod P fits the recovered coefficient matrix";
  return report;
}

}  // namespace gfre::core
