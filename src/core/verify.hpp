// Golden-model verification: the final step of the paper's flow.
//
// "This procedure automatically checks the equivalence between the
// implementation with a golden implementation constructed using the
// extracted irreducible polynomial P(x)."
//
// The golden model is built *algebraically*: for a field GF(2^m)/P(x) the
// spec ANF of output bit i is  sum_k C[k][i] * S_k  with C the reduction
// matrix of P(x) (StandardProduct) or its x^(-m)-shifted form
// (MontgomeryRaw).  Because ANF is canonical, implementation == spec iff
// the monomial sets match exactly — a complete equivalence check, not a
// sampling argument.
#pragma once

#include <string>
#include <vector>

#include "anf/anf.hpp"
#include "core/redmatrix.hpp"
#include "gf2m/field.hpp"
#include "netlist/ports.hpp"

namespace gfre::core {

/// Spec ANFs of a GF(2^m)/P(x) multiplier over the port variables.
/// `montgomery_raw` selects the Z = A*B*x^(-m) mod P spec.
std::vector<anf::Anf> golden_anfs(const gf2m::Field& field,
                                  const nl::MultiplierPorts& ports,
                                  bool montgomery_raw = false);

struct VerifyResult {
  bool equivalent = false;
  /// First mismatching output bit (meaningful when !equivalent).
  unsigned mismatch_bit = 0;
  std::string detail;
};

/// Compares extracted ANFs against the golden spec for (field, class).
VerifyResult verify_against_golden(const std::vector<anf::Anf>& extracted,
                                   const gf2m::Field& field,
                                   const nl::MultiplierPorts& ports,
                                   CircuitClass circuit_class);

/// The classic *verification* use case the paper builds on (Lv/Kalla): the
/// irreducible polynomial is KNOWN, and the question is whether the netlist
/// implements Z = A*B mod P.  Extracts all output ANFs (in `threads`
/// threads) and compares against the golden model — a complete formal
/// equivalence check, since ANF is canonical.
VerifyResult verify_known_multiplier(const nl::Netlist& netlist,
                                     const gf2m::Field& field,
                                     unsigned threads = 1,
                                     const std::string& a_base = "a",
                                     const std::string& b_base = "b",
                                     const std::string& z_base = "z");

}  // namespace gfre::core
