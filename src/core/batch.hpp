// Batch reverse-engineering engine — many netlists, one shared pool.
//
// The paper parallelizes backward rewriting per output bit *within* one
// circuit (Theorem 2); a production verification workload has many circuits
// in flight at once.  This engine accepts N jobs (netlist file or in-memory
// netlist, each with its own FlowOptions) and executes them over ONE shared
// worker fleet at cone granularity: output-bit extraction tasks from
// different circuits interleave on the same workers, so a straggler cone in
// one job never idles the pool the way per-job `parallel_extract` ownership
// would.  Workers keep affinity with the job they last served (the netlist
// is hot in cache) and steal cones from other in-flight jobs when their own
// runs dry.
//
// Results are memoized by netlist content hash + flow-option signature —
// file bytes for file jobs (hashed from the same single read that is
// parsed, so a file rewritten mid-batch cannot poison the cache), a
// structural hash for in-memory jobs.  Submitting the same netlist twice
// costs one read and one extraction; the duplicate returns the cached
// FlowReport and is marked cache_hit.  Failures are isolated per job — a
// corrupt file, a missing port or a term-budget blowup fails that job's
// result and nothing else.
//
// `run_batch` below is the submit-all-then-wait entry point; it is a thin
// wrapper over the long-lived core::BatchScheduler (core/scheduler.hpp),
// which additionally offers incremental submission, per-job futures,
// completion callbacks and cancellation.
//
// Every job's FlowReport is identical to what a standalone
// core::reverse_engineer of the same input would produce (timing/RSS fields
// aside): both entry points share resolve_flow_ports / analyze_extraction /
// extraction_failure_report, which tests/test_batch.cpp and
// tests/test_scheduler.cpp enforce differentially.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/flow.hpp"
#include "netlist/netlist.hpp"

namespace gfre::core {

class ResultCache;

/// Admission class of a job.  The scheduler serves classes strictly in
/// order (High before Normal before Low) at every claim point — setup,
/// affinity, stealing — and FIFO within a class; priority never preempts a
/// cone that already started.  Priority is scheduling metadata only: it is
/// NOT part of the memoization key, so a High and a Low submission of the
/// same netlist still deduplicate.
enum class JobPriority {
  High,
  Normal,
  Low,
};

/// Canonical lower-case name ("high", "normal", "low").
const char* to_string(JobPriority priority);

/// Inverse of to_string (case-insensitive).
std::optional<JobPriority> priority_from_name(std::string_view name);

/// One reverse-engineering job: a netlist file path (.eqn/.blif/.v) or an
/// in-memory netlist (which takes precedence), plus per-job flow options.
/// FlowOptions::threads is ignored — parallelism belongs to the batch pool.
struct BatchJob {
  std::string name;                    ///< label; defaulted from path/netlist
  std::string path;                    ///< file-backed job
  std::optional<nl::Netlist> netlist;  ///< in-memory job
  FlowOptions options;
  /// Wall-clock budget from submission to resolution, in milliseconds;
  /// 0 = no deadline.  A job past its deadline while still queued is
  /// cancelled without running; one past it mid-extraction is soft-aborted
  /// at the next substitution checkpoint (the same checkpoint max_terms
  /// uses) and resolves as a diagnosed deadline_exceeded failure.  Like
  /// priority, the deadline is scheduling metadata — it does not enter the
  /// memoization key, and deadline-exceeded outcomes are never cached (in
  /// memory or on disk): they describe the resource budget, not the
  /// netlist.
  std::uint64_t deadline_ms = 0;
  JobPriority priority = JobPriority::Normal;
};

struct BatchJobResult {
  std::string name;
  std::string path;
  /// Job-level failure before the flow could run (unreadable/unparseable
  /// file).  Empty when the flow ran — then `report` tells the story.
  std::string error;
  bool cache_hit = false;
  /// The job was revoked (BatchScheduler::cancel or scheduler teardown)
  /// before any of it executed; `error` is empty and `report` is blank.
  bool cancelled = false;
  /// try_submit found the bounded queue full; nothing executed, `error`
  /// says so, and the future was fulfilled before try_submit returned.
  bool rejected = false;
  /// The job blew past BatchJob::deadline_ms.  Queued expiry resolves like
  /// a cancellation with a diagnosis in `error`; running expiry resolves
  /// with a diagnosed failure `report` (success=false) identical at any
  /// worker count.  Never stored in either cache.
  bool deadline_exceeded = false;
  /// !cancelled && error.empty() && report.success.
  bool ok = false;
  FlowReport report;
  /// Wall clock from batch/scheduler start to this job's completion.
  double seconds = 0.0;
};

/// The latency-vs-throughput knob for the worker claim loop (within each
/// priority class — class order always comes first).
enum class SchedulingPolicy {
  /// Default.  Maximize pool utilization: keep worker/job affinity, start
  /// queued setups before stealing, steal from the deepest cone backlog.
  Throughput,
  /// Minimize time-to-first-result: finish the oldest in-flight job first
  /// (workers converge on it, ignoring affinity), only then start new
  /// setups.
  Latency,
};

struct BatchOptions {
  /// Shared pool width (>= 1).
  unsigned threads = 1;
  /// Content-hash result memoization.  Scoped to one run_batch call — or,
  /// on a BatchScheduler, to the scheduler's whole lifetime.
  bool memoize = true;
  /// Upper bound on jobs admitted but not yet resolved (queued + running);
  /// 0 = unbounded.  At the bound, BatchScheduler::submit blocks until a
  /// job resolves and try_submit rejects immediately — so a flood of
  /// submissions is backpressured instead of growing the queue without
  /// limit.  Cache hits and duplicates count while unresolved like any
  /// other job.
  std::size_t max_queued = 0;
  /// Entry cap for the in-memory memoization cache, evicted LRU; 0 =
  /// unbounded (the pre-admission-control behavior).  An evicted entry is
  /// not a lost result: the persistent disk layer (result_cache below) is
  /// consulted on every memo miss, including eviction-induced ones.
  std::size_t memo_max_entries = 4096;
  SchedulingPolicy policy = SchedulingPolicy::Throughput;
  /// Optional persistent cross-process cache (core/result_cache.hpp).
  /// When set (and memoize is on — the disk layer sits behind the
  /// in-memory one), every in-memory miss consults the disk store before
  /// extracting, and every completed outcome is written back, keyed by
  /// SHA-256 of the netlist content + option signature.  Shared_ptr so
  /// several schedulers — even in different threads — can share one cache
  /// object; distinct processes coordinate through the directory itself
  /// (atomic renames), so pointing two runs at one dir is also safe.
  std::shared_ptr<ResultCache> result_cache;
};

struct BatchStats {
  std::size_t jobs = 0;          ///< submitted
  std::size_t succeeded = 0;     ///< results with ok
  std::size_t failed = 0;        ///< flow ran, success=false
  std::size_t load_errors = 0;   ///< file unreadable/unparseable
  std::size_t cancelled = 0;     ///< revoked before running
  std::size_t rejected = 0;      ///< try_submit bounced off a full queue
  /// Jobs resolved by their BatchJob::deadline_ms budget — expired while
  /// queued or soft-aborted mid-extraction.  Disjoint from `cancelled`.
  std::size_t deadline_exceeded = 0;
  std::size_t cache_hits = 0;    ///< results served from in-memory memoization
  /// Persistent-cache traffic (zero unless BatchOptions::result_cache is
  /// set).  disk_hits counts jobs whose outcome was replayed from disk;
  /// disk_misses counts extractions that went ahead after consulting the
  /// store; disk_stores counts outcomes written back.  A fully warm run
  /// over an unchanged manifest shows cones_extracted == 0 and
  /// disk_hits == every non-duplicate job.
  std::size_t disk_hits = 0;
  std::size_t disk_misses = 0;
  std::size_t disk_stores = 0;
  std::size_t cones_extracted = 0;  ///< output-bit tasks actually rewritten
  /// Cone tasks a worker claimed from a different job than the one it last
  /// served — the cross-circuit interleaving this engine exists for.
  std::size_t cone_steals = 0;
  /// Memo entries evicted by the BatchOptions::memo_max_entries LRU cap.
  std::size_t memo_evictions = 0;
  /// High-water mark of unresolved admitted jobs — what max_queued bounds.
  std::size_t queue_peak = 0;
};

struct BatchReport {
  /// One entry per submitted job, in submission order.
  std::vector<BatchJobResult> results;
  BatchStats stats;
  double wall_seconds = 0.0;
  unsigned threads = 1;

  bool all_ok() const;
};

/// Executes the jobs over one shared pool and waits for all of them; never
/// throws for per-job failures (those land in the job's result).
/// Implemented as a thin wrapper over core::BatchScheduler — submit every
/// job, drain, collect the futures in submission order.
///
/// Thread safety: safe to call concurrently from several threads — each
/// call owns a private scheduler (workers join before return).  The
/// in-memory memo dies with the call; only options.result_cache persists
/// anything, and that object may be shared freely between concurrent
/// calls (see core/result_cache.hpp).
BatchReport run_batch(std::vector<BatchJob> jobs,
                      const BatchOptions& options);

/// 128-bit structural content hash of a netlist (names, cells, wiring,
/// outputs) — the full memoization key domain for in-memory jobs (file
/// jobs hash their raw bytes).  Both words matter: the scheduler memoizes
/// on the pair, so tests asserting hash behavior must compare the pair,
/// not one 64-bit half.
struct NetlistHash {
  std::uint64_t a = 0;  ///< FNV-1a stream
  std::uint64_t b = 0;  ///< independent multiply-xor stream
  bool operator==(const NetlistHash&) const = default;
};

/// Hex rendering ("a:b"), mainly so test failures print something legible.
std::ostream& operator<<(std::ostream& os, const NetlistHash& hash);

NetlistHash netlist_content_hash(const nl::Netlist& netlist);

/// Loads a netlist file, dispatching on CONTENT (frontend::sniff_format)
/// rather than extension — a BLIF netlist named circuit.txt parses fine.
/// `library_path`, when non-empty, names a cell-library file
/// (frontend/cell_library.hpp) resolving non-builtin cells.  Throws
/// ParseError on bad or unrecognizable content, Error on unreadable
/// files.
nl::Netlist load_netlist_file(const std::string& path,
                              const std::string& library_path = {});

/// Parses a batch manifest: one job per line,
///   <netlist-path> [name=X] [ports=a,b,z] [strategy=packed|indexed|naive]
///                  [infer=0|1] [verify=0|1] [permute=0|1] [max_terms=N]
///                  [deadline_ms=N] [priority=high|normal|low]
///                  [library=cells.lib]
/// with '#' comments and blank lines ignored.  Relative paths (netlist
/// and library) resolve against the manifest's directory.  `defaults`
/// seeds every job's options before the per-line overrides apply.  Throws
/// ParseError on bad lines.
std::vector<BatchJob> parse_manifest(const std::string& path,
                                     const FlowOptions& defaults = {});

/// Parses ONE manifest line (the streaming building block parse_manifest
/// loops over; examples/gfre_batch.cpp feeds lines straight into a
/// BatchScheduler as they are read).  `lineno` and `manifest_path` shape
/// ParseError locations; relative netlist paths resolve against
/// `base_dir`.  Returns nullopt for blank/comment-only lines; tolerates a
/// trailing '\r' (CRLF manifests).
std::optional<BatchJob> parse_manifest_line(const std::string& line,
                                            int lineno,
                                            const std::string& manifest_path,
                                            const std::string& base_dir,
                                            const FlowOptions& defaults = {});

}  // namespace gfre::core
