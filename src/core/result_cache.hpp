// Persistent cross-batch result cache — extractions survive the process.
//
// The paper's workload is verify-many-variants: the same GF(2^m) netlists
// are re-extracted across CI runs and regression sweeps, and the follow-up
// parallel-verification work (arXiv:1802.06870) shows the real win is
// never redoing an extraction you have already done.  The batch scheduler
// memoizes within one process; this class is the next layer — an on-disk,
// content-addressed store of completed FlowReports that makes a warm run
// over an unchanged manifest perform zero extractions.
//
// Design:
//  - Keys are SHA-256 (util/sha256.hpp) over a domain-tagged canonical
//    byte stream: raw file bytes for file jobs, a structural walk for
//    in-memory netlists, then the flow-option signature.  Cryptographic —
//    unlike the in-process 128-bit multiply-xor key, a hostile netlist
//    cannot be crafted to collide with another entry, so one cache dir
//    can be shared across tenants/branches.  Derivation is specified
//    byte-by-byte in docs/CACHE_FORMAT.md.
//  - One entry per key: <dir>/<64-hex>.rpt, containing a header (magic,
//    schema version, payload length, SHA-256 payload digest) and the
//    serialized outcome (core/report_io.hpp).  The digest authenticates
//    the payload, so a torn write or bit rot is detected, quarantined
//    under <dir>/quarantine/, and reported as a miss — never a crash,
//    never a wrong report.
//  - Writes are crash-safe: serialize to <dir>/<key>.tmp.<pid>.<seq>,
//    then atomically rename over the final name.  Readers see either the
//    old entry or the new one, and two processes (or two schedulers in
//    one process) can share a cache dir with no coordination.
//  - Invalidation: flow options are part of the key; the report schema
//    version lives in the entry header, so a build with a different
//    kReportSchemaVersion treats every old entry as a stale miss and
//    overwrites it on store.
//  - Eviction: prune(max_total_bytes) deletes stale-version and
//    quarantined entries first, then the oldest live entries (by last
//    write time) until the directory fits the budget.  gfre_batch exposes
//    it as --cache-prune.  Constructing with max_bytes > 0 additionally
//    enforces the budget at store() time: when the (approximate, cheaply
//    tracked) directory size crosses the cap, the storing thread runs the
//    same prune — so a long-running service never overshoots the budget
//    until someone remembers to prune explicitly.
//
// Thread safety: every public method is safe to call concurrently from
// any thread (scheduler workers do).  lookup/store synchronize through
// the filesystem (atomic rename); the hit/miss/store counters are under
// an internal mutex.
//
// This class does not decide *what* to cache — core::BatchScheduler does
// (wire one in via BatchOptions::result_cache); it can also be used
// standalone as a report store.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "core/flow.hpp"
#include "netlist/netlist.hpp"

namespace gfre::core {

/// What the cache stores per key: a completed flow report, or the
/// diagnosed job-level error ("error" non-empty, report blank) — the same
/// two-armed outcome the scheduler's in-memory memo holds, so a disk hit
/// replays exactly what the original run produced.
struct CachedOutcome {
  FlowReport report;
  std::string error;
};

class ResultCache {
 public:
  /// Lifetime counters (monotonic; snapshot via stats()).
  struct Stats {
    std::size_t hits = 0;         ///< lookups served from disk
    std::size_t misses = 0;       ///< lookups with no usable entry
    std::size_t stores = 0;       ///< entries written
    std::size_t quarantined = 0;  ///< corrupt entries moved aside
    std::size_t stale = 0;        ///< entries rejected for schema version
    std::size_t autoprunes = 0;   ///< store-time cap enforcements (prunes)
    std::size_t expired = 0;      ///< negative entries past their TTL
    /// Crashed-writer tmp files swept by the constructor scan (entries
    /// older than the 10-minute write grace window).  prune() sweeps the
    /// same debris on demand; the constructor sweep keeps a long-lived
    /// daemon's shared directory from accumulating it across worker
    /// crashes without anyone ever calling prune.
    std::size_t tmp_swept = 0;
  };

  /// What prune() did.
  struct PruneReport {
    std::size_t entries_removed = 0;
    std::uint64_t bytes_removed = 0;
    std::size_t entries_kept = 0;
    std::uint64_t bytes_kept = 0;
  };

  /// Opens (creating if needed) the cache directory.  Throws gfre::Error
  /// when the directory cannot be created or is not writable.
  /// `max_bytes` > 0 arms store-time cap enforcement: the directory is
  /// sized once here, the running total is tracked approximately across
  /// stores, and a store that crosses the cap runs prune(max_bytes)
  /// before returning.  0 keeps eviction explicit (prune() only).
  /// `negative_ttl_seconds` > 0 expires *negative* entries — diagnosed
  /// parse/port errors, the `error`-armed CachedOutcome — once they are
  /// older than the TTL: the input file may have been fixed in place, and
  /// unlike successful extractions (content-addressed, eternally valid) a
  /// diagnosis only describes the bytes as they were.  0 (the default)
  /// keeps negative entries forever, matching content-hash semantics.
  explicit ResultCache(std::string dir, std::uint64_t max_bytes = 0,
                       std::uint64_t negative_ttl_seconds = 0);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // -- Key derivation (docs/CACHE_FORMAT.md "Key derivation") --------------

  /// Key for a file-backed job: SHA-256 over the raw netlist bytes (the
  /// very buffer that gets parsed), the cell-library bytes when the job
  /// parses against one (FlowOptions::library names the file; its CONTENT
  /// is keyed, so editing the library invalidates entries), + option
  /// signature.
  static std::string key_for_file(std::string_view netlist_bytes,
                                  const FlowOptions& options,
                                  std::string_view library_bytes = {});

  /// Key for an in-memory job: SHA-256 over a canonical structural walk of
  /// the netlist (names, cells, wiring, outputs) + option signature.
  static std::string key_for_netlist(const nl::Netlist& netlist,
                                     const FlowOptions& options);

  // -- Entry access --------------------------------------------------------

  /// Returns the stored outcome for `key`, or nullopt on miss.  A corrupt
  /// or truncated entry is quarantined and reported as a miss; an entry
  /// written by a different schema version is left in place (store()
  /// overwrites it) and reported as a miss.
  std::optional<CachedOutcome> lookup(const std::string& key);

  /// Atomically (over)writes the entry for `key`.  Returns false — without
  /// throwing — when the write fails (full disk, permissions): a cache
  /// store failure must never fail the job whose result it was memoizing.
  bool store(const std::string& key, const FlowReport& report,
             const std::string& error = {});

  /// Deletes quarantine files, abandoned temp files (past a grace window
  /// that protects concurrent in-flight stores) and entries whose header
  /// is stale or garbled (an O(1) check — payloads are never re-read),
  /// then the oldest live entries until the total size fits
  /// `max_total_bytes` (0 = delete everything).  Entries that refuse to
  /// delete remain counted in bytes_kept.  Safe to run concurrently with
  /// lookups/stores, including from another process.
  PruneReport prune(std::uint64_t max_total_bytes);

  Stats stats() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string entry_path(const std::string& key) const;
  void quarantine(const std::string& path);

  std::string dir_;
  /// Store-time budget; 0 = explicit prune only.
  std::uint64_t max_bytes_ = 0;
  /// Age past which an error entry is a miss; 0 = never expires.
  std::uint64_t negative_ttl_seconds_ = 0;
  mutable std::mutex mu_;
  Stats stats_;
  /// Approximate on-disk total (live entries), kept under mu_.  Seeded by
  /// the constructor scan, advanced per store, resynced to the exact
  /// bytes_kept after every prune — drift between prunes is bounded by
  /// concurrent writers in other processes, which the next prune absorbs.
  std::uint64_t approx_bytes_ = 0;
  /// True while some thread runs a store-triggered prune, so concurrent
  /// stores do not stack redundant directory sweeps.
  bool pruning_ = false;
};

}  // namespace gfre::core
