// End-to-end reverse-engineering flow — the paper's complete pipeline:
//
//   gate-level netlist
//     -> per-output-bit backward rewriting in n threads   (Alg. 1, Thm. 2)
//     -> irreducible polynomial recovery                   (Alg. 2, Thm. 3)
//     -> reduction-matrix validation & classification      (extension)
//     -> golden-model equivalence check                    (Section I)
//
// This is the public entry point the examples and benches use.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/parallel_extract.hpp"
#include "core/redmatrix.hpp"
#include "core/verify.hpp"
#include "netlist/netlist.hpp"
#include "netlist/ports.hpp"

namespace gfre::core {

struct FlowOptions {
  unsigned threads = 1;
  RewriteStrategy strategy = RewriteStrategy::Packed;
  /// Skip the golden comparison (used by benches that only time
  /// extraction, matching the paper's reported "extraction" runtimes).
  bool verify_with_golden = true;
  /// Discover the operand/result ports from the netlist's word structure
  /// instead of using the base names below (extension).
  bool infer_ports = false;
  /// When the declared output order does not form a multiplier, try to
  /// recover the bit permutation from the in-field product sets and re-run
  /// the analysis (extension; see core/permutation.hpp).
  bool try_output_permutation = true;
  /// Operand/result port base names (ignored when infer_ports is set).
  std::string a_base = "a";
  std::string b_base = "b";
  std::string z_base = "z";
  /// Per-output-bit live-monomial budget for backward rewriting (0 =
  /// unlimited).  Non-multiplier inputs can blow up exponentially; with a
  /// budget the flow returns success=false with a diagnosis instead of
  /// exhausting memory — the wall the fuzz suite and the batch service
  /// lean on.
  std::size_t max_terms = 0;
  /// Path to a cell-library file (frontend/cell_library.hpp) used when a
  /// file-backed job's netlist instantiates cells outside the builtin set.
  /// Empty = builtin cells only.  Deliberately NOT part of
  /// walk_report_options: cache keys must cover the library's CONTENT,
  /// not its path — the scheduler mixes the library file's bytes into
  /// both keyspaces itself (see core/scheduler.cpp and
  /// ResultCache::key_for_file).
  std::string library;
};

struct FlowReport {
  unsigned m = 0;
  std::size_t equations = 0;  ///< the paper's "#eqns" column

  /// Algorithm 2 result (Theorem 3 membership test, verbatim).
  gf2::Poly algorithm2_p;

  /// Extended recovery (classification + consistency checking).
  RecoveryReport recovery;

  /// Set when the declared output order was scrambled and the flow
  /// recovered it: output_permutation[i] is the index (in declared output
  /// order) of true bit i.
  std::optional<std::vector<unsigned>> output_permutation;

  /// Golden-model comparison (when enabled and a P(x) was recovered).
  VerifyResult verification;

  /// Extraction timings/statistics (per-bit stats feed Figure 4).
  ExtractionResult extraction;

  double total_seconds = 0.0;
  std::uint64_t rss_peak_bytes = 0;   ///< VmHWM after the flow (0 if N/A)
  std::uint64_t rss_after_bytes = 0;  ///< VmRSS after the flow (0 if N/A)

  /// Best available memory figure: the RSS high-water mark when the kernel
  /// provides one, otherwise max(current RSS, engine live-monomial
  /// estimate).  This feeds the paper tables' "Mem" column.
  std::uint64_t memory_bytes() const;

  /// True when the flow succeeded end to end: a multiplier was recognized,
  /// its P(x) is irreducible, rows are consistent, and (if run) the golden
  /// check passed.
  bool success = false;

  std::string summary() const;
};

/// Runs the full flow on a multiplier netlist.
///
/// Thread safety: reentrant — concurrent calls on distinct (or even the
/// same, never-mutated) netlists are safe; all parallelism is internal
/// (`options.threads` worker threads per call, joined before return).
/// The returned FlowReport is a self-contained value: serialize it with
/// core/report_io.hpp, persist it with core/result_cache.hpp.  For many
/// netlists prefer core::run_batch / core::BatchScheduler, which share
/// one pool across jobs and reproduce this function's reports bit for
/// bit.
FlowReport reverse_engineer(const nl::Netlist& netlist,
                            const FlowOptions& options = {});

// ---------------------------------------------------------------------------
// Flow phases.  reverse_engineer composes these; the batch engine
// (core/batch.hpp) drives the same phases itself so that a job executed at
// cone granularity on a shared pool lands on a report identical to a
// standalone run.
// ---------------------------------------------------------------------------

/// Resolves the multiplier interface (named ports or inference).  On
/// failure returns nullopt and fills `failure` with the diagnosed
/// success=false report — both entry points fail with the same words.
std::optional<nl::MultiplierPorts> resolve_flow_ports(
    const nl::Netlist& netlist, const FlowOptions& options,
    FlowReport* failure);

/// Phases 2-4 on already-extracted ANFs: Algorithm 2, reduction-matrix
/// recovery/classification, output-permutation retry, golden verification
/// and the success verdict.  Timing/RSS fields are left for the caller.
FlowReport analyze_extraction(const nl::Netlist& netlist,
                              const nl::MultiplierPorts& ports,
                              ExtractionResult extraction,
                              const FlowOptions& options);

/// The diagnosed failure report for an extraction that threw (term budget,
/// invariant violation): shared so standalone and batch runs agree.
FlowReport extraction_failure_report(const nl::Netlist& netlist,
                                     const nl::MultiplierPorts& ports,
                                     const std::string& what);

}  // namespace gfre::core
