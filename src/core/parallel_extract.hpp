// Theorem-2 parallel extraction: every output bit's backward rewriting is
// independent (cancellations never cross logic cones), so the m extractions
// run on a thread pool — the paper's "reverse engineer ... in n threads".
#pragma once

#include <cstdint>
#include <vector>

#include "anf/anf.hpp"
#include "core/rewriter.hpp"
#include "netlist/netlist.hpp"

namespace gfre::core {

struct ExtractionResult {
  /// anfs[i] is the ANF of outputs[i] passed to extract_outputs.
  std::vector<anf::Anf> anfs;
  /// Per-bit rewriting statistics (Figure 4's series is per_bit[i].seconds).
  std::vector<RewriteStats> per_bit;
  /// Wall-clock time for the whole parallel extraction.
  double wall_seconds = 0.0;
  /// Sum of per-bit peak term counts — an engine-level memory proxy that
  /// works identically on every platform (unlike RSS).
  std::size_t total_peak_terms = 0;
  unsigned threads = 1;
};

/// Extracts the ANFs of the given output nets in parallel.  `max_terms`
/// bounds the live-monomial count of each bit's rewriting (0 = unlimited);
/// when any bit exceeds it, the whole extraction throws TermBudgetExceeded
/// after the in-flight bits have drained.
ExtractionResult extract_outputs(const nl::Netlist& netlist,
                                 const std::vector<nl::Var>& outputs,
                                 unsigned threads,
                                 RewriteStrategy strategy =
                                     RewriteStrategy::Packed,
                                 std::size_t max_terms = 0);

/// Convenience: all declared primary outputs of the netlist.
ExtractionResult extract_all_outputs(const nl::Netlist& netlist,
                                     unsigned threads,
                                     RewriteStrategy strategy =
                                         RewriteStrategy::Packed,
                                     std::size_t max_terms = 0);

}  // namespace gfre::core
