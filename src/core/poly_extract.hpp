// Algorithm 2 / Theorem 3: recovering the irreducible polynomial from the
// per-output-bit ANFs.
//
// The first out-field product set P_m = { a_i*b_j : i + j = m } is the
// coefficient of x^m in the double-width product; after reduction modulo
// P(x) = x^m + P'(x) it lands exactly on the output bits named by P'(x).
// Hence x^i is a term of P(x) iff *all* monomials of P_m appear in output
// bit i's ANF (and x^m is always a term).
#pragma once

#include <vector>

#include "anf/anf.hpp"
#include "gf2poly/gf2_poly.hpp"
#include "netlist/ports.hpp"

namespace gfre::core {

/// The product set S_k = { a_i * b_j : i + j == k, 0 <= i,j < m } as ANF
/// monomials over the port nets.  k ranges over [0, 2m-2]; S_m is the
/// paper's P_m.
std::vector<anf::Monomial> product_set(const nl::MultiplierPorts& ports,
                                       unsigned k);

/// Membership of a product set in one ANF.
enum class SetMembership {
  None,   ///< no monomial of the set occurs
  All,    ///< every monomial occurs
  Mixed,  ///< some but not all occur — not a clean GF(2^m) multiplier
};

SetMembership product_set_membership(const anf::Anf& anf,
                                     const std::vector<anf::Monomial>& set);

/// Algorithm 2 verbatim: P(x) = x^m + sum { x^i : P_m fully contained in
/// ANF of z_i }.  `anfs[i]` must be the ANF of output bit i.
gf2::Poly recover_irreducible(const std::vector<anf::Anf>& anfs,
                              const nl::MultiplierPorts& ports);

}  // namespace gfre::core
