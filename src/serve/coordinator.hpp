// Sharding coordinator — fans jobs across N forked worker processes.
//
// The serving tier's availability story lives here.  The coordinator forks
// `workers` child processes (serve/worker.hpp), each wired up over a
// socketpair and running a private BatchScheduler against one SHARED
// ResultCache directory, and routes submissions to them:
//
//   - Sharding: a job's preferred worker is hash(path) % workers, so
//     duplicate submissions of one netlist land on the same worker and hit
//     its in-memory memo; a busy/dead preferred worker falls back to the
//     least-loaded live one.
//   - Admission: with worker_queue_cap > 0, per-worker in-flight jobs are
//     bounded.  submit() blocks until a slot frees anywhere; try_submit()
//     resolves the job immediately as `rejected`.  The coordinator NEVER
//     buffers unboundedly on behalf of a full fleet — that would just move
//     the queue the bound exists to prevent.
//   - Failure: a worker death (socket EOF, reaped via waitpid) requeues
//     that worker's in-flight jobs onto surviving workers, at most
//     `max_retries` re-dispatches per job; past that the job resolves with
//     a diagnosed `worker_failed` error.  Work the dead worker finished
//     and stored to the shared disk cache before dying is NOT redone — the
//     retry replays it from disk.  Dead workers are respawned (same
//     index, new process) unless draining or `respawn` is off.
//
// Lifecycle state machine (per job):
//
//   submitted -> dispatched(worker k) -> resolved(result event)
//                     |                      ^
//                     | worker k dies        | re-dispatched, attempts+1
//                     v                      |
//                parked --------------------- (capacity free, worker alive)
//                     |
//                     | attempts > max_retries, or drain timeout
//                     v
//                resolved(worker_failed / cancelled)
//
// Thread safety: all public methods are safe from any thread.  Callbacks
// run on internal reader threads and must not call drain()/shutdown().
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "serve/wire.hpp"
#include "serve/worker.hpp"

namespace gfre::serve {

struct CoordinatorOptions {
  unsigned workers = 2;
  /// BatchScheduler pool width inside each worker process.
  unsigned threads_per_worker = 1;
  /// Per-worker bound on dispatched-but-unresolved jobs (mirrored into the
  /// worker's own BatchOptions::max_queued); 0 = unbounded.
  std::size_t worker_queue_cap = 0;
  /// Re-dispatches allowed per job after worker deaths before the job is
  /// diagnosed `worker_failed`.  2 means a job survives two fleet
  /// incidents and fails on the third.
  unsigned max_retries = 2;
  /// Fork a replacement when a worker dies (never while draining).
  bool respawn = true;
  WorkerConfig worker;  ///< threads/max_queued are overwritten from above
  /// Closes server-owned fds (listen sockets, client connections) in the
  /// forked child before worker_main, so a worker never holds them open
  /// past the server's death.
  std::function<void()> on_fork_child;
};

/// One resolved job as seen by the serving layer.
struct ServeResult {
  std::uint64_t id = 0;
  bool ok = false;
  bool rejected = false;
  bool cancelled = false;
  bool cache_hit = false;
  unsigned worker = 0;    ///< index that resolved (or last hosted) the job
  unsigned attempts = 1;  ///< dispatches consumed (>1 after a requeue)
  /// Verbatim JSONL report line (core::result_json_line rendering) — write
  /// it to the report file untouched.
  std::string line;
};

struct CoordinatorStats {
  std::size_t submitted = 0;
  std::size_t resolved = 0;
  std::size_t rejected = 0;        ///< admission rejections (never dispatched)
  std::size_t worker_deaths = 0;
  std::size_t respawns = 0;
  std::size_t requeues = 0;        ///< job re-dispatches after a death
  std::size_t worker_failed = 0;   ///< jobs that exhausted max_retries
};

class Coordinator {
 public:
  using Callback = std::function<void(const ServeResult&)>;

  /// Forks the fleet; throws gfre::Error when no worker could be spawned.
  explicit Coordinator(const CoordinatorOptions& options);

  /// shutdown(30s) unless already shut down.
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Dispatches `job` (path-backed; in-memory netlists cannot cross the
  /// process boundary) and returns its id.  Blocks while every live worker
  /// is at worker_queue_cap.  The callback fires exactly once.  During
  /// drain/shutdown new submissions resolve immediately as cancelled.
  std::uint64_t submit(core::BatchJob job, Callback on_complete);

  /// Non-blocking admission: at a full fleet the job resolves immediately
  /// as `rejected` — the callback has already run when this returns.  The
  /// job id is returned either way (rejection is visible on the result).
  std::uint64_t try_submit(core::BatchJob job, Callback on_complete);

  /// Best-effort cancel.  Parked jobs resolve as cancelled right away;
  /// dispatched jobs get a cancel op forwarded to their worker (succeeds
  /// only while still queued there).  False for unknown/resolved ids.
  bool cancel(std::uint64_t id);

  /// Blocks until every submitted job resolved.
  void drain();

  /// drain with a budget; on timeout parked jobs resolve as cancelled and
  /// workers are asked to cancel what is still queued, then waits (again
  /// bounded) for the in-flight remainder.  True iff everything resolved
  /// without forced cancellation.
  bool drain_for(std::chrono::milliseconds timeout);

  /// drain_for(grace), then closes the fleet down: worker sockets close
  /// (workers see EOF, drain their schedulers and exit), children are
  /// reaped — SIGKILL for any still alive after `grace` — and reader
  /// threads join.  Idempotent.
  void shutdown(std::chrono::milliseconds grace);

  /// Per-worker scheduler counters fetched over the wire (nullopt when the
  /// worker is dead or the reply missed `timeout`).  Keys match the
  /// worker's stats event: jobs, succeeded, disk_hits, cones_extracted...
  std::optional<WireObject> worker_stats(unsigned worker,
                                         std::chrono::milliseconds timeout);

  CoordinatorStats stats() const;

  /// Live worker pids, 0 for dead slots.  For tests and the server's
  /// startup banner (CI kills one of these mid-run).
  std::vector<pid_t> worker_pids() const;

  unsigned workers() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gfre::serve
