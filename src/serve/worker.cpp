#include "serve/worker.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/batch.hpp"
#include "core/report_json.hpp"
#include "core/result_cache.hpp"
#include "core/rewriter.hpp"
#include "core/scheduler.hpp"
#include "serve/wire.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"

namespace gfre::serve {

// The wire carries exactly the manifest-line option set (the client
// already resolved relative paths), so a job routed through the server
// runs with the same FlowOptions a gfre_batch run of the same manifest
// would use — that is what makes the two JSONL reports diffable.
core::BatchJob job_from_wire(const WireObject& msg) {
  core::BatchJob job;
  job.path = require_string(msg, "path");
  job.name = get_string(msg, "name");
  if (job.name.empty()) job.name = job.path;

  core::FlowOptions& opt = job.options;
  if (const std::string strategy = get_string(msg, "strategy");
      !strategy.empty()) {
    const auto parsed = core::strategy_from_name(strategy);
    if (!parsed.has_value())
      throw Error("unknown strategy '" + strategy + "'");
    opt.strategy = *parsed;
  }
  if (const std::string ports = get_string(msg, "ports"); !ports.empty()) {
    const auto c1 = ports.find(',');
    const auto c2 = ports.find(',', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos ||
        ports.find(',', c2 + 1) != std::string::npos)
      throw Error("ports wants exactly 'a,b,z'");
    opt.a_base = ports.substr(0, c1);
    opt.b_base = ports.substr(c1 + 1, c2 - c1 - 1);
    opt.z_base = ports.substr(c2 + 1);
  }
  opt.infer_ports = get_bool(msg, "infer", opt.infer_ports);
  opt.verify_with_golden = get_bool(msg, "verify", opt.verify_with_golden);
  opt.try_output_permutation =
      get_bool(msg, "permute", opt.try_output_permutation);
  opt.max_terms = get_u64(msg, "max_terms", opt.max_terms);
  opt.library = get_string(msg, "library");
  job.deadline_ms = get_u64(msg, "deadline_ms", 0);
  if (const std::string priority = get_string(msg, "priority");
      !priority.empty()) {
    const auto parsed = core::priority_from_name(priority);
    if (!parsed.has_value())
      throw Error("unknown priority '" + priority + "'");
    job.priority = *parsed;
  }
  return job;
}

std::string submit_message(std::uint64_t id, const core::BatchJob& job) {
  JsonLine line;
  line.add("op", "submit");
  line.add("id", id);
  line.add("path", job.path);
  line.add("name", job.name);
  const core::FlowOptions& opt = job.options;
  line.add("ports", opt.a_base + "," + opt.b_base + "," + opt.z_base);
  line.add("strategy", core::to_string(opt.strategy));
  line.add("infer", opt.infer_ports);
  line.add("verify", opt.verify_with_golden);
  line.add("permute", opt.try_output_permutation);
  line.add("max_terms", static_cast<std::uint64_t>(opt.max_terms));
  if (!opt.library.empty()) line.add("library", opt.library);
  line.add("deadline_ms", job.deadline_ms);
  line.add("priority", core::to_string(job.priority));
  return line.render();
}

namespace {

/// Result event: the verbatim JSONL report line travels as an escaped
/// string so the coordinator/client can emit it byte-for-byte without
/// re-encoding (double formatting would drift on a re-render).
std::string result_event(std::uint64_t id, const core::BatchJobResult& r) {
  JsonLine line;
  line.add("event", "result");
  line.add("id", id);
  line.add("ok", r.ok);
  line.add("rejected", r.rejected);
  line.add("cancelled", r.cancelled);
  line.add("cache_hit", r.cache_hit);
  line.add("line", core::result_json_line(r).render());
  return line.render();
}

}  // namespace

int worker_main(int fd, const WorkerConfig& config) {
  // A dead coordinator must surface as a failed write, not a process kill;
  // SIGINT at the terminal belongs to the server's drain logic, not to the
  // workers (the server forwards shutdown as socket EOF).  SIGTERM keeps
  // its lethal default on purpose — see the header.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, SIG_IGN);

  core::BatchOptions options;
  options.threads = config.threads == 0 ? 1 : config.threads;
  options.max_queued = config.max_queued;
  if (!config.cache_dir.empty()) {
    try {
      options.result_cache = std::make_shared<core::ResultCache>(
          config.cache_dir, config.cache_cap_bytes,
          config.cache_negative_ttl_seconds);
    } catch (const Error& e) {
      std::fprintf(stderr, "worker: cannot open cache: %s\n", e.what());
      return 3;
    }
  }

  core::BatchScheduler scheduler(options);
  std::mutex write_mu;  // result callbacks fire on scheduler threads

  const auto send = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mu);
    // A write failure means the coordinator is gone; results have nowhere
    // to go, but in-flight extractions still complete into the shared
    // disk cache, so the work is not lost — the retry will replay it.
    (void)write_line(fd, line);
  };

  FdLineReader reader(fd);
  std::map<std::uint64_t, core::BatchScheduler::JobHandle> handles;
  std::mutex handles_mu;

  for (;;) {
    auto line = reader.read_line();
    if (!line.has_value()) break;  // coordinator closed: drain and exit
    if (line->empty()) continue;

    std::uint64_t id = 0;
    try {
      const WireObject msg = parse_wire_object(*line);
      const std::string op = require_string(msg, "op");

      if (op == "submit") {
        id = get_u64(msg, "id");
        core::BatchJob job = job_from_wire(msg);
        const auto on_complete = [&, id](const core::BatchJobResult& r) {
          send(result_event(id, r));
          std::lock_guard<std::mutex> lock(handles_mu);
          handles.erase(id);
        };
        // try_submit under a bounded queue: the worker's read loop must
        // never block on admission, or cancel/stats messages would sit
        // unread behind it.  The coordinator mirrors the cap, so this
        // rejection firing means the two views diverged — still resolved
        // correctly, as a rejected result event.
        auto ticket = options.max_queued != 0
                          ? scheduler.try_submit(std::move(job), on_complete)
                          : scheduler.submit(std::move(job), on_complete);
        if (ticket.handle != 0) {
          std::lock_guard<std::mutex> lock(handles_mu);
          // The callback may already have fired for fast jobs; don't
          // resurrect the entry it erased.
          if (ticket.result.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready)
            handles.emplace(id, ticket.handle);
        }
      } else if (op == "cancel") {
        id = get_u64(msg, "id");
        core::BatchScheduler::JobHandle handle = 0;
        {
          std::lock_guard<std::mutex> lock(handles_mu);
          auto it = handles.find(id);
          if (it != handles.end()) handle = it->second;
        }
        // A successful cancel resolves the job through its completion
        // callback, which emits the result event; an unknown/running id
        // needs no reply — the real result is coming.
        if (handle != 0) (void)scheduler.cancel(handle);
      } else if (op == "stats") {
        const core::BatchStats s = scheduler.stats();
        JsonLine reply;
        reply.add("event", "stats");
        reply.add("token", get_u64(msg, "token"));
        reply.add("jobs", s.jobs);
        reply.add("succeeded", s.succeeded);
        reply.add("failed", s.failed);
        reply.add("load_errors", s.load_errors);
        reply.add("cancelled", s.cancelled);
        reply.add("rejected", s.rejected);
        reply.add("deadline_exceeded", s.deadline_exceeded);
        reply.add("cache_hits", s.cache_hits);
        reply.add("disk_hits", s.disk_hits);
        reply.add("disk_misses", s.disk_misses);
        reply.add("disk_stores", s.disk_stores);
        reply.add("cones_extracted", s.cones_extracted);
        reply.add("queue_peak", s.queue_peak);
        send(reply.render());
      } else {
        throw Error("unknown op '" + op + "'");
      }
    } catch (const Error& e) {
      // Protocol errors on a submit resolve that id (the coordinator is
      // waiting on it); otherwise they are logged and the stream goes on —
      // one malformed message must not wedge the worker.
      if (id != 0) {
        core::BatchJobResult r;
        r.name = "job#" + std::to_string(id);
        r.error = std::string("worker protocol error: ") + e.what();
        send(result_event(id, r));
      } else {
        std::fprintf(stderr, "worker: protocol error: %s\n", e.what());
      }
    }
  }

  const bool clean = scheduler.drain_for(
      std::chrono::milliseconds(config.drain_grace_ms));
  return clean ? 0 : 4;
}

}  // namespace gfre::serve
