#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/wire.hpp"
#include "serve/worker.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"

namespace gfre::serve {

namespace {

/// Lock-free registry of fds a forked worker child must close.  Plain
/// mutex-guarded state is off limits in on_fork_child: fork() can land
/// while another thread holds the mutex, and the child would inherit it
/// locked forever.  Atomic slots have no such state.
class FdRegistry {
 public:
  static constexpr std::size_t kSlots = 64;

  /// Returns the slot index, or -1 when full (caller refuses the client).
  int add(int fd) {
    for (std::size_t i = 0; i < kSlots; ++i) {
      int expected = -1;
      if (slots_[i].compare_exchange_strong(expected, fd)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  void remove(int slot) {
    if (slot >= 0) slots_[static_cast<std::size_t>(slot)].store(-1);
  }

  void close_all_in_child() const {
    for (const auto& slot : slots_) {
      const int fd = slot.load();
      if (fd >= 0) ::close(fd);
    }
  }

  void shutdown_all() const {
    for (const auto& slot : slots_) {
      const int fd = slot.load();
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }

 private:
  std::array<std::atomic<int>, kSlots> slots_ = {};

 public:
  FdRegistry() {
    for (auto& slot : slots_) slot.store(-1);
  }
};

/// One client connection.  Callbacks on coordinator reader threads and
/// the connection's own thread both write to `fd` — serialized by `mu`.
/// The fd closes only when the LAST reference drops (pending-job
/// callbacks hold one), so a write can never race a close/fd-reuse.
struct Client {
  int fd = -1;
  int registry_slot = -1;
  FdRegistry* registry = nullptr;
  std::mutex mu;

  ~Client() {
    if (registry) registry->remove(registry_slot);
    if (fd >= 0) ::close(fd);
  }

  void send(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    (void)write_line(fd, line);  // a gone client is not an error
  }
};

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("serve: socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error("serve: socket(): " + std::string(strerror(errno)));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EADDRINUSE) {
      // Distinguish a live server from a stale socket file left by a
      // crash: only a refused connect licenses unlinking.
      int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool live =
          probe >= 0 &&
          ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0;
      if (probe >= 0) ::close(probe);
      if (live) {
        ::close(fd);
        throw Error("serve: a server is already listening on " + path);
      }
      ::unlink(path.c_str());
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        if (::listen(fd, 64) != 0)
          throw Error("serve: listen(): " + std::string(strerror(errno)));
        return fd;
      }
    }
    ::close(fd);
    throw Error("serve: cannot bind " + path + ": " + strerror(errno));
  }
  if (::listen(fd, 64) != 0)
    throw Error("serve: listen(): " + std::string(strerror(errno)));
  return fd;
}

int listen_tcp(unsigned short port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("serve: socket(): " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Loopback only: the protocol has no authentication, so it must never
  // face a network.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string why = strerror(errno);
    ::close(fd);
    throw Error("serve: cannot bind 127.0.0.1:" + std::to_string(port) +
                ": " + why);
  }
  return fd;
}

}  // namespace

struct Server::Impl {
  ServerOptions options;
  FdRegistry registry;  ///< listen fds + self-pipe + client fds
  int unix_fd = -1;
  int tcp_fd = -1;
  int stop_pipe[2] = {-1, -1};
  std::unique_ptr<Coordinator> coordinator;
  std::mutex clients_mu;
  std::vector<std::thread> client_threads;  ///< joined when run() ends

  void serve_client(std::shared_ptr<Client> client) {
    FdLineReader reader(client->fd);
    while (auto line = reader.read_line()) {
      if (line->empty()) continue;
      try {
        const WireObject msg = parse_wire_object(*line);
        const std::string op = require_string(msg, "op");
        if (op == "ping") {
          JsonLine reply;
          reply.add("event", "pong");
          client->send(reply.render());
        } else if (op == "submit") {
          core::BatchJob job = job_from_wire(msg);
          // The callback may fire before submit returns (rejection,
          // dead fleet), putting the result event on the wire ahead of
          // the ack — the client buffers results for ids it has not
          // matched yet, so ordering is correlation metadata, not a
          // protocol invariant.
          const auto on_complete = [client](const ServeResult& r) {
            JsonLine event;
            event.add("event", "result");
            event.add("id", r.id);
            event.add("ok", r.ok);
            event.add("rejected", r.rejected);
            event.add("cancelled", r.cancelled);
            event.add("cache_hit", r.cache_hit);
            event.add("worker", r.worker);
            event.add("attempts", r.attempts);
            event.add("line", r.line);
            client->send(event.render());
          };
          const std::uint64_t id =
              options.admission_reject
                  ? coordinator->try_submit(std::move(job), on_complete)
                  : coordinator->submit(std::move(job), on_complete);
          JsonLine ack;
          ack.add("event", "submitted");
          ack.add("id", id);
          client->send(ack.render());
        } else if (op == "cancel") {
          const std::uint64_t id = get_u64(msg, "id");
          JsonLine reply;
          reply.add("event", "cancel");
          reply.add("id", id);
          reply.add("accepted", coordinator->cancel(id));
          client->send(reply.render());
        } else if (op == "status") {
          const CoordinatorStats s = coordinator->stats();
          const auto pids = coordinator->worker_pids();
          std::size_t alive = 0;
          for (pid_t pid : pids) alive += pid != 0;
          JsonLine reply;
          reply.add("event", "status");
          reply.add("submitted", s.submitted);
          reply.add("resolved", s.resolved);
          reply.add("pending", s.submitted - s.resolved);
          reply.add("rejected", s.rejected);
          reply.add("worker_deaths", s.worker_deaths);
          reply.add("respawns", s.respawns);
          reply.add("requeues", s.requeues);
          reply.add("worker_failed", s.worker_failed);
          reply.add("workers", pids.size());
          reply.add("workers_alive", alive);
          client->send(reply.render());
        } else if (op == "stats") {
          // Aggregated per-worker scheduler counters — the warm-cache
          // acceptance check reads disk_hits/cones_extracted here.
          static const char* kKeys[] = {
              "jobs",       "succeeded",       "failed",
              "cache_hits", "disk_hits",       "disk_misses",
              "disk_stores", "cones_extracted", "deadline_exceeded"};
          std::map<std::string, std::uint64_t> sums;
          std::size_t reporting = 0;
          for (unsigned k = 0; k < coordinator->workers(); ++k) {
            auto stats = coordinator->worker_stats(
                k, std::chrono::milliseconds(2000));
            if (!stats.has_value()) continue;
            ++reporting;
            for (const char* key : kKeys)
              sums[key] += get_u64(*stats, key);
          }
          JsonLine reply;
          reply.add("event", "stats");
          reply.add("workers_reporting", reporting);
          for (const char* key : kKeys) reply.add(key, sums[key]);
          client->send(reply.render());
        } else if (op == "drain") {
          coordinator->drain();
          JsonLine reply;
          reply.add("event", "drained");
          client->send(reply.render());
        } else {
          throw Error("unknown op '" + op + "'");
        }
      } catch (const Error& e) {
        JsonLine reply;
        reply.add("event", "error");
        reply.add("message", e.what());
        client->send(reply.render());
      }
    }
  }
};

Server::Server(const ServerOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
  if (options.socket_path.empty())
    throw Error("serve: a socket path is required");
  std::signal(SIGPIPE, SIG_IGN);

  impl_->unix_fd = listen_unix(options.socket_path);
  impl_->registry.add(impl_->unix_fd);
  if (options.tcp_port != 0) {
    impl_->tcp_fd = listen_tcp(options.tcp_port);
    impl_->registry.add(impl_->tcp_fd);
  }
  if (::pipe(impl_->stop_pipe) != 0)
    throw Error("serve: pipe(): " + std::string(strerror(errno)));
  impl_->registry.add(impl_->stop_pipe[0]);
  impl_->registry.add(impl_->stop_pipe[1]);

  // The fleet forks AFTER the listeners exist so every child — including
  // later respawns — closes them via on_fork_child.
  CoordinatorOptions coord = options.coordinator;
  FdRegistry* registry = &impl_->registry;
  coord.on_fork_child = [registry] { registry->close_all_in_child(); };
  impl_->coordinator = std::make_unique<Coordinator>(coord);
}

Server::~Server() {
  if (impl_->coordinator)
    impl_->coordinator->shutdown(impl_->options.shutdown_grace);
  if (impl_->unix_fd >= 0) ::close(impl_->unix_fd);
  if (impl_->tcp_fd >= 0) ::close(impl_->tcp_fd);
  for (int fd : impl_->stop_pipe)
    if (fd >= 0) ::close(fd);
  if (!impl_->options.socket_path.empty())
    ::unlink(impl_->options.socket_path.c_str());
}

void Server::run() {
  auto& impl = *impl_;
  for (;;) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {impl.stop_pipe[0], POLLIN, 0};
    fds[nfds++] = {impl.unix_fd, POLLIN, 0};
    if (impl.tcp_fd >= 0) fds[nfds++] = {impl.tcp_fd, POLLIN, 0};
    int ready = ::poll(fds, nfds, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) break;  // stop byte (or pipe error)
    for (nfds_t i = 1; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn = ::accept(fds[i].fd, nullptr, nullptr);
      if (conn < 0) continue;
      auto client = std::make_shared<Client>();
      client->fd = conn;
      client->registry = &impl.registry;
      client->registry_slot = impl.registry.add(conn);
      if (client->registry_slot < 0) {
        // Registry full: refuse rather than hand a worker child an fd it
        // cannot know to close.
        JsonLine reply;
        reply.add("event", "error");
        reply.add("message", "server at connection capacity");
        client->send(reply.render());
        continue;  // ~Client closes conn
      }
      std::lock_guard<std::mutex> lock(impl.clients_mu);
      impl.client_threads.emplace_back(
          [&impl, client] { impl.serve_client(client); });
    }
  }

  // Drain the fleet first (result events still flow to clients), then
  // sever the connections and join their threads.
  impl.coordinator->shutdown(impl.options.shutdown_grace);
  impl.registry.shutdown_all();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(impl.clients_mu);
    threads.swap(impl.client_threads);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
}

int Server::stop_fd() const { return impl_->stop_pipe[1]; }

Coordinator& Server::coordinator() { return *impl_->coordinator; }

}  // namespace gfre::serve
