// Wire format for the extraction service — line-delimited JSON.
//
// Every message on every serve-layer channel (client <-> gfre_server,
// coordinator <-> worker process) is ONE flat JSON object per line:
// string/number/bool/null values only, no nesting.  That keeps the parser
// small enough to audit, the protocol greppable from a terminal
// (`socat - UNIX:/run/gfre.sock`), and framing trivial — a torn line from
// a crashed peer is detected as a parse error, never misread as a
// different message.  docs/PROTOCOL.md is the normative message catalog.
//
// Writing reuses util/jsonl.hpp's JsonLine (same escaping rules as the
// JSONL reports); this header adds the inverse — parse_wire_object — plus
// buffered line I/O over raw file descriptors, which the serve layer
// speaks because its peers are sockets and socketpairs, not iostreams.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace gfre::serve {

/// One decoded JSON scalar.  Numbers keep their raw token so 64-bit
/// integers survive exactly (a double round trip would shave ids and
/// byte counts past 2^53).
struct WireValue {
  enum class Kind { String, Number, Bool, Null };
  Kind kind = Kind::Null;
  std::string text;      ///< String: unescaped contents; Number: raw token
  bool boolean = false;  ///< Bool only

  /// Number as a non-negative integer; throws gfre::Error for strings,
  /// negatives, fractions, or overflow.
  std::uint64_t as_u64() const;
  double as_double() const;
};

/// Key-ordered view of one message.  Duplicate keys are rejected at parse
/// time — last-write-wins is how protocol confusion hides.
using WireObject = std::map<std::string, WireValue>;

/// Parses one `{"key": value, ...}` line.  Throws gfre::Error on anything
/// malformed: nesting, arrays, duplicate keys, trailing garbage, bad
/// escapes.  Accepts the exact output of JsonLine::render plus standard
/// JSON whitespace and \uXXXX escapes (surrogate pairs included).
WireObject parse_wire_object(std::string_view line);

// -- Field accessors --------------------------------------------------------

/// nullptr when absent.
const WireValue* find(const WireObject& obj, const std::string& key);

/// Missing key (or JSON null) falls back to `fallback`; a present key of
/// the wrong kind throws gfre::Error.
std::string get_string(const WireObject& obj, const std::string& key,
                       const std::string& fallback = {});
std::uint64_t get_u64(const WireObject& obj, const std::string& key,
                      std::uint64_t fallback = 0);
bool get_bool(const WireObject& obj, const std::string& key,
              bool fallback = false);

/// Like get_string but the key must be present and non-null.
std::string require_string(const WireObject& obj, const std::string& key);

// -- Line I/O over file descriptors -----------------------------------------

/// Buffered reader yielding one '\n'-terminated line at a time (terminator
/// stripped).  Returns nullopt on EOF/error; a final unterminated fragment
/// is discarded — a peer that died mid-line did not send a message.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  std::optional<std::string> read_line();

 private:
  int fd_;
  std::string buffer_;
  std::size_t pos_ = 0;
  bool eof_ = false;
};

/// Writes `line` plus '\n' fully (EINTR-retried).  False on any write
/// failure — the caller decides whether a dead peer matters.  Callers must
/// have SIGPIPE ignored (every serve-layer main does) and serialize
/// concurrent writers to one fd themselves.
bool write_line(int fd, std::string_view line);

}  // namespace gfre::serve
