#include "serve/wire.hpp"

#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>

#include "util/error.hpp"

namespace gfre::serve {

namespace {

/// Recursive-descent scanner over one line.  No recursion is actually
/// needed — the grammar is flat by design — but the cursor/expect shape
/// keeps error messages precise.
class Scanner {
 public:
  explicit Scanner(std::string_view s) : s_(s) {}

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r'))
      ++pos_;
  }

  bool done() const { return pos_ >= s_.size(); }
  char peek() const { return done() ? '\0' : s_[pos_]; }
  char take() {
    if (done()) fail("unexpected end of message");
    return s_[pos_++];
  }

  void expect(char c) {
    if (take() != c)
      fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("wire: " + what + " at byte " + std::to_string(pos_));
  }

  std::size_t pos() const { return pos_; }
  std::string_view view() const { return s_; }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
};

void append_utf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xc0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xe0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else {
    out += static_cast<char>(0xf0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  }
}

unsigned parse_hex4(Scanner& sc) {
  unsigned v = 0;
  for (int i = 0; i < 4; ++i) {
    char c = sc.take();
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<unsigned>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      v |= static_cast<unsigned>(c - 'A' + 10);
    else
      sc.fail("bad \\u escape digit");
  }
  return v;
}

std::string parse_string(Scanner& sc) {
  sc.expect('"');
  std::string out;
  for (;;) {
    char c = sc.take();
    if (c == '"') return out;
    if (static_cast<unsigned char>(c) < 0x20)
      sc.fail("unescaped control character in string");
    if (c != '\\') {
      out += c;
      continue;
    }
    char esc = sc.take();
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        unsigned cp = parse_hex4(sc);
        if (cp >= 0xd800 && cp <= 0xdbff) {
          // High surrogate: a low surrogate must follow.
          if (!(sc.take() == '\\' && sc.take() == 'u'))
            sc.fail("unpaired high surrogate");
          unsigned lo = parse_hex4(sc);
          if (lo < 0xdc00 || lo > 0xdfff) sc.fail("bad low surrogate");
          cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
        } else if (cp >= 0xdc00 && cp <= 0xdfff) {
          sc.fail("unpaired low surrogate");
        }
        append_utf8(out, cp);
        break;
      }
      default: sc.fail("bad escape character");
    }
  }
}

WireValue parse_value(Scanner& sc) {
  sc.skip_ws();
  char c = sc.peek();
  WireValue v;
  if (c == '"') {
    v.kind = WireValue::Kind::String;
    v.text = parse_string(sc);
    return v;
  }
  if (c == 't') {
    if (!sc.consume_literal("true")) sc.fail("bad literal");
    v.kind = WireValue::Kind::Bool;
    v.boolean = true;
    return v;
  }
  if (c == 'f') {
    if (!sc.consume_literal("false")) sc.fail("bad literal");
    v.kind = WireValue::Kind::Bool;
    v.boolean = false;
    return v;
  }
  if (c == 'n') {
    if (!sc.consume_literal("null")) sc.fail("bad literal");
    v.kind = WireValue::Kind::Null;
    return v;
  }
  if (c == '{' || c == '[')
    sc.fail("nested values are not part of the wire format");
  if (c == '-' || (c >= '0' && c <= '9')) {
    std::size_t start = sc.pos();
    sc.take();  // sign or first digit
    auto number_char = [](char ch) {
      return (ch >= '0' && ch <= '9') || ch == '.' || ch == 'e' ||
             ch == 'E' || ch == '+' || ch == '-';
    };
    while (!sc.done() && number_char(sc.peek())) sc.take();
    v.kind = WireValue::Kind::Number;
    v.text = std::string(sc.view().substr(start, sc.pos() - start));
    // Validate the token is a real JSON number, not e.g. "-" or "1..2".
    double d;
    auto [p, ec] =
        std::from_chars(v.text.data(), v.text.data() + v.text.size(), d);
    if (ec != std::errc{} || p != v.text.data() + v.text.size())
      sc.fail("malformed number '" + v.text + "'");
    // JSON forbids leading zeros ("01"); from_chars accepts them.
    std::string_view digits(v.text);
    if (!digits.empty() && digits.front() == '-') digits.remove_prefix(1);
    if (digits.size() > 1 && digits[0] == '0' && digits[1] >= '0' &&
        digits[1] <= '9')
      sc.fail("number '" + v.text + "' has a leading zero");
    return v;
  }
  sc.fail("unexpected character");
}

}  // namespace

std::uint64_t WireValue::as_u64() const {
  if (kind != Kind::Number)
    throw Error("wire: expected a number, got a " +
                std::string(kind == Kind::String ? "string"
                            : kind == Kind::Bool ? "bool"
                                                 : "null"));
  std::uint64_t v = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || p != text.data() + text.size())
    throw Error("wire: number '" + text + "' is not a non-negative integer");
  return v;
}

double WireValue::as_double() const {
  if (kind != Kind::Number) throw Error("wire: expected a number");
  double v = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || p != text.data() + text.size())
    throw Error("wire: malformed number '" + text + "'");
  return v;
}

WireObject parse_wire_object(std::string_view line) {
  Scanner sc(line);
  sc.skip_ws();
  sc.expect('{');
  WireObject obj;
  sc.skip_ws();
  if (sc.peek() == '}') {
    sc.take();
  } else {
    for (;;) {
      sc.skip_ws();
      std::string key = parse_string(sc);
      sc.skip_ws();
      sc.expect(':');
      WireValue value = parse_value(sc);
      if (!obj.emplace(std::move(key), std::move(value)).second)
        sc.fail("duplicate key");
      sc.skip_ws();
      char c = sc.take();
      if (c == '}') break;
      if (c != ',') sc.fail("expected ',' or '}'");
    }
  }
  sc.skip_ws();
  if (!sc.done()) sc.fail("trailing bytes after object");
  return obj;
}

const WireValue* find(const WireObject& obj, const std::string& key) {
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::string get_string(const WireObject& obj, const std::string& key,
                       const std::string& fallback) {
  const WireValue* v = find(obj, key);
  if (!v || v->kind == WireValue::Kind::Null) return fallback;
  if (v->kind != WireValue::Kind::String)
    throw Error("wire: field '" + key + "' must be a string");
  return v->text;
}

std::uint64_t get_u64(const WireObject& obj, const std::string& key,
                      std::uint64_t fallback) {
  const WireValue* v = find(obj, key);
  if (!v || v->kind == WireValue::Kind::Null) return fallback;
  return v->as_u64();
}

bool get_bool(const WireObject& obj, const std::string& key, bool fallback) {
  const WireValue* v = find(obj, key);
  if (!v || v->kind == WireValue::Kind::Null) return fallback;
  if (v->kind != WireValue::Kind::Bool)
    throw Error("wire: field '" + key + "' must be a bool");
  return v->boolean;
}

std::string require_string(const WireObject& obj, const std::string& key) {
  const WireValue* v = find(obj, key);
  if (!v || v->kind == WireValue::Kind::Null)
    throw Error("wire: missing required field '" + key + "'");
  if (v->kind != WireValue::Kind::String)
    throw Error("wire: field '" + key + "' must be a string");
  return v->text;
}

std::optional<std::string> FdLineReader::read_line() {
  for (;;) {
    auto nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
      // Compact once the consumed prefix dominates, so a long-lived
      // connection doesn't grow the buffer without bound.
      if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      return line;
    }
    if (eof_) return std::nullopt;
    char chunk[4096];
    ssize_t n;
    do {
      n = ::read(fd_, chunk, sizeof chunk);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      eof_ = true;
      // Anything left is an unterminated fragment from a dead peer.
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool write_line(int fd, std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace gfre::serve
