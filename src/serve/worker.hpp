// Worker side of the serving tier — one forked process per worker.
//
// The coordinator (serve/coordinator.hpp) forks N of these, each holding
// one end of a socketpair.  worker_main() is the child's entire life: read
// job lines off the socket, run them through a private BatchScheduler
// (its own thread pool, its own in-memory memo) against the SHARED
// on-disk ResultCache directory, and write one result event line back per
// job.  Process isolation is the point: a worker that segfaults, OOMs or
// is killed takes only its in-flight jobs with it, and the coordinator
// detects the death as socket EOF + waitpid and requeues.
//
// EOF on the socket is the shutdown signal — the worker drains its
// scheduler for a bounded grace period and exits 0.  No signals are used
// for orderly shutdown (SIGTERM stays at its killing default precisely so
// tests and operators can kill a worker and exercise the recovery path).
#pragma once

#include <cstdint>
#include <string>

#include "core/batch.hpp"
#include "serve/wire.hpp"

namespace gfre::serve {

/// Decodes a submit message (fields: path required; name, ports "a,b,z",
/// strategy, infer, verify, permute, max_terms, library, deadline_ms,
/// priority optional) into a BatchJob.  Throws gfre::Error on bad fields.  The
/// inverse of submit_message; also used by the server to decode client
/// submissions, so client -> server -> worker is one codec, not three.
core::BatchJob job_from_wire(const WireObject& msg);

/// Encodes `job` as a submit op for worker/server consumption.  All
/// FlowOptions fields are encoded explicitly (defaults included), so the
/// receiving process runs the job bit-identically regardless of its own
/// compiled-in defaults.
std::string submit_message(std::uint64_t id, const core::BatchJob& job);

struct WorkerConfig {
  /// Extraction pool width inside this worker process.
  unsigned threads = 1;
  /// BatchOptions::max_queued for the worker's scheduler; 0 = unbounded.
  /// The coordinator normally mirrors this as its per-worker in-flight
  /// cap, so worker-side rejection is defense in depth, not the admission
  /// mechanism clients see.
  std::size_t max_queued = 0;
  /// Shared persistent cache directory ("" = no disk cache).
  std::string cache_dir;
  std::uint64_t cache_cap_bytes = 0;
  std::uint64_t cache_negative_ttl_seconds = 0;
  /// Grace for draining in-flight jobs after EOF, in milliseconds.
  std::uint64_t drain_grace_ms = 30000;
};

/// Runs the worker protocol loop over `fd` (both directions) until EOF,
/// then drains and returns the process exit code (0 = clean).  Never
/// returns on fatal I/O setup errors — exits directly.  The caller (the
/// forked child in the coordinator) must pass a socketpair end whose peer
/// is the coordinator; the worker ignores SIGINT/SIGPIPE and leaves
/// SIGTERM lethal.
int worker_main(int fd, const WorkerConfig& config);

}  // namespace gfre::serve
