#include "serve/coordinator.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>

#include "core/report_json.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"

namespace gfre::serve {

struct Coordinator::Impl {
  CoordinatorOptions options;

  mutable std::mutex mu;
  std::condition_variable cv_room;   ///< capacity freed / fleet changed
  std::condition_variable cv_idle;   ///< pending drained / worker reaped
  std::condition_variable cv_stats;  ///< stats reply landed

  struct Slot {
    int fd = -1;
    pid_t pid = 0;
    bool alive = false;
    /// Set before the coordinator closes the channel itself (orderly
    /// shutdown) so the reader's EOF is not misread as a crash.
    bool closing = false;
    std::size_t inflight = 0;
  };
  std::vector<Slot> slots;
  std::vector<std::thread> readers;  ///< grow-only; joined at shutdown

  struct Pending {
    core::BatchJob job;  ///< kept whole so a requeue re-dispatches verbatim
    Callback cb;
    int worker = -1;  ///< -1: parked, waiting for capacity
    unsigned attempts = 0;
  };
  std::map<std::uint64_t, Pending> pending;
  std::deque<std::uint64_t> parked;
  std::uint64_t next_id = 1;
  /// Callbacks currently executing outside the lock; drain() must not
  /// return while one is mid-flight.
  std::size_t resolving = 0;
  bool draining = false;
  bool shut_down = false;
  CoordinatorStats counters;

  std::uint64_t stats_token = 1;
  std::map<std::uint64_t, WireObject> stats_replies;

  // -- helpers (suffix _locked: caller holds mu) ----------------------------

  bool slot_has_room(const Slot& s) const {
    return s.alive && (options.worker_queue_cap == 0 ||
                       s.inflight < options.worker_queue_cap);
  }

  bool capacity_locked() const {
    for (const Slot& s : slots)
      if (slot_has_room(s)) return true;
    return false;
  }

  bool fleet_dead_locked() const {
    for (const Slot& s : slots)
      if (s.alive) return false;
    return true;
  }

  /// Duplicate submissions of one netlist should land on one worker (its
  /// in-memory memo dedups them); fall back to the shortest queue.
  int pick_worker_locked(const std::string& path) const {
    const unsigned n = static_cast<unsigned>(slots.size());
    const unsigned preferred =
        static_cast<unsigned>(std::hash<std::string>{}(path) % n);
    if (slot_has_room(slots[preferred])) return static_cast<int>(preferred);
    int best = -1;
    for (unsigned k = 0; k < n; ++k)
      if (slot_has_room(slots[k]) &&
          (best < 0 || slots[k].inflight < slots[best].inflight))
        best = static_cast<int>(k);
    return best;
  }

  void dispatch_locked(std::uint64_t id, Pending& p, int k) {
    p.worker = k;
    ++p.attempts;
    ++slots[k].inflight;
    // A failed write means this worker just died under us; its reader's
    // EOF handling will see p.worker == k and requeue — nothing to do.
    (void)write_line(slots[k].fd, submit_message(id, p.job));
  }

  void dispatch_parked_locked() {
    while (!parked.empty()) {
      auto it = pending.find(parked.front());
      if (it == pending.end()) {  // cancelled while parked
        parked.pop_front();
        continue;
      }
      const int k = pick_worker_locked(it->second.job.path);
      if (k < 0) return;  // no capacity anywhere; a later event retries
      parked.pop_front();
      ++counters.requeues;
      dispatch_locked(it->first, it->second, k);
    }
  }

  /// Locally resolves a job that never reached (or came back from) a
  /// worker.  Caller holds mu and has already erased the pending entry.
  /// Runs the callback outside the lock via finish().
  ServeResult synthesize_locked(std::uint64_t id, const Pending& p,
                                const char* kind, const std::string& error) {
    core::BatchJobResult br;
    br.name = p.job.name.empty() ? p.job.path : p.job.name;
    br.path = p.job.path;
    if (std::string_view(kind) == "rejected") {
      br.rejected = true;
      br.error = error;
    } else if (std::string_view(kind) == "cancelled") {
      br.cancelled = true;
    } else {  // worker_failed
      br.error = error;
    }
    ServeResult r;
    r.id = id;
    r.rejected = br.rejected;
    r.cancelled = br.cancelled;
    r.worker = p.worker >= 0 ? static_cast<unsigned>(p.worker) : 0;
    r.attempts = p.attempts;
    r.line = core::result_json_line(br).render();
    ++counters.resolved;
    return r;
  }

  /// Runs resolved-job callbacks with the lock dropped, then lets drain
  /// waiters re-check.  `batch` pairs each result with its callback.
  void finish(std::unique_lock<std::mutex>& lock,
              std::vector<std::pair<ServeResult, Callback>> batch) {
    if (batch.empty()) return;
    resolving += batch.size();
    lock.unlock();
    for (auto& [result, cb] : batch)
      if (cb) cb(result);
    lock.lock();
    resolving -= batch.size();
    cv_idle.notify_all();
  }

  bool spawn_slot_locked(unsigned k) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return false;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      return false;
    }
    if (pid == 0) {
      // Child: drop every coordinator-side fd (other workers' channels
      // would keep sockets alive past their owners' deaths), let the
      // server close its listen/client fds, restore a lethal SIGTERM
      // (the parent may have a drain handler installed), then become the
      // worker.  worker_main unwinds its own locals; _exit skips global
      // teardown the forked child never owned.
      ::close(sv[0]);
      for (const Slot& s : slots)
        if (s.fd >= 0) ::close(s.fd);
      if (options.on_fork_child) options.on_fork_child();
      std::signal(SIGTERM, SIG_DFL);
      WorkerConfig config = options.worker;
      config.threads = options.threads_per_worker;
      config.max_queued = options.worker_queue_cap;
      ::_exit(worker_main(sv[1], config));
    }
    ::close(sv[1]);
    slots[k].fd = sv[0];
    slots[k].pid = pid;
    slots[k].alive = true;
    slots[k].closing = false;
    slots[k].inflight = 0;
    readers.emplace_back([this, k, fd = sv[0], pid] { read_loop(k, fd, pid); });
    return true;
  }

  // -- reader threads -------------------------------------------------------

  void read_loop(unsigned k, int fd, pid_t pid) {
    FdLineReader reader(fd);
    while (auto line = reader.read_line()) {
      if (line->empty()) continue;
      try {
        const WireObject msg = parse_wire_object(*line);
        const std::string event = require_string(msg, "event");
        if (event == "result") {
          on_result(k, msg);
        } else if (event == "stats") {
          std::lock_guard<std::mutex> lock(mu);
          stats_replies.emplace(get_u64(msg, "token"), msg);
          cv_stats.notify_all();
        }
      } catch (const Error& e) {
        std::fprintf(stderr, "coordinator: bad event from worker %u: %s\n",
                     k, e.what());
      }
    }
    on_worker_eof(k, fd, pid);
  }

  void on_result(unsigned k, const WireObject& msg) {
    const std::uint64_t id = get_u64(msg, "id");
    std::vector<std::pair<ServeResult, Callback>> batch;
    std::unique_lock<std::mutex> lock(mu);
    auto it = pending.find(id);
    // Unknown id: the job was already force-resolved (drain timeout) and
    // this is its late real result — drop it.
    if (it == pending.end()) return;
    Pending p = std::move(it->second);
    pending.erase(it);
    if (p.worker >= 0 && slots[p.worker].inflight > 0)
      --slots[p.worker].inflight;
    ServeResult r;
    r.id = id;
    r.ok = get_bool(msg, "ok");
    r.rejected = get_bool(msg, "rejected");
    r.cancelled = get_bool(msg, "cancelled");
    r.cache_hit = get_bool(msg, "cache_hit");
    r.worker = k;
    r.attempts = p.attempts;
    r.line = require_string(msg, "line");
    ++counters.resolved;
    batch.emplace_back(std::move(r), std::move(p.cb));
    dispatch_parked_locked();
    cv_room.notify_all();
    finish(lock, std::move(batch));
  }

  void on_worker_eof(unsigned k, int fd, pid_t pid) {
    // Reap first: EOF means the child closed its socket end, which for a
    // worker only happens at process exit (or kill).  This reader thread
    // is the slot's only waitpid caller, so no reap races.
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    std::vector<std::pair<ServeResult, Callback>> batch;
    std::unique_lock<std::mutex> lock(mu);
    const bool crashed = !slots[k].closing;
    slots[k].alive = false;
    slots[k].pid = 0;
    ::close(fd);
    slots[k].fd = -1;
    slots[k].inflight = 0;
    if (crashed) {
      ++counters.worker_deaths;
      // Requeue this worker's in-flight jobs — work it finished and
      // stored to the shared disk cache before dying replays from there,
      // so a retry is cheap for everything that actually completed.
      for (auto& [id, p] : pending) {
        if (p.worker != static_cast<int>(k)) continue;
        p.worker = -1;
        if (p.attempts > options.max_retries) {
          batch.emplace_back(
              synthesize_locked(
                  id, p, "worker_failed",
                  "worker_failed: worker process died (" +
                      std::to_string(p.attempts) + " attempts, retry "
                      "budget " + std::to_string(options.max_retries) +
                      " exhausted)"),
              std::move(p.cb));
          ++counters.worker_failed;
        } else {
          parked.push_back(id);
        }
      }
      for (const auto& [r, cb] : batch) pending.erase(r.id);
      if (options.respawn && !draining && !shut_down) {
        if (spawn_slot_locked(k))
          ++counters.respawns;
        else
          std::fprintf(stderr, "coordinator: respawn of worker %u failed\n",
                       k);
      }
      if (fleet_dead_locked()) {
        // Nothing left to run the parked jobs, ever.
        while (!parked.empty()) {
          auto it = pending.find(parked.front());
          parked.pop_front();
          if (it == pending.end()) continue;
          batch.emplace_back(
              synthesize_locked(it->first, it->second, "worker_failed",
                                "worker_failed: no live workers"),
              std::move(it->second.cb));
          ++counters.worker_failed;
          pending.erase(it);
        }
      }
      dispatch_parked_locked();
    }
    cv_room.notify_all();
    cv_idle.notify_all();
    finish(lock, std::move(batch));
  }

  // -- submission -----------------------------------------------------------

  std::uint64_t submit_impl(core::BatchJob job, Callback cb, bool blocking) {
    if (job.netlist.has_value())
      throw InvalidArgument(
          "serve: in-memory netlists cannot cross the process boundary");
    if (job.name.empty()) job.name = job.path;
    std::vector<std::pair<ServeResult, Callback>> batch;
    std::uint64_t id = 0;
    std::unique_lock<std::mutex> lock(mu);
    if (blocking) {
      cv_room.wait(lock, [&] {
        return draining || shut_down || capacity_locked() ||
               fleet_dead_locked();
      });
    }
    id = next_id++;
    ++counters.submitted;
    Pending p{std::move(job), std::move(cb), -1, 0};
    if (draining || shut_down) {
      batch.emplace_back(synthesize_locked(id, p, "cancelled", ""),
                         std::move(p.cb));
      finish(lock, std::move(batch));
      return id;
    }
    if (fleet_dead_locked()) {
      batch.emplace_back(synthesize_locked(id, p, "worker_failed",
                                           "worker_failed: no live workers"),
                         std::move(p.cb));
      ++counters.worker_failed;
      finish(lock, std::move(batch));
      return id;
    }
    if (!capacity_locked()) {  // try_submit on a full fleet
      batch.emplace_back(
          synthesize_locked(
              id, p, "rejected",
              "rejected: all " + std::to_string(slots.size()) +
                  " worker queues at capacity " +
                  std::to_string(options.worker_queue_cap)),
          std::move(p.cb));
      ++counters.rejected;
      finish(lock, std::move(batch));
      return id;
    }
    auto [it, inserted] = pending.emplace(id, std::move(p));
    (void)inserted;
    dispatch_locked(id, it->second, pick_worker_locked(it->second.job.path));
    return id;
  }
};

Coordinator::Coordinator(const CoordinatorOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
  if (impl_->options.workers == 0) impl_->options.workers = 1;
  // Writes to a freshly dead worker must come back as errors, not kill
  // the serving process.
  std::signal(SIGPIPE, SIG_IGN);
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->slots.resize(impl_->options.workers);
  unsigned spawned = 0;
  for (unsigned k = 0; k < impl_->options.workers; ++k)
    if (impl_->spawn_slot_locked(k)) ++spawned;
  if (spawned == 0) throw Error("serve: could not fork any worker process");
}

Coordinator::~Coordinator() { shutdown(std::chrono::milliseconds(30000)); }

std::uint64_t Coordinator::submit(core::BatchJob job, Callback on_complete) {
  return impl_->submit_impl(std::move(job), std::move(on_complete), true);
}

std::uint64_t Coordinator::try_submit(core::BatchJob job,
                                      Callback on_complete) {
  return impl_->submit_impl(std::move(job), std::move(on_complete), false);
}

bool Coordinator::cancel(std::uint64_t id) {
  std::vector<std::pair<ServeResult, Callback>> batch;
  std::unique_lock<std::mutex> lock(impl_->mu);
  auto it = impl_->pending.find(id);
  if (it == impl_->pending.end()) return false;
  if (it->second.worker < 0) {
    // Parked: resolve locally; the stale deque entry is skipped later.
    Impl::Pending p = std::move(it->second);
    impl_->pending.erase(it);
    batch.emplace_back(impl_->synthesize_locked(id, p, "cancelled", ""),
                       std::move(p.cb));
    impl_->finish(lock, std::move(batch));
    return true;
  }
  JsonLine msg;
  msg.add("op", "cancel");
  msg.add("id", id);
  return write_line(impl_->slots[it->second.worker].fd, msg.render());
}

void Coordinator::drain() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv_idle.wait(lock, [&] {
    return impl_->pending.empty() && impl_->resolving == 0;
  });
}

bool Coordinator::drain_for(std::chrono::milliseconds timeout) {
  auto& impl = *impl_;
  const auto settled = [&] {
    return impl.pending.empty() && impl.resolving == 0;
  };
  std::unique_lock<std::mutex> lock(impl.mu);
  if (impl.cv_idle.wait_for(lock, timeout, settled)) return true;

  // Budget blown: cancel everything still parked locally, ask workers to
  // cancel what is still queued on their side (running extractions finish
  // — the worker's own checkpoints bound those).
  std::vector<std::pair<ServeResult, Callback>> batch;
  while (!impl.parked.empty()) {
    auto it = impl.pending.find(impl.parked.front());
    impl.parked.pop_front();
    if (it == impl.pending.end()) continue;
    batch.emplace_back(
        impl.synthesize_locked(it->first, it->second, "cancelled", ""),
        std::move(it->second.cb));
    impl.pending.erase(it);
  }
  for (const auto& [id, p] : impl.pending) {
    if (p.worker < 0) continue;
    JsonLine msg;
    msg.add("op", "cancel");
    msg.add("id", id);
    (void)write_line(impl.slots[p.worker].fd, msg.render());
  }
  impl.finish(lock, std::move(batch));

  // One more bounded wait for the in-flight remainder, then force-resolve
  // stragglers as cancelled; their late real results are dropped on
  // arrival (unknown id).
  if (!impl.cv_idle.wait_for(lock, timeout, settled)) {
    std::vector<std::pair<ServeResult, Callback>> forced;
    for (auto& [id, p] : impl.pending) {
      if (p.worker >= 0 && impl.slots[p.worker].inflight > 0)
        --impl.slots[p.worker].inflight;
      forced.emplace_back(impl.synthesize_locked(id, p, "cancelled", ""),
                          std::move(p.cb));
    }
    impl.pending.clear();
    impl.cv_room.notify_all();
    impl.finish(lock, std::move(forced));
    impl.cv_idle.wait(lock, settled);
  }
  return false;
}

void Coordinator::shutdown(std::chrono::milliseconds grace) {
  auto& impl = *impl_;
  {
    std::lock_guard<std::mutex> lock(impl.mu);
    if (impl.shut_down) return;
    impl.draining = true;  // no respawns, new submissions cancel
    impl.cv_room.notify_all();
  }
  drain_for(grace);
  {
    std::lock_guard<std::mutex> lock(impl.mu);
    impl.shut_down = true;
    for (Impl::Slot& s : impl.slots) {
      if (!s.alive) continue;
      s.closing = true;
      // Half-close: the worker sees EOF, drains its scheduler and exits;
      // our read side stays open so its reader can wind down normally.
      ::shutdown(s.fd, SHUT_WR);
    }
  }
  {
    std::unique_lock<std::mutex> lock(impl.mu);
    const auto all_dead = [&] { return impl.fleet_dead_locked(); };
    if (!impl.cv_idle.wait_for(lock, grace, all_dead)) {
      for (const Impl::Slot& s : impl.slots)
        if (s.alive && s.pid > 0) ::kill(s.pid, SIGKILL);
      impl.cv_idle.wait(lock, all_dead);
    }
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(impl.mu);
    readers.swap(impl.readers);
  }
  for (std::thread& t : readers)
    if (t.joinable()) t.join();
}

std::optional<WireObject> Coordinator::worker_stats(
    unsigned worker, std::chrono::milliseconds timeout) {
  auto& impl = *impl_;
  std::unique_lock<std::mutex> lock(impl.mu);
  if (worker >= impl.slots.size() || !impl.slots[worker].alive)
    return std::nullopt;
  const std::uint64_t token = impl.stats_token++;
  JsonLine msg;
  msg.add("op", "stats");
  msg.add("token", token);
  if (!write_line(impl.slots[worker].fd, msg.render())) return std::nullopt;
  impl.cv_stats.wait_for(lock, timeout,
                         [&] { return impl.stats_replies.count(token) != 0; });
  auto it = impl.stats_replies.find(token);
  if (it == impl.stats_replies.end()) return std::nullopt;
  WireObject reply = std::move(it->second);
  impl.stats_replies.erase(it);
  return reply;
}

CoordinatorStats Coordinator::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->counters;
}

std::vector<pid_t> Coordinator::worker_pids() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<pid_t> pids;
  pids.reserve(impl_->slots.size());
  for (const Impl::Slot& s : impl_->slots)
    pids.push_back(s.alive ? s.pid : 0);
  return pids;
}

unsigned Coordinator::workers() const {
  return static_cast<unsigned>(impl_->slots.size());
}

}  // namespace gfre::serve
