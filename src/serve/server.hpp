// gfre_server's socket front end.
//
// Listens on a UNIX-domain socket (and optionally TCP on 127.0.0.1),
// speaks the line-delimited JSON protocol of docs/PROTOCOL.md
// (submit / status / cancel / drain / stats / ping), and forwards jobs to
// a serve::Coordinator, which fans them across forked worker processes.
// One thread per client connection; result events stream back on the
// submitting client's connection as jobs resolve (a disconnected client's
// jobs still run — their results feed the shared disk cache).
//
// Shutdown is event-driven: write one byte to stop_fd() (the SIGTERM
// handler in examples/gfre_server.cpp does exactly that — it is the only
// async-signal-safe option) and run() returns after draining the fleet
// via Coordinator::shutdown.
#pragma once

#include <memory>
#include <string>

#include "serve/coordinator.hpp"

namespace gfre::serve {

struct ServerOptions {
  /// UNIX-domain socket path (required).  A stale socket file from a
  /// crashed server is detected (connect refused) and replaced; a LIVE
  /// server on the path is a startup error.
  std::string socket_path;
  /// Optional TCP listener on 127.0.0.1:tcp_port; 0 = UNIX only.
  unsigned short tcp_port = 0;
  /// Client submissions at a full fleet: block the submitting connection
  /// (false, default) or resolve immediately as rejected (true).
  bool admission_reject = false;
  /// Grace passed to Coordinator::shutdown when stopping.
  std::chrono::milliseconds shutdown_grace{30000};
  CoordinatorOptions coordinator;
};

class Server {
 public:
  /// Binds the listeners, then forks the worker fleet (in that order, so
  /// the fleet's on_fork_child can close the listen fds in every child).
  /// Throws gfre::Error on bind/fork failure.
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept/dispatch loop; returns after a stop byte arrives and the
  /// fleet has drained and exited.
  void run();

  /// Write end of the self-pipe; writing any byte stops run().  Safe from
  /// signal handlers.
  int stop_fd() const;

  Coordinator& coordinator();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gfre::serve
