// 64-way bit-parallel netlist simulation.
//
// Used to validate generators against the word-level field model, to check
// that optimization passes preserve semantics, and as an independent
// cross-check of extracted ANFs (Theorem 1 says the extracted expression
// is the circuit's function; the simulator verifies that claim on random
// vectors).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace gfre::sim {

/// Simulates a netlist on 64 input vectors at a time (one bit-slice per
/// vector).  The evaluation order is cached, so repeated runs on the same
/// netlist are cheap.
class Simulator {
 public:
  explicit Simulator(const nl::Netlist& netlist);

  /// values[i] is the 64-vector slice for netlist.inputs()[i].
  /// Returns one slice per declared output, in output order.
  std::vector<std::uint64_t> run(
      const std::vector<std::uint64_t>& input_values) const;

  /// Single-vector convenience wrapper (bit 0 of each slice).
  std::vector<bool> run_single(const std::vector<bool>& input_values) const;

  const nl::Netlist& netlist() const { return *netlist_; }

 private:
  const nl::Netlist* netlist_;
  std::vector<std::size_t> order_;
};

}  // namespace gfre::sim
