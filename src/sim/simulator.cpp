#include "sim/simulator.hpp"

#include "util/error.hpp"

namespace gfre::sim {

Simulator::Simulator(const nl::Netlist& netlist)
    : netlist_(&netlist), order_(netlist.topological_order()) {}

std::vector<std::uint64_t> Simulator::run(
    const std::vector<std::uint64_t>& input_values) const {
  const nl::Netlist& netlist = *netlist_;
  GFRE_ASSERT(input_values.size() == netlist.inputs().size(),
              "expected " << netlist.inputs().size() << " input slices, got "
                          << input_values.size());
  std::vector<std::uint64_t> value(netlist.num_vars(), 0);
  for (std::size_t i = 0; i < input_values.size(); ++i) {
    value[netlist.inputs()[i]] = input_values[i];
  }
  std::vector<std::uint64_t> gate_in;
  for (std::size_t g : order_) {
    const nl::Gate& gate = netlist.gate(g);
    gate_in.clear();
    for (nl::Var in : gate.inputs) gate_in.push_back(value[in]);
    value[gate.output] = nl::eval_cell_words(gate.type, gate_in);
  }
  std::vector<std::uint64_t> out;
  out.reserve(netlist.outputs().size());
  for (nl::Var v : netlist.outputs()) out.push_back(value[v]);
  return out;
}

std::vector<bool> Simulator::run_single(
    const std::vector<bool>& input_values) const {
  std::vector<std::uint64_t> slices;
  slices.reserve(input_values.size());
  for (bool b : input_values) slices.push_back(b ? 1ull : 0ull);
  const auto out = run(slices);
  std::vector<bool> result;
  result.reserve(out.size());
  for (std::uint64_t w : out) result.push_back((w & 1ull) != 0);
  return result;
}

}  // namespace gfre::sim
