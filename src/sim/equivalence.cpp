#include "sim/equivalence.hpp"

#include <sstream>

#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace gfre::sim {

namespace {

/// Packs 64 operand pairs into per-input-bit slices; slice bit j is vector
/// j's value of that operand bit.
struct Batch {
  std::vector<gf2::Poly> a;  // 64 operand values
  std::vector<gf2::Poly> b;
};

std::optional<Counterexample> run_batch(const Simulator& simulator,
                                        const nl::Netlist& netlist,
                                        const nl::MultiplierPorts& ports,
                                        const MulSpec& spec,
                                        const Batch& batch) {
  const unsigned m = ports.m();
  const std::size_t lanes = batch.a.size();
  GFRE_ASSERT(lanes >= 1 && lanes <= 64, "bad batch size");

  // Build input slices indexed by the netlist's input order.
  std::vector<std::uint64_t> slices(netlist.inputs().size(), 0);
  std::vector<std::size_t> input_pos(netlist.num_vars(), SIZE_MAX);
  for (std::size_t i = 0; i < netlist.inputs().size(); ++i) {
    input_pos[netlist.inputs()[i]] = i;
  }
  for (unsigned bit = 0; bit < m; ++bit) {
    const std::size_t pa = input_pos[ports.a.bits[bit]];
    const std::size_t pb = input_pos[ports.b.bits[bit]];
    GFRE_ASSERT(pa != SIZE_MAX && pb != SIZE_MAX,
                "multiplier operand bit is not a primary input");
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (batch.a[lane].coeff(bit)) slices[pa] |= (1ull << lane);
      if (batch.b[lane].coeff(bit)) slices[pb] |= (1ull << lane);
    }
  }

  const auto out = simulator.run(slices);
  std::vector<std::size_t> output_pos(netlist.num_vars(), SIZE_MAX);
  for (std::size_t i = 0; i < netlist.outputs().size(); ++i) {
    if (output_pos[netlist.outputs()[i]] == SIZE_MAX) {
      output_pos[netlist.outputs()[i]] = i;
    }
  }

  for (std::size_t lane = 0; lane < lanes; ++lane) {
    gf2::Poly z;
    for (unsigned bit = 0; bit < m; ++bit) {
      const std::size_t pos = output_pos[ports.z.bits[bit]];
      GFRE_ASSERT(pos != SIZE_MAX, "multiplier output bit is not an output");
      if ((out[pos] >> lane) & 1ull) z.set_coeff(bit, true);
    }
    const gf2::Poly expected = spec(batch.a[lane], batch.b[lane]);
    if (z != expected) {
      return Counterexample{batch.a[lane], batch.b[lane], z, expected};
    }
  }
  return std::nullopt;
}

}  // namespace

std::string Counterexample::to_string() const {
  std::ostringstream oss;
  oss << "A=" << a.to_string() << " B=" << b.to_string()
      << " netlist=" << netlist_z.to_string()
      << " expected=" << expected_z.to_string();
  return oss.str();
}

std::optional<Counterexample> check_multiplier(
    const nl::Netlist& netlist, const nl::MultiplierPorts& ports,
    const MulSpec& spec, Prng& rng, unsigned random_batches,
    unsigned exhaustive_limit_bits) {
  const unsigned m = ports.m();
  const Simulator simulator(netlist);

  if (2 * m <= exhaustive_limit_bits) {
    // Exhaustive: all 2^m x 2^m operand pairs, in batches of 64.
    Batch batch;
    const std::uint64_t total = 1ull << (2 * m);
    for (std::uint64_t base = 0; base < total; base += 64) {
      batch.a.clear();
      batch.b.clear();
      const std::uint64_t lanes = std::min<std::uint64_t>(64, total - base);
      for (std::uint64_t lane = 0; lane < lanes; ++lane) {
        const std::uint64_t pair = base + lane;
        gf2::Poly a, b;
        for (unsigned bit = 0; bit < m; ++bit) {
          if ((pair >> bit) & 1ull) a.set_coeff(bit, true);
          if ((pair >> (m + bit)) & 1ull) b.set_coeff(bit, true);
        }
        batch.a.push_back(std::move(a));
        batch.b.push_back(std::move(b));
      }
      if (auto cex = run_batch(simulator, netlist, ports, spec, batch)) {
        return cex;
      }
    }
    return std::nullopt;
  }

  // Random batches; always include the all-zeros / all-ones corner pair in
  // the first batch.
  for (unsigned iteration = 0; iteration < random_batches; ++iteration) {
    Batch batch;
    for (unsigned lane = 0; lane < 64; ++lane) {
      gf2::Poly a, b;
      if (iteration == 0 && lane == 0) {
        // zeros
      } else if (iteration == 0 && lane == 1) {
        for (unsigned bit = 0; bit < m; ++bit) {
          a.set_coeff(bit, true);
          b.set_coeff(bit, true);
        }
      } else {
        for (unsigned bit = 0; bit < m; ++bit) {
          if (rng.next_bool()) a.set_coeff(bit, true);
          if (rng.next_bool()) b.set_coeff(bit, true);
        }
      }
      batch.a.push_back(std::move(a));
      batch.b.push_back(std::move(b));
    }
    if (auto cex = run_batch(simulator, netlist, ports, spec, batch)) {
      return cex;
    }
  }
  return std::nullopt;
}

std::optional<Counterexample> check_field_multiplier(
    const nl::Netlist& netlist, const nl::MultiplierPorts& ports,
    const gf2m::Field& field, Prng& rng, unsigned random_batches) {
  GFRE_ASSERT(ports.m() == field.m(),
              "port width " << ports.m() << " != field degree " << field.m());
  return check_multiplier(
      netlist, ports,
      [&field](const gf2::Poly& a, const gf2::Poly& b) {
        return field.mul(a, b);
      },
      rng, random_batches);
}

std::optional<std::string> check_netlists_equal(const nl::Netlist& lhs,
                                                const nl::Netlist& rhs,
                                                Prng& rng,
                                                unsigned random_batches) {
  if (lhs.inputs().size() != rhs.inputs().size() ||
      lhs.outputs().size() != rhs.outputs().size()) {
    return "port counts differ";
  }
  // Map rhs inputs by name so declaration order does not matter.
  std::vector<std::size_t> rhs_input_for_lhs(lhs.inputs().size());
  for (std::size_t i = 0; i < lhs.inputs().size(); ++i) {
    const auto v = rhs.find_var(lhs.var_name(lhs.inputs()[i]));
    if (!v.has_value()) {
      return "input '" + lhs.var_name(lhs.inputs()[i]) + "' missing in rhs";
    }
    bool found = false;
    for (std::size_t j = 0; j < rhs.inputs().size(); ++j) {
      if (rhs.inputs()[j] == *v) {
        rhs_input_for_lhs[i] = j;
        found = true;
        break;
      }
    }
    if (!found) {
      return "net '" + lhs.var_name(lhs.inputs()[i]) +
             "' is not an input of rhs";
    }
  }

  const Simulator sim_lhs(lhs);
  const Simulator sim_rhs(rhs);
  for (unsigned iteration = 0; iteration < random_batches; ++iteration) {
    std::vector<std::uint64_t> in_lhs(lhs.inputs().size());
    std::vector<std::uint64_t> in_rhs(rhs.inputs().size());
    for (std::size_t i = 0; i < in_lhs.size(); ++i) {
      in_lhs[i] = rng.next_u64();
      in_rhs[rhs_input_for_lhs[i]] = in_lhs[i];
    }
    const auto out_lhs = sim_lhs.run(in_lhs);
    const auto out_rhs = sim_rhs.run(in_rhs);
    for (std::size_t o = 0; o < out_lhs.size(); ++o) {
      // Outputs are matched by name as well.
      const std::string out_name = lhs.var_name(lhs.outputs()[o]);
      std::size_t rhs_pos = SIZE_MAX;
      for (std::size_t j = 0; j < rhs.outputs().size(); ++j) {
        if (rhs.var_name(rhs.outputs()[j]) == out_name) {
          rhs_pos = j;
          break;
        }
      }
      if (rhs_pos == SIZE_MAX) {
        return "output '" + out_name + "' missing in rhs";
      }
      if (out_lhs[o] != out_rhs[rhs_pos]) {
        return "output '" + out_name + "' differs on random batch " +
               std::to_string(iteration);
      }
    }
  }
  return std::nullopt;
}

}  // namespace gfre::sim
