// Equivalence checking between multiplier netlists and the word-level
// GF(2^m) reference model, and between two netlists.
//
// Exhaustive up to 2m <= ~22 input bits; random 64-way batches beyond.
// This is the "golden implementation" comparison leg of the paper's flow,
// done by simulation rather than algebra (the algebraic leg lives in core).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "gf2m/field.hpp"
#include "netlist/netlist.hpp"
#include "netlist/ports.hpp"
#include "util/prng.hpp"

namespace gfre::sim {

/// A mismatch witness: operand values and the differing output words.
struct Counterexample {
  gf2::Poly a;
  gf2::Poly b;
  gf2::Poly netlist_z;
  gf2::Poly expected_z;

  std::string to_string() const;
};

/// Word-level multiplier specification: maps operands (A, B) to the
/// expected product word.
using MulSpec =
    std::function<gf2::Poly(const gf2::Poly&, const gf2::Poly&)>;

/// Checks a multiplier netlist against a word-level spec.
/// Runs exhaustively when 2m <= exhaustive_limit_bits, otherwise
/// `random_batches` batches of 64 random vector pairs.
/// Returns nullopt on success or the first counterexample found.
std::optional<Counterexample> check_multiplier(
    const nl::Netlist& netlist, const nl::MultiplierPorts& ports,
    const MulSpec& spec, Prng& rng, unsigned random_batches = 64,
    unsigned exhaustive_limit_bits = 16);

/// Convenience: spec = multiplication in the given field.
std::optional<Counterexample> check_field_multiplier(
    const nl::Netlist& netlist, const nl::MultiplierPorts& ports,
    const gf2m::Field& field, Prng& rng, unsigned random_batches = 64);

/// Random-simulation equivalence of two netlists with identical port
/// structure (same input and output names).  Returns a human-readable
/// diagnostic on mismatch, nullopt when all batches agree.
std::optional<std::string> check_netlists_equal(const nl::Netlist& lhs,
                                                const nl::Netlist& rhs,
                                                Prng& rng,
                                                unsigned random_batches = 64);

}  // namespace gfre::sim
