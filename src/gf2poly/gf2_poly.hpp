// Dense univariate polynomials over GF(2).
//
// This is the scalar algebra underneath everything in the library: field
// construction (irreducible P(x)), reduction matrices x^k mod P(x), the
// word-level GF(2^m) reference multiplier, and the polynomial catalog used
// by the paper's experiments.
//
// Representation: bit i of the word array is the coefficient of x^i
// (little-endian).  The value is kept normalized (no trailing zero words),
// so degree() is O(1) after any operation.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace gfre::gf2 {

class Poly;

/// Quotient and remainder of a polynomial division.
struct DivMod;

/// Polynomial over GF(2) with dense bit-packed coefficients.
class Poly {
 public:
  /// The zero polynomial.
  Poly() = default;

  /// Polynomial with exactly the given term degrees, e.g. {4,1,0} is
  /// x^4 + x + 1.  Duplicate degrees cancel (mod-2 semantics).
  Poly(std::initializer_list<unsigned> degrees);

  /// x^degree.
  static Poly monomial(unsigned degree);

  /// The constant 1.
  static Poly one() { return monomial(0); }

  /// Builds a polynomial from a list of term degrees (duplicates cancel).
  static Poly from_degrees(const std::vector<unsigned>& degrees);

  /// Parses "x^233+x^74+1", "x233+x74+1", "x^4 + x + 1", "0", or "1".
  /// Throws InvalidArgument on malformed input.
  static Poly parse(const std::string& text);

  /// Degree of the polynomial; -1 for the zero polynomial.
  int degree() const;

  bool is_zero() const { return words_.empty(); }
  bool is_one() const { return words_.size() == 1 && words_[0] == 1; }

  /// Coefficient of x^i.
  bool coeff(unsigned i) const;

  /// Sets the coefficient of x^i.
  void set_coeff(unsigned i, bool value);

  /// Toggles the coefficient of x^i (add x^i).
  void flip_coeff(unsigned i);

  /// Number of nonzero terms.
  unsigned weight() const;

  /// Degrees of all nonzero terms, descending (e.g. {233, 74, 0}).
  std::vector<unsigned> support() const;

  /// True if the polynomial is x^m + x^a + 1 (weight 3).
  bool is_trinomial() const { return weight() == 3 && coeff(0); }

  /// True if the polynomial is a pentanomial with constant term (weight 5).
  bool is_pentanomial() const { return weight() == 5 && coeff(0); }

  // -- Ring operations (characteristic 2: addition == subtraction) --------
  Poly operator+(const Poly& rhs) const;
  Poly& operator+=(const Poly& rhs);
  Poly operator*(const Poly& rhs) const;
  Poly operator<<(unsigned k) const;  ///< multiply by x^k
  Poly operator>>(unsigned k) const;  ///< divide by x^k, dropping low terms

  bool operator==(const Poly& rhs) const { return words_ == rhs.words_; }
  bool operator!=(const Poly& rhs) const { return !(*this == rhs); }
  /// Lexicographic on coefficient bits from the top; gives a total order
  /// suitable for std::map / sorting catalogs.
  bool operator<(const Poly& rhs) const;

  /// Squaring (linear over GF(2): just bit spreading), faster than (*this)*(*this).
  Poly square() const;

  /// Quotient and remainder of *this by divisor (divisor != 0).
  DivMod divmod(const Poly& divisor) const;

  /// Remainder of *this modulo divisor.
  Poly mod(const Poly& divisor) const;

  /// Greatest common divisor (monic by construction over GF(2)).
  static Poly gcd(Poly a, Poly b);

  /// (a * b) mod p.
  static Poly mulmod(const Poly& a, const Poly& b, const Poly& p);

  /// a^(2^k) mod p via repeated squaring.
  static Poly pow2k_mod(const Poly& a, unsigned k, const Poly& p);

  /// Reciprocal polynomial x^deg * P(1/x).  The reciprocal of an
  /// irreducible polynomial is irreducible (used to cross-check the
  /// catalog: ARM x^233+x^159+1 is the reciprocal of NIST x^233+x^74+1).
  Poly reciprocal() const;

  /// Evaluates at a point of GF(2) (0 or 1): parity of coefficients.
  bool eval(bool x) const;

  /// Renders as "x^233+x^74+1" (or "0"/"1").
  std::string to_string() const;

  /// Renders without carets, as printed in the paper: "x233+x74+1".
  std::string to_paper_string() const;

  /// Internal word storage (read-only view, little-endian 64-bit words).
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void normalize();

  std::vector<std::uint64_t> words_;
};

struct DivMod {
  Poly quotient;
  Poly remainder;
};

}  // namespace gfre::gf2
