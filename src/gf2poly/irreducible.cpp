#include "gf2poly/irreducible.hpp"

#include "util/error.hpp"

namespace gfre::gf2 {

bool is_irreducible(const Poly& p) {
  const int deg = p.degree();
  if (deg <= 0) return false;
  if (deg == 1) return true;  // x and x+1
  // A polynomial without constant term is divisible by x.
  if (!p.coeff(0)) return false;
  const unsigned m = static_cast<unsigned>(deg);

  const Poly x = Poly::monomial(1);
  // x^(2^m) mod p must equal x.
  if (Poly::pow2k_mod(x, m, p) != x) return false;
  // For each prime divisor q of m: gcd(x^(2^(m/q)) - x, p) == 1.
  for (std::uint64_t q : distinct_prime_factors(m)) {
    const unsigned k = m / static_cast<unsigned>(q);
    Poly t = Poly::pow2k_mod(x, k, p) + x;  // subtraction == addition
    if (Poly::gcd(p, t).degree() != 0) return false;
  }
  return true;
}

std::vector<std::uint64_t> distinct_prime_factors(std::uint64_t n) {
  GFRE_ASSERT(n >= 1, "factorization of zero requested");
  std::vector<std::uint64_t> factors;
  for (std::uint64_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) {
      factors.push_back(d);
      while (n % d == 0) n /= d;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

std::vector<unsigned> irreducible_trinomials(unsigned m) {
  std::vector<unsigned> result;
  if (m < 2) return result;
  for (unsigned a = 1; a < m; ++a) {
    if (is_irreducible(Poly{m, a, 0})) result.push_back(a);
  }
  return result;
}

std::optional<Poly> first_irreducible_pentanomial(unsigned m) {
  if (m < 4) return std::nullopt;
  for (unsigned a = 3; a < m; ++a) {
    for (unsigned b = 2; b < a; ++b) {
      for (unsigned c = 1; c < b; ++c) {
        Poly p{m, a, b, c, 0};
        if (is_irreducible(p)) return p;
      }
    }
  }
  return std::nullopt;
}

Poly default_irreducible(unsigned m) {
  GFRE_ASSERT(m >= 2, "fields need degree >= 2, got " << m);
  const auto trinomials = irreducible_trinomials(m);
  if (!trinomials.empty()) {
    return Poly{m, trinomials.front(), 0};
  }
  const auto penta = first_irreducible_pentanomial(m);
  GFRE_ASSERT(penta.has_value(),
              "no irreducible tri/pentanomial of degree " << m);
  return *penta;
}

std::vector<Poly> all_irreducible(unsigned m) {
  GFRE_ASSERT(m >= 1 && m <= 24,
              "exhaustive enumeration is intended for small m, got " << m);
  std::vector<Poly> result;
  // Candidates have the x^m term, the constant term (else divisible by x),
  // and odd weight (else divisible by x+1) — except degree 1.
  const std::uint64_t interior = (m >= 1) ? (1ull << (m - 1)) : 1;
  for (std::uint64_t mid = 0; mid < interior; ++mid) {
    Poly p;
    p.set_coeff(m, true);
    p.set_coeff(0, true);
    for (unsigned b = 1; b < m; ++b) {
      if ((mid >> (b - 1)) & 1ull) p.set_coeff(b, true);
    }
    if (is_irreducible(p)) result.push_back(p);
  }
  return result;
}

}  // namespace gfre::gf2
