#include "gf2poly/catalog.hpp"

#include <algorithm>

#include "gf2poly/irreducible.hpp"
#include "util/error.hpp"

namespace gfre::gf2 {

const std::vector<CatalogEntry>& paper_table_polynomials() {
  static const std::vector<CatalogEntry> entries = {
      {"GF(2^64)", 64, Poly{64, 21, 19, 4, 0}},
      {"GF(2^96)", 96, Poly{96, 44, 7, 2, 0}},
      {"GF(2^163)", 163, Poly{163, 80, 47, 9, 0}},
      {"NIST K-233", 233, Poly{233, 74, 0}},
      {"NIST B-283", 283, Poly{283, 12, 7, 5, 0}},
      {"NIST K-409", 409, Poly{409, 87, 0}},
      {"NIST B-571", 571, Poly{571, 10, 5, 2, 0}},
  };
  return entries;
}

const CatalogEntry& paper_polynomial(unsigned m) {
  for (const auto& e : paper_table_polynomials()) {
    if (e.m == m) return e;
  }
  throw InvalidArgument("no paper catalog polynomial for m=" +
                        std::to_string(m));
}

bool has_paper_polynomial(unsigned m) {
  const auto& entries = paper_table_polynomials();
  return std::any_of(entries.begin(), entries.end(),
                     [m](const CatalogEntry& e) { return e.m == m; });
}

const std::vector<CatalogEntry>& architecture_polynomials_233() {
  static const std::vector<CatalogEntry> entries = {
      {"Intel-Pentium", 233, Poly{233, 201, 105, 9, 0}},
      {"ARM", 233, Poly{233, 159, 0}},
      {"MSP430", 233, Poly{233, 185, 121, 105, 0}},
      {"NIST-recommended", 233, Poly{233, 74, 0}},
  };
  return entries;
}

std::vector<CatalogEntry> contrasting_polynomials(unsigned m) {
  std::vector<CatalogEntry> out;
  const auto tris = irreducible_trinomials(m);
  if (!tris.empty()) {
    out.push_back({"low-trinomial", m, Poly{m, tris.front(), 0}});
    if (tris.back() != tris.front()) {
      out.push_back({"high-trinomial", m, Poly{m, tris.back(), 0}});
    }
  }
  // Low pentanomial: lexicographically smallest.
  if (auto p = first_irreducible_pentanomial(m)) {
    out.push_back({"low-pentanomial", m, *p});
  }
  // Spread pentanomial: terms pushed toward the top, which maximizes
  // overlap between reduction rows (the "Pentium-like" expensive shape).
  for (unsigned a = m - 1; a >= 3 && out.size() < 4; --a) {
    bool found = false;
    for (unsigned b = a - 1; b >= 2 && !found; --b) {
      for (unsigned c = b - 1; c >= 1 && !found; --c) {
        Poly p{m, a, b, c, 0};
        if (is_irreducible(p)) {
          const bool duplicate =
              std::any_of(out.begin(), out.end(),
                          [&](const CatalogEntry& e) { return e.p == p; });
          if (!duplicate) {
            out.push_back({"high-pentanomial", m, p});
            found = true;
          }
        }
        if (c == 1) break;
      }
      if (b == 2) break;
    }
    if (found) break;
    if (a == 3) break;
  }
  return out;
}

}  // namespace gfre::gf2
