#include "gf2poly/gf2_poly.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <sstream>

#include "util/error.hpp"

namespace gfre::gf2 {

namespace {
constexpr unsigned kWordBits = 64;

inline std::size_t word_index(unsigned bit) { return bit / kWordBits; }
inline unsigned bit_index(unsigned bit) { return bit % kWordBits; }

/// Spreads the low 32 bits of x so bit i lands at position 2i (square of a
/// GF(2) polynomial doubles every exponent).
inline std::uint64_t spread_bits(std::uint32_t x) {
  std::uint64_t v = x;
  v = (v | (v << 16)) & 0x0000ffff0000ffffull;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffull;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}
}  // namespace

Poly::Poly(std::initializer_list<unsigned> degrees) {
  for (unsigned d : degrees) flip_coeff(d);
}

Poly Poly::monomial(unsigned degree) {
  Poly p;
  p.set_coeff(degree, true);
  return p;
}

Poly Poly::from_degrees(const std::vector<unsigned>& degrees) {
  Poly p;
  for (unsigned d : degrees) p.flip_coeff(d);
  return p;
}

int Poly::degree() const {
  if (words_.empty()) return -1;
  const std::uint64_t top = words_.back();
  return static_cast<int>((words_.size() - 1) * kWordBits +
                          (kWordBits - 1 - std::countl_zero(top)));
}

bool Poly::coeff(unsigned i) const {
  const std::size_t w = word_index(i);
  if (w >= words_.size()) return false;
  return ((words_[w] >> bit_index(i)) & 1ull) != 0;
}

void Poly::set_coeff(unsigned i, bool value) {
  const std::size_t w = word_index(i);
  if (value) {
    if (w >= words_.size()) words_.resize(w + 1, 0);
    words_[w] |= (1ull << bit_index(i));
  } else if (w < words_.size()) {
    words_[w] &= ~(1ull << bit_index(i));
    normalize();
  }
}

void Poly::flip_coeff(unsigned i) {
  const std::size_t w = word_index(i);
  if (w >= words_.size()) words_.resize(w + 1, 0);
  words_[w] ^= (1ull << bit_index(i));
  normalize();
}

unsigned Poly::weight() const {
  unsigned total = 0;
  for (std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

std::vector<unsigned> Poly::support() const {
  std::vector<unsigned> degrees;
  degrees.reserve(weight());
  for (std::size_t w = words_.size(); w-- > 0;) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const unsigned bit = kWordBits - 1 - std::countl_zero(word);
      degrees.push_back(static_cast<unsigned>(w * kWordBits + bit));
      word &= ~(1ull << bit);
    }
  }
  return degrees;
}

Poly Poly::operator+(const Poly& rhs) const {
  Poly out = *this;
  out += rhs;
  return out;
}

Poly& Poly::operator+=(const Poly& rhs) {
  if (rhs.words_.size() > words_.size()) words_.resize(rhs.words_.size(), 0);
  for (std::size_t i = 0; i < rhs.words_.size(); ++i) {
    words_[i] ^= rhs.words_[i];
  }
  normalize();
  return *this;
}

Poly Poly::operator*(const Poly& rhs) const {
  if (is_zero() || rhs.is_zero()) return {};
  Poly out;
  out.words_.assign(words_.size() + rhs.words_.size(), 0);
  // Schoolbook shift-and-xor over set bits of the smaller operand.
  const Poly& a = (weight() <= rhs.weight()) ? *this : rhs;
  const Poly& b = (weight() <= rhs.weight()) ? rhs : *this;
  for (std::size_t w = 0; w < a.words_.size(); ++w) {
    std::uint64_t word = a.words_[w];
    while (word != 0) {
      const unsigned bit = std::countr_zero(word);
      word &= word - 1;
      const unsigned shift = static_cast<unsigned>(w * kWordBits + bit);
      const unsigned word_shift = shift / kWordBits;
      const unsigned bit_shift = shift % kWordBits;
      for (std::size_t i = 0; i < b.words_.size(); ++i) {
        out.words_[i + word_shift] ^= b.words_[i] << bit_shift;
        if (bit_shift != 0) {
          out.words_[i + word_shift + 1] ^=
              b.words_[i] >> (kWordBits - bit_shift);
        }
      }
    }
  }
  out.normalize();
  return out;
}

Poly Poly::operator<<(unsigned k) const {
  if (is_zero() || k == 0) {
    Poly out = *this;
    return out;
  }
  Poly out;
  const unsigned word_shift = k / kWordBits;
  const unsigned bit_shift = k % kWordBits;
  out.words_.assign(words_.size() + word_shift + 1, 0);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i + word_shift] ^= words_[i] << bit_shift;
    if (bit_shift != 0) {
      out.words_[i + word_shift + 1] ^= words_[i] >> (kWordBits - bit_shift);
    }
  }
  out.normalize();
  return out;
}

Poly Poly::operator>>(unsigned k) const {
  if (k == 0) return *this;
  const int deg = degree();
  if (deg < 0 || static_cast<unsigned>(deg) < k) return {};
  Poly out;
  const unsigned word_shift = k / kWordBits;
  const unsigned bit_shift = k % kWordBits;
  out.words_.assign(words_.size() - word_shift, 0);
  for (std::size_t i = word_shift; i < words_.size(); ++i) {
    out.words_[i - word_shift] |= words_[i] >> bit_shift;
    if (bit_shift != 0 && i + 1 < words_.size()) {
      out.words_[i - word_shift] |= words_[i + 1] << (kWordBits - bit_shift);
    }
  }
  out.normalize();
  return out;
}

bool Poly::operator<(const Poly& rhs) const {
  if (words_.size() != rhs.words_.size()) {
    return words_.size() < rhs.words_.size();
  }
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != rhs.words_[i]) return words_[i] < rhs.words_[i];
  }
  return false;
}

Poly Poly::square() const {
  Poly out;
  out.words_.assign(words_.size() * 2, 0);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[2 * i] = spread_bits(static_cast<std::uint32_t>(words_[i]));
    out.words_[2 * i + 1] =
        spread_bits(static_cast<std::uint32_t>(words_[i] >> 32));
  }
  out.normalize();
  return out;
}

DivMod Poly::divmod(const Poly& divisor) const {
  GFRE_ASSERT(!divisor.is_zero(), "division by zero polynomial");
  DivMod result;
  result.remainder = *this;
  const int d_deg = divisor.degree();
  int r_deg = result.remainder.degree();
  while (r_deg >= d_deg) {
    const unsigned shift = static_cast<unsigned>(r_deg - d_deg);
    result.quotient.flip_coeff(shift);
    result.remainder += divisor << shift;
    r_deg = result.remainder.degree();
  }
  return result;
}

Poly Poly::mod(const Poly& divisor) const {
  GFRE_ASSERT(!divisor.is_zero(), "division by zero polynomial");
  Poly r = *this;
  const int d_deg = divisor.degree();
  int r_deg = r.degree();
  while (r_deg >= d_deg) {
    r += divisor << static_cast<unsigned>(r_deg - d_deg);
    r_deg = r.degree();
  }
  return r;
}

Poly Poly::gcd(Poly a, Poly b) {
  while (!b.is_zero()) {
    Poly r = a.mod(b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Poly Poly::mulmod(const Poly& a, const Poly& b, const Poly& p) {
  return (a * b).mod(p);
}

Poly Poly::pow2k_mod(const Poly& a, unsigned k, const Poly& p) {
  Poly x = a.mod(p);
  for (unsigned i = 0; i < k; ++i) {
    x = x.square().mod(p);
  }
  return x;
}

Poly Poly::reciprocal() const {
  const int deg = degree();
  if (deg <= 0) return *this;
  Poly out;
  for (unsigned d : support()) {
    out.flip_coeff(static_cast<unsigned>(deg) - d);
  }
  return out;
}

bool Poly::eval(bool x) const {
  if (!x) return coeff(0);
  return (weight() & 1u) != 0;
}

std::string Poly::to_string() const {
  if (is_zero()) return "0";
  std::ostringstream oss;
  bool first = true;
  for (unsigned d : support()) {
    if (!first) oss << "+";
    first = false;
    if (d == 0) {
      oss << "1";
    } else if (d == 1) {
      oss << "x";
    } else {
      oss << "x^" << d;
    }
  }
  return oss.str();
}

std::string Poly::to_paper_string() const {
  if (is_zero()) return "0";
  std::ostringstream oss;
  bool first = true;
  for (unsigned d : support()) {
    if (!first) oss << "+";
    first = false;
    if (d == 0) {
      oss << "1";
    } else {
      oss << "x" << d;
    }
  }
  return oss.str();
}

Poly Poly::parse(const std::string& text) {
  Poly out;
  std::size_t i = 0;
  const auto fail = [&](const std::string& why) -> void {
    throw InvalidArgument("cannot parse polynomial '" + text + "': " + why);
  };
  auto skip_space = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  skip_space();
  if (i >= text.size()) fail("empty input");
  bool saw_term = false;
  while (i < text.size()) {
    skip_space();
    if (saw_term) {
      if (i >= text.size()) break;
      if (text[i] != '+') fail("expected '+'");
      ++i;
      skip_space();
    }
    if (i >= text.size()) fail("trailing '+'");
    if (text[i] == 'x' || text[i] == 'X') {
      ++i;
      if (i < text.size() && text[i] == '^') ++i;
      if (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
        unsigned deg = 0;
        while (i < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i]))) {
          deg = deg * 10 + static_cast<unsigned>(text[i] - '0');
          ++i;
        }
        out.flip_coeff(deg);
      } else {
        out.flip_coeff(1);  // bare "x"
      }
    } else if (std::isdigit(static_cast<unsigned char>(text[i]))) {
      unsigned val = 0;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        val = val * 10 + static_cast<unsigned>(text[i] - '0');
        ++i;
      }
      if (val == 1) {
        out.flip_coeff(0);
      } else if (val != 0) {
        fail("constants must be 0 or 1 over GF(2)");
      }
    } else {
      fail(std::string("unexpected character '") + text[i] + "'");
    }
    saw_term = true;
  }
  return out;
}

void Poly::normalize() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

}  // namespace gfre::gf2
