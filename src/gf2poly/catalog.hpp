// Catalog of the irreducible polynomials used in the paper's evaluation.
//
// Tables I-III use one polynomial per bit-width (the paper labels them
// "NIST-recommended"; some are the NIST curve polynomials, others come from
// the Lv/Kalla benchmark suite).  Table IV uses the architecture-optimal
// GF(2^233) polynomials from Scott'07 (Intel-Pentium / ARM / MSP430) plus
// the NIST trinomial.  Every entry is validated with Rabin's test in the
// unit suite and at bench startup.
#pragma once

#include <string>
#include <vector>

#include "gf2poly/gf2_poly.hpp"

namespace gfre::gf2 {

/// One catalog entry: a named irreducible polynomial.
struct CatalogEntry {
  std::string name;  ///< e.g. "NIST-233" or "Intel-Pentium".
  unsigned m;        ///< field degree.
  Poly p;            ///< the irreducible polynomial.
};

/// The per-bit-width polynomials of Tables I-III
/// (m = 64, 96, 163, 233, 283, 409, 571).
const std::vector<CatalogEntry>& paper_table_polynomials();

/// The paper's polynomial for a given bit-width; throws InvalidArgument if
/// the width is not in the catalog.
const CatalogEntry& paper_polynomial(unsigned m);

/// True if the paper's tables list a polynomial for this bit-width.
bool has_paper_polynomial(unsigned m);

/// Table IV: architecture-optimal GF(2^233) polynomials
/// (Intel-Pentium, ARM, MSP430, NIST-recommended).
const std::vector<CatalogEntry>& architecture_polynomials_233();

/// Scaled-down analog of Table IV for quick runs: four contrasting
/// irreducible polynomials of the given degree (one low trinomial, one high
/// trinomial/reciprocal, one low pentanomial, one spread pentanomial).
/// Falls back to fewer entries when the degree admits fewer shapes.
std::vector<CatalogEntry> contrasting_polynomials(unsigned m);

}  // namespace gfre::gf2
