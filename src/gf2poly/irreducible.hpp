// Irreducibility testing and irreducible-polynomial search over GF(2).
//
// The paper's whole premise is that many irreducible polynomials exist per
// field size (Section II-D): trinomials x^m+x^a+1 when available, otherwise
// pentanomials.  This module provides:
//   * Rabin's irreducibility test (exact, works to degree 571+ instantly),
//   * exhaustive trinomial enumeration,
//   * lexicographic pentanomial search,
// used by the generators, the property-test sweeps, and catalog validation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gf2poly/gf2_poly.hpp"

namespace gfre::gf2 {

/// Rabin's irreducibility test.
///
/// P of degree m is irreducible over GF(2) iff
///   x^(2^m) == x (mod P), and
///   gcd(x^(2^(m/q)) - x, P) == 1 for every prime divisor q of m.
bool is_irreducible(const Poly& p);

/// Prime factorization of n (n >= 1), ascending, with multiplicity removed.
std::vector<std::uint64_t> distinct_prime_factors(std::uint64_t n);

/// All a in (0, m) such that x^m + x^a + 1 is irreducible, ascending.
/// Empty when no irreducible trinomial of degree m exists (e.g. m = 8).
std::vector<unsigned> irreducible_trinomials(unsigned m);

/// The lexicographically smallest irreducible pentanomial
/// x^m + x^a + x^b + x^c + 1 with m > a > b > c > 0 (smallest (a,b,c)).
/// Returns nullopt only if none exists (believed never for m >= 4).
std::optional<Poly> first_irreducible_pentanomial(unsigned m);

/// The "default" irreducible polynomial for degree m, mirroring the NIST
/// convention the paper cites: the trinomial with smallest middle term if
/// one exists, otherwise the smallest pentanomial.  m >= 2.
Poly default_irreducible(unsigned m);

/// Every irreducible polynomial of degree m with constant term, found by
/// exhaustive enumeration.  Intended for small m (property-test sweeps);
/// cost is O(2^m) Rabin tests.
std::vector<Poly> all_irreducible(unsigned m);

}  // namespace gfre::gf2
