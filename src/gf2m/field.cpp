#include "gf2m/field.hpp"

#include "gf2poly/irreducible.hpp"
#include "util/error.hpp"

namespace gfre::gf2m {

using gf2::Poly;

Field::Field(Poly p) : p_(std::move(p)) {
  const int deg = p_.degree();
  if (deg < 2 || !gf2::is_irreducible(p_)) {
    throw InvalidArgument("not an irreducible polynomial of degree >= 2: " +
                          p_.to_string());
  }
  m_ = static_cast<unsigned>(deg);
  // Precompute x^k mod P for k in [m, 2m-2] by the shift recurrence
  //   x^(k+1) mod P = x * (x^k mod P)  (reduced once if degree reaches m).
  reduction_rows_.reserve(m_ - 1);
  Poly row = p_ + Poly::monomial(m_);  // x^m mod P
  for (unsigned k = m_; k <= 2 * m_ - 2; ++k) {
    reduction_rows_.push_back(row);
    row = row << 1;
    if (row.coeff(m_)) {
      row.flip_coeff(m_);
      row += reduction_rows_.front();
    }
  }
}

bool Field::contains(const Poly& x) const {
  return x.degree() < static_cast<int>(m_);
}

Poly Field::reduce(const Poly& x) const { return x.mod(p_); }

Poly Field::add(const Poly& a, const Poly& b) const {
  GFRE_ASSERT(contains(a) && contains(b), "operand outside " << to_string());
  return a + b;
}

Poly Field::mul(const Poly& a, const Poly& b) const {
  GFRE_ASSERT(contains(a) && contains(b), "operand outside " << to_string());
  return (a * b).mod(p_);
}

Poly Field::square(const Poly& a) const {
  GFRE_ASSERT(contains(a), "operand outside " << to_string());
  return a.square().mod(p_);
}

Poly Field::inverse(const Poly& a) const {
  GFRE_ASSERT(contains(a), "operand outside " << to_string());
  if (a.is_zero()) throw InvalidArgument("zero has no inverse in " + to_string());
  // Extended Euclid over GF(2)[x]: maintain g1*a == r1 (mod p).
  Poly r0 = p_, r1 = a;
  Poly g0, g1 = Poly::one();
  while (!r1.is_zero()) {
    const auto dm = r0.divmod(r1);
    Poly r2 = dm.remainder;
    Poly g2 = g0 + dm.quotient * g1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    g0 = std::move(g1);
    g1 = std::move(g2);
  }
  GFRE_ASSERT(r0.is_one(), "gcd(a, P) != 1 — modulus is not irreducible?");
  return g0.mod(p_);
}

Poly Field::pow(const Poly& a, const std::vector<bool>& exponent) const {
  GFRE_ASSERT(contains(a), "operand outside " << to_string());
  Poly result = Poly::one();
  Poly base = a;
  for (bool bit : exponent) {
    if (bit) result = mul(result, base);
    base = square(base);
  }
  return result;
}

Poly Field::pow2k(const Poly& a, unsigned k) const {
  Poly x = a;
  for (unsigned i = 0; i < k; ++i) x = square(x);
  return x;
}

Poly Field::random_element(Prng& rng) const {
  Poly e;
  for (unsigned i = 0; i < m_; ++i) {
    if (rng.next_bool()) e.set_coeff(i, true);
  }
  return e;
}

unsigned Field::reduction_xor_count() const {
  unsigned total = 0;
  for (const auto& row : reduction_rows_) total += row.weight();
  return total;
}

std::string Field::to_string() const {
  return "GF(2^" + std::to_string(m_) + ") / " + p_.to_string();
}

}  // namespace gfre::gf2m
