#include "gf2m/montgomery.hpp"

#include "util/error.hpp"

namespace gfre::gf2m {

using gf2::Poly;

Montgomery::Montgomery(const Field& field) : field_(&field) {
  const unsigned m = field.m();
  r2_ = Poly::monomial(2 * m).mod(field.modulus());
  r_inv_ = field.inverse(Poly::monomial(m).mod(field.modulus()));
}

Poly Montgomery::mont_pro(const Poly& a, const Poly& b) const {
  const Field& f = *field_;
  GFRE_ASSERT(f.contains(a) && f.contains(b),
              "MontPro operand outside " << f.to_string());
  // Bit-serial: z accumulates sum(a_i * b * x^(i-m)); each round adds a_i*b,
  // clears the constant term with a conditional +P, then divides by x.
  Poly z;
  for (unsigned i = 0; i < f.m(); ++i) {
    if (a.coeff(i)) z += b;
    if (z.coeff(0)) z += f.modulus();
    z = z >> 1;
  }
  GFRE_ASSERT(f.contains(z), "MontPro result escaped the field");
  return z;
}

Poly Montgomery::to_mont(const Poly& a) const { return mont_pro(a, r2_); }

Poly Montgomery::from_mont(const Poly& a) const {
  return mont_pro(a, Poly::one());
}

Poly Montgomery::mul(const Poly& a, const Poly& b) const {
  return mont_pro(mont_pro(a, b), r2_);
}

}  // namespace gfre::gf2m
