// Word-level GF(2^m) binary extension field.
//
// This is the functional golden model: elements are polynomials of degree
// < m over GF(2) (polynomial basis), multiplication is mod an irreducible
// P(x).  The gate-level generators and the reverse-engineering flow are both
// validated against it, and its reduction matrix (x^k mod P for k >= m) is
// the object Algorithm 2 recovers from netlists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gf2poly/gf2_poly.hpp"
#include "util/prng.hpp"

namespace gfre::gf2m {

/// A binary extension field GF(2^m) in polynomial basis.
///
/// Field elements are gf2::Poly values of degree < m.  The class is
/// immutable after construction and safe to share across threads.
class Field {
 public:
  /// Constructs the field from an irreducible polynomial of degree >= 2.
  /// Throws InvalidArgument when p is not irreducible (this is exactly the
  /// mistake the paper's verification flow is designed to catch, so we are
  /// strict about it here).
  explicit Field(gf2::Poly p);

  unsigned m() const { return m_; }
  const gf2::Poly& modulus() const { return p_; }

  /// True when x has degree < m (a canonical field element).
  bool contains(const gf2::Poly& x) const;

  /// Reduces an arbitrary polynomial into the field.
  gf2::Poly reduce(const gf2::Poly& x) const;

  // -- Field operations (operands must satisfy contains()) ---------------
  gf2::Poly add(const gf2::Poly& a, const gf2::Poly& b) const;
  gf2::Poly mul(const gf2::Poly& a, const gf2::Poly& b) const;
  gf2::Poly square(const gf2::Poly& a) const;

  /// a^(-1); throws InvalidArgument for a == 0.
  gf2::Poly inverse(const gf2::Poly& a) const;

  /// a^e with e given as a bit vector (bit 0 = LSB).  Handles e = 0.
  gf2::Poly pow(const gf2::Poly& a, const std::vector<bool>& exponent) const;

  /// a^(2^k) by repeated squaring (Frobenius iterates).
  gf2::Poly pow2k(const gf2::Poly& a, unsigned k) const;

  /// Uniformly random field element.
  gf2::Poly random_element(Prng& rng) const;

  /// Reduction rows: row k-m is x^k mod P(x), for k in [m, 2m-1).
  /// Row 0 (x^m mod P) equals P(x) - x^m, i.e. exactly the terms Theorem 3
  /// recovers.
  const std::vector<gf2::Poly>& reduction_rows() const {
    return reduction_rows_;
  }

  /// XOR cost of the reduction step in a product-then-reduce multiplier:
  /// the sum of reduction-row weights.  Reproduces the Figure 1 counting
  /// (x^4+x^3+1 -> 9, x^4+x+1 -> 6).
  unsigned reduction_xor_count() const;

  /// Human-readable name, e.g. "GF(2^233) / x^233+x^74+1".
  std::string to_string() const;

 private:
  gf2::Poly p_;
  unsigned m_;
  std::vector<gf2::Poly> reduction_rows_;
};

}  // namespace gfre::gf2m
