// Word-level Montgomery arithmetic over GF(2^m).
//
// Montgomery multiplication computes MontPro(a, b) = a*b*x^(-m) mod P(x)
// without a full-width reduction; an ordinary product a*b mod P is obtained
// by a second MontPro against the precomputed constant R^2 = x^(2m) mod P.
// This reference model is the functional spec for the gate-level Montgomery
// generator (the Table II / Table III circuits) and the basis for the raw
// a*b*x^(-m) recovery extension in core.
#pragma once

#include "gf2m/field.hpp"
#include "gf2poly/gf2_poly.hpp"

namespace gfre::gf2m {

/// Montgomery context bound to a field (radix R = x^m).
class Montgomery {
 public:
  explicit Montgomery(const Field& field);

  const Field& field() const { return *field_; }

  /// R^2 = x^(2m) mod P — the domain-conversion constant.
  const gf2::Poly& r_squared() const { return r2_; }

  /// x^(-m) mod P.
  const gf2::Poly& r_inverse() const { return r_inv_; }

  /// MontPro(a, b) = a * b * x^(-m) mod P, computed with the bit-serial
  /// algorithm (interleaved conditional adds of P and divisions by x) —
  /// the same dataflow the gate-level generator unrolls.
  gf2::Poly mont_pro(const gf2::Poly& a, const gf2::Poly& b) const;

  /// a -> a * x^m mod P (into the Montgomery domain).
  gf2::Poly to_mont(const gf2::Poly& a) const;

  /// a -> a * x^(-m) mod P (out of the Montgomery domain).
  gf2::Poly from_mont(const gf2::Poly& a) const;

  /// Ordinary product a*b mod P via two MontPro steps — the function the
  /// paper's flattened Montgomery multipliers implement end to end.
  gf2::Poly mul(const gf2::Poly& a, const gf2::Poly& b) const;

 private:
  const Field* field_;
  gf2::Poly r2_;
  gf2::Poly r_inv_;
};

}  // namespace gfre::gf2m
