// Tests for the utility substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <thread>

#include "util/error.hpp"
#include "util/jsonl.hpp"
#include "util/options.hpp"
#include "util/prng.hpp"
#include "util/rss.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace gfre {
namespace {

TEST(ErrorHandling, AssertThrowsWithContext) {
  try {
    GFRE_ASSERT(1 == 2, "context " << 42);
    FAIL() << "assert did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(ErrorHandling, ParseErrorCarriesLocation) {
  const ParseError e("file.eqn", 12, "bad token");
  EXPECT_EQ(e.file(), "file.eqn");
  EXPECT_EQ(e.line(), 12);
  EXPECT_NE(std::string(e.what()).find("file.eqn:12"), std::string::npos);
}

TEST(Prng, DeterministicForSeed) {
  Prng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  // Different seeds diverge (overwhelmingly likely).
  bool diverged = false;
  Prng a2(123);
  for (int i = 0; i < 10; ++i) {
    if (a2.next_u64() != c.next_u64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Prng, NextBelowIsInRangeAndCoversValues) {
  Prng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Prng, DoubleIsUnitInterval) {
  Prng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  // Busy-wait a tiny amount.
  volatile unsigned long long sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_NEAR(t.micros(), t.seconds() * 1e6, 1e3);
  const double before = t.seconds();
  t.reset();
  EXPECT_LE(t.seconds(), before + 1.0);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [&](std::size_t i) {
                          if (i == 7) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, ParallelForDrainsAllTasksWhenOneThrows) {
  // Regression: parallel_for used to rethrow on the first failed future,
  // returning while later tasks (which capture `fn` by reference) were
  // still queued — a use-after-free the sanitizer job would flag.  All
  // tasks must run to completion before the exception surfaces.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 0) throw Error("early boom");
                                   // Give the throwing task a head start so
                                   // the old bug would reliably leave these
                                   // queued at rethrow time.
                                   std::this_thread::sleep_for(
                                       std::chrono::microseconds(50));
                                   ++ran;
                                 }),
               Error);
  EXPECT_EQ(ran.load(), 63) << "every non-throwing task must have run";
}

TEST(ThreadPool, ParallelForReportsFirstFailureByIndex) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(8, [&](std::size_t i) {
      if (i == 3 || i == 6) throw Error("task " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "task 3");
  }
}

TEST(ThreadPool, SubmittedTaskExceptionIsStoredNotTerminating) {
  // A throwing submitted task must surface through the future as a stored
  // exception_ptr — never std::terminate the process.
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw Error("stored"); });
  EXPECT_THROW(fut.get(), Error);
}

TEST(ThreadPool, SingleWorkerStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  auto f1 = pool.submit([&] { ++counter; });
  auto f2 = pool.submit([&] { ++counter; });
  f1.get();
  f2.get();
  EXPECT_EQ(counter.load(), 2);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_THROW(ThreadPool(0), Error);
}

TEST(TextTable, RendersAligned) {
  TextTable table({"m", "P(x)", "Runtime(s)"});
  table.add_row({"64", "x64+x21+x19+x4+1", "9.2"});
  table.add_row({"571", "x571+x10+x5+x2+1", "4089.9"});
  const std::string out = table.render("Table I");
  EXPECT_NE(out.find("Table I"), std::string::npos);
  EXPECT_NE(out.find("| m  "), std::string::npos);
  EXPECT_NE(out.find("x571"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
  // All lines equally wide (alignment check).
  std::size_t width = 0;
  std::istringstream iss(out);
  std::string line;
  std::getline(iss, line);  // title
  while (std::getline(iss, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(TextTable, RowWidthValidated) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(Formatting, Numbers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(4089.9, 1), "4089.9");
  EXPECT_EQ(fmt_int(-42), "-42");
  EXPECT_EQ(fmt_thousands(0), "0");
  EXPECT_EQ(fmt_thousands(999), "999");
  EXPECT_EQ(fmt_thousands(21814), "21,814");
  EXPECT_EQ(fmt_thousands(1628170), "1,628,170");
}

TEST(Formatting, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(37ull << 20), "37 MB");
  EXPECT_EQ(format_bytes((1ull << 30) + (1ull << 29)), "1.5 GB");
}

TEST(Rss, CurrentRssIsPositiveOnLinux) {
  // This container provides VmRSS; if the platform does not, 0 is the
  // documented fallback.
  const auto rss = current_rss_bytes();
  if (rss != 0) {
    EXPECT_GT(rss, 1024u * 1024u) << "a running process uses > 1 MB";
  }
}

// -- JSONL ------------------------------------------------------------------

/// Extracts the rendered value of a single-field JsonLine: '{"k": VALUE}'.
std::string rendered_value(const JsonLine& line) {
  const std::string text = line.render();
  const auto colon = text.find(": ");
  EXPECT_NE(colon, std::string::npos) << text;
  return text.substr(colon + 2, text.size() - colon - 3);
}

TEST(Jsonl, DoublesRoundTripBitExact) {
  // The writer used "%.9g", which drops up to 24 mantissa bits — a timing
  // re-read from a JSONL report disagreed with the run that wrote it.
  // Shortest-round-trip formatting must reproduce every value exactly.
  const double cases[] = {
      0.0,
      1.0 / 3.0,
      0.1,
      6.62607015e-34,
      -1.7976931348623157e308,  // DBL_MAX, negated
      5e-324,                   // smallest denormal
      9007199254740991.0,       // 2^53 - 1
      123456.78901234567,
      1.0000000000000002,       // 1 + ulp
  };
  for (const double value : cases) {
    JsonLine line;
    line.add("v", value);
    const std::string text = rendered_value(line);
    char* end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    EXPECT_EQ(end, text.c_str() + text.size()) << "'" << text << "'";
    EXPECT_EQ(parsed, value) << "'" << text << "' is not round-trip exact";
  }
}

TEST(Jsonl, EscapesControlAndQuoteCharacters) {
  JsonLine line;
  line.add("v", std::string("a\"b\\c\n\t\r\x01\x1f") + '\0' + "z");
  EXPECT_EQ(rendered_value(line),
            "\"a\\\"b\\\\c\\n\\t\\r\\u0001\\u001f\\u0000z\"");
  // Keys are escaped with the same rules.
  JsonLine key_line;
  key_line.add("k\n", std::size_t{1});
  EXPECT_EQ(key_line.render(), "{\"k\\n\": 1}");
}

TEST(Jsonl, WriterRoundTripsThroughAFile) {
  const std::string path = ::testing::TempDir() + "jsonl_roundtrip.jsonl";
  const double wall = 0.12345678901234567;
  {
    JsonlWriter writer(path);
    JsonLine line;
    line.add("name", "job \"quoted\"\n");
    line.add("ok", true);
    line.add("wall_s", wall);
    writer.write(line);
    writer.close();
    EXPECT_TRUE(writer.ok());
    EXPECT_EQ(writer.lines_written(), 1u);
  }
  std::ifstream in(path);
  std::string text;
  ASSERT_TRUE(std::getline(in, text));
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"job \\\"quoted\\\"\\n\""),
            std::string::npos)
      << text;
  // The written double parses back to the identical value.
  const auto key = text.find("\"wall_s\": ");
  ASSERT_NE(key, std::string::npos);
  EXPECT_EQ(std::strtod(text.c_str() + key + 10, nullptr), wall);
  std::remove(path.c_str());
  EXPECT_THROW(JsonlWriter("/no/such/dir/report.jsonl"), Error);
}

TEST(Options, EnvParsing) {
  ::setenv("GFRE_TEST_LONG", "42", 1);
  EXPECT_EQ(env_long("GFRE_TEST_LONG", 7), 42);
  ::setenv("GFRE_TEST_LONG", "not-a-number", 1);
  EXPECT_EQ(env_long("GFRE_TEST_LONG", 7), 7);
  ::unsetenv("GFRE_TEST_LONG");
  EXPECT_EQ(env_long("GFRE_TEST_LONG", 7), 7);
  ::setenv("GFRE_TEST_STR", "hello", 1);
  EXPECT_EQ(env_string("GFRE_TEST_STR", "x"), "hello");
  ::unsetenv("GFRE_TEST_STR");
  EXPECT_EQ(env_string("GFRE_TEST_STR", "x"), "x");
  EXPECT_GE(configured_threads(), 1u);
}

}  // namespace
}  // namespace gfre
