// Tests for the bit-parallel simulator and equivalence checking.
#include <gtest/gtest.h>

#include "gen/mastrovito.hpp"
#include "gen/montgomery_gate.hpp"
#include "gf2m/field.hpp"
#include "gf2m/montgomery.hpp"
#include "helpers.hpp"
#include "sim/equivalence.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace gfre::sim {
namespace {

using gf2::Poly;

TEST(Simulator, SingleVectorBasics) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto x = n.add_gate(nl::CellType::Xor, {a, b});
  const auto o = n.add_gate(nl::CellType::Inv, {x});
  n.mark_output(o);
  const Simulator simulator(n);
  EXPECT_EQ(simulator.run_single({false, false})[0], true);
  EXPECT_EQ(simulator.run_single({true, false})[0], false);
  EXPECT_EQ(simulator.run_single({true, true})[0], true);
}

TEST(Simulator, LanesAreIndependent) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto g = n.add_gate(nl::CellType::And, {a, b});
  n.mark_output(g);
  const Simulator simulator(n);
  // 64 lanes: lane i has a = bit i of pattern1, b = bit i of pattern2.
  const std::uint64_t pa = 0xF0F0F0F0F0F0F0F0ull;
  const std::uint64_t pb = 0xCCCCCCCCCCCCCCCCull;
  EXPECT_EQ(simulator.run({pa, pb})[0], pa & pb);
}

TEST(Simulator, InputCountValidated) {
  nl::Netlist n;
  n.add_input("a");
  const Simulator simulator(n);
  EXPECT_THROW(simulator.run({1, 2}), Error);
}

TEST(Equivalence, MastrovitoMatchesFieldExhaustively) {
  for (const Poly& p : {Poly{2, 1, 0}, Poly{3, 1, 0}, Poly{4, 1, 0},
                        Poly{4, 3, 0}, Poly{5, 2, 0}}) {
    const gf2m::Field field(p);
    const auto netlist = gen::generate_mastrovito(field);
    const auto ports = nl::multiplier_ports(netlist);
    Prng rng(1);
    const auto cex = check_field_multiplier(netlist, ports, field, rng);
    EXPECT_FALSE(cex.has_value())
        << p.to_string() << ": " << cex->to_string();
  }
}

TEST(Equivalence, RandomBatchesForLargerField) {
  const gf2m::Field field(Poly{16, 5, 3, 1, 0});
  const auto netlist = gen::generate_mastrovito(field);
  const auto ports = nl::multiplier_ports(netlist);
  Prng rng(2);
  EXPECT_FALSE(check_field_multiplier(netlist, ports, field, rng, 16)
                   .has_value());
}

TEST(Equivalence, DetectsBrokenMultiplier) {
  const gf2m::Field field(Poly{4, 1, 0});
  // Build a multiplier and corrupt it: replace one partial-product AND with
  // OR by rebuilding a netlist by hand.
  auto netlist = gen::generate_mastrovito(field);
  // A fresh netlist with the same interface but the wrong modulus:
  const gf2m::Field wrong(Poly{4, 3, 0});
  const auto wrong_netlist = gen::generate_mastrovito(wrong);
  const auto ports = nl::multiplier_ports(wrong_netlist);
  Prng rng(3);
  const auto cex = check_field_multiplier(wrong_netlist, ports, field, rng);
  ASSERT_TRUE(cex.has_value());
  // The counterexample must actually witness the difference.
  EXPECT_EQ(cex->expected_z, field.mul(cex->a, cex->b));
  EXPECT_EQ(cex->netlist_z, wrong.mul(cex->a, cex->b));
  EXPECT_NE(cex->netlist_z, cex->expected_z);
}

TEST(Equivalence, MontgomeryRawMatchesReference) {
  const gf2m::Field field(Poly{8, 4, 3, 1, 0});
  const gf2m::Montgomery mont(field);
  gen::MontgomeryOptions options;
  options.raw = true;
  const auto netlist = gen::generate_montgomery(field, options);
  const auto ports = nl::multiplier_ports(netlist);
  Prng rng(4);
  const auto cex = check_multiplier(
      netlist, ports,
      [&](const Poly& a, const Poly& b) { return mont.mont_pro(a, b); },
      rng);
  EXPECT_FALSE(cex.has_value()) << cex->to_string();
}

TEST(Equivalence, NetlistVsNetlistByName) {
  const gf2m::Field field(Poly{4, 1, 0});
  gen::MastrovitoOptions product_form;
  gen::MastrovitoOptions matrix_form;
  matrix_form.style = gen::MastrovitoOptions::Style::Matrix;
  const auto lhs = gen::generate_mastrovito(field, product_form);
  const auto rhs = gen::generate_mastrovito(field, matrix_form);
  Prng rng(5);
  EXPECT_FALSE(check_netlists_equal(lhs, rhs, rng).has_value());

  const gf2m::Field other(Poly{4, 3, 0});
  const auto different = gen::generate_mastrovito(other);
  const auto mismatch = check_netlists_equal(lhs, different, rng);
  ASSERT_TRUE(mismatch.has_value());
  EXPECT_NE(mismatch->find("differs"), std::string::npos);
}

TEST(Equivalence, CounterexampleToString) {
  Counterexample cex;
  cex.a = Poly{1, 0};
  cex.b = Poly{2};
  cex.netlist_z = Poly{0};
  cex.expected_z = Poly{1};
  const std::string s = cex.to_string();
  EXPECT_NE(s.find("A=x+1"), std::string::npos);
  EXPECT_NE(s.find("expected=x"), std::string::npos);
}

}  // namespace
}  // namespace gfre::sim
