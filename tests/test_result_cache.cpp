// Persistent result cache suite: the vendored SHA-256 against FIPS known
// answers, exact FlowReport serialization round trips against live
// reverse_engineer output, warm-run bit-identity across process-like
// boundaries (fresh schedulers) and thread counts, corruption/truncation
// quarantine, stale-schema rejection, two schedulers sharing one cache
// directory concurrently, and the prune policy.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "core/flow.hpp"
#include "core/report_io.hpp"
#include "core/result_cache.hpp"
#include "core/scheduler.hpp"
#include "gen/mastrovito.hpp"
#include "gen/montgomery_gate.hpp"
#include "gf2m/field.hpp"
#include "gf2poly/irreducible.hpp"
#include "helpers.hpp"
#include "netlist/io_eqn.hpp"
#include "util/error.hpp"
#include "util/sha256.hpp"

#ifndef GFRE_SOURCE_DIR
#define GFRE_SOURCE_DIR "."
#endif

namespace gfre::core {
namespace {

namespace fs = std::filesystem;
using gf2::Poly;
using test::expect_reports_equal;

std::string data_path(const std::string& file) {
  return std::string(GFRE_SOURCE_DIR) + "/data/" + file;
}

/// Fresh per-test directory under gtest's temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "result_cache_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// The one .rpt entry in a cache dir (most tests store exactly one).
std::string sole_entry_path(const std::string& dir) {
  std::string found;
  for (const auto& file : fs::directory_iterator(dir)) {
    if (file.path().extension() == ".rpt") {
      EXPECT_TRUE(found.empty()) << "more than one entry in " << dir;
      found = file.path().string();
    }
  }
  EXPECT_FALSE(found.empty()) << "no entry in " << dir;
  return found;
}

/// A live, successful report to round-trip: every interesting field is
/// populated (ANFs, rows, verification, timings, RSS).
FlowReport live_report() {
  const gf2m::Field field(Poly{8, 4, 3, 1, 0});
  FlowOptions options;
  options.threads = 2;
  FlowReport report = reverse_engineer(gen::generate_mastrovito(field),
                                       options);
  EXPECT_TRUE(report.success);
  return report;
}

// -- SHA-256 known-answer vectors (FIPS 180-4 / NIST CAVS) ------------------

TEST(Sha256, KnownAnswerVectors) {
  EXPECT_EQ(util::Sha256::hex(util::Sha256::of("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(util::Sha256::hex(util::Sha256::of("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      util::Sha256::hex(util::Sha256::of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // One million 'a's — exercises the multi-block and buffered paths.
  EXPECT_EQ(util::Sha256::hex(util::Sha256::of(std::string(1000000, 'a'))),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string message =
      "The quick brown fox jumps over the lazy dog, 64 bytes at a time..";
  for (const std::size_t chunk : {1u, 3u, 63u, 64u, 65u}) {
    util::Sha256 h;
    for (std::size_t i = 0; i < message.size(); i += chunk) {
      h.update(message.substr(i, chunk));
    }
    EXPECT_EQ(util::Sha256::hex(h.digest()),
              util::Sha256::hex(util::Sha256::of(message)))
        << "chunk " << chunk;
  }
}

TEST(Sha256, LengthPrefixedFramingPreventsAliasing) {
  util::Sha256 ab_c;
  ab_c.update_str("ab");
  ab_c.update_str("c");
  util::Sha256 a_bc;
  a_bc.update_str("a");
  a_bc.update_str("bc");
  EXPECT_NE(util::Sha256::hex(ab_c.digest()),
            util::Sha256::hex(a_bc.digest()));
}

// -- FlowReport serialization ----------------------------------------------

/// Beyond expect_reports_equal (which skips run-dependent fields), a
/// round-tripped report must also restore timings and RSS bit for bit.
void expect_exact_round_trip(const FlowReport& report) {
  const FlowReport copy = deserialize_report(serialize_report(report));
  expect_reports_equal(copy, report, "round trip");
  EXPECT_EQ(copy.extraction.wall_seconds, report.extraction.wall_seconds);
  EXPECT_EQ(copy.extraction.total_peak_terms,
            report.extraction.total_peak_terms);
  EXPECT_EQ(copy.extraction.threads, report.extraction.threads);
  ASSERT_EQ(copy.extraction.per_bit.size(), report.extraction.per_bit.size());
  for (std::size_t i = 0; i < copy.extraction.per_bit.size(); ++i) {
    EXPECT_EQ(copy.extraction.per_bit[i].seconds,
              report.extraction.per_bit[i].seconds)
        << "bit " << i;
  }
  EXPECT_EQ(copy.total_seconds, report.total_seconds);
  EXPECT_EQ(copy.rss_peak_bytes, report.rss_peak_bytes);
  EXPECT_EQ(copy.rss_after_bytes, report.rss_after_bytes);
  // Serialization is canonical (sorted monomials, normalized polynomials),
  // so re-serializing the copy reproduces the blob byte for byte.
  EXPECT_EQ(serialize_report(copy), serialize_report(report));
}

TEST(ReportIo, RoundTripsLiveSuccessReport) {
  expect_exact_round_trip(live_report());
}

TEST(ReportIo, RoundTripsDiagnosedFailureReport) {
  // The corrupt fixture produces success=false with a diagnosis and a
  // NotAMultiplier classification — the other arm of the outcome space.
  const auto netlist = nl::read_eqn_file(data_path("corrupt_gf4.eqn"));
  FlowOptions options;
  const FlowReport report = reverse_engineer(netlist, options);
  EXPECT_FALSE(report.success);
  EXPECT_FALSE(report.recovery.diagnosis.empty());
  expect_exact_round_trip(report);
}

TEST(ReportIo, RoundTripsDefaultReport) {
  expect_exact_round_trip(FlowReport{});
}

TEST(ReportIo, RejectsBadMagicVersionTruncationAndTrailingGarbage) {
  const std::string blob = serialize_report(live_report());

  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_THROW(deserialize_report(bad_magic), Error);

  std::string bad_version = blob;
  bad_version[4] = static_cast<char>(bad_version[4] + 1);
  EXPECT_THROW(deserialize_report(bad_version), Error);

  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, blob.size() / 2, blob.size() - 1}) {
    EXPECT_THROW(deserialize_report(std::string_view(blob).substr(0, keep)),
                 Error)
        << "kept " << keep;
  }

  EXPECT_THROW(deserialize_report(blob + "x"), Error);
}

TEST(ReportIo, CorruptLengthFieldCannotForceGiantAllocation) {
  std::string blob = serialize_report(FlowReport{});
  // The first length field after the header is the algorithm2_p support
  // count (offset 8+4+8): set it to 2^56 — a bounds-checked reader must
  // reject it instead of reserving petabytes.
  blob[20 + 7] = '\x01';
  EXPECT_THROW(deserialize_report(blob), Error);
}

// -- ResultCache unit behavior ----------------------------------------------

TEST(ResultCache, StoreLookupRoundTripsOutcomes) {
  ResultCache cache(fresh_dir("roundtrip"));
  const FlowReport report = live_report();
  const FlowOptions options;
  const std::string key = ResultCache::key_for_file("some bytes", options);

  EXPECT_FALSE(cache.lookup(key).has_value());
  ASSERT_TRUE(cache.store(key, report));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->error.empty());
  expect_reports_equal(hit->report, report, "disk round trip");
  EXPECT_EQ(serialize_report(hit->report), serialize_report(report));

  // Error-arm outcomes replay too.
  const std::string error_key =
      ResultCache::key_for_file("other bytes", options);
  ASSERT_TRUE(cache.store(error_key, FlowReport{}, "parse error: line 3"));
  const auto error_hit = cache.lookup(error_key);
  ASSERT_TRUE(error_hit.has_value());
  EXPECT_EQ(error_hit->error, "parse error: line 3");

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 2u);
}

TEST(ResultCache, KeysSeparateContentOptionsAndDomains) {
  const FlowOptions base;
  FlowOptions indexed = base;
  indexed.strategy = RewriteStrategy::Indexed;
  FlowOptions budget = base;
  budget.max_terms = 1000;
  FlowOptions threads_only = base;
  threads_only.threads = 8;

  const std::string key = ResultCache::key_for_file("netlist", base);
  EXPECT_EQ(key.size(), 64u);
  EXPECT_EQ(key, ResultCache::key_for_file("netlist", base));
  EXPECT_NE(key, ResultCache::key_for_file("netlist2", base));
  EXPECT_NE(key, ResultCache::key_for_file("netlist", indexed));
  EXPECT_NE(key, ResultCache::key_for_file("netlist", budget));
  // Thread count never changes the report, so it must not change the key —
  // that is what makes 1T-cold / 8T-warm replay possible.
  EXPECT_EQ(key, ResultCache::key_for_file("netlist", threads_only));

  // Structural keys live in a different domain than byte keys, and track
  // netlist structure.
  const gf2m::Field field(Poly{4, 1, 0});
  const auto netlist = gen::generate_mastrovito(field);
  const std::string structural = ResultCache::key_for_netlist(netlist, base);
  EXPECT_EQ(structural, ResultCache::key_for_netlist(netlist, base));
  EXPECT_NE(structural,
            ResultCache::key_for_netlist(gen::generate_montgomery(field),
                                         base));
}

TEST(ResultCache, QuarantinesCorruptAndTruncatedEntries) {
  const std::string dir = fresh_dir("corrupt");
  ResultCache cache(dir);
  const FlowReport report = live_report();
  const std::string key = ResultCache::key_for_file("victim", {});
  ASSERT_TRUE(cache.store(key, report));
  const std::string path = sole_entry_path(dir);
  const std::string pristine = read_file(path);

  // Flip one payload byte: the SHA-256 digest catches it.
  std::string flipped = pristine;
  flipped[flipped.size() - 1] = static_cast<char>(~flipped.back());
  write_file(path, flipped);
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_FALSE(fs::exists(path)) << "corrupt entry must leave the hot path";
  EXPECT_FALSE(fs::is_empty(fs::path(dir) / "quarantine"));

  // Truncation (a torn write the atomic rename should normally prevent,
  // but disks lie): also a quarantined miss, at any cut point.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                 std::size_t{47}, pristine.size() / 2}) {
    write_file(path, pristine.substr(0, keep));
    EXPECT_FALSE(cache.lookup(key).has_value()) << "kept " << keep;
    EXPECT_FALSE(fs::exists(path)) << "kept " << keep;
  }

  // The cache heals: a re-store over the quarantined key serves again.
  ASSERT_TRUE(cache.store(key, report));
  EXPECT_TRUE(cache.lookup(key).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.quarantined, 5u);
  EXPECT_EQ(stats.stale, 0u);
}

TEST(ResultCache, StaleSchemaVersionIsAMissNotACrash) {
  const std::string dir = fresh_dir("stale");
  ResultCache cache(dir);
  const std::string key = ResultCache::key_for_file("stale victim", {});
  ASSERT_TRUE(cache.store(key, live_report()));
  const std::string path = sole_entry_path(dir);

  // The entry version is the u32 at bytes [4, 8) (docs/CACHE_FORMAT.md);
  // patch it to simulate an entry written by an older build.
  std::string bytes = read_file(path);
  bytes[4] = static_cast<char>(bytes[4] + 1);
  write_file(path, bytes);

  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_TRUE(fs::exists(path)) << "stale entries await overwrite, "
                                   "not quarantine";
  EXPECT_EQ(cache.stats().stale, 1u);
  EXPECT_EQ(cache.stats().quarantined, 0u);

  // store() replaces the stale entry in place.
  ASSERT_TRUE(cache.store(key, live_report()));
  EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(ResultCache, NegativeTtlExpiresOnlyAgedErrorEntries) {
  const std::string dir = fresh_dir("negative_ttl");
  ResultCache cache(dir, /*max_bytes=*/0, /*negative_ttl_seconds=*/60);
  const std::string error_key = ResultCache::key_for_file("broken input", {});
  const std::string live_key = ResultCache::key_for_file("good input", {});
  ASSERT_TRUE(cache.store(error_key, FlowReport{}, "parse error: line 3"));
  ASSERT_TRUE(cache.store(live_key, live_report()));

  // Fresh entries hit, TTL armed or not.
  ASSERT_TRUE(cache.lookup(error_key).has_value());
  ASSERT_TRUE(cache.lookup(live_key).has_value());

  // Age both entries past the TTL by backdating their mtimes — the same
  // clock lookup() consults.
  const auto aged =
      fs::file_time_type::clock::now() - std::chrono::seconds(120);
  const std::string error_path = dir + "/" + error_key + ".rpt";
  const std::string live_path = dir + "/" + live_key + ".rpt";
  fs::last_write_time(error_path, aged);
  fs::last_write_time(live_path, aged);

  // The aged diagnosis is a miss and its entry is gone; the aged success
  // report is untouched — content-addressed results never go stale.
  EXPECT_FALSE(cache.lookup(error_key).has_value());
  EXPECT_FALSE(fs::exists(error_path));
  EXPECT_TRUE(cache.lookup(live_key).has_value());
  EXPECT_TRUE(fs::exists(live_path));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.misses, 1u);

  // The miss is re-storable: a re-diagnosis (or a fixed file's report)
  // starts a fresh TTL window.
  ASSERT_TRUE(cache.store(error_key, FlowReport{}, "parse error: line 3"));
  EXPECT_TRUE(cache.lookup(error_key).has_value());
}

TEST(ResultCache, ZeroTtlKeepsErrorEntriesForever) {
  const std::string dir = fresh_dir("ttl_off");
  ResultCache cache(dir);  // default: negative entries never expire
  const std::string key = ResultCache::key_for_file("broken forever", {});
  ASSERT_TRUE(cache.store(key, FlowReport{}, "port error: q is undriven"));
  fs::last_write_time(sole_entry_path(dir),
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(24 * 365));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->error, "port error: q is undriven");
  EXPECT_EQ(cache.stats().expired, 0u);
}

TEST(ResultCache, PruneEvictsOldestDownToBudget) {
  const std::string dir = fresh_dir("prune");
  ResultCache cache(dir);
  const FlowReport report = live_report();
  std::vector<std::string> keys;
  std::uint64_t entry_size = 0;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(
        ResultCache::key_for_file("entry " + std::to_string(i), {}));
    ASSERT_TRUE(cache.store(keys.back(), report));
    entry_size = fs::file_size(fs::path(dir) / (keys.back() + ".rpt"));
  }
  // Distinct, strictly increasing mtimes so "oldest" is well defined even
  // on filesystems with coarse timestamp resolution.
  const auto base =
      fs::last_write_time(fs::path(dir) / (keys.front() + ".rpt"));
  for (int i = 0; i < 4; ++i) {
    fs::last_write_time(fs::path(dir) / (keys[i] + ".rpt"),
                        base + std::chrono::seconds(i));
  }

  // Keep room for two entries: the two oldest must go.
  const auto pruned = cache.prune(2 * entry_size);
  EXPECT_EQ(pruned.entries_removed, 2u);
  EXPECT_EQ(pruned.entries_kept, 2u);
  EXPECT_FALSE(cache.lookup(keys[0]).has_value());
  EXPECT_FALSE(cache.lookup(keys[1]).has_value());
  EXPECT_TRUE(cache.lookup(keys[2]).has_value());
  EXPECT_TRUE(cache.lookup(keys[3]).has_value());

  // Budget 0 empties the cache (and sweeps the quarantine the two misses
  // above did NOT create — corrupt-free dir, so nothing extra).
  const auto emptied = cache.prune(0);
  EXPECT_EQ(emptied.entries_removed, 2u);
  EXPECT_EQ(emptied.entries_kept, 0u);
  EXPECT_FALSE(cache.lookup(keys[2]).has_value());
}

// -- Scheduler integration ---------------------------------------------------

std::vector<BatchJob> fixture_jobs(unsigned copies = 1) {
  std::vector<BatchJob> jobs;
  for (unsigned c = 0; c < copies; ++c) {
    for (const char* file :
         {"mastrovito_m8.eqn", "montgomery_m8.v", "karatsuba_m8.eqn",
          "shiftadd_m8.blif", "corrupt_gf4.eqn"}) {
      BatchJob job;
      job.name = std::string(file) + "#" + std::to_string(c);
      job.path = data_path(file);
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

TEST(ResultCacheBatch, WarmRunIsBitIdenticalAcrossThreadCounts) {
  const auto cache =
      std::make_shared<ResultCache>(fresh_dir("warm_identity"));

  // Cold: 1 worker, fresh scheduler.
  BatchOptions cold_options;
  cold_options.threads = 1;
  cold_options.result_cache = cache;
  const BatchReport cold = run_batch(fixture_jobs(), cold_options);
  EXPECT_EQ(cold.stats.disk_hits, 0u);
  EXPECT_EQ(cold.stats.disk_misses, 5u);
  EXPECT_EQ(cold.stats.disk_stores, 5u);
  EXPECT_GT(cold.stats.cones_extracted, 0u);

  // Warm: run_batch builds a NEW scheduler each call, so its in-memory
  // memo starts empty — every hit below crossed the disk, exactly like a
  // second CI process would.  1 and 8 workers must both replay the cold
  // reports bit for bit.
  for (const unsigned threads : {1u, 8u}) {
    BatchOptions warm_options;
    warm_options.threads = threads;
    warm_options.result_cache = cache;
    const BatchReport warm = run_batch(fixture_jobs(), warm_options);
    EXPECT_EQ(warm.stats.disk_hits, 5u) << threads << "T";
    EXPECT_EQ(warm.stats.cones_extracted, 0u)
        << threads << "T: a warm run must not extract";
    ASSERT_EQ(warm.results.size(), cold.results.size());
    for (std::size_t i = 0; i < warm.results.size(); ++i) {
      EXPECT_TRUE(warm.results[i].cache_hit) << threads << "T job " << i;
      EXPECT_EQ(warm.results[i].error, cold.results[i].error);
      expect_reports_equal(warm.results[i].report, cold.results[i].report,
                           "warm@" + std::to_string(threads) + "T job " +
                               std::to_string(i));
      // Stronger than semantic equality: the serialized forms — which
      // include every timing double — must match byte for byte.
      EXPECT_EQ(serialize_report(warm.results[i].report),
                serialize_report(cold.results[i].report))
          << threads << "T job " << i;
    }
  }
}

TEST(ResultCacheBatch, InMemoryJobsPersistViaStructuralKeys) {
  const auto cache = std::make_shared<ResultCache>(fresh_dir("structural"));
  const gf2m::Field field(Poly{8, 4, 3, 1, 0});

  const auto make_jobs = [&] {
    std::vector<BatchJob> jobs(2);
    jobs[0].name = "in_memory";
    jobs[0].netlist = gen::generate_mastrovito(field);
    jobs[1].name = "from_file";
    jobs[1].path = data_path("mastrovito_m8.eqn");
    return jobs;
  };

  BatchOptions options;
  options.threads = 2;
  options.result_cache = cache;
  const BatchReport cold = run_batch(make_jobs(), options);
  EXPECT_EQ(cold.stats.disk_stores, 2u);

  const BatchReport warm = run_batch(make_jobs(), options);
  EXPECT_EQ(warm.stats.disk_hits, 2u);
  EXPECT_EQ(warm.stats.cones_extracted, 0u);
  for (std::size_t i = 0; i < warm.results.size(); ++i) {
    expect_reports_equal(warm.results[i].report, cold.results[i].report,
                         warm.results[i].name);
  }
}

TEST(ResultCacheBatch, DuplicatesWithinARunHitMemoryNotDisk) {
  const auto cache = std::make_shared<ResultCache>(fresh_dir("memo_first"));
  BatchOptions options;
  options.threads = 2;
  options.result_cache = cache;
  // Two copies of each fixture in one run: the duplicate must be served
  // by the in-memory layer (or in-flight dedup) — the disk sees each
  // unique netlist exactly once.
  const BatchReport report = run_batch(fixture_jobs(2), options);
  EXPECT_EQ(report.stats.cache_hits, 5u);
  EXPECT_EQ(report.stats.disk_misses, 5u);
  EXPECT_EQ(report.stats.disk_stores, 5u);
  EXPECT_EQ(cache->stats().stores, 5u);
}

TEST(ResultCacheBatch, TwoSchedulersShareOneCacheDirConcurrently) {
  const std::string dir = fresh_dir("shared_dir");
  // Two cache objects on one directory — the filesystem is the only
  // coordination, as it would be for two CI processes.
  const auto cache_a = std::make_shared<ResultCache>(dir);
  const auto cache_b = std::make_shared<ResultCache>(dir);

  BatchOptions options_a;
  options_a.threads = 2;
  options_a.result_cache = cache_a;
  BatchOptions options_b;
  options_b.threads = 2;
  options_b.result_cache = cache_b;

  BatchScheduler scheduler_a(options_a);
  BatchScheduler scheduler_b(options_b);
  std::vector<std::future<BatchJobResult>> futures_a;
  std::vector<std::future<BatchJobResult>> futures_b;
  for (auto& job : fixture_jobs()) {
    futures_a.push_back(scheduler_a.submit(job).result);
    futures_b.push_back(scheduler_b.submit(std::move(job)).result);
  }
  scheduler_a.drain();
  scheduler_b.drain();

  // Both runs must agree job for job, whichever scheduler won each store
  // race (the loser's rename atomically replaces an identical entry).
  for (std::size_t i = 0; i < futures_a.size(); ++i) {
    const BatchJobResult a = futures_a[i].get();
    const BatchJobResult b = futures_b[i].get();
    EXPECT_EQ(a.error, b.error) << a.name;
    EXPECT_EQ(a.report.success, b.report.success) << a.name;
    EXPECT_EQ(a.report.recovery.p, b.report.recovery.p) << a.name;
  }

  // And the directory must be left fully readable: every entry intact.
  ResultCache verifier(dir);
  std::size_t entries = 0;
  for (const auto& file : fs::directory_iterator(dir)) {
    if (file.path().extension() != ".rpt") continue;
    ++entries;
    const std::string key = file.path().stem().string();
    EXPECT_TRUE(verifier.lookup(key).has_value()) << key;
  }
  EXPECT_EQ(entries, 5u);
  EXPECT_EQ(verifier.stats().quarantined, 0u);
}

TEST(ResultCacheBatch, MemoEvictionFallsBackToDisk) {
  // The bounded-memo bugfix: with memo_max_entries=1, submitting B evicts
  // A from the in-memory layer; resubmitting A must be served FROM DISK
  // (no re-extraction), proving the two layers compose — the LRU bounds
  // memory, the disk keeps the long tail.
  const auto cache = std::make_shared<ResultCache>(fresh_dir("memo_evict"));
  BatchOptions options;
  options.threads = 1;
  options.result_cache = cache;
  options.memo_max_entries = 1;
  BatchScheduler scheduler(options);

  auto jobs = fixture_jobs();
  jobs.resize(2);  // A = mastrovito_m8.eqn, B = montgomery_m8.v
  const BatchJobResult a1 = scheduler.submit(jobs[0]).result.get();
  ASSERT_TRUE(a1.ok);
  const BatchJobResult b1 = scheduler.submit(jobs[1]).result.get();
  ASSERT_TRUE(b1.ok);
  EXPECT_EQ(scheduler.stats().memo_evictions, 1u)
      << "storing B must evict A from the single-slot memo";
  const std::size_t cones_after_two = scheduler.stats().cones_extracted;

  const BatchJobResult a2 = scheduler.submit(jobs[0]).result.get();
  ASSERT_TRUE(a2.ok);
  EXPECT_TRUE(a2.cache_hit);
  EXPECT_EQ(scheduler.stats().cones_extracted, cones_after_two)
      << "the evicted entry must replay from disk, not re-extract";
  EXPECT_EQ(scheduler.stats().disk_hits, 1u);
  expect_reports_equal(a2.report, a1.report, "disk replay after eviction");

  // And the hot entry (A again, just refreshed) is a pure memory hit.
  const BatchJobResult a3 = scheduler.submit(jobs[0]).result.get();
  EXPECT_TRUE(a3.cache_hit);
  EXPECT_EQ(scheduler.stats().disk_hits, 1u)
      << "the refreshed memo entry serves the repeat without disk I/O";
}

TEST(ResultCache, StoreTimeCapAutoprunes) {
  // The cap-enforcement bugfix: a cache constructed with max_bytes must
  // prune itself when a store crosses the budget — no explicit prune()
  // call, no unbounded growth in a long-lived service.
  const std::string dir = fresh_dir("autoprune");
  const FlowReport report = live_report();
  const std::uint64_t entry_size = [&] {
    ResultCache sizer(fresh_dir("autoprune_sizer"));
    const std::string key = ResultCache::key_for_file("sizer", {});
    EXPECT_TRUE(sizer.store(key, report));
    return static_cast<std::uint64_t>(
        fs::file_size(fs::path(sizer.dir()) / (key + ".rpt")));
  }();

  ResultCache cache(dir, 2 * entry_size);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cache.store(
        ResultCache::key_for_file("entry " + std::to_string(i), {}),
        report));
    // Distinct mtimes keep "oldest" well defined for the prune policy.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(cache.stats().autoprunes, 1u);

  std::uint64_t total = 0;
  std::size_t entries = 0;
  for (const auto& file : fs::directory_iterator(dir)) {
    if (file.path().extension() != ".rpt") continue;
    total += fs::file_size(file.path());
    ++entries;
  }
  EXPECT_LE(total, 2 * entry_size)
      << "the directory must respect the cap after the triggering store";
  EXPECT_GE(entries, 1u) << "pruning must not wipe the newest entries";

  // A reopened cache re-seeds its size tracking from the directory scan
  // and keeps enforcing the same budget.
  ResultCache reopened(dir, 2 * entry_size);
  ASSERT_TRUE(reopened.store(ResultCache::key_for_file("late", {}), report));
  EXPECT_GE(reopened.stats().autoprunes, 1u)
      << "the constructor scan must arm enforcement for the first store";
}

TEST(ResultCacheBatch, ChangedOptionsMissTheCache) {
  const auto cache = std::make_shared<ResultCache>(fresh_dir("opt_miss"));
  BatchOptions options;
  options.threads = 1;
  options.result_cache = cache;

  auto jobs = fixture_jobs();
  jobs.resize(1);  // mastrovito_m8.eqn only
  run_batch(jobs, options);

  // Same bytes, different option signature: a fresh extraction, not a hit.
  jobs[0].options.verify_with_golden = false;
  const BatchReport changed = run_batch(jobs, options);
  EXPECT_EQ(changed.stats.disk_hits, 0u);
  EXPECT_EQ(changed.stats.disk_misses, 1u);
  EXPECT_GT(changed.stats.cones_extracted, 0u);
}

TEST(ResultCache, ConstructorSweepsAbandonedTmpFiles) {
  const std::string dir = fresh_dir("ctor_tmp_sweep");
  { ResultCache create(dir); }  // lay the directory down

  // Debris a crashed writer would leave behind (write done, rename never
  // reached), plus a young tmp that could belong to a LIVE store in
  // another process, plus a real entry that must survive untouched.
  const std::string key(64, 'a');
  const fs::path stale = fs::path(dir) / (key + ".tmp.12345.1");
  const fs::path young =
      fs::path(dir) / (std::string(64, 'b') + ".tmp.12345.2");
  const fs::path entry = fs::path(dir) / (std::string(64, 'c') + ".rpt");
  write_file(stale.string(), "half-written");
  write_file(young.string(), "half-written");
  write_file(entry.string(), "not-a-report-but-not-tmp");
  fs::last_write_time(stale,
                      fs::last_write_time(stale) - std::chrono::minutes(11));

  ResultCache cache(dir);
  EXPECT_EQ(cache.stats().tmp_swept, 1u);
  EXPECT_FALSE(fs::exists(stale)) << "past the grace window: swept";
  EXPECT_TRUE(fs::exists(young)) << "inside the grace window: spared";
  EXPECT_TRUE(fs::exists(entry)) << "entries are never the sweep's business";

  // A directory with no debris sweeps nothing (the young tmp is still
  // young — this ctor runs milliseconds after the last).
  ResultCache again(dir);
  EXPECT_EQ(again.stats().tmp_swept, 0u);
}

}  // namespace
}  // namespace gfre::core
