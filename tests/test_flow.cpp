// End-to-end flow tests: the paper's complete pipeline across generator
// families, moduli, optimization levels and thread counts — plus fault
// injection (the flow must reject corrupted multipliers, not hallucinate a
// polynomial).
#include <gtest/gtest.h>

#include <tuple>

#include "core/flow.hpp"
#include "gen/mastrovito.hpp"
#include "gen/montgomery_gate.hpp"
#include "gen/shift_add.hpp"
#include "gf2m/field.hpp"
#include "gf2poly/catalog.hpp"
#include "gf2poly/irreducible.hpp"
#include "netlist/io_eqn.hpp"
#include "opt/passes.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace gfre::core {
namespace {

using gf2::Poly;

enum class Family { MastrovitoPtr, MastrovitoMatrix, Montgomery, ShiftAdd };
enum class OptLevel { None, Synthesized, TechMapped, PureNand };

std::string family_name(Family f) {
  switch (f) {
    case Family::MastrovitoPtr: return "MastrovitoPtr";
    case Family::MastrovitoMatrix: return "MastrovitoMatrix";
    case Family::Montgomery: return "Montgomery";
    case Family::ShiftAdd: return "ShiftAdd";
  }
  return "?";
}

std::string opt_name(OptLevel o) {
  switch (o) {
    case OptLevel::None: return "Raw";
    case OptLevel::Synthesized: return "Syn";
    case OptLevel::TechMapped: return "Mapped";
    case OptLevel::PureNand: return "Nand";
  }
  return "?";
}

nl::Netlist build(Family family, const gf2m::Field& field) {
  switch (family) {
    case Family::MastrovitoPtr:
      return gen::generate_mastrovito(field);
    case Family::MastrovitoMatrix: {
      gen::MastrovitoOptions options;
      options.style = gen::MastrovitoOptions::Style::Matrix;
      return gen::generate_mastrovito(field, options);
    }
    case Family::Montgomery:
      return gen::generate_montgomery(field);
    case Family::ShiftAdd:
      return gen::generate_shift_add(field);
  }
  throw Error("bad family");
}

nl::Netlist apply_opt(OptLevel level, const nl::Netlist& netlist) {
  switch (level) {
    case OptLevel::None:
      return netlist;
    case OptLevel::Synthesized:
      return opt::synthesize(netlist);
    case OptLevel::TechMapped: {
      opt::SynthesisOptions options;
      options.run_tech_map = true;
      return opt::synthesize(netlist, options);
    }
    case OptLevel::PureNand: {
      opt::SynthesisOptions options;
      options.run_tech_map = true;
      options.tech_map.keep_xor = false;
      return opt::synthesize(netlist, options);
    }
  }
  throw Error("bad opt level");
}

using FlowCase = std::tuple<Family, OptLevel, Poly>;

class FlowSweep : public ::testing::TestWithParam<FlowCase> {};

TEST_P(FlowSweep, RecoversExactPolynomial) {
  const auto [family, level, p] = GetParam();
  const gf2m::Field field(p);
  const auto netlist = apply_opt(level, build(family, field));
  FlowOptions options;
  options.threads = 2;
  const auto report = reverse_engineer(netlist, options);
  EXPECT_TRUE(report.success) << report.summary();
  EXPECT_EQ(report.recovery.p, p) << report.summary();
  EXPECT_EQ(report.algorithm2_p, p)
      << "plain Algorithm 2 and extended recovery must agree on "
      << report.summary();
  EXPECT_EQ(report.recovery.circuit_class, CircuitClass::StandardProduct);
  EXPECT_TRUE(report.verification.equivalent);
  EXPECT_EQ(report.m, field.m());
  EXPECT_EQ(report.equations, netlist.num_equations());
}

INSTANTIATE_TEST_SUITE_P(
    Families, FlowSweep,
    ::testing::Combine(
        ::testing::Values(Family::MastrovitoPtr, Family::MastrovitoMatrix,
                          Family::Montgomery, Family::ShiftAdd),
        ::testing::Values(OptLevel::None, OptLevel::Synthesized,
                          OptLevel::TechMapped, OptLevel::PureNand),
        ::testing::Values(Poly{4, 1, 0}, Poly{8, 4, 3, 1, 0},
                          Poly{13, 4, 3, 1, 0})),
    [](const ::testing::TestParamInfo<FlowCase>& info) {
      return family_name(std::get<0>(info.param)) + "_" +
             opt_name(std::get<1>(info.param)) + "_deg" +
             std::to_string(std::get<2>(info.param).degree());
    });

TEST(Flow, EveryIrreduciblePolynomialDegree2To7) {
  // The paper's central claim, exhaustively at small scale: extraction
  // works for *every* irreducible P(x), not just catalog entries.
  for (unsigned m = 2; m <= 7; ++m) {
    for (const Poly& p : gf2::all_irreducible(m)) {
      const gf2m::Field field(p);
      const auto report =
          reverse_engineer(gen::generate_mastrovito(field));
      EXPECT_TRUE(report.success) << p.to_string();
      EXPECT_EQ(report.recovery.p, p);
    }
  }
}

TEST(Flow, RawMontgomeryRecognizedAndSolved) {
  const Poly p{8, 4, 3, 1, 0};
  const gf2m::Field field(p);
  gen::MontgomeryOptions options;
  options.raw = true;
  const auto netlist = gen::generate_montgomery(field, options);
  const auto report = reverse_engineer(netlist);
  EXPECT_TRUE(report.success) << report.summary();
  EXPECT_EQ(report.recovery.circuit_class, CircuitClass::MontgomeryRaw);
  EXPECT_EQ(report.recovery.p, p);
  // Plain Algorithm 2 on a raw Montgomery circuit does NOT yield an
  // irreducible polynomial (P_m lands only on bit 0) — that is exactly the
  // gap the extended recovery closes.
  EXPECT_NE(report.algorithm2_p, p);
}

TEST(Flow, ThreadCountsAgree) {
  const gf2m::Field field(Poly{8, 4, 3, 1, 0});
  const auto netlist = gen::generate_mastrovito(field);
  FlowOptions one;
  one.threads = 1;
  FlowOptions four;
  four.threads = 4;
  const auto r1 = reverse_engineer(netlist, one);
  const auto r4 = reverse_engineer(netlist, four);
  EXPECT_EQ(r1.recovery.p, r4.recovery.p);
  EXPECT_EQ(r1.success, r4.success);
  for (std::size_t i = 0; i < r1.extraction.anfs.size(); ++i) {
    EXPECT_EQ(r1.extraction.anfs[i], r4.extraction.anfs[i]);
  }
}

TEST(Flow, NaiveStrategyAgreesWithIndexed) {
  const gf2m::Field field(Poly{8, 4, 3, 1, 0});
  const auto netlist = gen::generate_mastrovito(field);
  FlowOptions naive;
  naive.strategy = RewriteStrategy::NaiveScan;
  const auto report = reverse_engineer(netlist, naive);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.recovery.p, field.modulus());
}

TEST(Flow, CustomPortBases) {
  const gf2m::Field field(Poly{5, 2, 0});
  gen::MastrovitoOptions gen_options;
  gen_options.a_base = "in_a";
  gen_options.b_base = "in_b";
  gen_options.z_base = "out";
  const auto netlist = gen::generate_mastrovito(field, gen_options);
  FlowOptions options;
  options.a_base = "in_a";
  options.b_base = "in_b";
  options.z_base = "out";
  const auto report = reverse_engineer(netlist, options);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.recovery.p, field.modulus());
  // With default bases the ports are missing entirely — a flow outcome
  // (fuzzed mutants and batch manifests hit this), not an exception.
  const auto missing = reverse_engineer(netlist);
  EXPECT_FALSE(missing.success);
  EXPECT_EQ(missing.recovery.circuit_class, CircuitClass::NotAMultiplier);
  EXPECT_FALSE(missing.recovery.diagnosis.empty());
}

TEST(Flow, SkipGoldenVerification) {
  const gf2m::Field field(Poly{4, 3, 0});
  const auto netlist = gen::generate_mastrovito(field);
  FlowOptions options;
  options.verify_with_golden = false;
  const auto report = reverse_engineer(netlist, options);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.verification.detail, "skipped");
}

// --- Fault injection ------------------------------------------------------

/// Rebuilds `netlist` with gate `index` replaced by `wrong_type` (arity
/// permitting).
nl::Netlist inject_fault(const nl::Netlist& netlist, std::size_t index,
                         nl::CellType wrong_type) {
  nl::Netlist out(netlist.name() + "_faulty");
  std::vector<nl::Var> map(netlist.num_vars());
  for (nl::Var v : netlist.inputs()) {
    map[v] = out.add_input(netlist.var_name(v));
  }
  std::size_t gate_index = 0;
  for (std::size_t g : netlist.topological_order()) {
    const nl::Gate& gate = netlist.gate(g);
    std::vector<nl::Var> inputs;
    for (nl::Var in : gate.inputs) inputs.push_back(map[in]);
    const nl::CellType type =
        (gate_index == index && nl::arity_ok(wrong_type, inputs.size()))
            ? wrong_type
            : gate.type;
    map[gate.output] =
        out.add_gate(type, std::move(inputs), netlist.var_name(gate.output));
    ++gate_index;
  }
  for (nl::Var v : netlist.outputs()) out.mark_output(map[v]);
  return out;
}

TEST(Flow, FaultInjectionIsRejected) {
  const Poly p{4, 1, 0};
  const gf2m::Field field(p);
  const auto good = gen::generate_mastrovito(field);
  unsigned rejected = 0;
  unsigned trials = 0;
  Prng rng(31337);
  const auto order = good.topological_order();
  for (int round = 0; round < 20; ++round) {
    const std::size_t victim = rng.next_below(good.num_gates());
    // Pick a genuinely different cell of the same arity.
    const nl::Gate& gate = good.gate(order[victim]);
    nl::CellType wrong;
    if (gate.inputs.size() == 1) {
      wrong = gate.type == nl::CellType::Inv ? nl::CellType::Buf
                                             : nl::CellType::Inv;
    } else {
      wrong = rng.next_bool() ? nl::CellType::Or : nl::CellType::Xnor;
      if (wrong == gate.type) wrong = nl::CellType::Nand;
    }
    const auto faulty = inject_fault(good, victim, wrong);
    ++trials;
    const auto report = reverse_engineer(faulty);
    if (!report.success) ++rejected;
  }
  ASSERT_GT(trials, 10u);
  EXPECT_EQ(rejected, trials)
      << "every corrupted multiplier must fail the flow";
}

TEST(Flow, WrongPolynomialGoldenComparison) {
  // Verification against a *different* field's golden model must fail:
  // this is how the flow would catch an implementation bug that still
  // looks like a clean multiplier.
  const gf2m::Field right(Poly{4, 1, 0});
  const gf2m::Field wrong(Poly{4, 3, 0});
  const auto netlist = gen::generate_mastrovito(right);
  const auto ports = nl::multiplier_ports(netlist);
  const auto extraction = extract_all_outputs(netlist, 1);
  const auto result = verify_against_golden(
      extraction.anfs, wrong, ports, CircuitClass::StandardProduct);
  EXPECT_FALSE(result.equivalent);
  EXPECT_FALSE(result.detail.empty());
}

TEST(Flow, SummaryIsHumanReadable) {
  const gf2m::Field field(Poly{4, 1, 0});
  const auto report = reverse_engineer(gen::generate_mastrovito(field));
  const std::string text = report.summary();
  EXPECT_NE(text.find("GF(2^4)"), std::string::npos);
  EXPECT_NE(text.find("x^4+x+1"), std::string::npos);
  EXPECT_NE(text.find("SUCCESS"), std::string::npos);
  EXPECT_GT(report.memory_bytes(), 0u);
}

}  // namespace
}  // namespace gfre::core
