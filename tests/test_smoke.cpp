// End-to-end smoke test: generate, extract, recover, verify — the whole
// pipeline on a handful of small fields.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "gen/mastrovito.hpp"
#include "gen/montgomery_gate.hpp"
#include "gf2m/field.hpp"
#include "gf2poly/irreducible.hpp"

namespace gfre {
namespace {

TEST(Smoke, MastrovitoGf24RecoversBothFig1Polynomials) {
  for (const gf2::Poly& p : {gf2::Poly{4, 3, 0}, gf2::Poly{4, 1, 0}}) {
    const gf2m::Field field(p);
    const auto netlist = gen::generate_mastrovito(field);
    const auto report = core::reverse_engineer(netlist);
    EXPECT_TRUE(report.success) << report.summary();
    EXPECT_EQ(report.recovery.p, p) << report.summary();
    EXPECT_EQ(report.algorithm2_p, p) << report.summary();
  }
}

TEST(Smoke, ComposedMontgomeryGf28RecoversAesPolynomial) {
  const gf2::Poly aes{8, 4, 3, 1, 0};
  const gf2m::Field field(aes);
  const auto netlist = gen::generate_montgomery(field);
  const auto report = core::reverse_engineer(netlist);
  EXPECT_TRUE(report.success) << report.summary();
  EXPECT_EQ(report.recovery.p, aes);
  EXPECT_EQ(report.recovery.circuit_class, core::CircuitClass::StandardProduct);
}

}  // namespace
}  // namespace gfre
