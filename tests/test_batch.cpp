// Differential batch-invariance suite: a mixed manifest pushed through the
// batch engine — at 1, 2 and 8 shared workers, on the Packed and Indexed
// backends — must produce FlowReports semantically identical to running
// each job alone through core::reverse_engineer.  Plus memoization
// semantics (same netlist twice costs one extraction), per-job failure
// isolation, and manifest parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/flow.hpp"
#include "gen/karatsuba.hpp"
#include "gen/mastrovito.hpp"
#include "gen/montgomery_gate.hpp"
#include "gen/shift_add.hpp"
#include "gen/squarer.hpp"
#include "gf2m/field.hpp"
#include "gf2poly/irreducible.hpp"
#include "helpers.hpp"
#include "netlist/io_eqn.hpp"
#include "util/prng.hpp"

#ifndef GFRE_SOURCE_DIR
#define GFRE_SOURCE_DIR "."
#endif

namespace gfre::core {
namespace {

using gf2::Poly;

std::string data_path(const std::string& file) {
  return std::string(GFRE_SOURCE_DIR) + "/data/" + file;
}

using test::expect_reports_equal;

/// The mixed workload: all five generator families in memory, frozen
/// fixtures from disk in every format, a scrambled-output bus, a
/// non-multiplier squarer interface, a corrupt netlist and a missing file.
std::vector<BatchJob> mixed_manifest(RewriteStrategy strategy) {
  std::vector<BatchJob> jobs;
  const auto add_memory = [&](std::string name, nl::Netlist netlist) {
    BatchJob job;
    job.name = std::move(name);
    job.netlist = std::move(netlist);
    job.options.strategy = strategy;
    jobs.push_back(std::move(job));
  };
  const auto add_file = [&](const std::string& file) {
    BatchJob job;
    job.path = data_path(file);
    job.options.strategy = strategy;
    jobs.push_back(std::move(job));
  };

  for (unsigned m : {5u, 8u}) {
    const gf2m::Field field(gf2::default_irreducible(m));
    const std::string suffix = "_m" + std::to_string(m);
    add_memory("mastrovito" + suffix, gen::generate_mastrovito(field));
    add_memory("montgomery" + suffix, gen::generate_montgomery(field));
    add_memory("karatsuba" + suffix, gen::generate_karatsuba(field));
    add_memory("shiftadd" + suffix, gen::generate_shift_add(field));
    // The squarer has a one-operand interface: port resolution must fail
    // it identically in batch and standalone runs.
    add_memory("squarer" + suffix, gen::generate_squarer(field));
  }
  {
    const gf2m::Field field(Poly{8, 4, 3, 1, 0});
    add_memory("scrambled_mastrovito_m8",
               test::scramble_outputs(gen::generate_mastrovito(field),
                                      {3, 1, 4, 7, 6, 0, 2, 5}));
  }
  add_file("mastrovito_m8.eqn");
  add_file("montgomery_m8.blif");
  add_file("karatsuba_m8.v");
  add_file("shiftadd_m8.eqn");
  add_file("mastrovito_syn_m8.eqn");
  add_file("mastrovito_mapped_m8.blif");
  add_file("handwritten_gf4_aoi.eqn");
  add_file("corrupt_gf4.eqn");
  add_file("montgomery_m16.eqn");
  add_file("karatsuba_m16.v");
  // Duplicate submission: must come back cache-identical.
  add_file("mastrovito_m8.eqn");
  jobs.back().name = "duplicate_mastrovito_m8";
  // Unreadable path: a load error that must not poison the batch.
  {
    BatchJob job;
    job.name = "missing_file";
    job.path = data_path("does_not_exist.eqn");
    job.options.strategy = strategy;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Standalone baseline for one job (the sequential `run_flow` ground
/// truth); nullopt for jobs that cannot load.
std::optional<FlowReport> baseline_report(const BatchJob& job) {
  nl::Netlist netlist("x");
  if (job.netlist.has_value()) {
    netlist = *job.netlist;
  } else {
    try {
      netlist = load_netlist_file(job.path);
    } catch (const Error&) {
      return std::nullopt;
    }
  }
  FlowOptions options = job.options;
  options.threads = 1;
  return reverse_engineer(netlist, options);
}

class BatchInvariance
    : public ::testing::TestWithParam<std::tuple<RewriteStrategy, unsigned>> {
};

TEST_P(BatchInvariance, MatchesSequentialRunFlow) {
  const RewriteStrategy strategy = std::get<0>(GetParam());
  const unsigned threads = std::get<1>(GetParam());

  const auto jobs = mixed_manifest(strategy);
  ASSERT_GE(jobs.size(), 20u) << "the issue demands a >=20 job manifest";

  std::vector<std::optional<FlowReport>> baselines;
  baselines.reserve(jobs.size());
  for (const auto& job : jobs) baselines.push_back(baseline_report(job));

  BatchOptions options;
  options.threads = threads;
  const auto batch = run_batch(jobs, options);

  ASSERT_EQ(batch.results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& result = batch.results[i];
    const std::string label = result.name + " @" + std::to_string(threads) +
                              "T/" + to_string(strategy);
    if (!baselines[i].has_value()) {
      EXPECT_FALSE(result.error.empty()) << label;
      EXPECT_FALSE(result.ok) << label;
      continue;
    }
    EXPECT_TRUE(result.error.empty()) << label << ": " << result.error;
    expect_reports_equal(result.report, *baselines[i], label);
    EXPECT_EQ(result.ok, baselines[i]->success) << label;
  }

  // Failure isolation: the corrupt and missing jobs fail, everything that
  // is a real multiplier still succeeds in the same batch.
  std::size_t ok_count = 0;
  for (const auto& result : batch.results) ok_count += result.ok ? 1 : 0;
  EXPECT_GE(ok_count, 16u);
  EXPECT_EQ(batch.stats.jobs, jobs.size());
  EXPECT_EQ(batch.stats.load_errors, 1u);
  EXPECT_GE(batch.stats.cache_hits, 1u) << "duplicate file must dedup";
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, BatchInvariance,
    ::testing::Combine(::testing::Values(RewriteStrategy::Packed,
                                         RewriteStrategy::Indexed),
                       ::testing::Values(1u, 2u, 8u)),
    [](const ::testing::TestParamInfo<std::tuple<RewriteStrategy, unsigned>>&
           info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "threads";
    });

// -- Memoization semantics --------------------------------------------------

TEST(BatchCache, SameFileTwiceCostsOneExtraction) {
  std::vector<BatchJob> jobs(2);
  jobs[0].path = data_path("mastrovito_m8.eqn");
  jobs[1].path = data_path("mastrovito_m8.eqn");
  jobs[1].name = "dup";

  BatchOptions options;
  options.threads = 4;
  const auto batch = run_batch(jobs, options);
  EXPECT_EQ(batch.stats.cones_extracted, 8u)
      << "the duplicate must be served from the cache, not re-extracted";
  EXPECT_EQ(batch.stats.cache_hits, 1u);
  int hits = 0;
  for (const auto& result : batch.results) {
    EXPECT_TRUE(result.ok);
    hits += result.cache_hit ? 1 : 0;
  }
  EXPECT_EQ(hits, 1);
  expect_reports_equal(batch.results[1].report, batch.results[0].report,
                       "cached duplicate");
}

TEST(BatchCache, IdenticalInMemoryNetlistsDedup) {
  const gf2m::Field field(Poly{8, 4, 3, 1, 0});
  const auto netlist = gen::generate_montgomery(field);
  std::vector<BatchJob> jobs(2);
  jobs[0].name = "first";
  jobs[0].netlist = netlist;
  jobs[1].name = "second";
  jobs[1].netlist = netlist;

  BatchOptions options;
  options.threads = 2;
  const auto batch = run_batch(jobs, options);
  EXPECT_EQ(batch.stats.cones_extracted, 8u);
  EXPECT_EQ(batch.stats.cache_hits, 1u);
  EXPECT_TRUE(batch.results[0].ok);
  EXPECT_TRUE(batch.results[1].ok);
}

TEST(BatchCache, DifferentOptionsDoNotShareResults) {
  // Same netlist, different option signatures: verification on vs off
  // changes the report, so the cache must keep them apart.
  std::vector<BatchJob> jobs(2);
  jobs[0].path = data_path("mastrovito_m8.eqn");
  jobs[1].path = data_path("mastrovito_m8.eqn");
  jobs[1].options.verify_with_golden = false;

  BatchOptions options;
  options.threads = 2;
  const auto batch = run_batch(jobs, options);
  EXPECT_EQ(batch.stats.cache_hits, 0u);
  EXPECT_EQ(batch.stats.cones_extracted, 16u);
  EXPECT_EQ(batch.results[0].report.verification.detail,
            "all 8 output ANFs match the golden model");
  EXPECT_EQ(batch.results[1].report.verification.detail, "skipped");
}

TEST(BatchCache, MemoizeOffExtractsEveryJob) {
  std::vector<BatchJob> jobs(2);
  jobs[0].path = data_path("mastrovito_m8.eqn");
  jobs[1].path = data_path("mastrovito_m8.eqn");

  BatchOptions options;
  options.threads = 2;
  options.memoize = false;
  const auto batch = run_batch(jobs, options);
  EXPECT_EQ(batch.stats.cache_hits, 0u);
  EXPECT_EQ(batch.stats.cones_extracted, 16u);
}

// -- Failure isolation ------------------------------------------------------

TEST(BatchIsolation, TermBudgetBlowupFailsOnlyThatJob) {
  // A tiny per-bit budget aborts the first job's extraction; its neighbor
  // (same circuit, default budget) must still verify cleanly.
  const gf2m::Field field(Poly{8, 4, 3, 1, 0});
  std::vector<BatchJob> jobs(2);
  jobs[0].name = "strangled";
  jobs[0].netlist = gen::generate_mastrovito(field);
  jobs[0].options.max_terms = 3;
  jobs[1].name = "healthy";
  jobs[1].netlist = gen::generate_mastrovito(field);

  BatchOptions options;
  options.threads = 2;
  const auto batch = run_batch(jobs, options);
  EXPECT_FALSE(batch.results[0].ok);
  EXPECT_NE(batch.results[0].report.recovery.diagnosis.find("term budget"),
            std::string::npos)
      << batch.results[0].report.recovery.diagnosis;
  EXPECT_TRUE(batch.results[1].ok) << batch.results[1].report.summary();

  // And identically to a standalone run of the same strangled job.
  FlowOptions strangled;
  strangled.max_terms = 3;
  const auto alone = reverse_engineer(gen::generate_mastrovito(field),
                                      strangled);
  expect_reports_equal(batch.results[0].report, alone, "strangled");
}

TEST(BatchIsolation, EmptyBatchIsANoOp) {
  BatchOptions options;
  options.threads = 4;
  const auto batch = run_batch({}, options);
  EXPECT_TRUE(batch.results.empty());
  EXPECT_TRUE(batch.all_ok());
  EXPECT_EQ(batch.stats.jobs, 0u);
}

// -- Content hashing --------------------------------------------------------

TEST(BatchHash, StructuralHashSeesGateChanges) {
  const gf2m::Field field(Poly{4, 1, 0});
  const auto a = gen::generate_mastrovito(field);
  const auto b = gen::generate_mastrovito(field);
  EXPECT_EQ(netlist_content_hash(a), netlist_content_hash(b));
  const auto other = gen::generate_karatsuba(field);
  EXPECT_NE(netlist_content_hash(a), netlist_content_hash(other));
}

TEST(BatchHash, BothKeyWordsParticipate) {
  // The scheduler memoizes on the full 128-bit pair; the public hash must
  // expose the same domain (it used to return only the low word, so a
  // test could pass while half the real key was garbage).  Both streams
  // start from non-zero offset bases and must independently see a gate
  // change.
  const gf2m::Field field(Poly{4, 1, 0});
  const NetlistHash mast = netlist_content_hash(gen::generate_mastrovito(field));
  const NetlistHash kara = netlist_content_hash(gen::generate_karatsuba(field));
  EXPECT_NE(mast.a, 0u);
  EXPECT_NE(mast.b, 0u);
  EXPECT_NE(mast.a, kara.a) << "FNV stream blind to a different netlist";
  EXPECT_NE(mast.b, kara.b) << "alt stream blind to a different netlist";
  EXPECT_NE(mast.a, mast.b) << "streams must be independent";
}

// -- Manifest parsing -------------------------------------------------------

TEST(BatchManifest, ParsesJobsWithOverrides) {
  std::string dir = ::testing::TempDir();
  while (!dir.empty() && dir.back() == '/') dir.pop_back();
  const std::string path = dir + "/jobs.manifest";
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "\n"
        << "mastrovito_m8.eqn\n"
        << "sub/montgomery.blif strategy=indexed verify=0 name=monty\n"
        << "/abs/karatsuba.v ports=x,y,p max_terms=1234 infer=1\n";
  }
  const auto jobs = parse_manifest(path);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].path, dir + "/mastrovito_m8.eqn");
  EXPECT_EQ(jobs[1].path, dir + "/sub/montgomery.blif");
  EXPECT_EQ(jobs[1].name, "monty");
  EXPECT_EQ(jobs[1].options.strategy, RewriteStrategy::Indexed);
  EXPECT_FALSE(jobs[1].options.verify_with_golden);
  EXPECT_EQ(jobs[2].path, "/abs/karatsuba.v");
  EXPECT_EQ(jobs[2].options.a_base, "x");
  EXPECT_EQ(jobs[2].options.b_base, "y");
  EXPECT_EQ(jobs[2].options.z_base, "p");
  EXPECT_EQ(jobs[2].options.max_terms, 1234u);
  EXPECT_TRUE(jobs[2].options.infer_ports);
  std::remove(path.c_str());
}

TEST(BatchManifest, RejectsBadLinesWithLocation) {
  const std::string path = ::testing::TempDir() + "/bad.manifest";
  {
    std::ofstream out(path);
    out << "good.eqn\n"
        << "other.eqn strategy=warp\n";
  }
  try {
    parse_manifest(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("warp"), std::string::npos);
  }
  std::remove(path.c_str());
  EXPECT_THROW(parse_manifest("/no/such/manifest"), Error);
}

TEST(BatchManifest, RejectsExtraPortCommas) {
  // 'ports=a,b,z,extra' used to fold ",extra" into z_base — a job that
  // silently analyzes the wrong output word.
  const std::string path = ::testing::TempDir() + "/ports.manifest";
  for (const char* spec : {"ports=a,b,z,extra", "ports=a,b,z,"}) {
    {
      std::ofstream out(path);
      out << "good.eqn " << spec << "\n";
    }
    try {
      parse_manifest(path);
      FAIL() << "expected ParseError for '" << spec << "'";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), 1) << spec;
      EXPECT_NE(std::string(e.what()).find("ports"), std::string::npos)
          << e.what();
    }
  }
  {
    // The exact three-port form still parses.
    std::ofstream out(path);
    out << "good.eqn ports=x,y,p\n";
  }
  const auto jobs = parse_manifest(path);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].options.z_base, "p");
  std::remove(path.c_str());
}

TEST(BatchManifest, RejectsDuplicateKeys) {
  // "deadline_ms=1 deadline_ms=1000" used to let the LAST value win
  // silently — the job ran under whichever number was typed second.
  const std::string path = ::testing::TempDir() + "/dupkey.manifest";
  for (const char* line : {"good.eqn deadline_ms=1 deadline_ms=1000",
                           "good.eqn name=a name=b",
                           "good.eqn strategy=packed strategy=packed"}) {
    {
      std::ofstream out(path);
      out << line << "\n";
    }
    try {
      parse_manifest(path);
      FAIL() << "expected ParseError for '" << line << "'";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), 1) << line;
      EXPECT_NE(std::string(e.what()).find("duplicate manifest key"),
                std::string::npos)
          << e.what();
    }
  }
  {
    // Distinct keys — including values that merely REPEAT another key's
    // text — still parse.
    std::ofstream out(path);
    out << "good.eqn name=deadline_ms deadline_ms=5\n";
  }
  const auto jobs = parse_manifest(path);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].name, "deadline_ms");
  EXPECT_EQ(jobs[0].deadline_ms, 5u);
  std::remove(path.c_str());
}

TEST(BatchManifest, ParsesCrlfTerminatedLines) {
  // A manifest written on Windows ends every line in \r\n; no token (path,
  // name, port base) may come back with a stray '\r' attached.
  std::string dir = ::testing::TempDir();
  while (!dir.empty() && dir.back() == '/') dir.pop_back();
  const std::string path = dir + "/crlf.manifest";
  {
    std::ofstream out(path, std::ios::binary);
    out << "# comment\r\n"
        << "\r\n"
        << "mastrovito_m8.eqn\r\n"
        << "monty.blif name=monty ports=x,y,p\r\n";
  }
  const auto jobs = parse_manifest(path);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].path, dir + "/mastrovito_m8.eqn");
  EXPECT_EQ(jobs[1].name, "monty");
  EXPECT_EQ(jobs[1].options.z_base, "p");
  for (const auto& job : jobs) {
    EXPECT_EQ(job.path.find('\r'), std::string::npos) << job.path;
    EXPECT_EQ(job.name.find('\r'), std::string::npos) << job.name;
  }
  std::remove(path.c_str());
}

TEST(BatchManifest, SingleLineParserStreams) {
  // The streaming building block gfre_batch feeds: blank/comment lines are
  // nullopt, real lines are jobs, relative paths resolve against base_dir.
  FlowOptions defaults;
  defaults.max_terms = 77;
  EXPECT_FALSE(parse_manifest_line("", 1, "m", "/base", defaults).has_value());
  EXPECT_FALSE(
      parse_manifest_line("  # note", 2, "m", "/base", defaults).has_value());
  const auto job =
      parse_manifest_line("x.eqn strategy=indexed", 3, "m", "/base", defaults);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->path, "/base/x.eqn");
  EXPECT_EQ(job->options.strategy, RewriteStrategy::Indexed);
  EXPECT_EQ(job->options.max_terms, 77u) << "defaults must seed each line";
  EXPECT_THROW(
      parse_manifest_line("strategy=indexed", 4, "m", "/base", defaults),
      ParseError);
}

TEST(BatchManifest, ParsesDeadlineAndPriority) {
  FlowOptions defaults;
  const auto job = parse_manifest_line(
      "x.eqn deadline_ms=250 priority=high", 1, "m", "/base", defaults);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->deadline_ms, 250u);
  EXPECT_EQ(job->priority, JobPriority::High);

  const auto plain = parse_manifest_line("x.eqn", 2, "m", "/base", defaults);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->deadline_ms, 0u) << "no deadline by default";
  EXPECT_EQ(plain->priority, JobPriority::Normal);

  for (const char* prio : {"low", "normal", "high"}) {
    const auto j = parse_manifest_line(std::string("x.eqn priority=") + prio,
                                       3, "m", "/base", defaults);
    ASSERT_TRUE(j.has_value()) << prio;
    EXPECT_EQ(to_string(j->priority), std::string(prio)) << prio;
  }

  // stoull would wrap -1 into a ~585-million-year deadline.
  EXPECT_THROW(parse_manifest_line("x.eqn deadline_ms=-1", 4, "m", "/base",
                                   defaults),
               ParseError);
  EXPECT_THROW(
      parse_manifest_line("x.eqn deadline_ms=", 5, "m", "/base", defaults),
      ParseError);
  try {
    parse_manifest_line("x.eqn priority=urgent", 6, "m", "/base", defaults);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("urgent"), std::string::npos)
        << e.what();
  }
}

TEST(BatchManifest, PriorityNamesRoundTrip) {
  for (const JobPriority p :
       {JobPriority::High, JobPriority::Normal, JobPriority::Low}) {
    const auto back = priority_from_name(to_string(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_EQ(priority_from_name("HIGH"), JobPriority::High)
      << "names are case-insensitive";
  EXPECT_FALSE(priority_from_name("urgent").has_value());
  EXPECT_FALSE(priority_from_name("").has_value());
}

// -- Bounded queue through run_batch ----------------------------------------

TEST(BatchAdmission, BoundedQueueMatchesUnboundedResults) {
  // Backpressure must change pacing only: the same manifest through a
  // max_queued=2 engine produces the same reports as the unbounded run,
  // and the queue high-water mark respects the cap.
  const auto jobs = mixed_manifest(RewriteStrategy::Packed);

  BatchOptions unbounded;
  unbounded.threads = 2;
  const auto reference = run_batch(jobs, unbounded);

  BatchOptions bounded;
  bounded.threads = 2;
  bounded.max_queued = 2;
  const auto batch = run_batch(jobs, bounded);

  ASSERT_EQ(batch.results.size(), reference.results.size());
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    const auto& got = batch.results[i];
    const auto& want = reference.results[i];
    EXPECT_EQ(got.ok, want.ok) << got.name;
    EXPECT_EQ(got.error.empty(), want.error.empty()) << got.name;
    if (got.error.empty() && want.error.empty()) {
      expect_reports_equal(got.report, want.report, got.name + " bounded");
    }
  }
  EXPECT_EQ(batch.stats.jobs, jobs.size());
  EXPECT_EQ(batch.stats.rejected, 0u)
      << "run_batch submits with blocking admission, never rejecting";
  EXPECT_LE(batch.stats.queue_peak, 2u);
  EXPECT_GE(reference.stats.queue_peak, batch.stats.queue_peak);
}

TEST(BatchManifest, RejectsSilentJobDrops) {
  const std::string path = ::testing::TempDir() + "/dropped.manifest";
  {
    // Options but no path: without an error this job would silently
    // vanish from the batch.
    std::ofstream out(path);
    out << "name=ghost strategy=indexed\n";
  }
  EXPECT_THROW(parse_manifest(path), ParseError);
  {
    // stoull would wrap -1 into an unlimited budget.
    std::ofstream out(path);
    out << "good.eqn max_terms=-1\n";
  }
  EXPECT_THROW(parse_manifest(path), ParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gfre::core
