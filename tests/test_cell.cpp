// Cell library consistency: for every cell, the three models — Boolean
// evaluator, 64-way word evaluator, and ANF — must agree on every input
// combination (this is the "correct by inspection" claim behind Eq. (1)
// and Theorem 1, checked exhaustively).
#include <gtest/gtest.h>

#include <array>

#include "anf/anf.hpp"
#include "netlist/cell.hpp"
#include "util/error.hpp"

namespace gfre::nl {
namespace {

std::vector<std::size_t> legal_arities(CellType type) {
  std::vector<std::size_t> arities;
  for (std::size_t n = 0; n <= 6; ++n) {
    if (arity_ok(type, n)) arities.push_back(n);
  }
  return arities;
}

class CellConsistency : public ::testing::TestWithParam<CellType> {};

TEST_P(CellConsistency, BoolWordAndAnfModelsAgree) {
  const CellType type = GetParam();
  for (std::size_t n : legal_arities(type)) {
    std::vector<anf::Var> vars(n);
    for (std::size_t i = 0; i < n; ++i) vars[i] = static_cast<anf::Var>(i);
    const anf::Anf anf = cell_anf(type, vars);

    std::array<bool, 6> in{};
    std::vector<std::uint64_t> word_in(n);
    for (std::size_t row = 0; row < (std::size_t{1} << n); ++row) {
      for (std::size_t i = 0; i < n; ++i) {
        in[i] = (row >> i) & 1u;
        word_in[i] = in[i] ? ~0ull : 0ull;
      }
      const bool expect =
          eval_cell(type, std::span<const bool>(in.data(), n));
      // word evaluation (all 64 lanes identical)
      const std::uint64_t word = eval_cell_words(type, word_in);
      EXPECT_EQ(word, expect ? ~0ull : 0ull)
          << cell_name(type) << " arity " << n << " row " << row;
      // ANF evaluation
      const bool via_anf =
          anf.eval([&](anf::Var v) { return in[v]; });
      EXPECT_EQ(via_anf, expect)
          << cell_name(type) << " arity " << n << " row " << row
          << " anf=" << anf.to_string([](anf::Var v) {
               return "x" + std::to_string(v);
             });
    }
  }
}

TEST_P(CellConsistency, AnfMatchesTruthTableTransform) {
  // cell_anf must equal the Möbius transform of the cell's truth table —
  // i.e. the analytic formulas have no transcription errors.
  const CellType type = GetParam();
  for (std::size_t n : legal_arities(type)) {
    if (n == 0) continue;  // constants handled separately
    std::vector<anf::Var> vars(n);
    for (std::size_t i = 0; i < n; ++i) vars[i] = static_cast<anf::Var>(i);
    std::vector<bool> table(std::size_t{1} << n);
    std::array<bool, 6> in{};
    for (std::size_t row = 0; row < table.size(); ++row) {
      for (std::size_t i = 0; i < n; ++i) in[i] = (row >> i) & 1u;
      table[row] = eval_cell(type, std::span<const bool>(in.data(), n));
    }
    EXPECT_EQ(cell_anf(type, vars), anf::Anf::from_truth_table(vars, table))
        << cell_name(type) << " arity " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellConsistency,
                         ::testing::ValuesIn(all_cell_types().begin(),
                                             all_cell_types().end()),
                         [](const ::testing::TestParamInfo<CellType>& info) {
                           return cell_name(info.param);
                         });

TEST(Cell, NameRoundTrip) {
  for (CellType type : all_cell_types()) {
    EXPECT_EQ(cell_from_name(cell_name(type)), type);
  }
}

TEST(Cell, NameAliases) {
  EXPECT_EQ(cell_from_name("not"), CellType::Inv);
  EXPECT_EQ(cell_from_name("AND2"), CellType::And);
  EXPECT_EQ(cell_from_name("nand3"), CellType::Nand);
  EXPECT_EQ(cell_from_name("xor2"), CellType::Xor);
  EXPECT_THROW(cell_from_name("FLIPFLOP"), InvalidArgument);
}

TEST(Cell, ArityRules) {
  EXPECT_TRUE(arity_ok(CellType::Const0, 0));
  EXPECT_FALSE(arity_ok(CellType::Const0, 1));
  EXPECT_TRUE(arity_ok(CellType::Inv, 1));
  EXPECT_FALSE(arity_ok(CellType::Inv, 2));
  EXPECT_TRUE(arity_ok(CellType::And, 2));
  EXPECT_TRUE(arity_ok(CellType::And, 5));
  EXPECT_FALSE(arity_ok(CellType::And, 1));
  EXPECT_TRUE(arity_ok(CellType::Or, 8));
  EXPECT_FALSE(arity_ok(CellType::Or, 9)) << "OR ANF expansion is capped";
  EXPECT_TRUE(arity_ok(CellType::Mux, 3));
  EXPECT_FALSE(arity_ok(CellType::Mux, 2));
  EXPECT_TRUE(arity_ok(CellType::Aoi22, 4));
  EXPECT_FALSE(arity_ok(CellType::Aoi22, 3));
}

TEST(Cell, KnownAnfFormulas) {
  using anf::Anf;
  const std::vector<anf::Var> ab{0, 1};
  const std::vector<anf::Var> abc{0, 1, 2};
  const auto v = [](anf::Var x) { return Anf::var(x); };

  EXPECT_EQ(cell_anf(CellType::Xor, ab), v(0) + v(1));
  EXPECT_EQ(cell_anf(CellType::And, ab), v(0) * v(1));
  EXPECT_EQ(cell_anf(CellType::Or, ab), v(0) + v(1) + v(0) * v(1));
  EXPECT_EQ(cell_anf(CellType::Nand, ab), Anf::one() + v(0) * v(1));
  const std::vector<anf::Var> a_only{0};
  EXPECT_EQ(cell_anf(CellType::Inv, a_only), Anf::one() + v(0));
  // AOI21: 1 + ab + c + abc
  EXPECT_EQ(cell_anf(CellType::Aoi21, abc),
            Anf::one() + v(0) * v(1) + v(2) + v(0) * v(1) * v(2));
  // MAJ3 = ab + ac + bc
  EXPECT_EQ(cell_anf(CellType::Maj3, abc),
            v(0) * v(1) + v(0) * v(2) + v(1) * v(2));
}

TEST(Cell, WordEvalMixedLanes) {
  // Lanes carry independent vectors: AND of 0b0101 and 0b0011 = 0b0001.
  const std::vector<std::uint64_t> in{0x5ull, 0x3ull};
  EXPECT_EQ(eval_cell_words(CellType::And, in), 0x1ull);
  EXPECT_EQ(eval_cell_words(CellType::Xor, in), 0x6ull);
  EXPECT_EQ(eval_cell_words(CellType::Or, in), 0x7ull);
}

}  // namespace
}  // namespace gfre::nl
