// Tests for the GF(2^m) word-level field reference model.
#include <gtest/gtest.h>

#include "gf2m/field.hpp"
#include "gf2poly/catalog.hpp"
#include "gf2poly/irreducible.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace gfre::gf2m {
namespace {

using gf2::Poly;

TEST(Field, RejectsReducibleModulus) {
  EXPECT_THROW(Field(Poly{4, 2, 0}), InvalidArgument);  // (x^2+x+1)^2
  EXPECT_THROW(Field(Poly{2, 1}), InvalidArgument);     // x(x+1)
  EXPECT_THROW(Field(Poly{1, 0}), InvalidArgument);     // degree 1
  EXPECT_THROW(Field(Poly{}), InvalidArgument);
}

TEST(Field, BasicProperties) {
  const Field f(Poly{8, 4, 3, 1, 0});
  EXPECT_EQ(f.m(), 8u);
  EXPECT_EQ(f.modulus(), (Poly{8, 4, 3, 1, 0}));
  EXPECT_TRUE(f.contains(Poly{7, 0}));
  EXPECT_FALSE(f.contains(Poly{8}));
  EXPECT_EQ(f.to_string(), "GF(2^8) / x^8+x^4+x^3+x+1");
}

TEST(Field, ReduceBringsIntoField) {
  const Field f(Poly{4, 1, 0});
  EXPECT_EQ(f.reduce(Poly{4}), (Poly{1, 0}));      // x^4 = x+1
  EXPECT_EQ(f.reduce(Poly{5}), (Poly{2, 1}));      // x^5 = x^2+x
  EXPECT_EQ(f.reduce(Poly{6}), (Poly{3, 2}));      // x^6 = x^3+x^2
  EXPECT_EQ(f.reduce(Poly{3}), Poly{3});           // already reduced
}

TEST(Field, ReductionRowsMatchDirectComputation) {
  for (const auto& p : {Poly{4, 1, 0}, Poly{4, 3, 0}, Poly{8, 4, 3, 1, 0},
                        Poly{11, 2, 0}, Poly{17, 3, 0}}) {
    const Field f(p);
    const unsigned m = f.m();
    ASSERT_EQ(f.reduction_rows().size(), m - 1);
    for (unsigned k = m; k <= 2 * m - 2; ++k) {
      EXPECT_EQ(f.reduction_rows()[k - m], Poly::monomial(k).mod(p))
          << "row " << k << " of " << p.to_string();
    }
  }
}

TEST(Field, Figure1XorCounts) {
  // The paper's Figure 1 example: reduction cost 9 XORs for x^4+x^3+1 and
  // 6 XORs for x^4+x+1.
  EXPECT_EQ(Field(Poly{4, 3, 0}).reduction_xor_count(), 9u);
  EXPECT_EQ(Field(Poly{4, 1, 0}).reduction_xor_count(), 6u);
}

class FieldAxioms : public ::testing::TestWithParam<Poly> {};

TEST_P(FieldAxioms, RingAxiomsOnRandomElements) {
  const Field f(GetParam());
  Prng rng(f.m() * 1000003u);
  for (int i = 0; i < 30; ++i) {
    const Poly a = f.random_element(rng);
    const Poly b = f.random_element(rng);
    const Poly c = f.random_element(rng);
    EXPECT_EQ(f.add(a, b), f.add(b, a));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    EXPECT_EQ(f.add(a, a), Poly{});
    EXPECT_EQ(f.mul(a, Poly::one()), a);
    EXPECT_EQ(f.mul(a, Poly{}), Poly{});
    EXPECT_EQ(f.square(a), f.mul(a, a));
  }
}

TEST_P(FieldAxioms, InverseAndFermat) {
  const Field f(GetParam());
  Prng rng(f.m() * 77003u);
  for (int i = 0; i < 20; ++i) {
    Poly a = f.random_element(rng);
    if (a.is_zero()) a = Poly::one();
    EXPECT_EQ(f.mul(a, f.inverse(a)), Poly::one())
        << "a=" << a.to_string() << " in " << f.to_string();
    // Fermat: a^(2^m) == a.
    EXPECT_EQ(f.pow2k(a, f.m()), a);
  }
  EXPECT_THROW(f.inverse(Poly{}), InvalidArgument);
}

TEST_P(FieldAxioms, PowMatchesRepeatedMultiplication) {
  const Field f(GetParam());
  Prng rng(f.m() * 13007u);
  const Poly a = f.random_element(rng);
  // exponent 0 -> 1
  EXPECT_EQ(f.pow(a, {}), Poly::one());
  // exponent 5 = 101b
  const Poly a5 = f.pow(a, {true, false, true});
  Poly expected = Poly::one();
  for (int i = 0; i < 5; ++i) expected = f.mul(expected, a);
  EXPECT_EQ(a5, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Fields, FieldAxioms,
    ::testing::Values(Poly{2, 1, 0}, Poly{3, 1, 0}, Poly{4, 1, 0},
                      Poly{4, 3, 0}, Poly{8, 4, 3, 1, 0}, Poly{16, 5, 3, 1, 0},
                      Poly{23, 5, 0}, Poly{64, 21, 19, 4, 0}),
    [](const ::testing::TestParamInfo<Poly>& info) {
      return "deg" + std::to_string(info.param.degree()) + "_idx" +
             std::to_string(info.index);
    });

TEST(Field, MultiplicativeGroupOrderSmall) {
  // In GF(2^4), the multiplicative group has order 15: a^15 == 1 for all
  // nonzero a.
  const Field f(Poly{4, 1, 0});
  for (unsigned bits = 1; bits < 16; ++bits) {
    Poly a;
    for (unsigned b = 0; b < 4; ++b) {
      if ((bits >> b) & 1u) a.set_coeff(b, true);
    }
    Poly acc = Poly::one();
    for (int i = 0; i < 15; ++i) acc = f.mul(acc, a);
    EXPECT_EQ(acc, Poly::one()) << "a=" << a.to_string();
  }
}

TEST(Field, PaperFieldsConstructAndReduce) {
  for (const auto& entry : gf2::paper_table_polynomials()) {
    const Field f(entry.p);
    Prng rng(entry.m);
    const Poly a = f.random_element(rng);
    const Poly b = f.random_element(rng);
    const Poly ab = f.mul(a, b);
    EXPECT_TRUE(f.contains(ab));
    // Spot-check against direct schoolbook mod.
    EXPECT_EQ(ab, (a * b).mod(entry.p));
  }
}

}  // namespace
}  // namespace gfre::gf2m
