// Tests for the extended reduction-matrix recovery: classification,
// consistency checking, raw-Montgomery support and fault rejection.
#include <gtest/gtest.h>

#include "core/parallel_extract.hpp"
#include "core/redmatrix.hpp"
#include "core/verify.hpp"
#include "gen/mastrovito.hpp"
#include "gen/montgomery_gate.hpp"
#include "gf2m/field.hpp"
#include "gf2poly/irreducible.hpp"

namespace gfre::core {
namespace {

using anf::Anf;
using anf::Monomial;
using gf2::Poly;

nl::MultiplierPorts fake_ports(unsigned m) {
  nl::WordPort a, b, z;
  a.base = "a";
  b.base = "b";
  z.base = "z";
  for (unsigned i = 0; i < m; ++i) {
    a.bits.push_back(i);
    b.bits.push_back(100 + i);
    z.bits.push_back(200 + i);
  }
  return nl::MultiplierPorts{a, b, z};
}

TEST(RedMatrix, StandardProductClassification) {
  for (const Poly& p : {Poly{4, 1, 0}, Poly{8, 4, 3, 1, 0}, Poly{11, 2, 0}}) {
    const gf2m::Field field(p);
    const auto ports = fake_ports(field.m());
    const auto report =
        recover_reduction_matrix(golden_anfs(field, ports), ports);
    EXPECT_EQ(report.circuit_class, CircuitClass::StandardProduct);
    EXPECT_EQ(report.p, p);
    EXPECT_TRUE(report.p_is_irreducible);
    EXPECT_TRUE(report.rows_consistent) << report.diagnosis;
    // Recovered high rows equal the field's reduction rows.
    for (unsigned k = field.m(); k <= 2 * field.m() - 2; ++k) {
      EXPECT_EQ(report.rows[k], field.reduction_rows()[k - field.m()]);
    }
  }
}

TEST(RedMatrix, MontgomeryRawClassification) {
  for (const Poly& p : {Poly{4, 1, 0}, Poly{8, 4, 3, 1, 0}, Poly{13, 4, 3, 1, 0}}) {
    const gf2m::Field field(p);
    const auto ports = fake_ports(field.m());
    const auto spec = golden_anfs(field, ports, /*montgomery_raw=*/true);
    const auto report = recover_reduction_matrix(spec, ports);
    EXPECT_EQ(report.circuit_class, CircuitClass::MontgomeryRaw)
        << report.diagnosis;
    EXPECT_EQ(report.p, p) << "raw-Montgomery P(x) recovery failed";
    EXPECT_TRUE(report.p_is_irreducible);
    EXPECT_TRUE(report.rows_consistent) << report.diagnosis;
  }
}

TEST(RedMatrix, RawMontgomeryFromGateLevelNetlist) {
  const gf2::Poly p{8, 4, 3, 1, 0};
  const gf2m::Field field(p);
  gen::MontgomeryOptions options;
  options.raw = true;
  const auto netlist = gen::generate_montgomery(field, options);
  const auto ports = nl::multiplier_ports(netlist);
  const auto extraction = extract_all_outputs(netlist, 2);
  const auto report = recover_reduction_matrix(extraction.anfs, ports);
  EXPECT_EQ(report.circuit_class, CircuitClass::MontgomeryRaw)
      << report.diagnosis;
  EXPECT_EQ(report.p, p);
}

TEST(RedMatrix, RejectsNonBilinearCircuit) {
  // z0 = a0 (degree-1 monomial) — not a multiplier.
  const auto ports = fake_ports(2);
  std::vector<Anf> anfs(2);
  anfs[0] = Anf::var(ports.a.bits[0]);
  anfs[1] = Anf::var(ports.b.bits[1]);
  const auto report = recover_reduction_matrix(anfs, ports);
  EXPECT_EQ(report.circuit_class, CircuitClass::NotAMultiplier);
  EXPECT_NE(report.diagnosis.find("non-bilinear"), std::string::npos);
}

TEST(RedMatrix, RejectsSameSideProducts) {
  // a0*a1 mixes operand sides.
  const auto ports = fake_ports(2);
  std::vector<Anf> anfs(2);
  anfs[0].toggle(Monomial::from_vars({ports.a.bits[0], ports.a.bits[1]}));
  anfs[1].toggle(Monomial::from_vars({ports.a.bits[1], ports.b.bits[1]}));
  const auto report = recover_reduction_matrix(anfs, ports);
  EXPECT_EQ(report.circuit_class, CircuitClass::NotAMultiplier);
  EXPECT_NE(report.diagnosis.find("sides"), std::string::npos);
}

TEST(RedMatrix, RejectsSplitProductSet) {
  // Start from a good spec and knock a single monomial out of S_m on one
  // bit: the membership becomes Mixed and the report must say so.
  const gf2m::Field field(Poly{4, 1, 0});
  const auto ports = fake_ports(4);
  auto spec = golden_anfs(field, ports);
  const auto p_m = product_set(ports, 4);
  // Bit 0 contains S_4 fully (since P = x^4+x+1 has x^0): remove one
  // member.
  ASSERT_TRUE(spec[0].contains(p_m[0]));
  spec[0].toggle(p_m[0]);
  const auto report = recover_reduction_matrix(spec, ports);
  EXPECT_EQ(report.circuit_class, CircuitClass::NotAMultiplier);
  EXPECT_NE(report.diagnosis.find("split"), std::string::npos);
}

TEST(RedMatrix, FlagsReducibleModulus) {
  // A "multiplier" built modulo the reducible x^4+x^2+1: bilinear and
  // recurrence-consistent, but P must be flagged as reducible.
  const unsigned m = 4;
  const Poly fake{4, 2, 0};  // (x^2+x+1)^2
  const auto ports = fake_ports(m);
  // Build rows with the shift recurrence by hand.
  std::vector<Poly> rows(2 * m - 1);
  for (unsigned k = 0; k < m; ++k) rows[k] = Poly::monomial(k);
  Poly r = fake + Poly::monomial(m);
  for (unsigned k = m; k <= 2 * m - 2; ++k) {
    rows[k] = r;
    r = r << 1;
    if (r.coeff(m)) {
      r.flip_coeff(m);
      r += fake + Poly::monomial(m);
    }
  }
  std::vector<Anf> anfs(m);
  for (unsigned k = 0; k <= 2 * m - 2; ++k) {
    for (unsigned i = 0; i < m; ++i) {
      if (!rows[k].coeff(i)) continue;
      for (const auto& monomial : product_set(ports, k)) {
        anfs[i].toggle(monomial);
      }
    }
  }
  const auto report = recover_reduction_matrix(anfs, ports);
  EXPECT_EQ(report.circuit_class, CircuitClass::StandardProduct);
  EXPECT_EQ(report.p, fake);
  EXPECT_FALSE(report.p_is_irreducible);
  EXPECT_NE(report.diagnosis.find("reducible"), std::string::npos);
}

TEST(RedMatrix, DetectsInconsistentReductionRows) {
  // Corrupt one high row wholesale (swap S_5's destination bits): still
  // all-or-none memberships, but the shift recurrence breaks.
  const gf2m::Field field(Poly{4, 1, 0});
  const auto ports = fake_ports(4);
  auto spec = golden_anfs(field, ports);
  // Row 5 is {2,1}: move S_5 from bit 2 to bit 3.
  for (const auto& monomial : product_set(ports, 5)) {
    spec[2].toggle(monomial);  // remove
    spec[3].toggle(monomial);  // add
  }
  const auto report = recover_reduction_matrix(spec, ports);
  EXPECT_EQ(report.circuit_class, CircuitClass::StandardProduct);
  EXPECT_FALSE(report.rows_consistent);
  EXPECT_NE(report.diagnosis.find("recurrence"), std::string::npos);
}

TEST(RedMatrix, ToStringNames) {
  EXPECT_EQ(to_string(CircuitClass::StandardProduct), "standard-product");
  EXPECT_EQ(to_string(CircuitClass::MontgomeryRaw), "montgomery-raw");
  EXPECT_EQ(to_string(CircuitClass::NotAMultiplier), "not-a-multiplier");
}

}  // namespace
}  // namespace gfre::core
