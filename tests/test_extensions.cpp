// Tests for the capabilities beyond the paper's scope: port inference,
// scrambled-output recovery, squarer P(x) recovery, and the known-P(x)
// verification API.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/parallel_extract.hpp"
#include "core/permutation.hpp"
#include "core/poly_extract.hpp"
#include "core/squarer.hpp"
#include "core/verify.hpp"
#include "gen/mastrovito.hpp"
#include "gen/squarer.hpp"
#include "gf2m/field.hpp"
#include "gf2poly/irreducible.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace gfre::core {
namespace {

using gf2::Poly;

// ---------------------------------------------------------------------------
// Port inference
// ---------------------------------------------------------------------------

TEST(PortInference, FindsStandardInterface) {
  const gf2m::Field field(Poly{8, 4, 3, 1, 0});
  const auto netlist = gen::generate_mastrovito(field);
  const auto ports = nl::infer_multiplier_ports(netlist);
  ASSERT_TRUE(ports.has_value());
  EXPECT_EQ(ports->m(), 8u);
  EXPECT_EQ(ports->a.base, "a");
  EXPECT_EQ(ports->b.base, "b");
  EXPECT_EQ(ports->z.base, "z");
}

TEST(PortInference, FindsRenamedInterface) {
  const gf2m::Field field(Poly{5, 2, 0});
  gen::MastrovitoOptions options;
  options.a_base = "lhs_";
  options.b_base = "rhs_";
  options.z_base = "prod_";
  const auto netlist = gen::generate_mastrovito(field, options);
  const auto ports = nl::infer_multiplier_ports(netlist);
  ASSERT_TRUE(ports.has_value());
  EXPECT_EQ(ports->m(), 5u);
  // Lexicographic assignment: "lhs_" < "rhs_".
  EXPECT_EQ(ports->a.base, "lhs_");
  EXPECT_EQ(ports->b.base, "rhs_");
  // And the recovered interface actually works end to end.
  const auto extraction = extract_outputs(netlist, ports->z.bits, 2);
  EXPECT_EQ(recover_irreducible(extraction.anfs, *ports), field.modulus());
}

TEST(PortInference, RejectsNonMultiplierShapes) {
  // One input word only.
  nl::Netlist one_word;
  const auto a0 = one_word.add_input("a0");
  const auto a1 = one_word.add_input("a1");
  one_word.mark_output(one_word.add_gate(nl::CellType::And, {a0, a1}, "z0"));
  one_word.mark_output(one_word.add_gate(nl::CellType::Or, {a0, a1}, "z1"));
  EXPECT_FALSE(nl::infer_multiplier_ports(one_word).has_value());

  // Mismatched widths.
  nl::Netlist lopsided;
  for (int i = 0; i < 3; ++i) lopsided.add_input("a" + std::to_string(i));
  for (int i = 0; i < 2; ++i) lopsided.add_input("b" + std::to_string(i));
  lopsided.mark_output(lopsided.add_gate(
      nl::CellType::And, {*lopsided.find_var("a0"), *lopsided.find_var("b0")},
      "z0"));
  EXPECT_FALSE(nl::infer_multiplier_ports(lopsided).has_value());

  // Extra control pin outside any word port.
  const gf2m::Field field(Poly{3, 1, 0});
  auto netlist = gen::generate_mastrovito(field);
  netlist.add_input("enable");
  EXPECT_FALSE(nl::infer_multiplier_ports(netlist).has_value());
}

// ---------------------------------------------------------------------------
// Scrambled-output recovery
// ---------------------------------------------------------------------------

TEST(OutputOrder, RecoversRandomPermutations) {
  Prng rng(2024);
  for (const Poly& p : {Poly{4, 1, 0}, Poly{8, 4, 3, 1, 0},
                        Poly{11, 2, 0}}) {
    const gf2m::Field field(p);
    const auto netlist = gen::generate_mastrovito(field);
    const auto ports = nl::multiplier_ports(netlist);
    const auto extraction = extract_outputs(netlist, ports.z.bits, 2);
    const unsigned m = field.m();

    for (int round = 0; round < 5; ++round) {
      // Scramble the ANFs with a random permutation.
      std::vector<unsigned> scramble(m);
      for (unsigned i = 0; i < m; ++i) scramble[i] = i;
      for (unsigned i = m; i > 1; --i) {
        std::swap(scramble[i - 1], scramble[rng.next_below(i)]);
      }
      std::vector<anf::Anf> shuffled(m);
      for (unsigned i = 0; i < m; ++i) {
        shuffled[scramble[i]] = extraction.anfs[i];
      }
      const auto order = recover_output_order(shuffled, ports);
      ASSERT_TRUE(order.has_value()) << p.to_string();
      for (unsigned bit = 0; bit < m; ++bit) {
        EXPECT_EQ(shuffled[(*order)[bit]], extraction.anfs[bit])
            << "bit " << bit;
      }
      // And Algorithm 2 works on the de-scrambled ANFs.
      std::vector<anf::Anf> restored(m);
      for (unsigned bit = 0; bit < m; ++bit) {
        restored[bit] = shuffled[(*order)[bit]];
      }
      EXPECT_EQ(recover_irreducible(restored, ports), p);
    }
  }
}

TEST(OutputOrder, RejectsNonProductFunctions) {
  const gf2m::Field field(Poly{4, 1, 0});
  const auto netlist = gen::generate_mastrovito(field);
  const auto ports = nl::multiplier_ports(netlist);
  auto extraction = extract_outputs(netlist, ports.z.bits, 1);
  // Duplicate one output: two outputs claim the same bit.
  extraction.anfs[1] = extraction.anfs[0];
  EXPECT_FALSE(recover_output_order(extraction.anfs, ports).has_value());
  // Garbage (empty) functions claim nothing.
  std::vector<anf::Anf> junk(4);
  EXPECT_FALSE(recover_output_order(junk, ports).has_value());
}

// ---------------------------------------------------------------------------
// Squarers
// ---------------------------------------------------------------------------

class SquarerSweep : public ::testing::TestWithParam<Poly> {};

TEST_P(SquarerSweep, GeneratedSquarerMatchesField) {
  const gf2m::Field field(GetParam());
  const auto netlist = gen::generate_squarer(field);
  netlist.validate();
  const sim::Simulator simulator(netlist);
  Prng rng(field.m());
  for (int round = 0; round < 20; ++round) {
    const Poly a = field.random_element(rng);
    std::vector<bool> in(field.m());
    for (unsigned i = 0; i < field.m(); ++i) in[i] = a.coeff(i);
    const auto out = simulator.run_single(in);
    Poly z;
    for (unsigned i = 0; i < field.m(); ++i) {
      if (out[i]) z.set_coeff(i, true);
    }
    EXPECT_EQ(z, field.square(a)) << "a=" << a.to_string();
  }
}

TEST_P(SquarerSweep, RecoversPolynomialFromNetlist) {
  const gf2m::Field field(GetParam());
  const auto netlist = gen::generate_squarer(field);
  const auto a = *nl::find_word_port(netlist, "a");
  const auto extraction = extract_all_outputs(netlist, 2);
  const auto recovery = recover_squarer(extraction.anfs, a);
  EXPECT_TRUE(recovery.recognized) << recovery.diagnosis;
  EXPECT_EQ(recovery.p, field.modulus());
  EXPECT_TRUE(recovery.p_is_irreducible);
}

INSTANTIATE_TEST_SUITE_P(
    Moduli, SquarerSweep,
    ::testing::Values(Poly{2, 1, 0}, Poly{3, 1, 0}, Poly{4, 1, 0},
                      Poly{4, 3, 0}, Poly{5, 2, 0}, Poly{8, 4, 3, 1, 0},
                      Poly{9, 1, 0}, Poly{16, 5, 3, 1, 0}, Poly{23, 5, 0},
                      Poly{64, 21, 19, 4, 0}),
    [](const ::testing::TestParamInfo<Poly>& info) {
      return "deg" + std::to_string(info.param.degree()) + "_idx" +
             std::to_string(info.index);
    });

TEST(Squarer, EveryIrreducibleDegree2To8) {
  // Both parity branches of the odd-m reconstruction get exercised.
  for (unsigned m = 2; m <= 8; ++m) {
    for (const Poly& p : gf2::all_irreducible(m)) {
      const gf2m::Field field(p);
      const auto netlist = gen::generate_squarer(field);
      const auto a = *nl::find_word_port(netlist, "a");
      const auto extraction = extract_all_outputs(netlist, 1);
      const auto recovery = recover_squarer(extraction.anfs, a);
      EXPECT_TRUE(recovery.recognized)
          << p.to_string() << ": " << recovery.diagnosis;
      EXPECT_EQ(recovery.p, p);
    }
  }
}

TEST(Squarer, RejectsMultiplier) {
  const gf2m::Field field(Poly{4, 1, 0});
  const auto netlist = gen::generate_mastrovito(field);
  const auto ports = nl::multiplier_ports(netlist);
  const auto extraction = extract_outputs(netlist, ports.z.bits, 1);
  const auto recovery = recover_squarer(extraction.anfs, ports.a);
  EXPECT_FALSE(recovery.recognized);
  EXPECT_NE(recovery.diagnosis.find("not linear"), std::string::npos);
}

TEST(Squarer, RejectsCorruptedRows) {
  // Flip one tap in the squarer: linear but inconsistent.
  const gf2m::Field field(Poly{8, 4, 3, 1, 0});
  const auto netlist = gen::generate_squarer(field);
  const auto a = *nl::find_word_port(netlist, "a");
  auto extraction = extract_all_outputs(netlist, 1);
  // Add a bogus linear term to output 5.
  extraction.anfs[5].toggle(anf::Monomial(a.bits[0]));
  const auto recovery = recover_squarer(extraction.anfs, a);
  EXPECT_FALSE(recovery.recognized);
}

TEST(Squarer, SquarerIsPureXorNetwork) {
  const gf2m::Field field(Poly{16, 5, 3, 1, 0});
  const auto netlist = gen::generate_squarer(field);
  for (const auto& gate : netlist.gates()) {
    EXPECT_TRUE(gate.type == nl::CellType::Xor ||
                gate.type == nl::CellType::Buf)
        << cell_name(gate.type);
  }
}

// ---------------------------------------------------------------------------
// Known-P(x) verification (the Lv/Kalla use case)
// ---------------------------------------------------------------------------

TEST(KnownVerification, AcceptsCorrectImplementation) {
  const gf2m::Field field(Poly{8, 4, 3, 1, 0});
  const auto netlist = gen::generate_mastrovito(field);
  const auto result = verify_known_multiplier(netlist, field, 2);
  EXPECT_TRUE(result.equivalent) << result.detail;
}

TEST(KnownVerification, RejectsWrongPolynomial) {
  const gf2m::Field right(Poly{8, 4, 3, 1, 0});
  const gf2m::Field wrong(Poly{8, 5, 3, 1, 0});
  const auto netlist = gen::generate_mastrovito(right);
  const auto result = verify_known_multiplier(netlist, wrong, 2);
  EXPECT_FALSE(result.equivalent);
  EXPECT_NE(result.detail.find("output bit"), std::string::npos);
}

TEST(KnownVerification, RejectsWidthMismatch) {
  const gf2m::Field small(Poly{4, 1, 0});
  const gf2m::Field big(Poly{8, 4, 3, 1, 0});
  const auto netlist = gen::generate_mastrovito(small);
  const auto result = verify_known_multiplier(netlist, big);
  EXPECT_FALSE(result.equivalent);
  EXPECT_NE(result.detail.find("width"), std::string::npos);
}

}  // namespace
}  // namespace gfre::core
